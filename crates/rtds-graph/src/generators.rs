//! Synthetic DAG workload generators.
//!
//! The paper evaluates RTDS conceptually on "sporadic jobs with arbitrary
//! precedence relations"; it does not fix a benchmark suite. To exercise the
//! protocol we provide the classical task-graph families used throughout the
//! DAG-scheduling literature (and by the papers RTDS cites, e.g. DLS and the
//! Iverson/Özgüner competitive-DAG studies):
//!
//! * chains, fork-joins, diamonds (series-parallel shapes),
//! * layered random DAGs (the standard "Task Graphs For Free" style),
//! * Erdős–Rényi DAGs over a random topological order,
//! * out-trees / in-trees,
//! * Gaussian-elimination and FFT-butterfly application graphs,
//! * independent task sets (degenerate DAGs, to compare against the
//!   independent-task literature the paper discusses in §3).
//!
//! All generation is driven by an explicit, seedable RNG so every experiment
//! in the harness is reproducible.

use crate::dag::TaskGraph;
use crate::job::{Job, JobId, JobParams};
use crate::task::TaskId;
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Distribution of task computational complexities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CostDistribution {
    /// Every task has the same cost.
    Constant(f64),
    /// Costs drawn uniformly from `[min, max]`.
    Uniform { min: f64, max: f64 },
    /// Costs drawn from a two-point distribution: `low` with probability
    /// `p_low`, otherwise `high` (models mixed light/heavy tasks).
    Bimodal { low: f64, high: f64, p_low: f64 },
}

impl CostDistribution {
    fn sample(&self, rng: &mut StdRng) -> f64 {
        match *self {
            CostDistribution::Constant(c) => c,
            CostDistribution::Uniform { min, max } => {
                if max > min {
                    rng.random_range(min..=max)
                } else {
                    min
                }
            }
            CostDistribution::Bimodal { low, high, p_low } => {
                if rng.random_bool(p_low.clamp(0.0, 1.0)) {
                    low
                } else {
                    high
                }
            }
        }
    }

    /// Expected value of the distribution (used to size deadlines).
    pub fn mean(&self) -> f64 {
        match *self {
            CostDistribution::Constant(c) => c,
            CostDistribution::Uniform { min, max } => 0.5 * (min + max),
            CostDistribution::Bimodal { low, high, p_low } => {
                let p = p_low.clamp(0.0, 1.0);
                p * low + (1.0 - p) * high
            }
        }
    }
}

/// Shape (family) of generated DAGs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DagShape {
    /// A single chain of `n` tasks.
    Chain,
    /// One source fanning out to `n - 2` parallel tasks joined by one sink.
    ForkJoin,
    /// A set of `n` independent tasks (no precedence edges at all).
    Independent,
    /// `layers` layers of roughly equal width; every task has at least one
    /// predecessor in the previous layer and extra edges are added with
    /// probability `edge_prob`.
    LayeredRandom { layers: usize, edge_prob: f64 },
    /// Erdős–Rényi DAG: a random permutation fixes a topological order and
    /// each forward pair becomes an edge with probability `edge_prob`
    /// (orphan tasks are then stitched to keep the graph weakly connected).
    ErdosRenyi { edge_prob: f64 },
    /// Complete out-tree with the given branching factor.
    OutTree { branching: usize },
    /// Complete in-tree (reduction tree) with the given branching factor.
    InTree { branching: usize },
    /// Gaussian elimination task graph on a `k × k` matrix
    /// (`n = k(k+1)/2 - 1` tasks). The requested task count selects `k`.
    GaussianElimination,
    /// FFT butterfly graph on `2^m` points (recursive + butterfly stages).
    /// The requested task count selects `m`.
    FftButterfly,
}

/// Configuration of a [`DagGenerator`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Desired number of tasks (exact for most shapes; rounded to the nearest
    /// legal size for structured shapes such as trees, FFT or Gaussian
    /// elimination).
    pub task_count: usize,
    /// Shape family.
    pub shape: DagShape,
    /// Task cost distribution.
    pub costs: CostDistribution,
    /// Communication-to-computation ratio used to decorate edges with data
    /// volumes: each edge volume is `ccr × mean task cost` scaled by a
    /// uniform factor in `[0.5, 1.5]`. A CCR of 0 leaves volumes at 0 (the
    /// paper's base model, propagation delay only).
    pub ccr: f64,
    /// Deadline laxity factor range: the job deadline is
    /// `release + factor × critical path length`, with the factor drawn
    /// uniformly from this range.
    pub laxity_factor: (f64, f64),
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            task_count: 20,
            shape: DagShape::LayeredRandom {
                layers: 4,
                edge_prob: 0.3,
            },
            costs: CostDistribution::Uniform {
                min: 1.0,
                max: 10.0,
            },
            ccr: 0.0,
            laxity_factor: (2.0, 4.0),
        }
    }
}

/// Seedable generator of task graphs and jobs.
#[derive(Debug)]
pub struct DagGenerator {
    config: GeneratorConfig,
    rng: StdRng,
    next_job: u64,
}

impl DagGenerator {
    /// Creates a generator with the given configuration and seed.
    pub fn new(config: GeneratorConfig, seed: u64) -> Self {
        DagGenerator {
            config,
            rng: StdRng::seed_from_u64(seed),
            next_job: 0,
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Restarts the RNG stream from `seed` without resetting the job-id
    /// counter. The streaming workload layer reuses one generator across
    /// millions of jobs, giving each job its own seed from the arrival
    /// trace so a replayed trace regenerates bit-identical jobs regardless
    /// of generation history.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Overrides the task count of subsequently generated graphs (per-job
    /// size mixes — e.g. heavy-tail Pareto — vary this between jobs).
    pub fn set_task_count(&mut self, task_count: usize) {
        self.config.task_count = task_count.max(1);
    }

    /// Generates one task graph according to the configured shape.
    pub fn generate_graph(&mut self) -> TaskGraph {
        let n = self.config.task_count.max(1);
        let mut graph = match self.config.shape {
            DagShape::Chain => self.chain(n),
            DagShape::ForkJoin => self.fork_join(n),
            DagShape::Independent => self.independent(n),
            DagShape::LayeredRandom { layers, edge_prob } => {
                self.layered(n, layers.max(1), edge_prob)
            }
            DagShape::ErdosRenyi { edge_prob } => self.erdos_renyi(n, edge_prob),
            DagShape::OutTree { branching } => self.out_tree(n, branching.max(2)),
            DagShape::InTree { branching } => self.in_tree(n, branching.max(2)),
            DagShape::GaussianElimination => self.gaussian_elimination(n),
            DagShape::FftButterfly => self.fft(n),
        };
        self.decorate_volumes(&mut graph);
        debug_assert!(graph.is_acyclic(), "generator produced a cyclic graph");
        graph
    }

    /// Generates a complete job arriving at `arrival_site` at `release`.
    /// The deadline is derived from the critical path and the configured
    /// laxity-factor range.
    pub fn generate_job(&mut self, arrival_site: usize, release: f64) -> Job {
        let graph = self.generate_graph();
        let cp = crate::critical_path::critical_path_tasks(&graph).length;
        let (lo, hi) = self.config.laxity_factor;
        let factor = if hi > lo {
            self.rng.random_range(lo..=hi)
        } else {
            lo
        };
        // Guard against degenerate zero-cost graphs.
        let window = (cp * factor).max(1e-6);
        let id = JobId(self.next_job);
        self.next_job += 1;
        Job::new(
            id,
            graph,
            JobParams::new(release, release + window),
            arrival_site,
        )
    }

    fn sample_cost(&mut self) -> f64 {
        self.config.costs.sample(&mut self.rng)
    }

    fn add_tasks(&mut self, graph: &mut TaskGraph, n: usize) -> Vec<TaskId> {
        (0..n)
            .map(|_| {
                let c = self.sample_cost();
                graph.add_task(c)
            })
            .collect()
    }

    fn chain(&mut self, n: usize) -> TaskGraph {
        let mut g = TaskGraph::new();
        let ids = self.add_tasks(&mut g, n);
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g
    }

    fn independent(&mut self, n: usize) -> TaskGraph {
        let mut g = TaskGraph::new();
        let _ = self.add_tasks(&mut g, n);
        g
    }

    fn fork_join(&mut self, n: usize) -> TaskGraph {
        let mut g = TaskGraph::new();
        if n == 1 {
            let _ = self.add_tasks(&mut g, 1);
            return g;
        }
        if n == 2 {
            let ids = self.add_tasks(&mut g, 2);
            g.add_edge(ids[0], ids[1]).unwrap();
            return g;
        }
        let ids = self.add_tasks(&mut g, n);
        let source = ids[0];
        let sink = ids[n - 1];
        for &mid in &ids[1..n - 1] {
            g.add_edge(source, mid).unwrap();
            g.add_edge(mid, sink).unwrap();
        }
        g
    }

    fn layered(&mut self, n: usize, layers: usize, edge_prob: f64) -> TaskGraph {
        let layers = layers.min(n);
        let mut g = TaskGraph::new();
        let ids = self.add_tasks(&mut g, n);
        // Partition ids into `layers` contiguous layers of near-equal size.
        let mut layer_of = vec![0usize; n];
        let base = n / layers;
        let extra = n % layers;
        let mut idx = 0;
        for l in 0..layers {
            let size = base + usize::from(l < extra);
            for _ in 0..size {
                if idx < n {
                    layer_of[idx] = l;
                    idx += 1;
                }
            }
        }
        let layer_members: Vec<Vec<TaskId>> = (0..layers)
            .map(|l| ids.iter().copied().filter(|t| layer_of[t.0] == l).collect())
            .collect();
        for l in 1..layers {
            let prev = &layer_members[l - 1];
            if prev.is_empty() {
                continue;
            }
            for &t in &layer_members[l] {
                // Guarantee at least one incoming edge from the previous layer.
                let forced = prev[self.rng.random_range(0..prev.len())];
                let _ = g.add_edge(forced, t);
                // Extra edges from any earlier layer with probability edge_prob.
                for members in layer_members.iter().take(l) {
                    for &p in members {
                        if p != forced && self.rng.random_bool(edge_prob.clamp(0.0, 1.0)) {
                            let _ = g.add_edge(p, t);
                        }
                    }
                }
            }
        }
        g
    }

    fn erdos_renyi(&mut self, n: usize, edge_prob: f64) -> TaskGraph {
        let mut g = TaskGraph::new();
        let ids = self.add_tasks(&mut g, n);
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut self.rng);
        let p = edge_prob.clamp(0.0, 1.0);
        for i in 0..n {
            for j in (i + 1)..n {
                if self.rng.random_bool(p) {
                    let _ = g.add_edge(ids[order[i]], ids[order[j]]);
                }
            }
        }
        // Stitch isolated tasks (no preds and no succs) to a random earlier /
        // later task so the job is weakly connected, which keeps critical-path
        // based deadline assignment meaningful.
        for i in 1..n {
            let t = ids[order[i]];
            if g.in_degree(t) == 0 && g.out_degree(t) == 0 {
                let j = self.rng.random_range(0..i);
                let _ = g.add_edge(ids[order[j]], t);
            }
        }
        g
    }

    fn out_tree(&mut self, n: usize, branching: usize) -> TaskGraph {
        let mut g = TaskGraph::new();
        let ids = self.add_tasks(&mut g, n);
        for i in 1..n {
            let parent = (i - 1) / branching;
            g.add_edge(ids[parent], ids[i]).unwrap();
        }
        g
    }

    fn in_tree(&mut self, n: usize, branching: usize) -> TaskGraph {
        let mut g = TaskGraph::new();
        let ids = self.add_tasks(&mut g, n);
        // Mirror of the out-tree: child -> parent, sink is task 0.
        for i in 1..n {
            let parent = (i - 1) / branching;
            g.add_edge(ids[i], ids[parent]).unwrap();
        }
        g
    }

    /// Gaussian elimination DAG for a `k × k` matrix, the classical
    /// pivot-column/update structure. `n` selects the smallest `k` whose task
    /// count `k(k+1)/2 - 1` is at least `n` (minimum `k = 2`).
    fn gaussian_elimination(&mut self, n: usize) -> TaskGraph {
        let mut k = 2usize;
        while k * (k + 1) / 2 - 1 < n {
            k += 1;
        }
        let mut g = TaskGraph::new();
        // For each elimination step i (0..k-1): one pivot task, then k-1-i
        // update tasks. Pivot of step i depends on all updates of step i-1;
        // update j of step i depends on the pivot of step i and on update j of
        // step i-1.
        let mut prev_updates: Vec<TaskId> = Vec::new();
        for i in 0..(k - 1) {
            let cost = self.sample_cost();
            let pivot = g.add_labelled_task(cost, format!("pivot{i}"));
            for &u in &prev_updates {
                let _ = g.add_edge(u, pivot);
            }
            let mut updates = Vec::new();
            for j in 0..(k - 1 - i) {
                let cost = self.sample_cost();
                let upd = g.add_labelled_task(cost, format!("update{i}_{j}"));
                let _ = g.add_edge(pivot, upd);
                if j < prev_updates.len() {
                    // Skip the column eliminated by the previous pivot.
                    let idx = j + 1;
                    if idx < prev_updates.len() {
                        let _ = g.add_edge(prev_updates[idx], upd);
                    }
                }
                updates.push(upd);
            }
            prev_updates = updates;
        }
        g
    }

    /// FFT butterfly DAG on `2^m` points: `m` butterfly stages of `2^m` tasks
    /// each plus an input stage. `n` selects the smallest `m >= 1` such that
    /// the task count `(m + 1) * 2^m` is at least `n`.
    fn fft(&mut self, n: usize) -> TaskGraph {
        let mut m = 1usize;
        while (m + 1) * (1usize << m) < n && m < 16 {
            m += 1;
        }
        let points = 1usize << m;
        let mut g = TaskGraph::new();
        let mut prev: Vec<TaskId> = (0..points)
            .map(|i| {
                let c = self.sample_cost();
                g.add_labelled_task(c, format!("in{i}"))
            })
            .collect();
        for stage in 0..m {
            let stride = 1usize << stage;
            let cur: Vec<TaskId> = (0..points)
                .map(|i| {
                    let c = self.sample_cost();
                    g.add_labelled_task(c, format!("s{stage}_{i}"))
                })
                .collect();
            for i in 0..points {
                let partner = i ^ stride;
                g.add_edge(prev[i], cur[i]).unwrap();
                g.add_edge(prev[partner], cur[i]).unwrap();
            }
            prev = cur;
        }
        g
    }

    fn decorate_volumes(&mut self, graph: &mut TaskGraph) {
        if self.config.ccr <= 0.0 {
            return;
        }
        let mean_cost = self.config.costs.mean().max(1e-9);
        // Rebuild the graph with decorated edges (edge data is immutable once
        // inserted, and graphs are small, so a rebuild is the simplest safe
        // approach).
        let mut decorated = TaskGraph::new();
        for t in graph.tasks() {
            match &t.label {
                Some(l) => decorated.add_labelled_task(t.cost, l.clone()),
                None => decorated.add_task(t.cost),
            };
        }
        for t in graph.task_ids() {
            for (s, _) in graph.successor_edges(t).to_vec() {
                let factor = self.rng.random_range(0.5..=1.5);
                let volume = self.config.ccr * mean_cost * factor;
                decorated.add_edge_with_volume(t, s, volume).unwrap();
            }
        }
        *graph = decorated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_with(shape: DagShape, n: usize, seed: u64) -> TaskGraph {
        let cfg = GeneratorConfig {
            task_count: n,
            shape,
            ..GeneratorConfig::default()
        };
        DagGenerator::new(cfg, seed).generate_graph()
    }

    #[test]
    fn chain_shape() {
        let g = gen_with(DagShape::Chain, 10, 1);
        assert_eq!(g.task_count(), 10);
        assert_eq!(g.edge_count(), 9);
        assert_eq!(g.longest_chain_len(), 10);
    }

    #[test]
    fn fork_join_shape() {
        let g = gen_with(DagShape::ForkJoin, 12, 2);
        assert_eq!(g.task_count(), 12);
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 1);
        assert_eq!(g.edge_count(), 2 * 10);
        // Small fork-joins degrade gracefully.
        let g1 = gen_with(DagShape::ForkJoin, 1, 2);
        assert_eq!(g1.task_count(), 1);
        let g2 = gen_with(DagShape::ForkJoin, 2, 2);
        assert_eq!(g2.edge_count(), 1);
    }

    #[test]
    fn independent_shape() {
        let g = gen_with(DagShape::Independent, 8, 3);
        assert_eq!(g.task_count(), 8);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn layered_shape_every_non_first_layer_task_has_pred() {
        let g = gen_with(
            DagShape::LayeredRandom {
                layers: 5,
                edge_prob: 0.2,
            },
            30,
            4,
        );
        assert_eq!(g.task_count(), 30);
        assert!(g.is_acyclic());
        // First layer holds 6 tasks; all others must have a predecessor.
        let no_pred = g.task_ids().filter(|t| g.in_degree(*t) == 0).count();
        assert!(no_pred <= 6, "too many sources: {no_pred}");
    }

    #[test]
    fn erdos_renyi_acyclic_and_connected_enough() {
        for seed in 0..5 {
            let g = gen_with(DagShape::ErdosRenyi { edge_prob: 0.15 }, 25, seed);
            assert_eq!(g.task_count(), 25);
            assert!(g.is_acyclic());
            // No fully isolated task except possibly the first in the order.
            let isolated = g
                .task_ids()
                .filter(|t| g.in_degree(*t) == 0 && g.out_degree(*t) == 0)
                .count();
            assert!(isolated <= 1);
        }
    }

    #[test]
    fn tree_shapes() {
        let out = gen_with(DagShape::OutTree { branching: 3 }, 13, 5);
        assert_eq!(out.sources().len(), 1);
        assert_eq!(out.edge_count(), 12);
        let inn = gen_with(DagShape::InTree { branching: 2 }, 15, 6);
        assert_eq!(inn.sinks().len(), 1);
        assert_eq!(inn.edge_count(), 14);
        assert!(inn.is_acyclic());
    }

    #[test]
    fn gaussian_elimination_shape() {
        let g = gen_with(DagShape::GaussianElimination, 14, 7);
        // k = 5 gives 5*6/2 - 1 = 14 tasks.
        assert_eq!(g.task_count(), 14);
        assert!(g.is_acyclic());
        assert_eq!(g.sources().len(), 1); // first pivot
    }

    #[test]
    fn fft_shape() {
        let g = gen_with(DagShape::FftButterfly, 20, 8);
        // m = 2 gives (2+1)*4 = 12 < 20, m = 3 gives 4*8 = 32 >= 20.
        assert_eq!(g.task_count(), 32);
        assert!(g.is_acyclic());
        assert_eq!(g.sources().len(), 8);
        assert_eq!(g.sinks().len(), 8);
    }

    #[test]
    fn jobs_have_consistent_windows() {
        let cfg = GeneratorConfig {
            task_count: 16,
            laxity_factor: (2.0, 3.0),
            ..GeneratorConfig::default()
        };
        let mut generator = DagGenerator::new(cfg, 99);
        for i in 0..10 {
            let job = generator.generate_job(i % 4, i as f64 * 5.0);
            assert_eq!(job.arrival_site, i % 4);
            assert_eq!(job.release(), i as f64 * 5.0);
            assert!(job.deadline() > job.release());
            let lf = job.laxity_factor();
            assert!((2.0 - 1e-9..=3.0 + 1e-9).contains(&lf), "laxity {lf}");
        }
    }

    #[test]
    fn job_ids_are_sequential() {
        let mut generator = DagGenerator::new(GeneratorConfig::default(), 11);
        let a = generator.generate_job(0, 0.0);
        let b = generator.generate_job(0, 1.0);
        assert_eq!(a.id, JobId(0));
        assert_eq!(b.id, JobId(1));
    }

    #[test]
    fn reseeding_replays_the_stream_but_keeps_ids_monotonic() {
        let cfg = GeneratorConfig::default();
        let mut generator = DagGenerator::new(cfg, 1);
        generator.reseed(77);
        generator.set_task_count(9);
        let a = generator.generate_job(0, 5.0);
        // Different seed in between, then back: the regenerated job matches.
        generator.reseed(123);
        generator.set_task_count(30);
        let _ = generator.generate_job(1, 6.0);
        generator.reseed(77);
        generator.set_task_count(9);
        let c = generator.generate_job(0, 5.0);
        assert_eq!(a.graph, c.graph);
        assert_eq!(a.params, c.params);
        assert_eq!(a.graph.task_count(), 9);
        // Ids keep counting across reseeds.
        assert_eq!(a.id, JobId(0));
        assert_eq!(c.id, JobId(2));
    }

    #[test]
    fn determinism_same_seed_same_graph() {
        let cfg = GeneratorConfig::default();
        let g1 = DagGenerator::new(cfg, 42).generate_graph();
        let g2 = DagGenerator::new(cfg, 42).generate_graph();
        assert_eq!(g1, g2);
        let g3 = DagGenerator::new(cfg, 43).generate_graph();
        assert_ne!(g1, g3);
    }

    #[test]
    fn ccr_decorates_edges() {
        let cfg = GeneratorConfig {
            task_count: 10,
            shape: DagShape::Chain,
            ccr: 1.0,
            ..GeneratorConfig::default()
        };
        let g = DagGenerator::new(cfg, 13).generate_graph();
        assert_eq!(g.edge_count(), 9);
        for t in g.task_ids() {
            for (s, data) in g.successor_edges(t) {
                assert!(data.data_volume > 0.0, "edge {t} -> {s} has zero volume");
            }
        }
    }

    #[test]
    fn cost_distributions() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(CostDistribution::Constant(5.0).sample(&mut rng), 5.0);
        assert_eq!(CostDistribution::Constant(5.0).mean(), 5.0);
        let u = CostDistribution::Uniform { min: 1.0, max: 3.0 };
        for _ in 0..100 {
            let x = u.sample(&mut rng);
            assert!((1.0..=3.0).contains(&x));
        }
        assert_eq!(u.mean(), 2.0);
        let b = CostDistribution::Bimodal {
            low: 1.0,
            high: 9.0,
            p_low: 0.5,
        };
        assert_eq!(b.mean(), 5.0);
        for _ in 0..100 {
            let x = b.sample(&mut rng);
            assert!(x == 1.0 || x == 9.0);
        }
        // Degenerate uniform falls back to the minimum.
        let d = CostDistribution::Uniform { min: 4.0, max: 4.0 };
        assert_eq!(d.sample(&mut rng), 4.0);
    }
}
