//! Adjustment of the per-task releases and deadlines (§12.2).
//!
//! The Mapper's schedule `S` gives raw values `r_i` (start) and `d_i`
//! (finish) that ignore the job deadline `d`. §12.2 rescales them to the job
//! window `[r, d]`:
//!
//! * **case (i)** — `M* > d − r`: even at 100 % surplus the mapping cannot
//!   fit the window, the job is **rejected**;
//! * **case (ii)** — `M ≤ d − r`: the window is at least as long as the
//!   surplus-scaled schedule, so deadlines are scaled by `(d − r) / M`
//!   (eq. 3) and releases recomputed from predecessors (eq. 5), in
//!   topological order;
//! * **case (iii)** — `M* ≤ d − r < M`: the window lies between the two
//!   makespans; the extra laxity `d − r − M*` is scattered over the tasks
//!   (`ℓ = (d − r − M*) / η` with `η` the maximum number of tasks on any
//!   critical path of `S*`), deadlines are propagated backwards (eq. 4, in
//!   reverse topological order) and releases forwards (eq. 5).
//!
//! §13 adds *busyness-weighted* laxity dispatching: tasks running on busy
//! processors receive a proportionally larger share of the extra laxity.

use crate::config::LaxityDispatch;
use crate::mapper::{MapperResult, ProcessorSpec};
use rtds_graph::{TaskGraph, TaskId};
use serde::{Deserialize, Serialize};

/// Which adjustment case of §12.2 applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdjustCase {
    /// Case (ii): deadlines scaled by `(d − r) / M`.
    ScaledByWindow,
    /// Case (iii): extra laxity scattered along critical paths.
    LaxityScattered,
}

/// Outcome of the adjustment step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdjustOutcome {
    /// Case (i): the job cannot meet its deadline with this mapping.
    Rejected {
        /// The limiting lower bound `M*`.
        makespan_star: f64,
        /// The available window `d − r`.
        window: f64,
    },
    /// The mapping was adjusted; per-task releases and deadlines are
    /// absolute times.
    Adjusted {
        /// Which case applied.
        case: AdjustCase,
        /// Adjusted release `r(t_i)` per task.
        release: Vec<f64>,
        /// Adjusted deadline `d(t_i)` per task.
        deadline: Vec<f64>,
    },
}

impl AdjustOutcome {
    /// Returns the adjusted windows, if the job was not rejected.
    pub fn windows(&self) -> Option<(&[f64], &[f64])> {
        match self {
            AdjustOutcome::Adjusted {
                release, deadline, ..
            } => Some((release, deadline)),
            AdjustOutcome::Rejected { .. } => None,
        }
    }

    /// Returns `true` for case (i).
    pub fn is_rejected(&self) -> bool {
        matches!(self, AdjustOutcome::Rejected { .. })
    }
}

/// Computes `η`: the maximum number of tasks on any critical path of the
/// schedule `S*`. The schedule's constraint graph has an edge for every DAG
/// precedence (weighted by the communication delay used in `S*`) and for
/// every pair of consecutive tasks on the same processor (weight 0); a task
/// is critical when it has zero slack with respect to the makespan `M*`.
pub fn eta_of_star_schedule(graph: &TaskGraph, result: &MapperResult) -> usize {
    let n = graph.task_count();
    if n == 0 {
        return 0;
    }
    const EPS: f64 = 1e-9;
    let makespan_end = result.release + result.makespan_star;

    // Constraint edges: DAG precedences plus same-processor succession.
    let mut succ_edges: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for t in graph.task_ids() {
        for s in graph.successors(t) {
            let w = if result.assignment[t.0] == result.assignment[s.0] {
                0.0
            } else {
                result.comm_delay
            };
            succ_edges[t.0].push((s.0, w));
        }
    }
    for order in &result.processor_order {
        for w in order.windows(2) {
            succ_edges[w[0].0].push((w[1].0, 0.0));
        }
    }

    // A task is on a critical path of S* when its start equals the earliest
    // possible start (it already does, S* is an as-soon-as-possible replay)
    // and its latest start — propagated backwards from the makespan — equals
    // its start.
    let duration = |t: usize| -> f64 { result.star_finish[t] - result.star_start[t] };
    let mut latest_finish = vec![makespan_end; n];
    // Process in reverse topological order of the *constraint* graph; the
    // global list order used by the mapper is a valid topological order of
    // both precedence and processor-succession edges, so reuse it via the
    // star start times (stable sort by start, descending).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|a, b| {
        result.star_start[*b]
            .partial_cmp(&result.star_start[*a])
            .unwrap()
            .then(b.cmp(a))
    });
    for &t in &order {
        for &(s, w) in &succ_edges[t] {
            let lf = latest_finish[s] - duration(s) - w;
            latest_finish[t] = latest_finish[t].min(lf);
        }
    }
    let critical: Vec<bool> = (0..n)
        .map(|t| (latest_finish[t] - result.star_finish[t]).abs() <= EPS)
        .collect();

    // Longest chain (in number of tasks) through critical tasks along
    // zero-slack constraint edges.
    let mut chain = vec![0usize; n];
    let mut best = 0usize;
    let mut forward: Vec<usize> = (0..n).collect();
    forward.sort_by(|a, b| {
        result.star_start[*a]
            .partial_cmp(&result.star_start[*b])
            .unwrap()
            .then(a.cmp(b))
    });
    for &t in &forward {
        if !critical[t] {
            continue;
        }
        chain[t] = chain[t].max(1);
        best = best.max(chain[t]);
        for &(s, w) in &succ_edges[t] {
            if !critical[s] {
                continue;
            }
            // The edge is tight when s starts exactly when t's finish plus
            // the edge weight says it must.
            if (result.star_start[s] - (result.star_finish[t] + w)).abs() <= EPS {
                chain[s] = chain[s].max(chain[t] + 1);
                best = best.max(chain[s]);
            }
        }
    }
    best.max(1)
}

/// Runs the §12.2 adjustment.
///
/// * `graph` — the job's task graph.
/// * `result` — the Mapper's output (schedules `S` and `S*`).
/// * `release`, `deadline` — the job's window `[r, d]`.
/// * `processors` — the logical processors offered to the Mapper (needed for
///   the busyness-weighted laxity variant).
/// * `laxity` — how the case-(iii) laxity is dispatched.
pub fn adjust_mapping(
    graph: &TaskGraph,
    result: &MapperResult,
    release: f64,
    deadline: f64,
    processors: &[ProcessorSpec],
    laxity: LaxityDispatch,
) -> AdjustOutcome {
    let window = deadline - release;
    let n = graph.task_count();
    const EPS: f64 = 1e-9;

    // Case (i): even the ideal schedule overruns the window.
    if result.makespan_star > window + EPS {
        return AdjustOutcome::Rejected {
            makespan_star: result.makespan_star,
            window,
        };
    }

    let topo = graph
        .topological_order()
        .expect("the job graph is acyclic by construction");

    let mut adj_release = vec![release; n];
    let mut adj_deadline = vec![deadline; n];

    let comm = |a: TaskId, b: TaskId| -> f64 {
        if result.assignment[a.0] == result.assignment[b.0] {
            0.0
        } else {
            result.comm_delay
        }
    };

    if result.makespan <= window + EPS {
        // Case (ii): scale the S deadlines by (d - r) / M, then recompute
        // releases from predecessors in topological order (eqs. 3 and 5).
        let scale = if result.makespan > 0.0 {
            window / result.makespan
        } else {
            1.0
        };
        for t in &topo {
            adj_deadline[t.0] = release + (result.finish[t.0] - release) * scale;
        }
        for t in &topo {
            adj_release[t.0] = if graph.in_degree(*t) == 0 {
                release
            } else {
                graph
                    .predecessors(*t)
                    .map(|p| adj_deadline[p.0] + comm(p, *t))
                    .fold(f64::NEG_INFINITY, f64::max)
            };
        }
        AdjustOutcome::Adjusted {
            case: AdjustCase::ScaledByWindow,
            release: adj_release,
            deadline: adj_deadline,
        }
    } else {
        // Case (iii): M* <= d - r < M. Scatter the extra laxity.
        let eta = eta_of_star_schedule(graph, result).max(1);
        let slack = (window - result.makespan_star).max(0.0);
        let uniform_laxity = slack / eta as f64;
        // Per-task laxity share.
        let laxity_of: Vec<f64> = match laxity {
            LaxityDispatch::Uniform => vec![uniform_laxity; n],
            LaxityDispatch::BusynessWeighted => {
                // Weight by the busyness of the processor each task runs on,
                // normalised so the *average* share still equals the uniform
                // one (tasks on fully idle processors get no extra laxity,
                // tasks on busy processors get more).
                let busyness: Vec<f64> = (0..n)
                    .map(|t| {
                        let p = result.assignment[t];
                        1.0 - processors
                            .get(p)
                            .map(|s| s.surplus.clamp(0.0, 1.0))
                            .unwrap_or(1.0)
                    })
                    .collect();
                let mean: f64 = if n > 0 {
                    busyness.iter().sum::<f64>() / n as f64
                } else {
                    0.0
                };
                if mean <= EPS {
                    vec![uniform_laxity; n]
                } else {
                    busyness
                        .iter()
                        .map(|b| uniform_laxity * (b / mean))
                        .collect()
                }
            }
        };
        // Eq. (4): deadlines in reverse topological order, anchored on the
        // job deadline for sink tasks; durations use the raw computational
        // complexity (the S* model).
        for t in topo.iter().rev() {
            if graph.out_degree(*t) == 0 {
                adj_deadline[t.0] = deadline;
            } else {
                adj_deadline[t.0] = graph
                    .successors(*t)
                    .map(|s| adj_deadline[s.0] - laxity_of[s.0] - graph.cost(s) - comm(*t, s))
                    .fold(f64::INFINITY, f64::min);
            }
        }
        // Eq. (5): releases in topological order.
        for t in &topo {
            adj_release[t.0] = if graph.in_degree(*t) == 0 {
                release
            } else {
                graph
                    .predecessors(*t)
                    .map(|p| adj_deadline[p.0] + comm(p, *t))
                    .fold(f64::NEG_INFINITY, f64::max)
            };
        }
        AdjustOutcome::Adjusted {
            case: AdjustCase::LaxityScattered,
            release: adj_release,
            deadline: adj_deadline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{map_dag, MapperInput};
    use rtds_graph::paper_instance::{
        paper_task_graph, EXPECTED_TABLE1, PAPER_ACS_DIAMETER, PAPER_DEADLINE, PAPER_RELEASE,
        PAPER_SURPLUS_P1, PAPER_SURPLUS_P2,
    };

    fn paper_result() -> (rtds_graph::TaskGraph, MapperResult, Vec<ProcessorSpec>) {
        let graph = paper_task_graph();
        let processors = vec![
            ProcessorSpec::with_surplus(PAPER_SURPLUS_P1),
            ProcessorSpec::with_surplus(PAPER_SURPLUS_P2),
        ];
        let input = MapperInput::new(&graph, PAPER_RELEASE, &processors, PAPER_ACS_DIAMETER);
        let result = map_dag(&input).unwrap();
        (graph, result, processors)
    }

    #[test]
    fn reproduces_table_1_exactly() {
        let (graph, result, processors) = paper_result();
        let outcome = adjust_mapping(
            &graph,
            &result,
            PAPER_RELEASE,
            PAPER_DEADLINE,
            &processors,
            LaxityDispatch::Uniform,
        );
        let AdjustOutcome::Adjusted {
            case,
            release,
            deadline,
        } = outcome
        else {
            panic!("the paper example must not be rejected");
        };
        // d - r = 66 >= M = 33, so case (ii) applies with scale factor 2.
        assert_eq!(case, AdjustCase::ScaledByWindow);
        for (task, ri, di, r_adj, d_adj) in EXPECTED_TABLE1 {
            assert!((result.start[task] - ri).abs() < 1e-9, "r_{task}");
            assert!((result.finish[task] - di).abs() < 1e-9, "d_{task}");
            assert!(
                (release[task] - r_adj).abs() < 1e-9,
                "adjusted r(t{}) = {} expected {r_adj}",
                task + 1,
                release[task]
            );
            assert!(
                (deadline[task] - d_adj).abs() < 1e-9,
                "adjusted d(t{}) = {} expected {d_adj}",
                task + 1,
                deadline[task]
            );
        }
    }

    #[test]
    fn case_i_rejects_when_even_the_ideal_schedule_overruns() {
        let (graph, result, processors) = paper_result();
        // M* = 19, so a window of 15 triggers case (i).
        let outcome = adjust_mapping(
            &graph,
            &result,
            0.0,
            15.0,
            &processors,
            LaxityDispatch::Uniform,
        );
        assert!(outcome.is_rejected());
        assert!(outcome.windows().is_none());
        match outcome {
            AdjustOutcome::Rejected {
                makespan_star,
                window,
            } => {
                assert!((makespan_star - 19.0).abs() < 1e-9);
                assert!((window - 15.0).abs() < 1e-9);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn case_iii_windows_are_consistent() {
        let (graph, result, processors) = paper_result();
        // M* = 19, M = 33: a window of 25 lands in case (iii).
        let outcome = adjust_mapping(
            &graph,
            &result,
            0.0,
            25.0,
            &processors,
            LaxityDispatch::Uniform,
        );
        let AdjustOutcome::Adjusted {
            case,
            release,
            deadline,
        } = outcome
        else {
            panic!("case (iii) must not reject");
        };
        assert_eq!(case, AdjustCase::LaxityScattered);
        for t in graph.task_ids() {
            // Every task window lies inside the job window.
            assert!(release[t.0] >= 0.0 - 1e-9);
            assert!(
                deadline[t.0] <= 25.0 + 1e-9,
                "d(t{}) = {}",
                t.0,
                deadline[t.0]
            );
            // The window can hold the raw computational complexity.
            assert!(
                deadline[t.0] - release[t.0] + 1e-9 >= graph.cost(t),
                "window of t{} too small: [{}, {}] for cost {}",
                t.0,
                release[t.0],
                deadline[t.0],
                graph.cost(t)
            );
        }
        // Sink deadline is anchored at the job deadline.
        assert!((deadline[4] - 25.0).abs() < 1e-9);
        // Precedence consistency: a successor's release is never before its
        // predecessor's deadline plus the communication delay.
        for t in graph.task_ids() {
            for p in graph.predecessors(t) {
                let w = if result.assignment[p.0] == result.assignment[t.0] {
                    0.0
                } else {
                    result.comm_delay
                };
                assert!(release[t.0] + 1e-9 >= deadline[p.0] + w);
            }
        }
    }

    #[test]
    fn busyness_weighted_laxity_still_produces_valid_windows() {
        let (graph, result, processors) = paper_result();
        let outcome = adjust_mapping(
            &graph,
            &result,
            0.0,
            25.0,
            &processors,
            LaxityDispatch::BusynessWeighted,
        );
        let AdjustOutcome::Adjusted {
            release, deadline, ..
        } = outcome
        else {
            panic!("must adjust");
        };
        for t in graph.task_ids() {
            assert!(deadline[t.0] <= 25.0 + 1e-9);
            assert!(deadline[t.0] - release[t.0] + 1e-9 >= graph.cost(t));
        }
    }

    #[test]
    fn eta_of_the_paper_star_schedule() {
        let (graph, result, _) = paper_result();
        // The S* critical chain is t2 -> t4 -> t5 through the comm delay
        // (4 + 3 + 2 + 3 + 5 = wait) — compute: the makespan path ends at
        // t5's finish 19; t5 starts at 14 because of t4's finish 11 + 3; t4
        // starts at 9 because of t1's finish 6 + 3; t1 starts at 0.
        // So the critical chain is t1 -> t4 -> t5: 3 tasks.
        assert_eq!(eta_of_star_schedule(&graph, &result), 3);
    }

    #[test]
    fn eta_of_empty_graph_is_zero() {
        let graph = rtds_graph::TaskGraph::new();
        let processors = vec![ProcessorSpec::with_surplus(1.0)];
        let input = MapperInput::new(&graph, 0.0, &processors, 0.0);
        let result = map_dag(&input).unwrap();
        assert_eq!(eta_of_star_schedule(&graph, &result), 0);
    }

    #[test]
    fn case_ii_boundary_window_equal_to_makespan() {
        let (graph, result, processors) = paper_result();
        // Window exactly M = 33: scale factor 1, adjusted values equal the
        // raw schedule's (releases recomputed via eq. 5 may exceed the raw
        // start because eq. 5 charges the comm delay even when the schedule
        // absorbed it in processor idle time — they must stay feasible).
        let outcome = adjust_mapping(
            &graph,
            &result,
            0.0,
            33.0,
            &processors,
            LaxityDispatch::Uniform,
        );
        let AdjustOutcome::Adjusted { case, deadline, .. } = outcome else {
            panic!("must adjust");
        };
        assert_eq!(case, AdjustCase::ScaledByWindow);
        for t in graph.task_ids() {
            assert!((deadline[t.0] - result.finish[t.0]).abs() < 1e-9);
        }
    }
}
