//! # rtds-net — the communication network substrate of the RTDS paper
//!
//! The paper assumes (§2) an *arbitrary connected graph* of sites joined by
//! bidirectional communication links. Each site knows the delay of its
//! adjacent links; the delays need not satisfy the triangle inequality; the
//! links are faithful, loss-less and order-preserving, and the number of
//! sites is unknown (the network may be "arbitrarily wide").
//!
//! This crate provides:
//!
//! * [`Network`] — the weighted site graph with structural queries,
//! * [`generators`] — topology families (rings, grids, tori, hypercubes,
//!   random geometric graphs, connected Erdős–Rényi, Barabási–Albert,
//!   random trees, stars, complete graphs) with configurable delay
//!   distributions,
//! * [`dijkstra`] — reference shortest paths, eccentricities and diameters
//!   used to validate the distributed algorithm,
//! * [`routing`] — the `<destination, distance, next hop>` routing tables of
//!   §7.1,
//! * [`bellman_ford`] — the *interrupted* phase-synchronous distributed
//!   All-Pairs Shortest Paths algorithm of §7.2 (Bertsekas–Gallager style),
//! * [`sphere`] — hop-bounded sphere extraction: the structural core of the
//!   Potential Computing Sphere.

pub mod bellman_ford;
pub mod dijkstra;
pub mod generators;
pub mod routing;
pub mod sphere;
pub mod topology;

pub use bellman_ford::{phased_apsp, PhasedApspResult};
pub use dijkstra::{all_pairs_shortest_paths, shortest_paths, ShortestPaths};
pub use generators::DelayDistribution;
pub use routing::{RouteEntry, RoutingTable};
pub use sphere::Sphere;
pub use topology::{Network, SiteId};
