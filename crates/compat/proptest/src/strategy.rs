//! The [`Strategy`] trait and the combinators the RTDS suites use.

use rand::rngs::StdRng;
use rand::Rng;

/// A source of random values of one type. Unlike real proptest there is no
/// value tree and no shrinking: a strategy is just a deterministic sampler
/// over the test runner's RNG.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// A boxed strategy, the element type of [`Union`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// Boxes a strategy; used by `prop_oneof!` so all branches unify.
pub fn boxed<S>(strategy: S) -> BoxedStrategy<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !variants.is_empty(),
            "prop_oneof! needs at least one variant"
        );
        Union { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.variants.len());
        self.variants[i].sample(rng)
    }
}

impl<T> Strategy for core::ops::Range<T>
where
    T: Clone,
    core::ops::Range<T>: rand::SampleRange<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T> Strategy for core::ops::RangeInclusive<T>
where
    T: Clone,
    core::ops::RangeInclusive<T>: rand::SampleRange<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
