//! The interrupted distributed All-Pairs Shortest Paths algorithm of §7.
//!
//! The paper adapts the Bertsekas–Gallager distributed asynchronous
//! Bellman–Ford algorithm by (a) organising it into logical *phases* — one
//! phase is "send your routing table to every neighbor, then receive all your
//! neighbors' tables" — and (b) *interrupting* it after a fixed number of
//! phases to avoid flooding an arbitrarily wide network.
//!
//! After `p` phases every site's routing table contains, for every
//! destination, the minimum delay achievable over paths of at most `p + 1`
//! links (phase 0 being the initial table that already knows the direct
//! neighbors). Stopping after `2h` phases therefore guarantees that every
//! member of the Potential Computing Sphere of radius `h` rooted at `k` knows
//! a minimum-delay route (within the `2h`-hop horizon) to every other member
//! of that sphere — which is exactly the property §7.2 asks for.
//!
//! This module is the *pure, synchronous-round* reference implementation.
//! The message-level protocol driven by the discrete-event simulator lives in
//! `rtds-core::pcs` and is tested for equivalence against this one.

use crate::routing::RoutingTable;
use crate::topology::Network;

/// Outcome of the phased APSP run.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasedApspResult {
    /// One routing table per site.
    pub tables: Vec<RoutingTable>,
    /// Number of phases actually executed (may be lower than requested when
    /// the algorithm converged early — no table changed in a phase).
    pub phases_run: usize,
    /// Total number of routing-update messages a real execution would have
    /// exchanged: one message per (site, neighbor) pair per executed phase,
    /// counting only sites whose table changed in the previous phase (the
    /// §7.1 "updates are sent whenever entries change" rule).
    pub messages: usize,
}

/// Runs the phase-synchronous interrupted Bellman–Ford for `phases` phases.
///
/// Phase semantics follow §7.2: in each phase every site whose table changed
/// (or every site, in the very first phase) sends its current table to all its
/// neighbors, and every site then merges everything it received. The
/// algorithm stops early if a phase changes no table at all.
pub fn phased_apsp(net: &Network, phases: usize) -> PhasedApspResult {
    let n = net.site_count();
    let mut tables: Vec<RoutingTable> = net
        .sites()
        .map(|s| RoutingTable::initial(s, net.neighbors(s)))
        .collect();
    let mut dirty = vec![true; n];
    let mut messages = 0usize;
    let mut phases_run = 0usize;

    for _ in 0..phases {
        // Send step: snapshot the tables of the sites that will transmit.
        let snapshots: Vec<Option<Vec<crate::routing::RouteEntry>>> = (0..n)
            .map(|i| {
                if dirty[i] {
                    Some(tables[i].lines())
                } else {
                    None
                }
            })
            .collect();
        if snapshots.iter().all(|s| s.is_none()) {
            break;
        }
        phases_run += 1;
        let mut next_dirty = vec![false; n];
        // Receive step: every site merges the tables its neighbors sent.
        for receiver in net.sites() {
            for &(sender, link_delay) in net.neighbors(receiver) {
                if let Some(lines) = &snapshots[sender.0] {
                    messages += 1;
                    if tables[receiver.0].merge_from_neighbor(sender, link_delay, lines) {
                        next_dirty[receiver.0] = true;
                    }
                }
            }
        }
        dirty = next_dirty;
    }

    PhasedApspResult {
        tables,
        phases_run,
        messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::{hop_limited_distance, shortest_paths};
    use crate::generators::{erdos_renyi_connected, line, ring, DelayDistribution};
    use crate::topology::SiteId;

    #[test]
    fn converges_to_dijkstra_on_small_networks() {
        let net = erdos_renyi_connected(
            20,
            0.15,
            DelayDistribution::Uniform { min: 1.0, max: 5.0 },
            3,
        );
        // Enough phases to fully converge.
        let result = phased_apsp(&net, 64);
        for s in net.sites() {
            let sp = shortest_paths(&net, s);
            for d in net.sites() {
                let table_dist = result.tables[s.0].distance(d).unwrap();
                assert!(
                    (table_dist - sp.dist[d.0]).abs() < 1e-9,
                    "site {s} dest {d}: {table_dist} vs {}",
                    sp.dist[d.0]
                );
            }
        }
    }

    #[test]
    fn interrupted_run_matches_hop_limited_distances() {
        // Delays violating the triangle inequality: multi-hop detours are
        // cheaper, so the hop budget matters.
        let mut net = Network::new(5);
        net.add_link(SiteId(0), SiteId(1), 1.0).unwrap();
        net.add_link(SiteId(1), SiteId(2), 1.0).unwrap();
        net.add_link(SiteId(2), SiteId(3), 1.0).unwrap();
        net.add_link(SiteId(3), SiteId(4), 1.0).unwrap();
        net.add_link(SiteId(0), SiteId(4), 10.0).unwrap();
        for phases in 0..5 {
            let result = phased_apsp(&net, phases);
            // After `p` phases, routes use at most p + 1 links.
            let limit = phases + 1;
            for s in net.sites() {
                let reference = hop_limited_distance(&net, s, limit);
                for d in net.sites() {
                    let via_table = result.tables[s.0].distance(d).unwrap_or(f64::INFINITY);
                    assert!(
                        (via_table - reference[d.0]).abs() < 1e-9
                            || (via_table.is_infinite() && reference[d.0].is_infinite()),
                        "phases {phases}, {s} -> {d}: {via_table} vs {}",
                        reference[d.0]
                    );
                }
            }
        }
    }

    #[test]
    fn zero_phases_keeps_initial_tables() {
        let net = ring(6, DelayDistribution::Constant(1.0), 0);
        let result = phased_apsp(&net, 0);
        assert_eq!(result.phases_run, 0);
        assert_eq!(result.messages, 0);
        for s in net.sites() {
            // Only itself and its two ring neighbors.
            assert_eq!(result.tables[s.0].len(), 3);
        }
    }

    #[test]
    fn early_termination_when_converged() {
        let net = line(4, DelayDistribution::Constant(1.0), 0);
        let result = phased_apsp(&net, 100);
        // A 4-site line converges in at most 3 phases; allow one extra phase
        // for the final no-change detection round.
        assert!(result.phases_run <= 4, "ran {} phases", result.phases_run);
        // All distances known afterwards.
        for s in net.sites() {
            assert_eq!(result.tables[s.0].len(), 4);
        }
    }

    #[test]
    fn message_count_grows_with_phases() {
        let net = ring(8, DelayDistribution::Constant(1.0), 0);
        let one = phased_apsp(&net, 1);
        let two = phased_apsp(&net, 2);
        assert!(one.messages > 0);
        assert!(two.messages > one.messages);
        // Phase 1: every site is dirty, every site sends to 2 neighbors.
        assert_eq!(one.messages, 16);
    }

    #[test]
    fn hop_counts_respect_phase_budget() {
        let net = line(10, DelayDistribution::Constant(1.0), 0);
        let result = phased_apsp(&net, 3);
        for s in net.sites() {
            for e in result.tables[s.0].entries() {
                assert!(e.hops <= 4, "entry {e:?} exceeds the 4-hop horizon");
            }
        }
    }
}
