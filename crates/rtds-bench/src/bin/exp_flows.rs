//! `exp_flows` — E7: the shared-bandwidth flow plane under contention.
//!
//! Runs the registry's flow scenarios (`incast-storm`,
//! `bandwidth-starved-sphere`, `transfer-vs-compute`), where every §11
//! permutation ships its input data through `rtds-flow`'s max-min
//! fair-share model instead of a delay-only send, and reports the
//! transfer-time/flow-rate/link-utilization telemetry per scenario. The
//! whole report (`rtds-exp-flows/1`) is deterministic — a pure function of
//! `--seed` — so two runs with the same flags are byte-identical.
//!
//! ```text
//! exp_flows [--scenario <name|all>] [--seed <u64>] [--seeds <n>]
//!           [--json <path>] [--assert-contention]
//! ```
//!
//! `--assert-contention` is the CI tripwire for the model itself: under
//! `incast-storm` (six-job bursts funnelled at one hotspot of a line
//! network) the p99 transfer time must land **strictly above** the
//! uncontended analytic bound `max(shipped volume) / min(link bandwidth)`.
//! Any single flow alone in the network finishes within that bound, so
//! exceeding it proves transfers actually share bandwidth — if the flow
//! plane ever degraded to per-flow full capacity, this exits nonzero.

use rtds_bench::{write_json_report, ExpArgs};
use rtds_scenarios::{builtin_scenarios, find_scenario, run_cell, CellReport, Json, Scenario};
use rtds_sim::metrics_json::summary_to_json;
use rtds_sim::Histogram;

/// Identifier of the report schema (bump on breaking field changes).
const FLOWS_SCHEMA: &str = "rtds-exp-flows/1";

/// Deterministic flow telemetry of one scenario, aggregated over its seeds.
struct ScenarioFlows {
    scenario: Scenario,
    cells: Vec<CellReport>,
    transfer_time: Histogram,
    flow_rate: Histogram,
    link_utilization: Histogram,
    task_data_volume: Histogram,
    /// Smallest link capacity over every seed's built network.
    min_bandwidth: f64,
}

impl ScenarioFlows {
    fn run(scenario: Scenario, seeds: &[u64]) -> Self {
        let mut out = ScenarioFlows {
            cells: Vec::new(),
            transfer_time: Histogram::new(),
            flow_rate: Histogram::new(),
            link_utilization: Histogram::new(),
            task_data_volume: Histogram::new(),
            min_bandwidth: f64::INFINITY,
            scenario,
        };
        for &seed in seeds {
            let network = out.scenario.build_network(seed);
            for (a, b, _) in network.links().collect::<Vec<_>>() {
                let capacity = network.link_bandwidth(a, b).unwrap_or(f64::INFINITY);
                out.min_bandwidth = out.min_bandwidth.min(capacity);
            }
            let cell = run_cell(&out.scenario, seed);
            out.transfer_time
                .merge(&cell.metrics.histogram("transfer_time"));
            out.flow_rate.merge(&cell.metrics.histogram("flow_rate"));
            out.link_utilization
                .merge(&cell.metrics.histogram("link_utilization"));
            out.task_data_volume
                .merge(&cell.metrics.histogram("task_data_volume"));
            out.cells.push(cell);
        }
        out
    }

    /// The analytic bound no *uncontended* transfer can exceed: shipping
    /// even the largest volume across even the slowest link, alone, takes
    /// at most `max_volume / min_bandwidth` (a multi-hop path is pinned at
    /// its bottleneck link). A p99 transfer time above it proves flows
    /// were sharing bandwidth.
    fn uncontended_bound(&self) -> f64 {
        self.task_data_volume.max() / self.min_bandwidth
    }

    fn p99_transfer_time(&self) -> f64 {
        self.transfer_time.quantile(0.99)
    }

    fn contended(&self) -> bool {
        !self.transfer_time.is_empty() && self.p99_transfer_time() > self.uncontended_bound()
    }

    fn counter(&self, name: &str) -> u64 {
        self.cells.iter().map(|c| c.metrics.counter(name)).sum()
    }

    fn to_json(&self) -> Json {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                Json::object(vec![
                    ("seed", Json::UInt(c.seed)),
                    ("submitted", Json::UInt(c.submitted)),
                    ("accepted_locally", Json::UInt(c.accepted_locally)),
                    ("accepted_distributed", Json::UInt(c.accepted_distributed)),
                    ("rejected", Json::UInt(c.rejected)),
                    ("deadline_misses", Json::UInt(c.deadline_misses)),
                    ("guarantee_ratio", Json::Num(c.guarantee_ratio)),
                    (
                        "flows_started",
                        Json::UInt(c.metrics.counter("sim_flow_started")),
                    ),
                    (
                        "flows_finished",
                        Json::UInt(c.metrics.counter("sim_flow_finished")),
                    ),
                    (
                        "stale_finishes",
                        Json::UInt(c.metrics.counter("sim_flow_stale_finish")),
                    ),
                    (
                        "task_data_sent",
                        Json::UInt(c.metrics.counter("task_data_sent")),
                    ),
                    (
                        "task_data_received",
                        Json::UInt(c.metrics.counter("task_data_received")),
                    ),
                    ("finished_at", Json::Num(c.finished_at)),
                    ("events_processed", Json::UInt(c.events_processed)),
                ])
            })
            .collect();
        Json::object(vec![
            ("name", Json::str(&self.scenario.name)),
            ("description", Json::str(&self.scenario.description)),
            ("cells", Json::Array(cells)),
            (
                "transfer_time",
                summary_to_json(&self.transfer_time.summary()),
            ),
            ("flow_rate", summary_to_json(&self.flow_rate.summary())),
            (
                "link_utilization",
                summary_to_json(&self.link_utilization.summary()),
            ),
            (
                "task_data_volume",
                summary_to_json(&self.task_data_volume.summary()),
            ),
            (
                "contention",
                Json::object(vec![
                    ("max_volume", Json::Num(self.task_data_volume.max())),
                    ("min_bandwidth", Json::Num(self.min_bandwidth)),
                    ("uncontended_bound", Json::Num(self.uncontended_bound())),
                    ("p99_transfer_time", Json::Num(self.p99_transfer_time())),
                    ("contended", Json::Bool(self.contended())),
                ]),
            ),
        ])
    }
}

fn main() {
    let args = ExpArgs::parse(&["scenario", "seeds"], &["assert-contention"]);
    let flow_scenarios: Vec<Scenario> = builtin_scenarios()
        .into_iter()
        .filter(|s| s.config.flow_transfers)
        .collect();
    let selected: Vec<Scenario> = match args.value_of("scenario") {
        None | Some("all") => flow_scenarios,
        Some(name) => match find_scenario(name).filter(|s| s.config.flow_transfers) {
            Some(s) => vec![s],
            None => {
                eprintln!("unknown flow scenario {name:?}");
                std::process::exit(2);
            }
        },
    };

    let base_seed = args.seed(1);
    let seed_count = args.usize_of("seeds", 3).max(1);
    let seeds: Vec<u64> = (0..seed_count as u64).map(|i| base_seed + i).collect();

    println!(
        "== E7: flow plane under contention ({} scenario(s) x {} seed(s) from {}) ==",
        selected.len(),
        seeds.len(),
        base_seed
    );
    println!();
    println!(
        "{:<26} {:>6} {:>7} {:>7} {:>10} {:>10} {:>10}",
        "scenario", "ratio", "flows", "data", "p99 xfer", "bound", "contended"
    );

    let mut results = Vec::new();
    for scenario in selected {
        let result = ScenarioFlows::run(scenario, &seeds);
        let submitted: u64 = result.cells.iter().map(|c| c.submitted).sum();
        let accepted: u64 = result
            .cells
            .iter()
            .map(|c| c.accepted_locally + c.accepted_distributed)
            .sum();
        println!(
            "{:<26} {:>6.3} {:>7} {:>7} {:>10.2} {:>10.2} {:>10}",
            result.scenario.name,
            accepted as f64 / submitted.max(1) as f64,
            result.counter("sim_flow_finished"),
            result.counter("task_data_sent"),
            result.p99_transfer_time(),
            result.uncontended_bound(),
            result.contended(),
        );
        for cell in &result.cells {
            assert_eq!(
                cell.deadline_misses, 0,
                "accepted jobs must never miss deadlines, even under contention"
            );
        }
        assert_eq!(
            result.counter("task_data_sent"),
            result.counter("task_data_received"),
            "every shipped input must arrive (flow scenarios lose no messages)"
        );
        results.push(result);
    }
    println!();
    println!("The bound is max(shipped volume) / min(link bandwidth): the worst time any");
    println!("transfer could take with the network to itself. p99 above it = real sharing.");

    if let Some(path) = args.json_path() {
        let report = Json::object(vec![
            ("schema", Json::str(FLOWS_SCHEMA)),
            ("seed", Json::UInt(base_seed)),
            (
                "seeds",
                Json::Array(seeds.iter().map(|&s| Json::UInt(s)).collect()),
            ),
            (
                "scenarios",
                Json::Array(results.iter().map(ScenarioFlows::to_json).collect()),
            ),
        ]);
        write_json_report(path, &report.render());
    }

    if args.has("assert-contention") {
        let incast = results
            .iter()
            .find(|r| r.scenario.name == "incast-storm")
            .unwrap_or_else(|| {
                eprintln!("--assert-contention needs incast-storm in the selection");
                std::process::exit(2);
            });
        if incast.contended() {
            println!();
            println!(
                "contention check: incast-storm p99 {:.2} > uncontended bound {:.2} — flows share bandwidth",
                incast.p99_transfer_time(),
                incast.uncontended_bound()
            );
        } else {
            eprintln!(
                "contention check FAILED: incast-storm p99 {:.2} <= bound {:.2} — transfers look uncontended",
                incast.p99_transfer_time(),
                incast.uncontended_bound()
            );
            std::process::exit(1);
        }
    }
}
