//! The sharded, seed-deterministic parallel sweep runner.
//!
//! A sweep is the cross product `scenarios × seeds`. Every cell is one
//! fully deterministic single-threaded simulation; the runner shards cells
//! round-robin over a fixed number of worker threads and reassembles results
//! in input order, so the aggregate report — including its JSON rendering —
//! is byte-identical for any thread count (generalising
//! `rtds_bench::parallel_sweep`, which spawned one thread per input).

use crate::json::Json;
use crate::spec::{mix_seed, Scenario, StreamRecipe};
use rtds_core::{JobOutcomeKind, RtdsSystem, RunReport, StreamOptions, StreamReport};
use rtds_sim::metrics_json::metrics_to_json;
use rtds_sim::trace::{render_jsonl, Value as TraceValue};
use rtds_sim::{MetricsRegistry, Trace};
use rtds_workload::{reader_from_string, record_to_string, JobFactory, OpenLoopSource};

/// Runs `work` over `inputs` on `threads` worker threads (round-robin
/// sharding, one scoped thread per shard) and returns the results in input
/// order. With `threads <= 1` everything runs on the calling thread.
pub fn parallel_sweep_sharded<I, O, F>(inputs: Vec<I>, threads: usize, work: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let threads = threads.max(1).min(inputs.len().max(1));
    if threads <= 1 {
        return inputs.into_iter().map(work).collect();
    }
    let indexed: Vec<(usize, I)> = inputs.into_iter().enumerate().collect();
    let mut shards: Vec<Vec<(usize, I)>> = (0..threads).map(|_| Vec::new()).collect();
    for (index, input) in indexed {
        shards[index % threads].push((index, input));
    }
    let mut results: Vec<Option<O>> = Vec::new();
    let total: usize = shards.iter().map(Vec::len).sum();
    results.resize_with(total, || None);
    let work = &work;
    let outputs: Vec<Vec<(usize, O)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|shard| {
                scope.spawn(move || {
                    shard
                        .into_iter()
                        .map(|(index, input)| (index, work(input)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    for shard in outputs {
        for (index, output) in shard {
            results[index] = Some(output);
        }
    }
    results
        .into_iter()
        .map(|o| o.expect("every index filled"))
        .collect()
}

/// Configuration of one sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Sweep seeds; each `(scenario, seed)` pair is one cell.
    pub seeds: Vec<u64>,
    /// Worker threads (cells are sharded round-robin; the report does not
    /// depend on this).
    pub threads: usize,
}

impl SweepConfig {
    /// `count` consecutive seeds starting at `base`, on `threads` threads.
    pub fn new(base: u64, count: usize, threads: usize) -> Self {
        SweepConfig {
            seeds: (0..count as u64).map(|i| base + i).collect(),
            threads,
        }
    }
}

/// Metrics of one `(scenario, seed)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Scenario name.
    pub scenario: String,
    /// Sweep seed.
    pub seed: u64,
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs accepted by their arrival site.
    pub accepted_locally: u64,
    /// Jobs accepted after distribution.
    pub accepted_distributed: u64,
    /// Jobs rejected (or lost to faults).
    pub rejected: u64,
    /// Accepted jobs that missed their deadline (must stay zero).
    pub deadline_misses: u64,
    /// Guarantee ratio.
    pub guarantee_ratio: f64,
    /// Distribution messages per submitted job.
    pub messages_per_job: f64,
    /// Engine-level messages handed in for delivery.
    pub messages_sent: u64,
    /// Engine-level messages delivered.
    pub messages_delivered: u64,
    /// Mean slack (deadline minus completion) over accepted jobs.
    pub mean_slack: f64,
    /// Minimum slack over accepted jobs.
    pub min_slack: f64,
    /// Fault events applied by the engine.
    pub faults_injected: u64,
    /// Messages lost or dropped by fault injection (all causes).
    pub messages_lost: u64,
    /// Final simulated time.
    pub finished_at: f64,
    /// Events processed by the engine.
    pub events_processed: u64,
    /// Full telemetry of the cell run (latency/laxity histograms, protocol
    /// counters, streaming gauges). Deterministic per `(scenario, seed)`.
    pub metrics: MetricsRegistry,
}

impl CellReport {
    fn from_run(scenario: &str, seed: u64, report: &RunReport, events_processed: u64) -> Self {
        let mut slack_sum = 0.0;
        let mut slack_min = f64::INFINITY;
        let mut accepted = 0u64;
        for job in &report.jobs {
            if matches!(
                job.outcome,
                JobOutcomeKind::AcceptedLocally | JobOutcomeKind::AcceptedDistributed
            ) {
                if let Some(completion) = job.completion {
                    let slack = job.deadline - completion;
                    slack_sum += slack;
                    slack_min = slack_min.min(slack);
                    accepted += 1;
                }
            }
        }
        let (mean_slack, min_slack) = if accepted > 0 {
            (slack_sum / accepted as f64, slack_min)
        } else {
            (0.0, 0.0)
        };
        let stats = &report.stats;
        let messages_lost = stats.named("sim_lost_random")
            + stats.named("sim_lost_link_down")
            + stats.named("sim_lost_unreachable")
            + stats.named("sim_dropped_site_down")
            + stats.named("sim_dropped_arrival_site_down")
            + stats.named("sim_dropped_timer_site_down");
        CellReport {
            scenario: scenario.to_string(),
            seed,
            submitted: report.jobs_submitted,
            accepted_locally: report.guarantee.accepted_locally,
            accepted_distributed: report.guarantee.accepted_distributed,
            rejected: report.jobs_submitted
                - report.guarantee.accepted_locally
                - report.guarantee.accepted_distributed,
            deadline_misses: report.deadline_misses(),
            guarantee_ratio: report.guarantee_ratio(),
            messages_per_job: report.messages_per_job,
            messages_sent: stats.messages_sent,
            messages_delivered: stats.messages_delivered,
            mean_slack,
            min_slack,
            faults_injected: stats.named("sim_fault_events"),
            messages_lost,
            finished_at: report.finished_at,
            events_processed,
            metrics: report.metrics.clone(),
        }
    }

    fn from_stream(scenario: &str, seed: u64, report: &StreamReport) -> Self {
        let stats = &report.stats;
        let messages_lost = stats.named("sim_lost_random")
            + stats.named("sim_lost_link_down")
            + stats.named("sim_lost_unreachable")
            + stats.named("sim_dropped_site_down")
            + stats.named("sim_dropped_arrival_site_down")
            + stats.named("sim_dropped_timer_site_down");
        CellReport {
            scenario: scenario.to_string(),
            seed,
            submitted: report.guarantee.submitted,
            accepted_locally: report.guarantee.accepted_locally,
            accepted_distributed: report.guarantee.accepted_distributed,
            rejected: report.guarantee.rejected,
            deadline_misses: report.deadline_misses(),
            guarantee_ratio: report.guarantee_ratio(),
            messages_per_job: report.messages_per_job,
            messages_sent: stats.messages_sent,
            messages_delivered: stats.messages_delivered,
            mean_slack: report.mean_slack,
            min_slack: report.min_slack,
            faults_injected: stats.named("sim_fault_events"),
            messages_lost,
            finished_at: report.finished_at,
            events_processed: report.events_processed,
            metrics: report.metrics.clone(),
        }
    }

    fn to_json(&self) -> Json {
        Json::object(vec![
            ("seed", Json::UInt(self.seed)),
            ("submitted", Json::UInt(self.submitted)),
            ("accepted_locally", Json::UInt(self.accepted_locally)),
            (
                "accepted_distributed",
                Json::UInt(self.accepted_distributed),
            ),
            ("rejected", Json::UInt(self.rejected)),
            ("deadline_misses", Json::UInt(self.deadline_misses)),
            ("guarantee_ratio", Json::Num(self.guarantee_ratio)),
            ("messages_per_job", Json::Num(self.messages_per_job)),
            ("messages_sent", Json::UInt(self.messages_sent)),
            ("messages_delivered", Json::UInt(self.messages_delivered)),
            ("mean_slack", Json::Num(self.mean_slack)),
            ("min_slack", Json::Num(self.min_slack)),
            ("faults_injected", Json::UInt(self.faults_injected)),
            ("messages_lost", Json::UInt(self.messages_lost)),
            ("finished_at", Json::Num(self.finished_at)),
            ("events_processed", Json::UInt(self.events_processed)),
            ("metrics", metrics_to_json(&self.metrics, false)),
        ])
    }
}

/// Per-scenario aggregate over all sweep seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSummary {
    /// Scenario name.
    pub name: String,
    /// Scenario description.
    pub description: String,
    /// One cell per seed, in seed order.
    pub cells: Vec<CellReport>,
    /// Mean guarantee ratio across seeds.
    pub mean_guarantee_ratio: f64,
    /// Minimum guarantee ratio across seeds.
    pub min_guarantee_ratio: f64,
    /// Maximum guarantee ratio across seeds.
    pub max_guarantee_ratio: f64,
    /// Mean distribution messages per job across seeds.
    pub mean_messages_per_job: f64,
    /// Mean slack of accepted jobs across seeds.
    pub mean_slack: f64,
    /// Total deadline misses across seeds (must stay zero).
    pub total_deadline_misses: u64,
    /// Total fault events across seeds.
    pub total_faults_injected: u64,
    /// Total lost/dropped messages across seeds.
    pub total_messages_lost: u64,
    /// Scenario-scoped telemetry: every cell's registry merged. The merge
    /// is associative and commutative, so this aggregate — and its JSON
    /// rendering — is identical for any sweep thread count.
    pub metrics: MetricsRegistry,
}

impl ScenarioSummary {
    fn aggregate(name: &str, description: &str, cells: Vec<CellReport>) -> Self {
        let n = cells.len().max(1) as f64;
        let mean = |f: fn(&CellReport) -> f64| cells.iter().map(f).sum::<f64>() / n;
        let mean_guarantee_ratio = mean(|c| c.guarantee_ratio);
        let min_guarantee_ratio = cells
            .iter()
            .map(|c| c.guarantee_ratio)
            .fold(f64::INFINITY, f64::min);
        let max_guarantee_ratio = cells
            .iter()
            .map(|c| c.guarantee_ratio)
            .fold(f64::NEG_INFINITY, f64::max);
        ScenarioSummary {
            name: name.to_string(),
            description: description.to_string(),
            mean_guarantee_ratio,
            min_guarantee_ratio: if min_guarantee_ratio.is_finite() {
                min_guarantee_ratio
            } else {
                0.0
            },
            max_guarantee_ratio: if max_guarantee_ratio.is_finite() {
                max_guarantee_ratio
            } else {
                0.0
            },
            mean_messages_per_job: mean(|c| c.messages_per_job),
            mean_slack: mean(|c| c.mean_slack),
            total_deadline_misses: cells.iter().map(|c| c.deadline_misses).sum(),
            total_faults_injected: cells.iter().map(|c| c.faults_injected).sum(),
            total_messages_lost: cells.iter().map(|c| c.messages_lost).sum(),
            metrics: {
                let mut merged = MetricsRegistry::new();
                for cell in &cells {
                    merged.merge(&cell.metrics);
                }
                merged
            },
            cells,
        }
    }

    fn to_json(&self) -> Json {
        Json::object(vec![
            ("name", Json::str(&self.name)),
            ("description", Json::str(&self.description)),
            ("mean_guarantee_ratio", Json::Num(self.mean_guarantee_ratio)),
            ("min_guarantee_ratio", Json::Num(self.min_guarantee_ratio)),
            ("max_guarantee_ratio", Json::Num(self.max_guarantee_ratio)),
            (
                "mean_messages_per_job",
                Json::Num(self.mean_messages_per_job),
            ),
            ("mean_slack", Json::Num(self.mean_slack)),
            (
                "total_deadline_misses",
                Json::UInt(self.total_deadline_misses),
            ),
            (
                "total_faults_injected",
                Json::UInt(self.total_faults_injected),
            ),
            ("total_messages_lost", Json::UInt(self.total_messages_lost)),
            ("metrics", metrics_to_json(&self.metrics, false)),
            (
                "cells",
                Json::Array(self.cells.iter().map(CellReport::to_json).collect()),
            ),
        ])
    }
}

/// The aggregate report of one sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Sweep seeds, in input order.
    pub seeds: Vec<u64>,
    /// One summary per scenario, in input order.
    pub scenarios: Vec<ScenarioSummary>,
}

impl SweepReport {
    /// Renders the report as deterministic JSON (byte-identical across runs
    /// and thread counts for the same scenarios and seeds).
    pub fn to_json(&self) -> String {
        Json::object(vec![
            (
                "seeds",
                Json::Array(self.seeds.iter().map(|s| Json::UInt(*s)).collect()),
            ),
            (
                "scenarios",
                Json::Array(
                    self.scenarios
                        .iter()
                        .map(ScenarioSummary::to_json)
                        .collect(),
                ),
            ),
        ])
        .render()
    }

    /// Summary lookup by scenario name.
    pub fn scenario(&self, name: &str) -> Option<&ScenarioSummary> {
        self.scenarios.iter().find(|s| s.name == name)
    }
}

/// Runs one `(scenario, seed)` cell: builds the network and workload,
/// expands and schedules the perturbation plan, runs to quiescence and
/// extracts the cell metrics. Scenarios with a [`StreamRecipe`] run through
/// the bounded-memory streaming path (pulling arrivals on demand), the rest
/// through the classic batch path; both are bit-deterministic per seed.
pub fn run_cell(scenario: &Scenario, seed: u64) -> CellReport {
    run_cell_with(scenario, seed, None).0
}

/// Runs one cell with a bounded ring trace installed and returns the cell
/// report plus the retained protocol events rendered as an `rtds-trace/1`
/// JSONL document (the header carries the scenario name and seed, so the
/// file is self-contained). Byte-deterministic per `(scenario, seed,
/// capacity)`, independent of sweep thread counts — the span ids are
/// derived, never allocated.
pub fn run_cell_traced(scenario: &Scenario, seed: u64, capacity: usize) -> (CellReport, String) {
    let (cell, rendered) = run_cell_with(scenario, seed, Some(Trace::ring(capacity)));
    (cell, rendered.expect("trace was installed"))
}

fn run_cell_with(
    scenario: &Scenario,
    seed: u64,
    trace: Option<Trace>,
) -> (CellReport, Option<String>) {
    let network = scenario.build_network(seed);
    let faults = scenario.perturbations.expand(&network, mix_seed(seed, 3));
    let site_count = network.site_count();
    let batch_jobs = match scenario.stream {
        None => Some(scenario.build_workload(&network, seed)),
        Some(_) => None,
    };
    let mut system = RtdsSystem::with_resources(
        network,
        scenario.config,
        mix_seed(seed, 5),
        scenario.resources.bundles(site_count),
    );
    let want_trace = trace.is_some();
    if let Some(trace) = trace {
        system.set_trace(trace);
    }
    system.set_fault_seed(mix_seed(seed, 4));
    system.set_max_events(scenario.max_events);
    for (time, fault) in faults {
        system.schedule_fault(time.max(0.0), fault);
    }
    let cell = match scenario.stream {
        None => {
            system.submit_workload(batch_jobs.expect("built above"));
            let report = system.run();
            CellReport::from_run(&scenario.name, seed, &report, system.events_processed())
        }
        Some(stream) => {
            let report = run_stream_cell(scenario, &stream, &mut system, site_count, seed);
            CellReport::from_stream(&scenario.name, seed, &report)
        }
    };
    let rendered = want_trace.then(|| {
        render_jsonl(
            &[
                ("scenario", TraceValue::Str(scenario.name.clone())),
                ("seed", TraceValue::U64(seed)),
            ],
            &system.trace().events(),
        )
    });
    (cell, rendered)
}

/// Streams one cell's workload through the system. With `replay` set, the
/// source is first drained into an in-memory JSONL trace which is then
/// replayed — every such cell is a full record → replay round-trip.
fn run_stream_cell(
    scenario: &Scenario,
    stream: &StreamRecipe,
    system: &mut RtdsSystem,
    site_count: usize,
    seed: u64,
) -> StreamReport {
    let source: OpenLoopSource = stream.open_loop.build(site_count, mix_seed(seed, 2));
    let template = scenario.job_template();
    let options = StreamOptions::default();
    if stream.replay {
        let mut live = source;
        let trace = record_to_string(
            &mut live,
            &[
                ("scenario", Json::str(&scenario.name)),
                ("seed", Json::UInt(seed)),
                ("template", template.describe()),
            ],
        );
        let mut factory = JobFactory::new(reader_from_string(trace), template);
        system.run_streaming(&mut factory, &options)
    } else {
        let mut factory = JobFactory::new(source, template);
        system.run_streaming(&mut factory, &options)
    }
}

/// Runs the full sweep `scenarios × config.seeds` on `config.threads`
/// worker threads and aggregates per-scenario summaries.
pub fn run_sweep(scenarios: &[Scenario], config: &SweepConfig) -> SweepReport {
    let cells: Vec<(usize, u64)> = (0..scenarios.len())
        .flat_map(|i| config.seeds.iter().map(move |&seed| (i, seed)))
        .collect();
    let mut reports = parallel_sweep_sharded(cells, config.threads, |(index, seed)| {
        run_cell(&scenarios[index], seed)
    })
    .into_iter();
    // Results come back in input order (scenario-major), so each scenario's
    // cells are the next `seeds.len()` reports — name collisions between
    // scenarios cannot cross-contaminate summaries.
    let mut summaries = Vec::new();
    for scenario in scenarios {
        let cells: Vec<CellReport> = reports.by_ref().take(config.seeds.len()).collect();
        summaries.push(ScenarioSummary::aggregate(
            &scenario.name,
            &scenario.description,
            cells,
        ));
    }
    SweepReport {
        seeds: config.seeds.clone(),
        scenarios: summaries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::find_scenario;

    #[test]
    fn sharded_sweep_preserves_order_for_any_thread_count() {
        let inputs: Vec<u64> = (0..23).collect();
        let expected: Vec<u64> = inputs.iter().map(|x| x * 3).collect();
        for threads in [1, 2, 4, 7, 64] {
            let out = parallel_sweep_sharded(inputs.clone(), threads, |x| x * 3);
            assert_eq!(out, expected, "threads = {threads}");
        }
        let empty: Vec<u64> = parallel_sweep_sharded(Vec::<u64>::new(), 4, |x| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn cell_runs_are_reproducible() {
        let scenario = find_scenario("paper-baseline").unwrap();
        let a = run_cell(&scenario, 11);
        let b = run_cell(&scenario, 11);
        assert_eq!(a, b);
        assert!(a.submitted > 0);
        assert_eq!(a.deadline_misses, 0);
        let c = run_cell(&scenario, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn sweep_report_is_thread_count_invariant() {
        let scenarios = vec![
            find_scenario("paper-baseline").unwrap(),
            find_scenario("partition-and-heal").unwrap(),
        ];
        let single = run_sweep(&scenarios, &SweepConfig::new(1, 2, 1));
        let parallel = run_sweep(&scenarios, &SweepConfig::new(1, 2, 4));
        assert_eq!(single, parallel);
        assert_eq!(single.to_json(), parallel.to_json());
        assert_eq!(single.scenarios.len(), 2);
        assert!(single.scenario("paper-baseline").is_some());
        assert!(single.scenario("nope").is_none());
        for summary in &single.scenarios {
            assert_eq!(summary.cells.len(), 2);
            assert_eq!(summary.total_deadline_misses, 0);
            assert!(summary.mean_guarantee_ratio > 0.0);
            let json = single.to_json();
            assert!(json.contains(&summary.name));
        }
    }

    #[test]
    fn duplicate_scenario_names_do_not_cross_contaminate() {
        // A scenario swept against a mutated copy of itself (same name) must
        // keep exactly seeds.len() cells per summary.
        let base = find_scenario("paper-baseline").unwrap();
        let mut tweaked = base.clone();
        tweaked.workload.horizon = 120.0;
        let report = run_sweep(&[base, tweaked], &SweepConfig::new(1, 2, 2));
        assert_eq!(report.scenarios.len(), 2);
        for summary in &report.scenarios {
            assert_eq!(summary.cells.len(), 2);
        }
        // The shorter horizon admits fewer jobs, so the copies must differ.
        assert_ne!(
            report.scenarios[0].cells[0].submitted,
            report.scenarios[1].cells[0].submitted
        );
    }

    #[test]
    fn streaming_cells_run_and_are_reproducible() {
        for name in ["diurnal-wave", "pareto-burst", "replayed-trace"] {
            let scenario = find_scenario(name).unwrap();
            let a = run_cell(&scenario, 3);
            let b = run_cell(&scenario, 3);
            assert_eq!(a, b, "{name}");
            assert!(a.submitted > 0, "{name}");
            assert_eq!(a.deadline_misses, 0, "{name}");
            let c = run_cell(&scenario, 4);
            assert_ne!(a, c, "{name} ignores the seed");
        }
    }

    #[test]
    fn replaying_a_cell_reproduces_the_live_run_exactly() {
        // The same open-loop stream with and without the in-memory
        // record → replay round-trip must yield the identical cell report.
        let replayed = find_scenario("replayed-trace").unwrap();
        let mut live = replayed.clone();
        live.stream = live.stream.map(|s| StreamRecipe { replay: false, ..s });
        for seed in [1, 2, 9] {
            assert_eq!(
                run_cell(&replayed, seed),
                run_cell(&live, seed),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn flow_cells_ship_data_and_are_reproducible() {
        for name in [
            "incast-storm",
            "bandwidth-starved-sphere",
            "transfer-vs-compute",
        ] {
            let scenario = find_scenario(name).unwrap();
            let a = run_cell(&scenario, 5);
            let b = run_cell(&scenario, 5);
            assert_eq!(a, b, "{name}");
            assert!(a.submitted > 0, "{name}");
            assert_eq!(a.deadline_misses, 0, "{name}");
            // Input data actually travelled through the flow plane.
            assert!(a.metrics.counter("task_data_sent") > 0, "{name}");
            assert!(a.metrics.counter("sim_flow_finished") > 0, "{name}");
            assert!(!a.metrics.histogram("transfer_time").is_empty(), "{name}");
            let c = run_cell(&scenario, 6);
            assert_ne!(a, c, "{name} ignores the seed");
        }
    }

    #[test]
    fn zero_volume_flow_plane_reproduces_pre_flow_sweeps_byte_identically() {
        // Enabling the flow plane on a zero-volume workload must be a
        // perfect no-op: every pre-flow registry scenario, swept with edge
        // volumes forced to zero and transfers switched on, renders the
        // byte-identical report at 1, 2, and 4 worker threads.
        use crate::registry::builtin_scenarios;
        let mut baseline = Vec::new();
        let mut flowed = Vec::new();
        for scenario in builtin_scenarios() {
            if scenario.config.flow_transfers {
                continue;
            }
            let mut base = scenario.clone();
            base.workload.ccr = 0.0;
            let mut flow = base.clone();
            flow.config.data_volume_aware = true;
            flow.config.flow_transfers = true;
            baseline.push(base);
            flowed.push(flow);
        }
        assert!(baseline.len() >= 8, "registry shrank");
        let reference = run_sweep(&baseline, &SweepConfig::new(1, 1, 2));
        for threads in [1, 2, 4] {
            let flow = run_sweep(&flowed, &SweepConfig::new(1, 1, threads));
            assert_eq!(reference, flow, "threads = {threads}");
            assert_eq!(reference.to_json(), flow.to_json(), "threads = {threads}");
        }
        // The equivalence is not vacuous: the same scenarios with their
        // shipped volumes restored do move data through the flow plane.
        let probe = find_scenario("incast-storm").unwrap();
        assert!(run_cell(&probe, 1).metrics.counter("sim_flow_started") > 0);
    }

    #[test]
    fn faults_actually_fire_in_perturbed_cells() {
        let scenario = find_scenario("site-crash-wave").unwrap();
        let cell = run_cell(&scenario, 2);
        assert!(cell.faults_injected > 0);
        assert_eq!(cell.deadline_misses, 0);
    }
}
