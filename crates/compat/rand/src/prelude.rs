//! Convenience re-exports mirroring `rand::prelude`.

pub use crate::rngs::StdRng;
pub use crate::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
