//! The pluggable local scheduling policy.
//!
//! The paper leaves the local scheduler unspecified beyond the §5 insertion
//! idea; `rtds-core` and every baseline used to call the single-plan
//! primitives ([`crate::admission`], [`crate::feasibility`]) directly. This
//! module extracts that decision behind the [`Scheduler`] trait over a
//! multicore [`SiteResources`] bundle, with three implementations:
//!
//! * [`ProtocolScheduler`] — the paper's §5/§12 critical-path list
//!   scheduler, generalised to place each task on the core with the
//!   earliest fit. On the degenerate single-core bundle it *delegates
//!   verbatim* to [`admit_dag_locally`] and [`feasibility::satisfiable`],
//!   so every pre-multicore report stays byte-identical.
//! * [`HeftScheduler`] — HEFT-style list scheduling (Topcuoglu et al.):
//!   tasks ordered by communication-inclusive upward rank, each placed on
//!   the core minimising its earliest finish time (insertion-based EFT).
//! * [`LookaheadScheduler`] — the one-step lookahead variant: a task's core
//!   is chosen to minimise the worst earliest finish time of its *children*
//!   given the tentative placement (ties broken by own EFT, then core id).
//!
//! All three share the same mechanics (per-core [`SchedulePlan`]s, gang
//! fits for multi-core task demands, a memory ledger) via the concrete
//! [`SiteScheduler`], which is also what the protocol node stores — being a
//! plain enum-dispatched struct it stays `Clone + PartialEq` and snapshots
//! cleanly (`rtds-sched-snapshot/1`, encoded by `rtds-core`).

use crate::admission::{admit_dag_locally, priority_order};
use crate::feasibility::{self, TaskRequest};
use crate::interval::TimeInterval;
use crate::plan::{PlanError, Reservation, SchedulePlan};
use crate::resources::{SiteResources, TaskDemand};
use rtds_graph::{critical_path_tasks, Job, JobId, TaskGraph, TaskId};
use serde::{Deserialize, Serialize};

/// Tolerance mirrored from the plan layer.
const TIME_EPS: f64 = 1e-9;

/// Index of one core within a site.
pub type CoreId = usize;

/// A reservation bound to a specific core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Core executing the reservation.
    pub core: CoreId,
    /// The reservation itself.
    pub reservation: Reservation,
}

/// Memory held by one job's task for the duration of its reservation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemHold {
    /// Owning job.
    pub job: JobId,
    /// Start of the residency.
    pub start: f64,
    /// End of the residency.
    pub end: f64,
    /// Memory units held.
    pub bytes: f64,
}

/// Result of a successful whole-DAG admission: the per-core placements to
/// commit, the memory residencies they imply, and the job completion time.
#[derive(Debug, Clone, PartialEq)]
pub struct DagSchedule {
    /// Placements realising the DAG (a gang task yields one placement per
    /// occupied core, all with identical `[start, end)`).
    pub placements: Vec<Placement>,
    /// Memory residencies (empty when no demands were given).
    pub holds: Vec<MemHold>,
    /// Completion time of the last task.
    pub completion: f64,
}

/// Which scheduling policy a site runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// The paper's §5/§12 critical-path list scheduler (the default).
    #[default]
    Protocol,
    /// HEFT-style insertion-based EFT list scheduling.
    Heft,
    /// One-step lookahead over child finish times.
    Lookahead,
}

impl SchedulerKind {
    /// Stable lowercase name (used in reports and snapshots).
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Protocol => "protocol",
            SchedulerKind::Heft => "heft",
            SchedulerKind::Lookahead => "lookahead",
        }
    }

    /// Inverse of [`SchedulerKind::name`].
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "protocol" => Some(SchedulerKind::Protocol),
            "heft" => Some(SchedulerKind::Heft),
            "lookahead" => Some(SchedulerKind::Lookahead),
            _ => None,
        }
    }

    /// All kinds, in a stable order.
    pub fn all() -> [SchedulerKind; 3] {
        [
            SchedulerKind::Protocol,
            SchedulerKind::Heft,
            SchedulerKind::Lookahead,
        ]
    }
}

/// The local scheduling decision of one site, abstracted over policy.
///
/// Contract every implementation upholds:
///
/// * Queries ([`Scheduler::admit_dag`], [`Scheduler::satisfiable`],
///   [`Scheduler::earliest_finish`]) never mutate the committed plans.
/// * An admission/satisfiability answer is *constructive and committable*:
///   passing it to [`Scheduler::reserve_dag`] / [`Scheduler::reserve`]
///   immediately afterwards always succeeds.
/// * Accepted work never overlaps on a core and never ends after the
///   deadline it was tested against — accepted jobs cannot miss deadlines.
/// * All answers are deterministic functions of the committed state.
pub trait Scheduler {
    /// Which policy this is.
    fn kind(&self) -> SchedulerKind;

    /// The site's resource bundle.
    fn resources(&self) -> &SiteResources;

    /// Committed per-core plans, indexed by [`CoreId`].
    fn core_plans(&self) -> &[SchedulePlan];

    /// The §5 local guarantee test: can the whole DAG run on this site,
    /// in-between the committed reservations, before its deadline?
    /// `demands` (parallel to task ids) adds core/memory/speedup demands;
    /// `None` means every task is a default single-core demand.
    fn admit_dag(&self, job: &Job, now: f64, demands: Option<&[TaskDemand]>)
        -> Option<DagSchedule>;

    /// The §10 validation question: can this task set (durations already
    /// scaled by the caller) be placed in-between the committed
    /// reservations? Requests are single-core.
    fn satisfiable(&self, requests: &[TaskRequest]) -> Option<Vec<Placement>>;

    /// Commits placements previously returned by [`Scheduler::satisfiable`]
    /// (atomic: all or nothing).
    fn reserve(&mut self, placements: &[Placement]) -> Result<(), PlanError>;

    /// Commits a whole [`DagSchedule`] including its memory holds (atomic).
    fn reserve_dag(&mut self, schedule: &DagSchedule) -> Result<(), PlanError>;

    /// Releases every reservation and memory hold of a job; returns the
    /// number of reservations removed.
    fn release(&mut self, job: JobId) -> usize;

    /// Earliest-finish estimate for one single-core unit of work: the core
    /// and finish time of the earliest non-preemptive fit, if any.
    fn earliest_finish(&self, release: f64, deadline: f64, duration: f64) -> Option<(CoreId, f64)>;

    /// The §2 surplus over `[now, now + window)`: idle core-time as a
    /// fraction of total core-time.
    fn surplus(&self, now: f64, window: f64) -> f64;

    /// Removes and returns every placement fully completed by `cutoff`
    /// (core-major order), pruning expired memory holds as well.
    fn drain_completed(&mut self, cutoff: f64) -> Vec<Placement>;

    /// Completion time of a job on this site (latest reservation end over
    /// all cores), if any of its tasks run here.
    fn job_completion(&self, job: JobId) -> Option<f64>;

    /// Total committed reservations over all cores.
    fn reservation_count(&self) -> usize;

    /// Number of cores executing a reservation at time `t`.
    fn busy_cores(&self, t: f64) -> usize;

    /// Memory held at time `t` by committed residencies.
    fn mem_used(&self, t: f64) -> f64;
}

/// Concrete enum-dispatched scheduler: the state shared by all policies
/// plus the [`SchedulerKind`] selecting the placement rule.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteScheduler {
    kind: SchedulerKind,
    resources: SiteResources,
    /// Effective base speed of the site (the §13 uniform-machines factor);
    /// composed with `resources.speed`.
    base_speed: f64,
    preemptive: bool,
    cores: Vec<SchedulePlan>,
    holds: Vec<MemHold>,
}

impl SiteScheduler {
    /// Creates an empty scheduler of the given kind.
    pub fn new(
        kind: SchedulerKind,
        resources: SiteResources,
        base_speed: f64,
        preemptive: bool,
    ) -> Self {
        assert!(base_speed > 0.0, "site speed must be positive");
        resources.validate().expect("valid site resources");
        SiteScheduler {
            kind,
            resources,
            base_speed,
            preemptive,
            cores: vec![SchedulePlan::new(); resources.cores],
            holds: Vec::new(),
        }
    }

    /// Rebuilds a scheduler from snapshot parts. Panics if the plan count
    /// does not match the resource bundle.
    pub fn from_parts(
        kind: SchedulerKind,
        resources: SiteResources,
        base_speed: f64,
        preemptive: bool,
        cores: Vec<SchedulePlan>,
        holds: Vec<MemHold>,
    ) -> Self {
        assert_eq!(cores.len(), resources.cores, "one plan per core");
        let mut s = SiteScheduler::new(kind, resources, base_speed, preemptive);
        s.cores = cores;
        s.holds = holds;
        s
    }

    /// Snapshot accessors: `(base_speed, preemptive, holds)` — kind,
    /// resources and plans have trait accessors.
    pub fn snapshot_parts(&self) -> (f64, bool, &[MemHold]) {
        (self.base_speed, self.preemptive, &self.holds)
    }

    /// The site's effective single-core speed: base speed × resource
    /// multiplier.
    pub fn effective_speed(&self) -> f64 {
        self.base_speed * self.resources.speed
    }

    /// Whether preemptive placement (§13) is enabled.
    pub fn preemptive(&self) -> bool {
        self.preemptive
    }

    /// True when every query delegates verbatim to the single-plan
    /// primitives (one core, default demands).
    fn is_single_core(&self) -> bool {
        self.cores.len() == 1
    }

    // ----- placement helpers ------------------------------------------------

    /// Earliest single-core fit across all cores under the given selection
    /// rule; returns `(core, start, completion)`.
    fn best_single_fit(
        cores: &[SchedulePlan],
        ready: f64,
        deadline: f64,
        duration: f64,
    ) -> Option<(CoreId, f64, f64)> {
        let mut best: Option<(CoreId, f64, f64)> = None;
        for (c, plan) in cores.iter().enumerate() {
            if let Some(start) = plan.earliest_fit(ready, deadline, duration) {
                let finish = start + duration;
                // Homogeneous cores: earliest start == earliest finish, so
                // the protocol and HEFT selection rules coincide per task;
                // ties go to the lowest core id for determinism.
                if best.map_or(true, |(_, s, _)| start < s - TIME_EPS) {
                    best = Some((c, start, finish));
                }
            }
        }
        best
    }

    /// Earliest gang fit: the earliest start `t >= ready` at which `k`
    /// cores are simultaneously idle over `[t, t + duration)` with
    /// `t + duration <= deadline`. Returns the occupied cores (lowest ids
    /// first) and the start.
    fn earliest_gang_fit(
        cores: &[SchedulePlan],
        ready: f64,
        deadline: f64,
        duration: f64,
        k: usize,
    ) -> Option<(Vec<CoreId>, f64)> {
        if k > cores.len() || duration < 0.0 {
            return None;
        }
        // Candidate starts: the ready time plus every reservation end after
        // it (a gang can only become feasible when some core frees up).
        let mut candidates: Vec<f64> = vec![ready];
        for plan in cores {
            for r in plan.reservations() {
                if r.end > ready + TIME_EPS {
                    candidates.push(r.end);
                }
            }
        }
        candidates.sort_by(|a, b| a.partial_cmp(b).unwrap());
        candidates.dedup_by(|a, b| (*a - *b).abs() <= TIME_EPS);
        for &t in &candidates {
            if t + duration > deadline + TIME_EPS {
                return None;
            }
            let window = TimeInterval::new(t, t + duration);
            let idle: Vec<CoreId> = cores
                .iter()
                .enumerate()
                .filter(|(_, p)| p.is_idle(window))
                .map(|(c, _)| c)
                .collect();
            if idle.len() >= k {
                return Some((idle.into_iter().take(k).collect(), t));
            }
        }
        None
    }

    /// Task priorities for the list-scheduling order of this kind.
    fn rank(&self, graph: &TaskGraph) -> Vec<f64> {
        match self.kind {
            SchedulerKind::Protocol | SchedulerKind::Lookahead => critical_path_tasks(graph).upward,
            SchedulerKind::Heft => heft_upward_rank(graph),
        }
    }

    /// Places one single-core task according to this scheduler's rule,
    /// inserting into `scratch`. Returns the finish time.
    #[allow(clippy::too_many_arguments)]
    fn place_single(
        &self,
        scratch: &mut [SchedulePlan],
        graph: &TaskGraph,
        job: JobId,
        t: TaskId,
        ready: f64,
        deadline: f64,
        duration: f64,
        durations: &[f64],
        finish: &[f64],
        out: &mut Vec<Placement>,
    ) -> Option<f64> {
        if self.preemptive {
            // Preemptive placement: fill idle windows on the core whose
            // chunks complete earliest (ties to the lowest core id).
            let mut best: Option<(CoreId, Vec<TimeInterval>, f64)> = None;
            for (c, plan) in scratch.iter().enumerate() {
                if let Some(chunks) = plan.earliest_fit_preemptive(ready, deadline, duration) {
                    let end = chunks.last().map_or(ready, |ch| ch.end);
                    if best.as_ref().map_or(true, |(_, _, e)| end < *e - TIME_EPS) {
                        best = Some((c, chunks, end));
                    }
                }
            }
            let (core, chunks, end) = best?;
            for chunk in &chunks {
                let r = Reservation {
                    job,
                    task: t,
                    start: chunk.start,
                    end: chunk.end,
                };
                scratch[core].insert(r).ok()?;
                out.push(Placement {
                    core,
                    reservation: r,
                });
            }
            return Some(end.max(ready));
        }
        let core = match self.kind {
            SchedulerKind::Lookahead => self.lookahead_core(
                scratch, graph, job, t, ready, deadline, duration, durations, finish,
            )?,
            _ => Self::best_single_fit(scratch, ready, deadline, duration)?.0,
        };
        let start = scratch[core].earliest_fit(ready, deadline, duration)?;
        let r = Reservation {
            job,
            task: t,
            start,
            end: start + duration,
        };
        scratch[core].insert(r).ok()?;
        out.push(Placement {
            core,
            reservation: r,
        });
        Some(start + duration)
    }

    /// The one-step lookahead core choice: minimise, over the task's
    /// children, the worst insertion-based EFT the child could still get
    /// with the task tentatively placed — ties broken by own EFT, then by
    /// core id. Falls back to the plain EFT rule for childless tasks.
    #[allow(clippy::too_many_arguments)]
    fn lookahead_core(
        &self,
        scratch: &[SchedulePlan],
        graph: &TaskGraph,
        job: JobId,
        t: TaskId,
        ready: f64,
        deadline: f64,
        duration: f64,
        durations: &[f64],
        finish: &[f64],
    ) -> Option<CoreId> {
        let children: Vec<TaskId> = graph.successors(t).collect();
        let mut best: Option<(f64, f64, CoreId)> = None;
        for (c, plan) in scratch.iter().enumerate() {
            let start = match plan.earliest_fit(ready, deadline, duration) {
                Some(s) => s,
                None => continue,
            };
            let own_eft = start + duration;
            // Tentatively occupy the slot and score each child's best EFT.
            let mut tentative: Vec<SchedulePlan> = scratch.to_vec();
            let r = Reservation {
                job,
                task: t,
                start,
                end: own_eft,
            };
            tentative[c].insert(r).ok()?;
            let mut score = own_eft;
            for &child in &children {
                // The child's ready time, counting already-placed parents
                // and this tentative finish (unplaced parents unknown).
                let child_ready = graph
                    .predecessors(child)
                    .map(|p| finish[p.0])
                    .fold(own_eft, f64::max);
                let child_eft =
                    Self::best_single_fit(&tentative, child_ready, deadline, durations[child.0])
                        .map(|(_, _, f)| f);
                match child_eft {
                    Some(f) => score = score.max(f),
                    None => {
                        score = f64::INFINITY;
                        break;
                    }
                }
            }
            let better = match best {
                None => true,
                Some((s, e, _)) => {
                    score < s - TIME_EPS
                        || ((score - s).abs() <= TIME_EPS && e > own_eft + TIME_EPS)
                }
            };
            if better {
                best = Some((score, own_eft, c));
            }
        }
        best.map(|(_, _, c)| c)
    }

    /// Peak-memory check: with the new holds added to the committed ledger,
    /// does concurrent residency ever exceed the site's memory?
    fn memory_fits(&self, new_holds: &[MemHold]) -> bool {
        if self.resources.memory.is_infinite() || new_holds.is_empty() {
            return true;
        }
        let mut events: Vec<(f64, f64)> = Vec::new();
        for h in self.holds.iter().chain(new_holds) {
            if h.bytes > 0.0 && h.end > h.start {
                events.push((h.start, h.bytes));
                events.push((h.end, -h.bytes));
            }
        }
        // Ends sort before starts at the same instant (closed-open holds).
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap()
                .then(a.1.partial_cmp(&b.1).unwrap())
        });
        let mut used = 0.0;
        for (_, delta) in events {
            used += delta;
            if used > self.resources.memory + TIME_EPS {
                return false;
            }
        }
        true
    }
}

/// HEFT upward rank: `rank(t) = cost(t) + max over children c of
/// (volume(t, c) + rank(c))`. Unlike the node-weight-only §12 rank, edge
/// data volumes count as communication cost, exactly as in Topcuoglu et
/// al. (with a single site class, the mean execution cost is the cost
/// itself).
pub fn heft_upward_rank(graph: &TaskGraph) -> Vec<f64> {
    let mut rank = vec![0.0f64; graph.task_count()];
    let order = graph
        .reverse_topological_order()
        .expect("task graphs are acyclic");
    for t in order {
        let mut best = 0.0f64;
        for c in graph.successors(t) {
            let comm = graph.data_volume(t, c).unwrap_or(0.0);
            best = best.max(comm + rank[c.0]);
        }
        rank[t.0] = graph.cost(t) + best;
    }
    rank
}

impl Scheduler for SiteScheduler {
    fn kind(&self) -> SchedulerKind {
        self.kind
    }

    fn resources(&self) -> &SiteResources {
        &self.resources
    }

    fn core_plans(&self) -> &[SchedulePlan] {
        &self.cores
    }

    fn admit_dag(
        &self,
        job: &Job,
        now: f64,
        demands: Option<&[TaskDemand]>,
    ) -> Option<DagSchedule> {
        let graph = &job.graph;
        // Degenerate fast path: the paper's single-plan admission, verbatim.
        if self.kind == SchedulerKind::Protocol && self.is_single_core() && demands.is_none() {
            let adm = admit_dag_locally(
                &self.cores[0],
                job,
                now,
                self.effective_speed(),
                self.preemptive,
            )?;
            return Some(DagSchedule {
                placements: adm
                    .reservations
                    .into_iter()
                    .map(|reservation| Placement {
                        core: 0,
                        reservation,
                    })
                    .collect(),
                holds: Vec::new(),
                completion: adm.completion,
            });
        }
        let start_floor = now.max(job.release());
        if graph.task_count() == 0 {
            return Some(DagSchedule {
                placements: Vec::new(),
                holds: Vec::new(),
                completion: start_floor,
            });
        }
        if let Some(d) = demands {
            assert_eq!(d.len(), graph.task_count(), "one demand per task");
        }
        let deadline = job.deadline();
        let default_demand = TaskDemand::default();
        let demand_of = |t: TaskId| demands.map_or(default_demand, |d| d[t.0]);
        let durations: Vec<f64> = graph
            .task_ids()
            .map(|t| demand_of(t).duration(graph.cost(t), self.base_speed, &self.resources))
            .collect();
        let order = priority_order(graph, &self.rank(graph));

        let mut scratch = self.cores.clone();
        let mut finish = vec![0.0f64; graph.task_count()];
        let mut placements = Vec::new();
        let mut holds = Vec::new();
        for t in order {
            let demand = demand_of(t);
            let k = demand.granted_cores(&self.resources);
            let duration = durations[t.0];
            let ready = graph
                .predecessors(t)
                .map(|p| finish[p.0])
                .fold(start_floor, f64::max);
            let end = if k > 1 {
                // Gang tasks occupy k cores for one contiguous slot (no
                // preemptive splitting for gangs).
                let (gang, start) =
                    Self::earliest_gang_fit(&scratch, ready, deadline, duration, k)?;
                for &core in &gang {
                    let r = Reservation {
                        job: job.id,
                        task: t,
                        start,
                        end: start + duration,
                    };
                    scratch[core].insert(r).ok()?;
                    placements.push(Placement {
                        core,
                        reservation: r,
                    });
                }
                start + duration
            } else {
                self.place_single(
                    &mut scratch,
                    graph,
                    job.id,
                    t,
                    ready,
                    deadline,
                    duration,
                    &durations,
                    &finish,
                    &mut placements,
                )?
            };
            if end > deadline + TIME_EPS {
                return None;
            }
            finish[t.0] = end;
            if demand.memory > 0.0 {
                let start = placements
                    .iter()
                    .rev()
                    .take_while(|p| p.reservation.task == t)
                    .map(|p| p.reservation.start)
                    .fold(end, f64::min);
                holds.push(MemHold {
                    job: job.id,
                    start,
                    end,
                    bytes: demand.memory,
                });
            }
        }
        if !self.memory_fits(&holds) {
            return None;
        }
        let completion = finish.iter().copied().fold(start_floor, f64::max);
        Some(DagSchedule {
            placements,
            holds,
            completion,
        })
    }

    fn satisfiable(&self, requests: &[TaskRequest]) -> Option<Vec<Placement>> {
        // Degenerate fast path: the paper's §10 test, verbatim.
        if self.is_single_core() {
            return feasibility::satisfiable(&self.cores[0], requests, self.preemptive).map(
                |reservations| {
                    reservations
                        .into_iter()
                        .map(|reservation| Placement {
                            core: 0,
                            reservation,
                        })
                        .collect()
                },
            );
        }
        if requests.iter().any(|r| !r.is_well_formed()) {
            return None;
        }
        // Multicore EDF: the same deterministic order as the single-plan
        // test, each request placed on the core with the earliest fit.
        let mut ordered: Vec<&TaskRequest> = requests.iter().collect();
        ordered.sort_by(|a, b| {
            a.deadline
                .partial_cmp(&b.deadline)
                .unwrap()
                .then(a.release.partial_cmp(&b.release).unwrap())
                .then(a.task.0.cmp(&b.task.0))
                .then(a.job.0.cmp(&b.job.0))
        });
        let mut scratch = self.cores.clone();
        let mut placed = Vec::new();
        for req in ordered {
            if self.preemptive {
                let mut best: Option<(CoreId, Vec<TimeInterval>, f64)> = None;
                for (c, plan) in scratch.iter().enumerate() {
                    if let Some(chunks) =
                        plan.earliest_fit_preemptive(req.release, req.deadline, req.duration)
                    {
                        let end = chunks.last().map_or(req.release, |ch| ch.end);
                        if best.as_ref().map_or(true, |(_, _, e)| end < *e - TIME_EPS) {
                            best = Some((c, chunks, end));
                        }
                    }
                }
                let (core, chunks, _) = best?;
                for chunk in chunks {
                    let r = Reservation {
                        job: req.job,
                        task: req.task,
                        start: chunk.start,
                        end: chunk.end,
                    };
                    scratch[core].insert(r).ok()?;
                    placed.push(Placement {
                        core,
                        reservation: r,
                    });
                }
            } else {
                let (core, start, _) =
                    Self::best_single_fit(&scratch, req.release, req.deadline, req.duration)?;
                let r = Reservation {
                    job: req.job,
                    task: req.task,
                    start,
                    end: start + req.duration,
                };
                scratch[core].insert(r).ok()?;
                placed.push(Placement {
                    core,
                    reservation: r,
                });
            }
        }
        Some(placed)
    }

    fn reserve(&mut self, placements: &[Placement]) -> Result<(), PlanError> {
        let backup = self.cores.clone();
        for p in placements {
            if p.core >= self.cores.len() {
                self.cores = backup;
                return Err(PlanError::Malformed);
            }
            if let Err(e) = self.cores[p.core].insert(p.reservation) {
                self.cores = backup;
                return Err(e);
            }
        }
        Ok(())
    }

    fn reserve_dag(&mut self, schedule: &DagSchedule) -> Result<(), PlanError> {
        self.reserve(&schedule.placements)?;
        self.holds.extend_from_slice(&schedule.holds);
        Ok(())
    }

    fn release(&mut self, job: JobId) -> usize {
        let removed = self.cores.iter_mut().map(|p| p.remove_job(job)).sum();
        self.holds.retain(|h| h.job != job);
        removed
    }

    fn earliest_finish(&self, release: f64, deadline: f64, duration: f64) -> Option<(CoreId, f64)> {
        Self::best_single_fit(&self.cores, release, deadline, duration).map(|(c, _, f)| (c, f))
    }

    fn surplus(&self, now: f64, window: f64) -> f64 {
        let n = self.cores.len().max(1) as f64;
        self.cores
            .iter()
            .map(|p| p.surplus(now, window))
            .sum::<f64>()
            / n
    }

    fn drain_completed(&mut self, cutoff: f64) -> Vec<Placement> {
        let mut drained = Vec::new();
        for (core, plan) in self.cores.iter_mut().enumerate() {
            for reservation in plan.drain_completed(cutoff) {
                drained.push(Placement { core, reservation });
            }
        }
        self.holds.retain(|h| h.end > cutoff + TIME_EPS);
        drained
    }

    fn job_completion(&self, job: JobId) -> Option<f64> {
        self.cores
            .iter()
            .filter_map(|p| p.job_completion(job))
            .fold(None, |acc, e| Some(acc.map_or(e, |a: f64| a.max(e))))
    }

    fn reservation_count(&self) -> usize {
        self.cores.iter().map(SchedulePlan::len).sum()
    }

    fn busy_cores(&self, t: f64) -> usize {
        self.cores
            .iter()
            .filter(|p| {
                p.reservations()
                    .iter()
                    .any(|r| r.start <= t + TIME_EPS && t < r.end - TIME_EPS)
            })
            .count()
    }

    fn mem_used(&self, t: f64) -> f64 {
        self.holds
            .iter()
            .filter(|h| h.start <= t + TIME_EPS && t < h.end - TIME_EPS)
            .map(|h| h.bytes)
            .sum()
    }
}

macro_rules! newtype_scheduler {
    ($(#[$doc:meta])* $name:ident, $kind:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq)]
        pub struct $name(SiteScheduler);

        impl $name {
            /// Creates an empty scheduler over the given resources.
            pub fn new(resources: SiteResources, base_speed: f64, preemptive: bool) -> Self {
                $name(SiteScheduler::new($kind, resources, base_speed, preemptive))
            }
        }

        impl Scheduler for $name {
            fn kind(&self) -> SchedulerKind {
                self.0.kind()
            }
            fn resources(&self) -> &SiteResources {
                self.0.resources()
            }
            fn core_plans(&self) -> &[SchedulePlan] {
                self.0.core_plans()
            }
            fn admit_dag(
                &self,
                job: &Job,
                now: f64,
                demands: Option<&[TaskDemand]>,
            ) -> Option<DagSchedule> {
                self.0.admit_dag(job, now, demands)
            }
            fn satisfiable(&self, requests: &[TaskRequest]) -> Option<Vec<Placement>> {
                self.0.satisfiable(requests)
            }
            fn reserve(&mut self, placements: &[Placement]) -> Result<(), PlanError> {
                self.0.reserve(placements)
            }
            fn reserve_dag(&mut self, schedule: &DagSchedule) -> Result<(), PlanError> {
                self.0.reserve_dag(schedule)
            }
            fn release(&mut self, job: JobId) -> usize {
                self.0.release(job)
            }
            fn earliest_finish(
                &self,
                release: f64,
                deadline: f64,
                duration: f64,
            ) -> Option<(CoreId, f64)> {
                self.0.earliest_finish(release, deadline, duration)
            }
            fn surplus(&self, now: f64, window: f64) -> f64 {
                self.0.surplus(now, window)
            }
            fn drain_completed(&mut self, cutoff: f64) -> Vec<Placement> {
                self.0.drain_completed(cutoff)
            }
            fn job_completion(&self, job: JobId) -> Option<f64> {
                self.0.job_completion(job)
            }
            fn reservation_count(&self) -> usize {
                self.0.reservation_count()
            }
            fn busy_cores(&self, t: f64) -> usize {
                self.0.busy_cores(t)
            }
            fn mem_used(&self, t: f64) -> f64 {
                self.0.mem_used(t)
            }
        }
    };
}

newtype_scheduler!(
    /// The paper's §5/§12 critical-path list scheduler, multicore-
    /// generalised (earliest-fit core choice). Single-core with default
    /// demands delegates verbatim to the original single-plan primitives.
    ProtocolScheduler,
    SchedulerKind::Protocol
);
newtype_scheduler!(
    /// HEFT-style list scheduling: communication-inclusive upward-rank
    /// order, insertion-based earliest-finish-time core choice.
    HeftScheduler,
    SchedulerKind::Heft
);
newtype_scheduler!(
    /// One-step lookahead: a task's core minimises the worst child EFT
    /// under the tentative placement.
    LookaheadScheduler,
    SchedulerKind::Lookahead
);

/// Exact brute-force feasibility oracle for *non-preemptive, single-core*
/// request sets on a multicore plan: tries every assignment of requests to
/// cores and every per-core placement order, placing greedily at the
/// earliest fit (for a fixed order, greedy earliest-fit placement is
/// complete, by the standard left-shift exchange argument). Exponential —
/// property tests only.
pub fn brute_force_satisfiable(cores: &[SchedulePlan], requests: &[TaskRequest]) -> bool {
    if requests.iter().any(|r| !r.is_well_formed()) {
        return false;
    }
    fn core_feasible(plan: &SchedulePlan, subset: &[&TaskRequest]) -> bool {
        fn place(plan: &SchedulePlan, remaining: &mut Vec<&TaskRequest>) -> bool {
            if remaining.is_empty() {
                return true;
            }
            for i in 0..remaining.len() {
                let req = remaining[i];
                if let Some(start) = plan.earliest_fit(req.release, req.deadline, req.duration) {
                    let mut next = plan.clone();
                    let inserted = next.insert(Reservation {
                        job: req.job,
                        task: req.task,
                        start,
                        end: start + req.duration,
                    });
                    if inserted.is_ok() {
                        remaining.swap_remove(i);
                        if place(&next, remaining) {
                            return true;
                        }
                        remaining.push(req);
                        let last = remaining.len() - 1;
                        remaining.swap(i, last);
                    }
                }
            }
            false
        }
        let mut remaining: Vec<&TaskRequest> = subset.to_vec();
        place(plan, &mut remaining)
    }
    fn assign(
        cores: &[SchedulePlan],
        requests: &[TaskRequest],
        sets: &mut Vec<Vec<usize>>,
    ) -> bool {
        let next = sets.iter().map(Vec::len).sum::<usize>();
        if next == requests.len() {
            return sets.iter().enumerate().all(|(c, set)| {
                let subset: Vec<&TaskRequest> = set.iter().map(|&i| &requests[i]).collect();
                core_feasible(&cores[c], &subset)
            });
        }
        for c in 0..cores.len() {
            sets[c].push(next);
            if assign(cores, requests, sets) {
                sets[c].pop();
                return true;
            }
            sets[c].pop();
        }
        false
    }
    let mut sets: Vec<Vec<usize>> = vec![Vec::new(); cores.len()];
    assign(cores, requests, &mut sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtds_graph::{JobParams, TaskGraph};

    fn job_from(graph: TaskGraph, release: f64, deadline: f64) -> Job {
        Job::new(JobId(1), graph, JobParams::new(release, deadline), 0)
    }

    fn chain(costs: &[f64]) -> TaskGraph {
        let mut g = TaskGraph::from_costs(costs);
        for i in 1..costs.len() {
            g.add_edge(TaskId(i - 1), TaskId(i)).unwrap();
        }
        g
    }

    fn req(task: usize, release: f64, deadline: f64, duration: f64) -> TaskRequest {
        TaskRequest {
            job: JobId(7),
            task: TaskId(task),
            release,
            deadline,
            duration,
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in SchedulerKind::all() {
            assert_eq!(SchedulerKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(SchedulerKind::parse("nope"), None);
        assert_eq!(SchedulerKind::default(), SchedulerKind::Protocol);
    }

    #[test]
    fn single_core_protocol_delegates_verbatim() {
        let sched = ProtocolScheduler::new(SiteResources::single_core(1.5), 2.0, false);
        let job = job_from(chain(&[6.0, 9.0]), 0.0, 20.0);
        let via_trait = sched.admit_dag(&job, 0.0, None).unwrap();
        let direct = admit_dag_locally(&SchedulePlan::new(), &job, 0.0, 3.0, false).unwrap();
        assert_eq!(via_trait.completion, direct.completion);
        let got: Vec<Reservation> = via_trait.placements.iter().map(|p| p.reservation).collect();
        assert_eq!(got, direct.reservations);
        assert!(via_trait.placements.iter().all(|p| p.core == 0));

        // §10 delegation.
        let requests = vec![req(0, 0.0, 10.0, 4.0), req(1, 0.0, 8.0, 3.0)];
        let via_trait = sched.satisfiable(&requests).unwrap();
        let direct = feasibility::satisfiable(&SchedulePlan::new(), &requests, false).unwrap();
        let got: Vec<Reservation> = via_trait.iter().map(|p| p.reservation).collect();
        assert_eq!(got, direct);
    }

    #[test]
    fn reserve_release_and_queries() {
        let mut sched = SiteScheduler::new(
            SchedulerKind::Protocol,
            SiteResources::multicore(2, 1.0),
            1.0,
            false,
        );
        let requests = vec![req(0, 0.0, 10.0, 6.0), req(1, 0.0, 10.0, 6.0)];
        let placements = sched.satisfiable(&requests).unwrap();
        // Two 6-unit tasks due by 10 cannot share one core; they must land
        // on different cores, both starting at 0.
        let cores: Vec<CoreId> = placements.iter().map(|p| p.core).collect();
        assert_eq!(cores, vec![0, 1]);
        assert!(placements.iter().all(|p| p.reservation.start == 0.0));
        sched.reserve(&placements).unwrap();
        assert_eq!(sched.reservation_count(), 2);
        assert_eq!(sched.busy_cores(3.0), 2);
        assert_eq!(sched.busy_cores(7.0), 0);
        assert_eq!(sched.job_completion(JobId(7)), Some(6.0));
        // Surplus over [0, 12): each core busy 6 of 12.
        assert!((sched.surplus(0.0, 12.0) - 0.5).abs() < 1e-12);
        assert_eq!(sched.earliest_finish(0.0, 20.0, 2.0), Some((0, 8.0)));
        assert_eq!(sched.release(JobId(7)), 2);
        assert_eq!(sched.reservation_count(), 0);
        assert_eq!(sched.job_completion(JobId(7)), None);
        assert_eq!(sched.earliest_finish(0.0, 20.0, 2.0), Some((0, 2.0)));
    }

    #[test]
    fn multicore_admission_parallelises_independent_tasks() {
        // Two independent 8-unit tasks, deadline 10: impossible on one
        // core, trivial on two.
        let graph = TaskGraph::from_costs(&[8.0, 8.0]);
        let job = job_from(graph, 0.0, 10.0);
        let single = ProtocolScheduler::new(SiteResources::default(), 1.0, false);
        assert!(single.admit_dag(&job, 0.0, None).is_none());
        let dual = ProtocolScheduler::new(SiteResources::multicore(2, 1.0), 1.0, false);
        let schedule = dual.admit_dag(&job, 0.0, None).unwrap();
        assert_eq!(schedule.completion, 8.0);
        let cores: std::collections::BTreeSet<CoreId> =
            schedule.placements.iter().map(|p| p.core).collect();
        assert_eq!(cores.len(), 2);
    }

    #[test]
    fn gang_tasks_occupy_cores_simultaneously() {
        let graph = TaskGraph::from_costs(&[8.0]);
        let job = job_from(graph, 0.0, 20.0);
        let demands = vec![TaskDemand {
            cores: 2,
            memory: 0.0,
            speedup: crate::resources::SpeedupFn::Linear,
        }];
        let sched = ProtocolScheduler::new(SiteResources::multicore(2, 1.0), 1.0, false);
        let schedule = sched.admit_dag(&job, 0.0, Some(&demands)).unwrap();
        // Linear speedup on 2 cores: 8 / 2 = 4 units, on both cores.
        assert_eq!(schedule.placements.len(), 2);
        assert!(schedule
            .placements
            .iter()
            .all(|p| p.reservation.start == 0.0 && p.reservation.end == 4.0));
        assert_eq!(schedule.completion, 4.0);
        // A 3-core gang cannot fit on a 2-core site — the demand clamps.
        let wide = vec![TaskDemand {
            cores: 3,
            memory: 0.0,
            speedup: crate::resources::SpeedupFn::Flat,
        }];
        let schedule = sched.admit_dag(&job, 0.0, Some(&wide)).unwrap();
        assert_eq!(schedule.placements.len(), 2);
        assert_eq!(schedule.completion, 8.0);
    }

    #[test]
    fn memory_capacity_rejects_oversubscription() {
        let mut resources = SiteResources::multicore(2, 1.0);
        resources.memory = 3.0;
        let sched = ProtocolScheduler::new(resources, 1.0, false);
        let graph = TaskGraph::from_costs(&[5.0, 5.0]);
        let job = job_from(graph, 0.0, 30.0);
        let fits = vec![
            TaskDemand {
                cores: 1,
                memory: 1.5,
                speedup: crate::resources::SpeedupFn::Flat,
            };
            2
        ];
        let schedule = sched.admit_dag(&job, 0.0, Some(&fits)).unwrap();
        assert_eq!(schedule.holds.len(), 2);
        // Both tasks run concurrently on separate cores holding 2.0 each:
        // 4.0 > 3.0 — rejected even though cores are free.
        let heavy = vec![
            TaskDemand {
                cores: 1,
                memory: 2.0,
                speedup: crate::resources::SpeedupFn::Flat,
            };
            2
        ];
        assert!(sched.admit_dag(&job, 0.0, Some(&heavy)).is_none());
        // Committed holds count against later admissions.
        let mut sched = sched;
        let schedule = sched
            .admit_dag(&job, 0.0, Some(&fits))
            .expect("fits memory");
        sched.reserve_dag(&schedule).unwrap();
        assert!((sched.mem_used(2.0) - 3.0).abs() < 1e-12);
        assert_eq!(sched.mem_used(20.0), 0.0);
        assert_eq!(sched.busy_cores(2.0), 2);
        sched.release(job.id);
        assert_eq!(sched.mem_used(2.0), 0.0);
    }

    #[test]
    fn heft_rank_counts_communication() {
        // a -> b with volume 10, a -> c with volume 0; equal costs. The
        // node-weight rank ties b and c; HEFT must rank through b higher.
        let mut g = TaskGraph::from_costs(&[1.0, 2.0, 2.0]);
        g.add_edge_with_volume(TaskId(0), TaskId(1), 10.0).unwrap();
        g.add_edge_with_volume(TaskId(0), TaskId(2), 0.0).unwrap();
        let rank = heft_upward_rank(&g);
        assert_eq!(rank[1], 2.0);
        assert_eq!(rank[2], 2.0);
        assert_eq!(rank[0], 1.0 + 10.0 + 2.0);
        let plain = critical_path_tasks(&g).upward;
        assert_eq!(plain[0], 3.0);
    }

    #[test]
    fn heft_picks_the_eft_optimal_core_on_a_hand_checked_dag() {
        // Two cores, core 0 busy [0, 6), core 1 busy [0, 2). A 3-unit task:
        // EFT on core 0 is 9, on core 1 is 5 — HEFT must pick core 1.
        let mut sched = SiteScheduler::new(
            SchedulerKind::Heft,
            SiteResources::multicore(2, 1.0),
            1.0,
            false,
        );
        sched
            .reserve(&[
                Placement {
                    core: 0,
                    reservation: Reservation {
                        job: JobId(50),
                        task: TaskId(0),
                        start: 0.0,
                        end: 6.0,
                    },
                },
                Placement {
                    core: 1,
                    reservation: Reservation {
                        job: JobId(50),
                        task: TaskId(0),
                        start: 0.0,
                        end: 2.0,
                    },
                },
            ])
            .unwrap();
        let job = job_from(TaskGraph::from_costs(&[3.0]), 0.0, 30.0);
        let schedule = sched.admit_dag(&job, 0.0, None).unwrap();
        assert_eq!(schedule.placements.len(), 1);
        assert_eq!(schedule.placements[0].core, 1);
        assert_eq!(schedule.placements[0].reservation.start, 2.0);
        assert_eq!(schedule.completion, 5.0);
        assert_eq!(sched.earliest_finish(0.0, 30.0, 3.0), Some((1, 5.0)));
    }

    #[test]
    fn lookahead_places_for_the_children() {
        // Diamond: a(1) -> {b(8), c(1)} -> d, on two cores with core 1
        // blocked in [1, 3). Plain EFT puts a on core 0 and then b on
        // core 0 too... both schedulers must stay feasible; lookahead must
        // never be worse than HEFT on the final completion here.
        let mut g = TaskGraph::from_costs(&[1.0, 8.0, 1.0, 1.0]);
        g.add_edge(TaskId(0), TaskId(1)).unwrap();
        g.add_edge(TaskId(0), TaskId(2)).unwrap();
        g.add_edge(TaskId(1), TaskId(3)).unwrap();
        g.add_edge(TaskId(2), TaskId(3)).unwrap();
        let job = job_from(g, 0.0, 40.0);
        let block = Placement {
            core: 1,
            reservation: Reservation {
                job: JobId(50),
                task: TaskId(0),
                start: 1.0,
                end: 3.0,
            },
        };
        let mut heft = SiteScheduler::new(
            SchedulerKind::Heft,
            SiteResources::multicore(2, 1.0),
            1.0,
            false,
        );
        heft.reserve(&[block]).unwrap();
        let mut look = SiteScheduler::new(
            SchedulerKind::Lookahead,
            SiteResources::multicore(2, 1.0),
            1.0,
            false,
        );
        look.reserve(&[block]).unwrap();
        let h = heft.admit_dag(&job, 0.0, None).unwrap();
        let l = look.admit_dag(&job, 0.0, None).unwrap();
        assert!(l.completion <= h.completion + 1e-9);
        assert_eq!(l.placements.len(), 4);
    }

    #[test]
    fn all_kinds_accept_nothing_infeasible() {
        // Total demand exceeds total core-time before the deadline.
        let graph = TaskGraph::from_costs(&[6.0, 6.0, 6.0, 6.0, 6.0]);
        let job = job_from(graph, 0.0, 10.0);
        for kind in SchedulerKind::all() {
            let sched = SiteScheduler::new(kind, SiteResources::multicore(2, 1.0), 1.0, false);
            assert!(sched.admit_dag(&job, 0.0, None).is_none(), "{kind:?}");
        }
    }

    #[test]
    fn admission_results_are_committable_and_respect_precedence() {
        let mut g = chain(&[3.0, 4.0, 2.0]);
        g.add_edge(TaskId(0), TaskId(2)).unwrap();
        let job = job_from(g, 0.0, 30.0);
        for kind in SchedulerKind::all() {
            let mut sched = SiteScheduler::new(kind, SiteResources::multicore(3, 1.0), 1.0, false);
            let schedule = sched.admit_dag(&job, 0.0, None).unwrap();
            sched.reserve_dag(&schedule).unwrap();
            assert!(sched
                .core_plans()
                .iter()
                .all(SchedulePlan::check_invariants));
            // Precedence: every successor starts at or after its
            // predecessor's end.
            let finish_of = |t: usize| {
                schedule
                    .placements
                    .iter()
                    .filter(|p| p.reservation.task == TaskId(t))
                    .map(|p| p.reservation.end)
                    .fold(0.0f64, f64::max)
            };
            let start_of = |t: usize| {
                schedule
                    .placements
                    .iter()
                    .filter(|p| p.reservation.task == TaskId(t))
                    .map(|p| p.reservation.start)
                    .fold(f64::INFINITY, f64::min)
            };
            assert!(start_of(1) + 1e-9 >= finish_of(0), "{kind:?}");
            assert!(
                start_of(2) + 1e-9 >= finish_of(1).max(finish_of(0)),
                "{kind:?}"
            );
            assert!(schedule.completion <= 30.0 + 1e-9, "{kind:?}");
        }
    }

    #[test]
    fn drain_completed_is_core_major_and_prunes_holds() {
        let mut sched = SiteScheduler::new(
            SchedulerKind::Protocol,
            SiteResources::multicore(2, 1.0),
            1.0,
            false,
        );
        let schedule = DagSchedule {
            placements: vec![
                Placement {
                    core: 1,
                    reservation: Reservation {
                        job: JobId(1),
                        task: TaskId(0),
                        start: 0.0,
                        end: 4.0,
                    },
                },
                Placement {
                    core: 0,
                    reservation: Reservation {
                        job: JobId(1),
                        task: TaskId(1),
                        start: 0.0,
                        end: 10.0,
                    },
                },
            ],
            holds: vec![MemHold {
                job: JobId(1),
                start: 0.0,
                end: 4.0,
                bytes: 1.0,
            }],
            completion: 10.0,
        };
        sched.reserve_dag(&schedule).unwrap();
        let drained = sched.drain_completed(5.0);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].core, 1);
        assert_eq!(sched.reservation_count(), 1);
        assert!(sched.snapshot_parts().2.is_empty());
    }

    #[test]
    fn from_parts_round_trips() {
        let mut sched = SiteScheduler::new(
            SchedulerKind::Lookahead,
            SiteResources::multicore(2, 1.5),
            2.0,
            true,
        );
        sched
            .reserve(&[Placement {
                core: 1,
                reservation: Reservation {
                    job: JobId(3),
                    task: TaskId(0),
                    start: 1.0,
                    end: 2.0,
                },
            }])
            .unwrap();
        let (base_speed, preemptive, holds) = sched.snapshot_parts();
        let rebuilt = SiteScheduler::from_parts(
            sched.kind(),
            *sched.resources(),
            base_speed,
            preemptive,
            sched.core_plans().to_vec(),
            holds.to_vec(),
        );
        assert_eq!(rebuilt, sched);
        assert!((sched.effective_speed() - 3.0).abs() < 1e-12);
        assert!(sched.preemptive());
    }

    #[test]
    fn brute_force_oracle_is_exact_on_hand_checked_sets() {
        let cores = vec![SchedulePlan::new()];
        // Feasible only in the non-EDF order: EDF places task 1 (deadline
        // 10) at [0, 10) — wait, EDF would do the right thing here; build a
        // set where greedy EDF fails but some order succeeds:
        // task 0: release 0, deadline 20, duration 10
        // task 1: release 0, deadline 11, duration 1
        // EDF places 1 at [0,1), 0 at [1,11)? deadline 20 — fine. Instead
        // use the classic trap: a long early-deadline task blocking a
        // release-constrained short one.
        let trap = vec![req(0, 0.0, 12.0, 10.0), req(1, 10.0, 11.0, 1.0)];
        // EDF (deadline 11 first) places task 1 at [10, 11), then task 0
        // cannot fit 10 units by 12. The only feasible order is 0 then 1 —
        // which also fails ([0,10) then [10,11) works!). Both orders are
        // tried by the oracle:
        assert!(brute_force_satisfiable(&cores, &trap));
        // Truly infeasible: 3 × 10 units due by 20 on two cores.
        let cores2 = vec![SchedulePlan::new(), SchedulePlan::new()];
        let over = vec![
            req(0, 0.0, 20.0, 10.0),
            req(1, 0.0, 20.0, 10.0),
            req(2, 0.0, 15.0, 10.0),
            req(3, 0.0, 20.0, 15.0),
        ];
        assert!(!brute_force_satisfiable(&cores2, &over));
        let ok = vec![req(0, 0.0, 20.0, 10.0), req(1, 0.0, 20.0, 10.0)];
        assert!(brute_force_satisfiable(&cores2, &ok));
        assert!(brute_force_satisfiable(&cores, &[]));
        assert!(!brute_force_satisfiable(&cores, &[req(0, 5.0, 6.0, 3.0)]));
    }
}
