//! The deterministic JSONL trace format: record and replay.
//!
//! A trace is a header line followed by one line per arrival, every line a
//! compact JSON object rendered by the hand-rolled deterministic writer
//! ([`rtds_sim::json::Json::render_compact`]):
//!
//! ```text
//! {"schema":"rtds-workload-trace/1","jobs":3,...caller metadata...}
//! {"t":0.8137,"site":2,"tasks":8,"seed":9231374406799782802}
//! {"t":2.4501,"site":0,"tasks":11,"seed":17291842203306527217}
//! {"t":5.0909,"site":1,"tasks":7,"seed":3493573349215806283}
//! ```
//!
//! Because arrival times render in shortest-round-trip form, parsing a line
//! back yields bit-identical values — replaying a recorded trace feeds the
//! simulation the *exact* workload of the live run, and re-recording a
//! replay reproduces the original trace byte-for-byte (the property tests
//! pin both). The header carries caller metadata (seed, topology size, job
//! count, template description) so a trace is self-contained: `exp_workloads
//! --replay` reconstructs the whole experiment from the file alone.

use crate::source::WorkloadSource;
use crate::spec::JobSpec;
use rtds_sim::json::Json;
use std::io::{BufRead, Write};

/// Identifier of the trace schema (bump on breaking format changes).
pub const TRACE_SCHEMA: &str = "rtds-workload-trace/1";

/// Streams arrivals to a writer as JSONL (see the module docs). Construction
/// writes the header line; [`TraceWriter::record`] appends one arrival.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    recorded: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Creates the writer and emits the header line. `metadata` fields are
    /// appended to the mandatory `schema` field.
    pub fn new(mut out: W, metadata: &[(&str, Json)]) -> std::io::Result<Self> {
        let mut fields = vec![("schema", Json::str(TRACE_SCHEMA))];
        fields.extend(metadata.iter().map(|(k, v)| (*k, v.clone())));
        writeln!(out, "{}", Json::object(fields).render_compact())?;
        Ok(TraceWriter { out, recorded: 0 })
    }

    /// Appends one arrival line.
    pub fn record(&mut self, time: f64, spec: &JobSpec) -> std::io::Result<()> {
        let line = Json::object(vec![
            ("t", Json::Num(time)),
            ("site", Json::UInt(spec.site as u64)),
            ("tasks", Json::UInt(spec.tasks as u64)),
            ("seed", Json::UInt(spec.seed)),
        ]);
        self.recorded += 1;
        writeln!(self.out, "{}", line.render_compact())
    }

    /// Number of arrivals recorded.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Replays a JSONL trace as a [`WorkloadSource`].
///
/// # Panics
/// Malformed traces (bad JSON, wrong schema, missing fields, I/O errors)
/// panic with a line-numbered message: a trace is an experiment artifact,
/// and silently skipping corrupt arrivals would un-pin the replay.
#[derive(Debug)]
pub struct TraceReader<R: BufRead> {
    input: R,
    header: Json,
    line_number: u64,
    /// Reused line buffer — a million-line replay must not allocate one
    /// `String` per arrival.
    line: String,
}

impl<R: BufRead> TraceReader<R> {
    /// Opens a trace: reads and validates the header line.
    pub fn new(mut input: R) -> Self {
        let mut first = String::new();
        input
            .read_line(&mut first)
            .expect("cannot read trace header");
        let header = Json::parse(first.trim_end_matches('\n'))
            .unwrap_or_else(|e| panic!("malformed trace header: {e}"));
        let schema = header.get("schema").and_then(Json::as_str);
        assert!(
            schema == Some(TRACE_SCHEMA),
            "unsupported trace schema {schema:?} (expected {TRACE_SCHEMA:?})"
        );
        TraceReader {
            input,
            header,
            line_number: 1,
            line: String::new(),
        }
    }

    /// The parsed header (schema plus the recorder's metadata).
    pub fn header(&self) -> &Json {
        &self.header
    }

    /// A required `u64` metadata field of the header.
    pub fn header_u64(&self, key: &str) -> Option<u64> {
        self.header.get(key).and_then(Json::as_u64)
    }
}

/// Opens an in-memory trace (the record → replay round-trip used by the
/// `replayed-trace` scenario and the property tests).
pub fn reader_from_string(trace: String) -> TraceReader<std::io::Cursor<Vec<u8>>> {
    TraceReader::new(std::io::Cursor::new(trace.into_bytes()))
}

/// Drains `source` into an in-memory trace with the given header metadata.
pub fn record_to_string(source: &mut impl WorkloadSource, metadata: &[(&str, Json)]) -> String {
    let mut writer = TraceWriter::new(Vec::new(), metadata).expect("in-memory writes cannot fail");
    while let Some((t, spec)) = source.next_arrival() {
        writer
            .record(t, &spec)
            .expect("in-memory writes cannot fail");
    }
    let bytes = writer.finish().expect("in-memory flush cannot fail");
    String::from_utf8(bytes).expect("traces are ASCII JSON")
}

impl<R: BufRead> WorkloadSource for TraceReader<R> {
    fn next_arrival(&mut self) -> Option<(f64, JobSpec)> {
        loop {
            self.line.clear();
            let read = self.input.read_line(&mut self.line).unwrap_or_else(|e| {
                panic!("trace read failed after line {}: {e}", self.line_number)
            });
            if read == 0 {
                return None;
            }
            self.line_number += 1;
            if !self.line.trim().is_empty() {
                break;
            }
        }
        let n = self.line_number;
        let entry = Json::parse(self.line.trim_end_matches('\n'))
            .unwrap_or_else(|e| panic!("malformed trace line {n}: {e}"));
        let field = |key: &str| {
            entry
                .get(key)
                .unwrap_or_else(|| panic!("trace line {n} is missing {key:?}"))
        };
        let t = field("t")
            .as_f64()
            .unwrap_or_else(|| panic!("trace line {n}: \"t\" is not a number"));
        let to_u64 = |key: &str| {
            field(key)
                .as_u64()
                .unwrap_or_else(|| panic!("trace line {n}: {key:?} is not an unsigned integer"))
        };
        Some((
            t,
            JobSpec {
                site: to_u64("site") as usize,
                tasks: to_u64("tasks") as usize,
                seed: to_u64("seed"),
            },
        ))
    }
}

/// Tees a source into a trace writer: arrivals pass through unchanged and
/// are appended to the trace as a side effect (the `--record` mode).
#[derive(Debug)]
pub struct RecordingSource<S: WorkloadSource, W: Write> {
    inner: S,
    writer: TraceWriter<W>,
}

impl<S: WorkloadSource, W: Write> RecordingSource<S, W> {
    /// Wraps `inner`, writing the trace (header included) to `out`.
    pub fn new(inner: S, out: W, metadata: &[(&str, Json)]) -> std::io::Result<Self> {
        Ok(RecordingSource {
            inner,
            writer: TraceWriter::new(out, metadata)?,
        })
    }

    /// Flushes the trace and returns the inner source and writer.
    pub fn finish(self) -> std::io::Result<(S, W)> {
        let out = self.writer.finish()?;
        Ok((self.inner, out))
    }
}

impl<S: WorkloadSource, W: Write> WorkloadSource for RecordingSource<S, W> {
    fn next_arrival(&mut self) -> Option<(f64, JobSpec)> {
        let (t, spec) = self.inner.next_arrival()?;
        self.writer
            .record(t, &spec)
            .expect("trace write failed while recording");
        Some((t, spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{OpenLoopSpec, RateProcess};
    use crate::spec::SizeMix;

    fn sample_source() -> impl WorkloadSource {
        OpenLoopSpec {
            process: RateProcess::Poisson { rate: 0.7 },
            sizes: SizeMix::Uniform { min: 4, max: 12 },
            hotspots: 0,
            horizon: 60.0,
            max_jobs: 0,
        }
        .build(5, 11)
    }

    #[test]
    fn record_then_replay_reproduces_every_arrival() {
        let mut live = sample_source();
        let trace = record_to_string(&mut live, &[("seed", Json::UInt(11))]);
        assert!(trace.starts_with("{\"schema\":\"rtds-workload-trace/1\""));

        let mut replayed = Vec::new();
        let mut reader = reader_from_string(trace.clone());
        assert_eq!(reader.header_u64("seed"), Some(11));
        while let Some(a) = reader.next_arrival() {
            replayed.push(a);
        }
        let mut expected = Vec::new();
        let mut again = sample_source();
        while let Some(a) = again.next_arrival() {
            expected.push(a);
        }
        assert_eq!(replayed, expected);
        assert!(!replayed.is_empty());

        // Re-recording the replay reproduces the trace byte-for-byte.
        let mut reader = reader_from_string(trace.clone());
        let metadata = [("seed", Json::UInt(11))];
        let second = record_to_string(&mut reader, &metadata);
        assert_eq!(second, trace);
    }

    #[test]
    fn recording_source_tees_without_altering_the_stream() {
        let mut recorded = RecordingSource::new(sample_source(), Vec::new(), &[]).unwrap();
        let mut seen = Vec::new();
        while let Some(a) = recorded.next_arrival() {
            seen.push(a);
        }
        let (_, bytes) = recorded.finish().unwrap();
        let trace = String::from_utf8(bytes).unwrap();
        assert_eq!(trace.lines().count(), seen.len() + 1);
        let mut direct = Vec::new();
        let mut source = sample_source();
        while let Some(a) = source.next_arrival() {
            direct.push(a);
        }
        assert_eq!(seen, direct);
    }

    #[test]
    #[should_panic(expected = "unsupported trace schema")]
    fn wrong_schema_is_rejected() {
        reader_from_string("{\"schema\":\"other/9\"}\n".to_string());
    }

    #[test]
    #[should_panic(expected = "malformed trace line 2")]
    fn malformed_lines_are_rejected() {
        let mut reader = reader_from_string(format!(
            "{}\nnot json\n",
            Json::object(vec![("schema", Json::str(TRACE_SCHEMA))]).render_compact()
        ));
        let _ = reader.next_arrival();
    }

    #[test]
    fn blank_lines_are_skipped() {
        let header = Json::object(vec![("schema", Json::str(TRACE_SCHEMA))]).render_compact();
        let mut reader = reader_from_string(format!(
            "{header}\n\n{{\"t\":1.5,\"site\":0,\"tasks\":3,\"seed\":9}}\n\n"
        ));
        let (t, spec) = reader.next_arrival().unwrap();
        assert_eq!(t, 1.5);
        assert_eq!(
            spec,
            JobSpec {
                site: 0,
                tasks: 3,
                seed: 9
            }
        );
        assert!(reader.next_arrival().is_none());
    }
}
