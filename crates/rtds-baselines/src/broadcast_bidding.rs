//! Broadcast focused-addressing / bidding, in the style of Cheng, Stankovic
//! and Ramamritham \[4\].
//!
//! The paper singles out \[4\] as the only previous distributed scheme for
//! competitive DAGs and criticises it for broadcasting surplus information
//! over the entire network. This baseline reproduces that mechanism at the
//! level of detail the reference provides:
//!
//! 1. on local failure the initiator floods a *request for bids* over the
//!    whole network (cost: one message per link per direction, the classical
//!    flooding cost `2·|E|`),
//! 2. every other site answers with a bid carrying its surplus (cost: one
//!    message per site),
//! 3. the initiator offers the whole job to the best bidders in decreasing
//!    surplus order (one offer plus one answer per attempt) until a site
//!    accepts or the candidate list is exhausted.
//!
//! Acceptance quality is good — every site is consulted — but the message
//! cost grows linearly with the network, which is exactly the behaviour the
//! Computing Sphere bounds. Message accounting is analytic (the flood and the
//! bids are not individually simulated); acceptance decisions use the same
//! per-site scheduling plans and admission test as every other policy.

use crate::policy::PolicyReport;
use rtds_graph::Job;
use rtds_net::dijkstra::shortest_paths;
use rtds_net::{Network, SiteId};
use rtds_sched::executor;
use rtds_sched::{ProtocolScheduler, SchedulePlan, Scheduler, SiteResources};
use serde::{Deserialize, Serialize};

/// Parameters of the broadcast-bidding policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BiddingConfig {
    /// How many of the best bidders the initiator tries in turn.
    pub top_bidders: usize,
    /// Observation window used to compute the bid surpluses.
    pub observation_window: f64,
    /// Whether sites may split tasks across idle windows.
    pub preemptive: bool,
}

impl Default for BiddingConfig {
    fn default() -> Self {
        BiddingConfig {
            top_bidders: 3,
            observation_window: 200.0,
            preemptive: false,
        }
    }
}

/// Runs the broadcast-bidding policy over a workload.
pub fn run_broadcast_bidding(
    network: &Network,
    jobs: &[Job],
    config: BiddingConfig,
) -> PolicyReport {
    let n = network.site_count();
    let mut scheds: Vec<ProtocolScheduler> = network
        .sites()
        .map(|s| {
            ProtocolScheduler::new(
                SiteResources::default(),
                network.speed(s),
                config.preemptive,
            )
        })
        .collect();
    let mut report = PolicyReport::default();
    let mut ordered: Vec<&Job> = jobs.iter().collect();
    ordered.sort_by(|a, b| {
        a.arrival_time
            .partial_cmp(&b.arrival_time)
            .unwrap()
            .then(a.id.cmp(&b.id))
    });
    let mut accepted = Vec::new();
    for job in ordered {
        report.submitted += 1;
        let arrival = SiteId(job.arrival_site);
        let now = job.arrival_time;
        // Local attempt first.
        if let Some(adm) = scheds[arrival.0].admit_dag(job, now, None) {
            scheds[arrival.0]
                .reserve_dag(&adm)
                .expect("admission placements fit");
            report.accepted_locally += 1;
            accepted.push((job.id, job.deadline()));
            continue;
        }
        // Flood the request for bids over the whole network and collect one
        // bid per site.
        report.distribution_messages += 2 * network.link_count() as u64;
        report.distribution_messages += (n as u64).saturating_sub(1);
        // Sort candidate sites by decreasing surplus (ties by distance, then
        // id) — "focused addressing" towards the most promising sites.
        let sp = shortest_paths(network, arrival);
        let mut bidders: Vec<(SiteId, f64, f64)> = (0..n)
            .filter(|&s| s != arrival.0)
            .map(|s| {
                let surplus = scheds[s].surplus(now, config.observation_window);
                (SiteId(s), surplus, sp.dist[s])
            })
            .collect();
        bidders.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap()
                .then(a.2.partial_cmp(&b.2).unwrap())
                .then(a.0 .0.cmp(&b.0 .0))
        });
        let mut placed = false;
        for &(site, _surplus, dist) in bidders.iter().take(config.top_bidders.max(1)) {
            // Offer + answer.
            report.distribution_messages += 2;
            // The job (and later its results) must travel to the remote site:
            // its effective earliest start accounts for the transfer delay.
            let effective_now = now + dist;
            if let Some(adm) = scheds[site.0].admit_dag(job, effective_now, None) {
                scheds[site.0]
                    .reserve_dag(&adm)
                    .expect("admission placements fit");
                report.accepted_remotely += 1;
                accepted.push((job.id, job.deadline()));
                placed = true;
                break;
            }
        }
        if !placed {
            report.rejected += 1;
        }
    }
    let plan_refs: Vec<&SchedulePlan> = scheds.iter().flat_map(|s| s.core_plans()).collect();
    for (job, deadline) in accepted {
        if !executor::meets_deadline(&plan_refs, job, deadline) {
            report.deadline_misses += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtds_graph::{JobId, JobParams, TaskGraph, TaskId};
    use rtds_net::generators::{line, ring, DelayDistribution};

    fn chain_job(id: u64, costs: &[f64], release: f64, deadline: f64, site: usize) -> Job {
        let mut g = TaskGraph::from_costs(costs);
        for i in 1..costs.len() {
            g.add_edge(TaskId(i - 1), TaskId(i)).unwrap();
        }
        Job::new(JobId(id), g, JobParams::new(release, deadline), site)
    }

    #[test]
    fn bidding_recovers_jobs_the_local_test_rejects() {
        let net = ring(6, DelayDistribution::Constant(1.0), 0);
        let jobs = vec![
            chain_job(1, &[35.0], 0.0, 40.0, 0),
            chain_job(2, &[35.0], 0.0, 45.0, 0),
            chain_job(3, &[35.0], 0.0, 45.0, 0),
        ];
        let report = run_broadcast_bidding(&net, &jobs, BiddingConfig::default());
        assert_eq!(report.submitted, 3);
        assert_eq!(report.accepted_locally, 1);
        assert_eq!(report.accepted_remotely, 2);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.deadline_misses, 0);
        // Two floods: 2 * (2*6 links + 5 bids + offers/answers).
        assert!(report.distribution_messages >= 2 * (2 * 6 + 5 + 2));
    }

    #[test]
    fn message_cost_grows_with_network_size() {
        let jobs = |site_count: usize| {
            vec![
                chain_job(1, &[35.0], 0.0, 40.0, 0),
                chain_job(2, &[35.0], 0.0, 45.0, 0),
            ]
            .into_iter()
            .map(|mut j| {
                j.arrival_site %= site_count;
                j
            })
            .collect::<Vec<_>>()
        };
        let small = run_broadcast_bidding(
            &ring(8, DelayDistribution::Constant(1.0), 0),
            &jobs(8),
            BiddingConfig::default(),
        );
        let big = run_broadcast_bidding(
            &ring(64, DelayDistribution::Constant(1.0), 0),
            &jobs(64),
            BiddingConfig::default(),
        );
        assert!(big.distribution_messages > 4 * small.distribution_messages);
    }

    #[test]
    fn transfer_delay_counts_against_the_deadline() {
        // A long line with delay 20 per hop: remote sites are reachable but
        // the transfer eats the whole window.
        let net = line(5, DelayDistribution::Constant(20.0), 0);
        let jobs = vec![
            chain_job(1, &[35.0], 0.0, 40.0, 0),
            chain_job(2, &[35.0], 0.0, 50.0, 0),
        ];
        let report = run_broadcast_bidding(&net, &jobs, BiddingConfig::default());
        assert_eq!(report.accepted_locally, 1);
        assert_eq!(report.accepted_remotely, 0);
        assert_eq!(report.rejected, 1);
    }

    #[test]
    fn empty_workload_costs_nothing() {
        let net = ring(4, DelayDistribution::Constant(1.0), 0);
        let report = run_broadcast_bidding(&net, &[], BiddingConfig::default());
        assert_eq!(report.submitted, 0);
        assert_eq!(report.distribution_messages, 0);
    }
}
