//! Criterion bench: the §12 Mapper (list scheduling + EFT + S*) as a function
//! of DAG size and ACS width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rtds_core::{adjust_mapping, map_dag, LaxityDispatch, MapperInput, ProcessorSpec};
use rtds_graph::generators::{CostDistribution, DagGenerator, DagShape, GeneratorConfig};
use std::hint::black_box;

fn bench_mapper(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapper");
    for &tasks in &[10usize, 50, 200, 800] {
        for &procs in &[2usize, 8] {
            group.throughput(Throughput::Elements(tasks as u64));
            let cfg = GeneratorConfig {
                task_count: tasks,
                shape: DagShape::LayeredRandom {
                    layers: 5,
                    edge_prob: 0.2,
                },
                costs: CostDistribution::Uniform {
                    min: 1.0,
                    max: 10.0,
                },
                ccr: 0.0,
                laxity_factor: (2.0, 2.0),
            };
            let graph = DagGenerator::new(cfg, 7).generate_graph();
            let processors: Vec<ProcessorSpec> = (0..procs)
                .map(|i| ProcessorSpec::with_surplus(0.3 + 0.7 * (i as f64 + 1.0) / procs as f64))
                .collect();
            group.bench_with_input(
                BenchmarkId::new("map_dag", format!("{tasks}t_{procs}p")),
                &(graph.clone(), processors.clone()),
                |b, (graph, processors)| {
                    b.iter(|| {
                        let input = MapperInput::new(graph, 0.0, processors, 3.0);
                        black_box(map_dag(&input).unwrap())
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new("map_and_adjust", format!("{tasks}t_{procs}p")),
                &(graph, processors),
                |b, (graph, processors)| {
                    b.iter(|| {
                        let input = MapperInput::new(graph, 0.0, processors, 3.0);
                        let result = map_dag(&input).unwrap();
                        let window = result.makespan * 1.5;
                        black_box(adjust_mapping(
                            graph,
                            &result,
                            0.0,
                            window,
                            processors,
                            LaxityDispatch::Uniform,
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mapper);
criterion_main!(benches);
