//! Engine-side bandwidth plane.
//!
//! Binds the pure [`rtds_flow::FlowModel`] max-min fair-share solver to the
//! simulated network: paths are resolved against the live topology when a
//! transfer's [`crate::event::EventPayload::FlowStart`] fires and pinned for
//! the flow's lifetime, link capacities are mirrored from
//! [`rtds_net::Network`] bandwidths (lazily, only for links a flow actually
//! crosses), and every start/finish/fault re-solves the rate assignment and
//! reschedules in-flight completions.
//!
//! # Rescheduling and epochs
//!
//! The event queue cannot remove an already scheduled completion, so each
//! flow carries a monotonically increasing *epoch*. A recomputation that
//! changes a flow's predicted completion (bit-compared, so byte-identical
//! re-solves never churn the queue) bumps the epoch and pushes a fresh
//! [`crate::event::EventPayload::FlowFinish`]; an event whose epoch no
//! longer matches is stale and ignored. A stalled flow (rate zero — for
//! example a failed link pinning its path) gets an infinite prediction and
//! *no* event; the next recomputation revives it.
//!
//! # Determinism
//!
//! All state lives in `BTreeMap`s keyed by flow id and normalized site
//! pair; recomputation visits flows in ascending id order and links in
//! ascending allocation order, so the plane is a pure function of the
//! event history and snapshot/restore reproduces it bit-exactly.

use rtds_flow::{FlowModel, LinkId};
use rtds_net::{Network, SiteId};
use std::collections::BTreeMap;

/// One in-flight transfer tracked by the engine.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct EngineFlow<M> {
    /// Initiating site.
    pub from: SiteId,
    /// Destination site (the message is delivered here on completion).
    pub to: SiteId,
    /// Message delivered when the transfer completes.
    pub message: M,
    /// Total data volume of the transfer.
    pub volume: f64,
    /// Simulated time at which the flow started occupying bandwidth.
    pub started: f64,
    /// Scheduling epoch of the currently pending completion event.
    pub epoch: u64,
    /// Pinned path as normalized `(a, b)` site-pair keys with `a < b`.
    pub links: Vec<(usize, usize)>,
    /// Currently predicted completion time (`f64::INFINITY` while stalled,
    /// in which case no completion event is pending).
    pub finish: f64,
}

/// A completion event the engine must (re)schedule after a recomputation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct FinishSchedule {
    /// Engine flow id (same id space as the rate model).
    pub flow: u64,
    /// Epoch stamped into the event for staleness detection.
    pub epoch: u64,
    /// Predicted completion time.
    pub time: f64,
    /// Destination site (the completion event's target).
    pub to: SiteId,
}

/// The shared-bandwidth plane owned by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FlowPlane<M> {
    /// Fair-share rate model; link ids are plane-allocated.
    pub model: FlowModel,
    /// In-flight transfers keyed by model flow id.
    pub flows: BTreeMap<u64, EngineFlow<M>>,
    /// Site-pair → model link id, allocated on first use.
    pub link_ids: BTreeMap<(usize, usize), LinkId>,
    /// Next epoch to stamp on a rescheduled completion.
    pub next_epoch: u64,
    /// Network mutation version the link capacities were last mirrored at.
    pub topo_version: u64,
}

impl<M> Default for FlowPlane<M> {
    fn default() -> Self {
        FlowPlane {
            model: FlowModel::new(),
            flows: BTreeMap::new(),
            link_ids: BTreeMap::new(),
            next_epoch: 0,
            topo_version: 0,
        }
    }
}

impl<M> FlowPlane<M> {
    /// Creates an empty plane.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` when no transfer is in flight.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Number of in-flight transfers.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Model link id for the site pair, allocating it (with the network's
    /// current bandwidth as capacity) on first use. A link the network no
    /// longer has gets capacity zero, stalling flows pinned across it.
    fn link_id(&mut self, a: usize, b: usize, network: &Network) -> LinkId {
        let key = (a.min(b), a.max(b));
        if let Some(&id) = self.link_ids.get(&key) {
            return id;
        }
        let capacity = network
            .link_bandwidth(SiteId(key.0), SiteId(key.1))
            .unwrap_or(0.0);
        let id = self.model.add_link(capacity);
        self.link_ids.insert(key, id);
        id
    }

    /// Mirrors link capacities from the network if its topology/attribute
    /// version moved since the last sync. Removed links become capacity
    /// zero (their pinned flows stall until re-solved against a revived
    /// link). Returns `true` when anything was refreshed.
    pub fn sync_with_network(&mut self, network: &Network) -> bool {
        if self.topo_version == network.version() {
            return false;
        }
        self.topo_version = network.version();
        for (&(a, b), &id) in &self.link_ids {
            let capacity = network.link_bandwidth(SiteId(a), SiteId(b)).unwrap_or(0.0);
            self.model.set_link_capacity(id, capacity);
        }
        true
    }

    /// Registers a transfer whose start event just fired, pinning `path`
    /// (sites, inclusive of both endpoints) as its links. The caller must
    /// follow up with [`FlowPlane::reschedule`] to assign rates and obtain
    /// completion events.
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        &mut self,
        now: f64,
        from: SiteId,
        to: SiteId,
        volume: f64,
        message: M,
        path: &[SiteId],
        network: &Network,
    ) -> u64 {
        self.model.advance_to(now);
        let mut links = Vec::with_capacity(path.len().saturating_sub(1));
        let mut model_links = Vec::with_capacity(links.capacity());
        for pair in path.windows(2) {
            let (a, b) = (pair[0].0.min(pair[1].0), pair[0].0.max(pair[1].0));
            links.push((a, b));
            model_links.push(self.link_id(a, b, network));
        }
        let id = self.model.start(model_links, volume);
        self.flows.insert(
            id,
            EngineFlow {
                from,
                to,
                message,
                volume,
                started: now,
                epoch: 0,
                links,
                finish: f64::INFINITY,
            },
        );
        id
    }

    /// Checks a completion event against the flow's current epoch. Returns
    /// `false` for stale events (superseded by a reschedule) and for flows
    /// that no longer exist.
    pub fn finish_is_current(&self, flow: u64, epoch: u64) -> bool {
        self.flows.get(&flow).is_some_and(|f| f.epoch == epoch)
    }

    /// Removes a completed flow, returning its record for delivery.
    pub fn finish(&mut self, now: f64, flow: u64) -> Option<EngineFlow<M>> {
        self.model.advance_to(now);
        if !self.model.finish(flow) {
            return None;
        }
        self.flows.remove(&flow)
    }

    /// Advances the model to `now`, re-solves the fair-share assignment and
    /// returns the completion events to (re)schedule: one entry per flow
    /// whose predicted completion changed bit-for-bit and is finite. Flows
    /// whose prediction is unchanged keep their pending event; flows that
    /// stalled (infinite prediction) get their epoch bumped with no event,
    /// orphaning any pending one.
    pub fn reschedule(&mut self, now: f64) -> Vec<FinishSchedule> {
        self.model.advance_to(now);
        self.model.recompute();
        let mut out = Vec::new();
        for (&id, flow) in &mut self.flows {
            let predicted = self.model.finish_time(id);
            if predicted.to_bits() == flow.finish.to_bits() {
                continue;
            }
            flow.finish = predicted;
            flow.epoch = self.next_epoch;
            self.next_epoch += 1;
            if predicted.is_finite() {
                out.push(FinishSchedule {
                    flow: id,
                    epoch: flow.epoch,
                    time: predicted,
                    to: flow.to,
                });
            }
        }
        out
    }

    /// Utilization samples for the links currently crossed by at least one
    /// flow: `(a, b, rate / capacity)` for links with finite positive
    /// capacity, in ascending site-pair order. Used for telemetry after a
    /// recomputation.
    pub fn link_utilization(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::new();
        for (&(a, b), &id) in &self.link_ids {
            let capacity = self.model.link_capacity(id);
            if !capacity.is_finite() || capacity <= 0.0 {
                continue;
            }
            let rate = self.model.link_rate(id);
            if rate > 0.0 {
                out.push((a, b, rate / capacity));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtds_net::Network;

    fn line3() -> Network {
        // 0 —1.0— 1 —1.0— 2, both links bandwidth 2.0.
        let mut net = Network::new(3);
        net.add_link_with_bandwidth(SiteId(0), SiteId(1), 1.0, 2.0)
            .unwrap();
        net.add_link_with_bandwidth(SiteId(1), SiteId(2), 1.0, 2.0)
            .unwrap();
        net
    }

    #[test]
    fn start_reschedule_finish_lifecycle() {
        let net = line3();
        let mut plane: FlowPlane<u32> = FlowPlane::new();
        let path = [SiteId(0), SiteId(1), SiteId(2)];
        let id = plane.start(0.0, SiteId(0), SiteId(2), 4.0, 7, &path, &net);
        let scheds = plane.reschedule(0.0);
        assert_eq!(scheds.len(), 1);
        assert_eq!(scheds[0].flow, id);
        // 4.0 volume at bandwidth 2.0 → completion at t = 2.0.
        assert_eq!(scheds[0].time, 2.0);
        assert!(plane.finish_is_current(id, scheds[0].epoch));
        assert!(!plane.finish_is_current(id, scheds[0].epoch + 1));
        let done = plane.finish(2.0, id).unwrap();
        assert_eq!(done.message, 7);
        assert!(plane.is_empty());
    }

    #[test]
    fn unchanged_predictions_do_not_churn_the_queue() {
        let net = line3();
        let mut plane: FlowPlane<u32> = FlowPlane::new();
        let path = [SiteId(0), SiteId(1)];
        plane.start(0.0, SiteId(0), SiteId(1), 4.0, 1, &path, &net);
        let first = plane.reschedule(0.0);
        assert_eq!(first.len(), 1);
        // Re-solving with nothing changed must not emit new events.
        assert!(plane.reschedule(0.5).is_empty());
    }

    #[test]
    fn contention_splits_and_second_start_reschedules_the_first() {
        let net = line3();
        let mut plane: FlowPlane<u32> = FlowPlane::new();
        let a = plane.start(
            0.0,
            SiteId(0),
            SiteId(1),
            4.0,
            1,
            &[SiteId(0), SiteId(1)],
            &net,
        );
        let only = plane.reschedule(0.0);
        assert_eq!(only[0].time, 2.0);
        // Second flow on the same link at t = 1.0: the first has 2.0 volume
        // left, now moving at rate 1.0 → finishes at 3.0.
        let b = plane.start(
            1.0,
            SiteId(0),
            SiteId(1),
            4.0,
            2,
            &[SiteId(0), SiteId(1)],
            &net,
        );
        let both = plane.reschedule(1.0);
        let times: BTreeMap<u64, f64> = both.iter().map(|s| (s.flow, s.time)).collect();
        assert_eq!(times[&a], 3.0);
        assert_eq!(times[&b], 5.0);
    }

    #[test]
    fn network_mutation_resyncs_capacities_and_stalls_removed_links() {
        let mut net = line3();
        let mut plane: FlowPlane<u32> = FlowPlane::new();
        plane.topo_version = net.version();
        plane.start(
            0.0,
            SiteId(0),
            SiteId(1),
            4.0,
            1,
            &[SiteId(0), SiteId(1)],
            &net,
        );
        plane.reschedule(0.0);
        assert!(!plane.sync_with_network(&net), "no mutation yet");
        net.remove_link(SiteId(0), SiteId(1)).unwrap();
        assert!(plane.sync_with_network(&net));
        let after = plane.reschedule(1.0);
        assert!(after.is_empty(), "stalled flow must not schedule an event");
        let flow = plane.flows.values().next().unwrap();
        assert!(flow.finish.is_infinite());
    }

    #[test]
    fn utilization_reports_only_loaded_finite_links() {
        let net = line3();
        let mut plane: FlowPlane<u32> = FlowPlane::new();
        plane.start(
            0.0,
            SiteId(0),
            SiteId(1),
            4.0,
            1,
            &[SiteId(0), SiteId(1)],
            &net,
        );
        plane.reschedule(0.0);
        let util = plane.link_utilization();
        assert_eq!(util, vec![(0, 1, 1.0)]);
    }
}
