//! Offline stub for `serde`.
//!
//! Only the derive macros are used anywhere in the RTDS workspace (types are
//! annotated `#[derive(Serialize, Deserialize)]` for forward compatibility
//! but never serialized), so this stub re-exports no-op derives plus empty
//! marker traits under the usual names. Swap in the real `serde` once the
//! build environment has registry access (see crates/compat/README.md).

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; never implemented or required.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`; never implemented or required.
pub trait Deserialize<'de> {}
