//! Declarative scenario specifications.
//!
//! A [`Scenario`] is a named, seeded, self-contained description of one
//! experiment: a topology recipe (which network family, which delays, which
//! site speeds), a workload recipe (arrival process, DAG family, laxity
//! tightness) and a perturbation plan (faults injected over the run). Given
//! a sweep seed, every ingredient expands deterministically — two runs of
//! the same `(scenario, seed)` pair are bit-identical.

use crate::perturb::PerturbationPlan;
use rand::prelude::*;
use rand::rngs::StdRng;
use rtds_core::RtdsConfig;
use rtds_graph::generators::{CostDistribution, DagGenerator, DagShape, GeneratorConfig};
use rtds_graph::Job;
use rtds_net::generators::{
    barabasi_albert, complete, erdos_renyi_connected, grid, hypercube, line, random_geometric,
    random_tree, ring, star, DelayDistribution,
};
use rtds_net::{Network, SiteId};
use rtds_sched::SiteResources;
use rtds_sim::arrivals::{ArrivalProcess, ArrivalSchedule};
use rtds_workload::{JobTemplate, OpenLoopSpec};
use serde::{Deserialize, Serialize};

/// Mixes a sweep seed with a fixed salt into an independent stream seed
/// (splitmix64 finalizer), so network generation, workload generation, fault
/// expansion and message-loss draws never share an RNG stream.
pub fn mix_seed(seed: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which topology family to instantiate (all generators come from
/// [`rtds_net::generators`] and always yield a connected network).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TopologyRecipe {
    /// A ring of `sites`.
    Ring { sites: usize },
    /// A line (path) of `sites`.
    Line { sites: usize },
    /// A star with `sites - 1` leaves.
    Star { sites: usize },
    /// A complete graph.
    Complete { sites: usize },
    /// A `width × height` grid; `wrap` makes it a torus.
    Grid {
        width: usize,
        height: usize,
        wrap: bool,
    },
    /// A hypercube of dimension `dim`.
    Hypercube { dim: usize },
    /// A uniformly random spanning tree.
    RandomTree { sites: usize },
    /// A connected Erdős–Rényi graph.
    ErdosRenyi { sites: usize, edge_prob: f64 },
    /// A Barabási–Albert preferential-attachment graph.
    BarabasiAlbert { sites: usize, attach: usize },
    /// A connected random geometric graph in the unit square.
    RandomGeometric { sites: usize, radius: f64 },
}

/// How relative site computing powers are assigned (§13 uniform machines).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpeedRecipe {
    /// Every site at unit speed (the paper's base model).
    Identical,
    /// Every second site is `factor` times faster.
    AlternatingFast { factor: f64 },
    /// Speeds drawn uniformly from `[min, max]`.
    UniformRandom { min: f64, max: f64 },
}

/// How link bandwidth capacities are assigned. Finite capacities feed the
/// engine's shared-bandwidth flow plane: concurrent transfers crossing a
/// link split its capacity max-min fairly. `Unlimited` (the base model)
/// leaves every link uncapacitated and the generated network bit-identical
/// to the pre-flow generators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BandwidthRecipe {
    /// Every link has unlimited capacity (flows never contend).
    Unlimited,
    /// Every link has the same finite capacity (volume units per time unit).
    Constant(f64),
    /// Capacities drawn uniformly from `[min, max]`, in the network's
    /// canonical link order.
    UniformRandom { min: f64, max: f64 },
}

/// Topology recipe plus link delays, bandwidths and site speeds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Network family.
    pub recipe: TopologyRecipe,
    /// Link propagation delays.
    pub delays: DelayDistribution,
    /// Link bandwidth capacities.
    pub bandwidths: BandwidthRecipe,
    /// Site computing powers.
    pub speeds: SpeedRecipe,
}

impl TopologySpec {
    /// Instantiates the network for the given stream seed.
    pub fn build(&self, seed: u64) -> Network {
        let d = self.delays;
        let mut network = match self.recipe {
            TopologyRecipe::Ring { sites } => ring(sites, d, seed),
            TopologyRecipe::Line { sites } => line(sites, d, seed),
            TopologyRecipe::Star { sites } => star(sites, d, seed),
            TopologyRecipe::Complete { sites } => complete(sites, d, seed),
            TopologyRecipe::Grid {
                width,
                height,
                wrap,
            } => grid(width, height, wrap, d, seed),
            TopologyRecipe::Hypercube { dim } => hypercube(dim, d, seed),
            TopologyRecipe::RandomTree { sites } => random_tree(sites, d, seed),
            TopologyRecipe::ErdosRenyi { sites, edge_prob } => {
                erdos_renyi_connected(sites, edge_prob, d, seed)
            }
            TopologyRecipe::BarabasiAlbert { sites, attach } => {
                barabasi_albert(sites, attach, d, seed)
            }
            TopologyRecipe::RandomGeometric { sites, radius } => {
                random_geometric(sites, radius, d, seed)
            }
        };
        match self.bandwidths {
            BandwidthRecipe::Unlimited => {}
            BandwidthRecipe::Constant(capacity) => {
                let links: Vec<(SiteId, SiteId)> =
                    network.links().map(|(a, b, _)| (a, b)).collect();
                for (a, b) in links {
                    network
                        .set_link_bandwidth(a, b, capacity)
                        .expect("generated links exist");
                }
            }
            BandwidthRecipe::UniformRandom { min, max } => {
                let mut rng = StdRng::seed_from_u64(mix_seed(seed, 0xba2d));
                let links: Vec<(SiteId, SiteId)> =
                    network.links().map(|(a, b, _)| (a, b)).collect();
                for (a, b) in links {
                    let capacity = if max > min {
                        rng.random_range(min..=max)
                    } else {
                        min
                    };
                    network
                        .set_link_bandwidth(a, b, capacity)
                        .expect("generated links exist");
                }
            }
        }
        match self.speeds {
            SpeedRecipe::Identical => {}
            SpeedRecipe::AlternatingFast { factor } => {
                for s in 0..network.site_count() {
                    if s % 2 == 0 {
                        network.set_speed(SiteId(s), factor);
                    }
                }
            }
            SpeedRecipe::UniformRandom { min, max } => {
                let mut rng = StdRng::seed_from_u64(mix_seed(seed, 0x5eed));
                for s in 0..network.site_count() {
                    let speed = if max > min {
                        rng.random_range(min..=max)
                    } else {
                        min
                    };
                    network.set_speed(SiteId(s), speed);
                }
            }
        }
        network
    }
}

/// How per-site resource bundles (cores, memory) are assigned. Like every
/// other recipe this expands deterministically — heterogeneity comes from
/// the site index, never from an RNG — so sweeps stay bit-reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ResourceRecipe {
    /// Every site is a single unit-speed core with unlimited memory (the
    /// paper's model; the default). Schedulers take their degenerate fast
    /// paths and runs are byte-identical to the pre-multicore engine.
    #[default]
    SingleCore,
    /// Every site has the same `cores` and `memory`.
    Uniform { cores: usize, memory: f64 },
    /// Site `s` gets `min_cores + s % (max_cores - min_cores + 1)` cores,
    /// all with the same `memory`.
    Heterogeneous {
        min_cores: usize,
        max_cores: usize,
        memory: f64,
    },
}

impl ResourceRecipe {
    /// `true` for the recipe that reproduces the pre-multicore model.
    pub fn is_degenerate(&self) -> bool {
        matches!(self, ResourceRecipe::SingleCore)
    }

    /// Expands the recipe into one bundle per site, in site order.
    pub fn bundles(&self, site_count: usize) -> Vec<SiteResources> {
        match *self {
            ResourceRecipe::SingleCore => vec![SiteResources::default(); site_count],
            ResourceRecipe::Uniform { cores, memory } => {
                let bundle = SiteResources {
                    cores,
                    memory,
                    ..SiteResources::default()
                };
                vec![bundle; site_count]
            }
            ResourceRecipe::Heterogeneous {
                min_cores,
                max_cores,
                memory,
            } => {
                let span = max_cores.saturating_sub(min_cores) + 1;
                (0..site_count)
                    .map(|s| SiteResources {
                        cores: min_cores + s % span,
                        memory,
                        ..SiteResources::default()
                    })
                    .collect()
            }
        }
    }

    /// Validates the recipe.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            ResourceRecipe::SingleCore => Ok(()),
            ResourceRecipe::Uniform { cores, memory } => {
                if cores == 0 {
                    return Err("Uniform cores must be >= 1".into());
                }
                if memory.is_nan() || memory <= 0.0 {
                    return Err("Uniform memory must be positive".into());
                }
                Ok(())
            }
            ResourceRecipe::Heterogeneous {
                min_cores,
                max_cores,
                memory,
            } => {
                if min_cores == 0 {
                    return Err("Heterogeneous min_cores must be >= 1".into());
                }
                if max_cores < min_cores {
                    return Err("Heterogeneous max_cores must be >= min_cores".into());
                }
                if memory.is_nan() || memory <= 0.0 {
                    return Err("Heterogeneous memory must be positive".into());
                }
                Ok(())
            }
        }
    }
}

/// Workload recipe: how jobs arrive and what each job looks like.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadRecipe {
    /// Per-site arrival process.
    pub arrivals: ArrivalProcess,
    /// Arrival horizon (faults may outlive it; the run always goes to
    /// quiescence).
    pub horizon: f64,
    /// Restrict arrivals to the first `hotspots` sites (0 = all sites).
    pub hotspots: usize,
    /// Tasks per job.
    pub tasks_per_job: usize,
    /// DAG family of each job.
    pub shape: DagShape,
    /// Task cost distribution.
    pub costs: CostDistribution,
    /// Communication-to-computation ratio decorating edges with data
    /// volumes (0 = propagation-delay-only base model).
    pub ccr: f64,
    /// Deadline laxity factor range (deadline = release + factor × critical
    /// path).
    pub laxity: (f64, f64),
}

impl Default for WorkloadRecipe {
    fn default() -> Self {
        WorkloadRecipe {
            arrivals: ArrivalProcess::Poisson { rate: 0.02 },
            horizon: 300.0,
            hotspots: 0,
            tasks_per_job: 8,
            shape: DagShape::LayeredRandom {
                layers: 3,
                edge_prob: 0.3,
            },
            costs: CostDistribution::Uniform { min: 2.0, max: 9.0 },
            ccr: 0.0,
            laxity: (1.6, 2.6),
        }
    }
}

impl WorkloadRecipe {
    /// Builds the job list for the given network and stream seed.
    pub fn build(&self, network: &Network, seed: u64) -> Vec<Job> {
        let schedule = if self.hotspots == 0 {
            ArrivalSchedule::generate(self.arrivals, network.site_count(), self.horizon, seed)
        } else {
            let sites: Vec<SiteId> = network.sites().take(self.hotspots).collect();
            ArrivalSchedule::generate_on_sites(self.arrivals, &sites, self.horizon, seed)
        };
        let cfg = GeneratorConfig {
            task_count: self.tasks_per_job,
            shape: self.shape,
            costs: self.costs,
            ccr: self.ccr,
            laxity_factor: self.laxity,
        };
        let mut generator = DagGenerator::new(cfg, mix_seed(seed, 0xda6));
        schedule
            .arrivals()
            .iter()
            .map(|a| generator.generate_job(a.site.index(), a.time))
            .collect()
    }
}

/// Streaming workload recipe: when present on a [`Scenario`], arrivals are
/// pulled lazily from an open-loop `rtds-workload` source through the
/// bounded-memory streaming path instead of being materialized up front.
/// The DAG-shaping fields of the scenario's [`WorkloadRecipe`] (`shape`,
/// `costs`, `ccr`, `laxity`) still apply — they become the
/// [`JobTemplate`] expanding each compact arrival into a concrete job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamRecipe {
    /// Arrival process, size mix, hotspots, horizon and job cap.
    pub open_loop: OpenLoopSpec,
    /// Route the stream through an in-memory record → replay round-trip
    /// (the `replayed-trace` scenario: every cell exercises the trace
    /// format and proves the replay reproduces the live arrivals).
    pub replay: bool,
}

/// A named, seeded, fully declarative experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Registry name (kebab-case).
    pub name: String,
    /// One-line description shown by `exp_scenarios --list`.
    pub description: String,
    /// Network recipe.
    pub topology: TopologySpec,
    /// Workload recipe.
    pub workload: WorkloadRecipe,
    /// Streaming workload recipe; when set, it replaces the batch workload
    /// (whose arrival fields are ignored) and the cell runs through
    /// [`rtds_core::RtdsSystem::run_streaming`].
    pub stream: Option<StreamRecipe>,
    /// Fault-injection plan (may be empty).
    pub perturbations: PerturbationPlan,
    /// Protocol configuration.
    pub config: RtdsConfig,
    /// Per-site resource bundles (cores, memory).
    pub resources: ResourceRecipe,
    /// Safety cap on processed simulation events per run.
    pub max_events: u64,
}

impl Scenario {
    /// A quiet scenario with the given name and all-default ingredients.
    pub fn named(name: &str, description: &str) -> Self {
        Scenario {
            name: name.to_string(),
            description: description.to_string(),
            topology: TopologySpec {
                recipe: TopologyRecipe::Grid {
                    width: 5,
                    height: 5,
                    wrap: false,
                },
                delays: DelayDistribution::Constant(1.0),
                bandwidths: BandwidthRecipe::Unlimited,
                speeds: SpeedRecipe::Identical,
            },
            workload: WorkloadRecipe::default(),
            stream: None,
            perturbations: PerturbationPlan::none(),
            config: RtdsConfig::default(),
            resources: ResourceRecipe::SingleCore,
            max_events: 50_000_000,
        }
    }

    /// Instantiates the network for a sweep seed.
    pub fn build_network(&self, sweep_seed: u64) -> Network {
        self.topology.build(mix_seed(sweep_seed, 1))
    }

    /// Instantiates the workload for a sweep seed.
    pub fn build_workload(&self, network: &Network, sweep_seed: u64) -> Vec<Job> {
        self.workload.build(network, mix_seed(sweep_seed, 2))
    }

    /// The job template expanding streaming arrivals into concrete jobs
    /// (the DAG-shaping fields of the workload recipe).
    pub fn job_template(&self) -> JobTemplate {
        JobTemplate {
            shape: self.workload.shape,
            costs: self.workload.costs,
            ccr: self.workload.ccr,
            laxity: self.workload.laxity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_mixing_separates_streams() {
        assert_ne!(mix_seed(1, 1), mix_seed(1, 2));
        assert_ne!(mix_seed(1, 1), mix_seed(2, 1));
        assert_eq!(mix_seed(5, 9), mix_seed(5, 9));
    }

    #[test]
    fn every_topology_recipe_builds_connected() {
        let recipes = vec![
            TopologyRecipe::Ring { sites: 8 },
            TopologyRecipe::Line { sites: 8 },
            TopologyRecipe::Star { sites: 8 },
            TopologyRecipe::Complete { sites: 6 },
            TopologyRecipe::Grid {
                width: 3,
                height: 3,
                wrap: true,
            },
            TopologyRecipe::Hypercube { dim: 3 },
            TopologyRecipe::RandomTree { sites: 12 },
            TopologyRecipe::ErdosRenyi {
                sites: 12,
                edge_prob: 0.2,
            },
            TopologyRecipe::BarabasiAlbert {
                sites: 16,
                attach: 2,
            },
            TopologyRecipe::RandomGeometric {
                sites: 16,
                radius: 0.3,
            },
        ];
        for recipe in recipes {
            let spec = TopologySpec {
                recipe,
                delays: DelayDistribution::Constant(1.0),
                bandwidths: BandwidthRecipe::Unlimited,
                speeds: SpeedRecipe::Identical,
            };
            let net = spec.build(3);
            assert!(net.is_connected(), "{recipe:?}");
            assert!(net.site_count() >= 6, "{recipe:?}");
            // Building twice with the same seed is identical.
            assert_eq!(net, spec.build(3));
        }
    }

    #[test]
    fn speed_recipes_apply() {
        let base = TopologySpec {
            recipe: TopologyRecipe::Ring { sites: 6 },
            delays: DelayDistribution::Constant(1.0),
            bandwidths: BandwidthRecipe::Unlimited,
            speeds: SpeedRecipe::AlternatingFast { factor: 2.0 },
        };
        let net = base.build(1);
        assert_eq!(net.speed(SiteId(0)), 2.0);
        assert_eq!(net.speed(SiteId(1)), 1.0);
        let random = TopologySpec {
            speeds: SpeedRecipe::UniformRandom { min: 0.5, max: 3.0 },
            ..base
        };
        let net = random.build(1);
        for s in net.sites() {
            assert!((0.5..=3.0).contains(&net.speed(s)));
        }
        assert_eq!(net, random.build(1));
    }

    #[test]
    fn workloads_are_deterministic_and_respect_hotspots() {
        let spec = TopologySpec {
            recipe: TopologyRecipe::Grid {
                width: 4,
                height: 4,
                wrap: false,
            },
            delays: DelayDistribution::Constant(1.0),
            bandwidths: BandwidthRecipe::Unlimited,
            speeds: SpeedRecipe::Identical,
        };
        let net = spec.build(2);
        let recipe = WorkloadRecipe {
            hotspots: 3,
            ..WorkloadRecipe::default()
        };
        let a = recipe.build(&net, 7);
        let b = recipe.build(&net, 7);
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        assert!(a.iter().all(|j| j.arrival_site < 3));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.params, y.params);
        }
        let c = recipe.build(&net, 8);
        assert_ne!(
            a.iter()
                .map(|j| j.arrival_time.to_bits())
                .collect::<Vec<_>>(),
            c.iter()
                .map(|j| j.arrival_time.to_bits())
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn resource_recipes_expand_deterministically() {
        assert!(ResourceRecipe::SingleCore.is_degenerate());
        assert!(ResourceRecipe::SingleCore
            .bundles(3)
            .iter()
            .all(|b| *b == SiteResources::default()));

        let uniform = ResourceRecipe::Uniform {
            cores: 4,
            memory: 64.0,
        };
        assert!(!uniform.is_degenerate());
        assert!(uniform.validate().is_ok());
        let bundles = uniform.bundles(3);
        assert!(bundles.iter().all(|b| b.cores == 4 && b.memory == 64.0));

        let hetero = ResourceRecipe::Heterogeneous {
            min_cores: 1,
            max_cores: 3,
            memory: 32.0,
        };
        assert!(hetero.validate().is_ok());
        let cores: Vec<usize> = hetero.bundles(5).iter().map(|b| b.cores).collect();
        assert_eq!(cores, vec![1, 2, 3, 1, 2]);
        assert_eq!(hetero.bundles(5), hetero.bundles(5));

        assert!(ResourceRecipe::Uniform {
            cores: 0,
            memory: 1.0
        }
        .validate()
        .is_err());
        assert!(ResourceRecipe::Heterogeneous {
            min_cores: 3,
            max_cores: 2,
            memory: 1.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn named_scenario_defaults_are_sane() {
        let s = Scenario::named("test", "a test scenario");
        assert_eq!(s.name, "test");
        assert!(s.perturbations.is_empty());
        assert!(s.resources.is_degenerate());
        let net = s.build_network(1);
        assert_eq!(net.site_count(), 25);
        let jobs = s.build_workload(&net, 1);
        assert!(!jobs.is_empty());
    }
}
