//! Runner configuration and failure reporting for the `proptest!` macro.

/// Subset of proptest's `ProptestConfig`: only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps un-configured suites fast while
        // still exercising a meaningful spread of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// Stable per-test seed derived from the test name (FNV-1a), so each property
/// explores its own deterministic input sequence.
pub fn name_seed(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Prints the failing case on unwind. Since this stub has no shrinking, the
/// printed values are the exact inputs that violated the property; rerunning
/// the test reproduces them (sampling is deterministic).
pub struct PanicGuard {
    test: &'static str,
    case: u32,
    values: String,
}

impl PanicGuard {
    pub fn new(test: &'static str, case: u32, values: String) -> Self {
        PanicGuard { test, case, values }
    }
}

impl Drop for PanicGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "[proptest stub] property `{}` failed at case {} with inputs: {}",
                self.test, self.case, self.values
            );
        }
    }
}
