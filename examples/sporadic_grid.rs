//! Sporadic Poisson workload on a grid: RTDS against the baseline policies.
//!
//! Mirrors the intro scenario of the paper — sporadic jobs with deadlines
//! arriving anywhere on a distributed system — and prints a comparison of the
//! guarantee ratio and message overhead across policies.
//!
//! Run with: `cargo run --release --example sporadic_grid`

use rtds::baselines::{
    run_broadcast_bidding, run_centralized_oracle, run_local_only, run_random_offload,
    BiddingConfig, RandomOffloadConfig,
};
use rtds::core::{RtdsConfig, RtdsSystem};
use rtds::graph::generators::{CostDistribution, DagGenerator, DagShape, GeneratorConfig};
use rtds::graph::Job;
use rtds::net::generators::{grid, DelayDistribution};
use rtds::sim::arrivals::{ArrivalProcess, ArrivalSchedule};

fn workload(site_count: usize, rate: f64, horizon: f64, seed: u64) -> Vec<Job> {
    let schedule =
        ArrivalSchedule::generate(ArrivalProcess::Poisson { rate }, site_count, horizon, seed);
    let cfg = GeneratorConfig {
        task_count: 10,
        shape: DagShape::LayeredRandom {
            layers: 3,
            edge_prob: 0.3,
        },
        costs: CostDistribution::Uniform { min: 2.0, max: 8.0 },
        ccr: 0.0,
        laxity_factor: (1.8, 3.0),
    };
    let mut generator = DagGenerator::new(cfg, seed.wrapping_mul(31).wrapping_add(7));
    schedule
        .arrivals()
        .iter()
        .map(|a| generator.generate_job(a.site.index(), a.time))
        .collect()
}

fn main() {
    let width = 5;
    let network = grid(width, width, false, DelayDistribution::Constant(1.0), 3);
    let horizon = 400.0;
    let rate = 0.004; // jobs per site per time unit
    let jobs = workload(network.site_count(), rate, horizon, 11);
    println!(
        "{} sites, {} jobs over {:.0} time units (Poisson rate {} per site)",
        network.site_count(),
        jobs.len(),
        horizon,
        rate
    );
    println!();
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>10} {:>12}",
        "policy", "accepted", "rejected", "ratio", "misses", "msgs/job"
    );

    // RTDS (full message-level protocol).
    let mut system = RtdsSystem::new(network.clone(), RtdsConfig::default(), 5);
    system.submit_workload(jobs.clone());
    let rtds = system.run();
    println!(
        "{:<22} {:>9} {:>9} {:>9.3} {:>10} {:>12.1}",
        "rtds (h = 2)",
        rtds.guarantee.accepted(),
        rtds.guarantee.rejected,
        rtds.guarantee_ratio(),
        rtds.deadline_misses(),
        rtds.messages_per_job
    );

    let local = run_local_only(&network, &jobs, false);
    println!(
        "{:<22} {:>9} {:>9} {:>9.3} {:>10} {:>12.1}",
        "local-only",
        local.accepted(),
        local.rejected,
        local.guarantee_ratio(),
        local.deadline_misses,
        local.messages_per_job()
    );

    let random = run_random_offload(&network, &jobs, RandomOffloadConfig::default());
    println!(
        "{:<22} {:>9} {:>9} {:>9.3} {:>10} {:>12.1}",
        "random-offload",
        random.accepted(),
        random.rejected,
        random.guarantee_ratio(),
        random.deadline_misses,
        random.messages_per_job()
    );

    let bidding = run_broadcast_bidding(&network, &jobs, BiddingConfig::default());
    println!(
        "{:<22} {:>9} {:>9} {:>9.3} {:>10} {:>12.1}",
        "broadcast-bidding",
        bidding.accepted(),
        bidding.rejected,
        bidding.guarantee_ratio(),
        bidding.deadline_misses,
        bidding.messages_per_job()
    );

    let oracle = run_centralized_oracle(&network, &jobs, false);
    println!(
        "{:<22} {:>9} {:>9} {:>9.3} {:>10} {:>12.1}",
        "centralized-oracle",
        oracle.accepted(),
        oracle.rejected,
        oracle.guarantee_ratio(),
        oracle.deadline_misses,
        oracle.messages_per_job()
    );

    assert_eq!(rtds.deadline_misses(), 0);
    assert!(rtds.guarantee.accepted() >= local.accepted());
}
