//! Cross-crate integration tests: full RTDS deployments on various
//! topologies, safety properties and comparisons against the baselines.

use rtds::baselines::{run_broadcast_bidding, run_local_only, BiddingConfig};
use rtds::core::{JobOutcomeKind, LaxityDispatch, RtdsConfig, RtdsSystem};
use rtds::graph::generators::{CostDistribution, DagGenerator, DagShape, GeneratorConfig};
use rtds::graph::{Job, JobId, JobParams, TaskGraph, TaskId};
use rtds::net::generators::{erdos_renyi_connected, grid, ring, DelayDistribution};
use rtds::net::{Network, SiteId};
use rtds::sim::arrivals::{ArrivalProcess, ArrivalSchedule};

fn chain_job(id: u64, costs: &[f64], release: f64, deadline: f64, site: usize) -> Job {
    let mut g = TaskGraph::from_costs(costs);
    for i in 1..costs.len() {
        g.add_edge(TaskId(i - 1), TaskId(i)).unwrap();
    }
    Job::new(JobId(id), g, JobParams::new(release, deadline), site)
}

fn poisson_workload(network: &Network, rate: f64, horizon: f64, seed: u64) -> Vec<Job> {
    let schedule = ArrivalSchedule::generate(
        ArrivalProcess::Poisson { rate },
        network.site_count(),
        horizon,
        seed,
    );
    let cfg = GeneratorConfig {
        task_count: 8,
        shape: DagShape::LayeredRandom {
            layers: 3,
            edge_prob: 0.3,
        },
        costs: CostDistribution::Uniform { min: 2.0, max: 8.0 },
        ccr: 0.0,
        laxity_factor: (1.6, 2.6),
    };
    let mut generator = DagGenerator::new(cfg, seed);
    schedule
        .arrivals()
        .iter()
        .map(|a| generator.generate_job(a.site.index(), a.time))
        .collect()
}

/// Safety: no site's plan ever contains overlapping reservations, and every
/// accepted job meets its deadline — across topologies and loads.
#[test]
fn accepted_jobs_never_miss_deadlines() {
    let topologies: Vec<Network> = vec![
        ring(10, DelayDistribution::Constant(1.0), 0),
        grid(
            4,
            4,
            false,
            DelayDistribution::Uniform { min: 0.5, max: 2.0 },
            1,
        ),
        erdos_renyi_connected(
            20,
            0.15,
            DelayDistribution::Uniform { min: 1.0, max: 3.0 },
            2,
        ),
    ];
    for (i, network) in topologies.into_iter().enumerate() {
        let jobs = poisson_workload(&network, 0.01, 300.0, 40 + i as u64);
        let mut system = RtdsSystem::new(network.clone(), RtdsConfig::default(), i as u64);
        system.submit_workload(jobs.clone());
        let report = system.run();
        assert_eq!(report.jobs_submitted as usize, jobs.len());
        assert_eq!(report.deadline_misses(), 0, "topology {i}");
        assert_eq!(report.stats.named("placement_failures"), 0, "topology {i}");
        // Plans are internally consistent.
        for site in network.sites() {
            assert!(system.node(site).check_plan_invariants(), "site {site}");
        }
        // Accounting is consistent.
        assert_eq!(
            report.guarantee.accepted() + report.guarantee.rejected,
            report.jobs_submitted
        );
    }
}

/// The paper's headline claim: cooperation over Computing Spheres accepts at
/// least as many jobs as no cooperation at all, and strictly more when the
/// arrival pattern overloads individual sites.
#[test]
fn rtds_accepts_more_than_local_only_under_hotspots() {
    let network = grid(4, 4, false, DelayDistribution::Constant(1.0), 7);
    // All jobs arrive at two hotspot sites.
    let hot = [SiteId(5), SiteId(6)];
    let schedule =
        ArrivalSchedule::generate_on_sites(ArrivalProcess::Poisson { rate: 0.05 }, &hot, 400.0, 9);
    let cfg = GeneratorConfig {
        task_count: 6,
        shape: DagShape::ForkJoin,
        costs: CostDistribution::Uniform {
            min: 3.0,
            max: 10.0,
        },
        ccr: 0.0,
        laxity_factor: (1.8, 2.8),
    };
    let mut generator = DagGenerator::new(cfg, 123);
    let jobs: Vec<Job> = schedule
        .arrivals()
        .iter()
        .map(|a| generator.generate_job(a.site.index(), a.time))
        .collect();
    assert!(jobs.len() > 20, "workload too small to be meaningful");

    let mut system = RtdsSystem::new(network.clone(), RtdsConfig::default(), 3);
    system.submit_workload(jobs.clone());
    let rtds = system.run();
    let local = run_local_only(&network, &jobs, false);

    assert_eq!(rtds.deadline_misses(), 0);
    assert!(
        rtds.guarantee.accepted() > local.accepted(),
        "RTDS {} vs local-only {}",
        rtds.guarantee.accepted(),
        local.accepted()
    );
    // And some of those acceptances really were distributed.
    assert!(rtds.guarantee.accepted_distributed > 0);
}

/// Bounded spheres: the number of distribution messages per job does not grow
/// with the network, unlike broadcast bidding.
#[test]
fn sphere_overhead_is_independent_of_network_size() {
    let mut rtds_cost = Vec::new();
    let mut bidding_cost = Vec::new();
    for &n in &[16usize, 64, 144] {
        let side = (n as f64).sqrt() as usize;
        let network = grid(side, side, false, DelayDistribution::Constant(1.0), 2);
        // Jobs arrive only at one hotspot so the distribution machinery runs.
        let schedule = ArrivalSchedule::generate_on_sites(
            ArrivalProcess::Poisson { rate: 0.05 },
            &[SiteId(0)],
            200.0,
            5,
        );
        let cfg = GeneratorConfig {
            task_count: 6,
            shape: DagShape::ForkJoin,
            costs: CostDistribution::Uniform { min: 3.0, max: 9.0 },
            ccr: 0.0,
            laxity_factor: (1.6, 2.4),
        };
        let mut generator = DagGenerator::new(cfg, 31);
        let jobs: Vec<Job> = schedule
            .arrivals()
            .iter()
            .map(|a| generator.generate_job(a.site.index(), a.time))
            .collect();

        let mut system = RtdsSystem::new(network.clone(), RtdsConfig::default(), 1);
        system.submit_workload(jobs.clone());
        let report = system.run();
        rtds_cost.push(report.messages_per_job);

        let bidding = run_broadcast_bidding(&network, &jobs, BiddingConfig::default());
        bidding_cost.push(bidding.messages_per_job().expect("non-empty workload"));
    }
    // RTDS cost varies with the sphere, not the network: within a small
    // constant factor across a 9x network growth.
    assert!(
        rtds_cost[2] <= rtds_cost[0] * 2.0 + 5.0,
        "rtds cost grew with the network: {rtds_cost:?}"
    );
    // Broadcast bidding grows roughly linearly with the network size.
    assert!(
        bidding_cost[2] > bidding_cost[0] * 4.0,
        "bidding cost should scale with the network: {bidding_cost:?}"
    );
}

/// Lock contention: several hotspots distributing at once must still
/// terminate, keep counters consistent and never double-book a site.
#[test]
fn concurrent_distributions_respect_locks() {
    let network = ring(8, DelayDistribution::Constant(1.0), 0);
    let mut system = RtdsSystem::new(network.clone(), RtdsConfig::default(), 11);
    // Every site gets two overlapping heavy jobs at the same instant.
    let mut id = 0;
    for site in 0..8 {
        for _ in 0..2 {
            system.submit_job(chain_job(id, &[30.0], 0.0, 45.0, site));
            id += 1;
        }
    }
    let report = system.run();
    assert_eq!(report.jobs_submitted, 16);
    assert_eq!(report.guarantee.accepted() + report.guarantee.rejected, 16);
    assert_eq!(report.deadline_misses(), 0);
    assert_eq!(report.stats.named("placement_failures"), 0);
    for site in network.sites() {
        assert!(system.node(site).check_plan_invariants());
        assert!(!system.node(site).is_locked(), "site {site} left locked");
        assert_eq!(
            system.node(site).queued_len(),
            0,
            "site {site} left queued jobs"
        );
    }
}

/// The §13 extension switches all run end to end without violating safety.
#[test]
fn extension_configurations_are_safe() {
    let network = {
        let mut net = ring(10, DelayDistribution::Constant(1.0), 3);
        for s in 0..10 {
            if s % 2 == 0 {
                net.set_speed(SiteId(s), 2.0);
            }
        }
        net
    };
    let jobs = poisson_workload(&network, 0.012, 250.0, 77);
    let configs = vec![
        RtdsConfig {
            preemptive: true,
            ..RtdsConfig::default()
        },
        RtdsConfig {
            uniform_machines: true,
            ..RtdsConfig::default()
        },
        RtdsConfig {
            laxity_dispatch: LaxityDispatch::BusynessWeighted,
            ..RtdsConfig::default()
        },
        RtdsConfig {
            data_volume_aware: true,
            throughput: 2.0,
            ..RtdsConfig::default()
        },
        RtdsConfig {
            exact_acs_diameter: true,
            ..RtdsConfig::default()
        },
        RtdsConfig {
            max_acs_size: 2,
            ..RtdsConfig::default()
        },
        RtdsConfig {
            sphere_radius: 1,
            ..RtdsConfig::default()
        },
        RtdsConfig {
            sphere_radius: 4,
            ..RtdsConfig::default()
        },
    ];
    for (i, config) in configs.into_iter().enumerate() {
        let mut system = RtdsSystem::new(network.clone(), config, i as u64);
        system.submit_workload(jobs.clone());
        let report = system.run();
        assert_eq!(report.deadline_misses(), 0, "config {i}");
        assert_eq!(report.stats.named("placement_failures"), 0, "config {i}");
        assert_eq!(
            report.guarantee.accepted() + report.guarantee.rejected,
            report.jobs_submitted,
            "config {i}"
        );
    }
}

/// A job that cannot run anywhere is rejected everywhere, never half-placed.
#[test]
fn infeasible_jobs_leave_no_residue() {
    let network = ring(6, DelayDistribution::Constant(1.0), 0);
    let mut system = RtdsSystem::new(network.clone(), RtdsConfig::default(), 0);
    system.submit_job(chain_job(1, &[100.0, 100.0], 0.0, 50.0, 0));
    let report = system.run();
    assert_eq!(report.guarantee.rejected, 1);
    assert_eq!(report.jobs[0].outcome, JobOutcomeKind::Rejected);
    for site in network.sites() {
        assert!(
            system.node(site).plan_is_empty(),
            "site {site} kept reservations"
        );
        assert!(!system.node(site).is_locked());
    }
}
