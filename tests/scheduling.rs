//! Multicore equivalence gate: with the default site model — one core,
//! unlimited memory, the protocol scheduler and single-core demands — every
//! registry scenario must reproduce the pre-multicore sweep bytes exactly,
//! regardless of thread count. The fixture was recorded immediately before
//! the `SiteResources`/`Scheduler` refactor landed; any drift here means the
//! degenerate path no longer delegates verbatim to the single-plan
//! primitives.

use rtds::core::DemandRule;
use rtds::scenarios::{builtin_scenarios, run_sweep, Scenario, SweepConfig};
use rtds::sched::SchedulerKind;

const PRE_MULTICORE_SWEEP: &str = include_str!("fixtures/sweep_pre_multicore_seed1.json");

/// The scenarios that existed before the multicore model: default scheduler,
/// default demands, default (degenerate) resource recipe.
fn pre_multicore_scenarios() -> Vec<Scenario> {
    builtin_scenarios()
        .into_iter()
        .filter(|s| {
            s.config.scheduler == SchedulerKind::Protocol
                && s.config.demand == DemandRule::SingleCore
                && s.resources.is_degenerate()
        })
        .collect()
}

#[test]
fn default_model_reproduces_the_pre_multicore_sweep_bytes() {
    let scenarios = pre_multicore_scenarios();
    assert!(
        scenarios.len() >= 16,
        "the pre-multicore registry had 16 scenarios, found {}",
        scenarios.len()
    );
    for threads in [1, 2, 4] {
        let report = run_sweep(&scenarios, &SweepConfig::new(1, 1, threads));
        assert_eq!(
            report.to_json(),
            PRE_MULTICORE_SWEEP,
            "sweep bytes drifted from the pre-multicore fixture (threads = {threads})"
        );
    }
}
