//! # rtds-flow — shared-bandwidth flow-level network model
//!
//! A dependency-free max-min fair-share flow model in the style of
//! flow-level network simulators (SimGrid, dslab-network): a *flow* is a
//! transfer of `volume` bytes across a fixed set of links, and all flows
//! crossing a link split its capacity **max-min fairly** — the solver
//! progressively fills rates until every flow is blocked by a saturated
//! bottleneck link on which it holds a maximal rate.
//!
//! The crate is pure bookkeeping plus arithmetic: it knows nothing about
//! events, sites or messages. The simulation engine drives it
//! *event-sparsely* — rates only change when a flow starts or finishes (or
//! a link's capacity changes), so the engine
//!
//! 1. calls [`FlowModel::advance_to`] to integrate `remaining -= rate · Δt`
//!    up to the current simulation time,
//! 2. mutates the flow set ([`FlowModel::start`] / [`FlowModel::finish`])
//!    or a capacity ([`FlowModel::set_link_capacity`]),
//! 3. calls [`FlowModel::recompute`] to re-solve the bottleneck
//!    assignment, and
//! 4. reads [`FlowModel::finish_time`] for each flow to (re)schedule
//!    completion events.
//!
//! ## Determinism
//!
//! Everything here is exact IEEE-754 arithmetic applied in a fixed order:
//! links are scanned in ascending [`LinkId`] order and flows in ascending
//! [`FlowId`] order (a `BTreeMap` walk), so the same flow set always
//! produces bit-identical rates. There is no randomness, no wall-clock and
//! no hashing — the model is snapshot/restore-compatible by serialising
//! its raw parts bit-for-bit (see [`FlowModel::raw_flows`] /
//! [`FlowModel::from_raw_parts`]); the engine wraps that in the versioned
//! `rtds-flow-snapshot/1` section (see `docs/NETWORK.md`).
//!
//! ## The solver
//!
//! [`max_min_rates`] implements classic progressive filling: repeatedly
//! find the link whose residual capacity divided by its number of
//! still-unfrozen flows is smallest, freeze every flow crossing such a
//! bottleneck at that fair share, charge the frozen rates to every link
//! they cross, and repeat. Each round freezes at least one flow, so the
//! loop runs at most `flows` times. Links with `f64::INFINITY` capacity
//! never constrain anything; a flow whose every link is unconstrained gets
//! an infinite rate (the engine treats that as "completes instantly").
//!
//! ```
//! use rtds_flow::FlowModel;
//!
//! let mut model = FlowModel::new();
//! let link = model.add_link(10.0);
//! let a = model.start(vec![link], 100.0);
//! let b = model.start(vec![link], 100.0);
//! model.recompute();
//! // Two flows share the 10-unit link max-min fairly: 5 units each.
//! assert_eq!(model.rate(a), 5.0);
//! assert_eq!(model.rate(b), 5.0);
//! assert_eq!(model.finish_time(a), 20.0);
//! ```

use std::collections::BTreeMap;

/// Identifier of a link inside a [`FlowModel`]; allocated densely by
/// [`FlowModel::add_link`].
pub type LinkId = u32;

/// Identifier of a flow inside a [`FlowModel`]; monotonically increasing,
/// never reused, so a stale reference can always be detected.
pub type FlowId = u64;

/// One in-flight transfer: the links it crosses, the volume still to move
/// and the rate assigned by the last [`max_min_rates`] solve.
#[derive(Debug, Clone, PartialEq)]
struct FlowState {
    links: Vec<LinkId>,
    remaining: f64,
    rate: f64,
}

/// Max-min fair-share flow model over a set of capacitated links.
///
/// See the [crate docs](crate) for the drive protocol and the determinism
/// argument.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlowModel {
    capacities: Vec<f64>,
    flows: BTreeMap<FlowId, FlowState>,
    next_id: FlowId,
    time: f64,
}

impl FlowModel {
    /// An empty model at time 0 with no links and no flows.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a link with the given capacity (use `f64::INFINITY` for an
    /// unconstrained link) and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is NaN or negative.
    pub fn add_link(&mut self, capacity: f64) -> LinkId {
        assert!(
            capacity >= 0.0,
            "link capacity must be non-negative, got {capacity}"
        );
        let id = self.capacities.len() as LinkId;
        self.capacities.push(capacity);
        id
    }

    /// Number of links registered so far.
    pub fn link_count(&self) -> usize {
        self.capacities.len()
    }

    /// Capacity of a link.
    pub fn link_capacity(&self, link: LinkId) -> f64 {
        self.capacities[link as usize]
    }

    /// Updates a link's capacity. Existing rates keep their old values
    /// until the next [`recompute`](Self::recompute) — callers must
    /// [`advance_to`](Self::advance_to) the mutation time first so the
    /// old rate is integrated over the interval it was actually valid.
    pub fn set_link_capacity(&mut self, link: LinkId, capacity: f64) {
        assert!(
            capacity >= 0.0,
            "link capacity must be non-negative, got {capacity}"
        );
        self.capacities[link as usize] = capacity;
    }

    /// Total rate currently assigned across a link (sum over flows that
    /// cross it). Meaningful for utilisation telemetry.
    pub fn link_rate(&self, link: LinkId) -> f64 {
        let mut total = 0.0;
        for flow in self.flows.values() {
            if flow.links.contains(&link) && flow.rate.is_finite() {
                total += flow.rate;
            }
        }
        total
    }

    /// The model's current time (the argument of the last
    /// [`advance_to`](Self::advance_to)).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Integrates every flow's progress up to `time`:
    /// `remaining -= rate · (time − self.time)`, clamped at zero.
    ///
    /// # Panics
    ///
    /// Panics if `time` is non-finite or moves backwards by more than a
    /// rounding epsilon.
    pub fn advance_to(&mut self, time: f64) {
        assert!(
            time.is_finite() && time + 1e-9 >= self.time,
            "flow model time must advance monotonically ({} -> {time})",
            self.time
        );
        let dt = time - self.time;
        if dt > 0.0 {
            for flow in self.flows.values_mut() {
                if flow.rate.is_infinite() {
                    flow.remaining = 0.0;
                } else {
                    flow.remaining = (flow.remaining - flow.rate * dt).max(0.0);
                }
            }
            self.time = time;
        }
    }

    /// Registers a new flow over `links` carrying `volume` units and
    /// returns its id. The new flow's rate is zero until the next
    /// [`recompute`](Self::recompute).
    ///
    /// An empty link set models a transfer that crosses no constrained
    /// resource (e.g. a site talking to itself): it gets an infinite rate
    /// and finishes immediately.
    ///
    /// # Panics
    ///
    /// Panics if `volume` is non-finite or negative, or any link id is out
    /// of range.
    pub fn start(&mut self, links: Vec<LinkId>, volume: f64) -> FlowId {
        assert!(
            volume.is_finite() && volume >= 0.0,
            "flow volume must be finite and non-negative, got {volume}"
        );
        for &link in &links {
            assert!(
                (link as usize) < self.capacities.len(),
                "unknown link {link} in flow"
            );
        }
        let id = self.next_id;
        self.next_id += 1;
        self.flows.insert(
            id,
            FlowState {
                links,
                remaining: volume,
                rate: 0.0,
            },
        );
        id
    }

    /// Removes a flow (normally because it finished). Returns `true` if
    /// the flow existed. Remaining flows keep their rates until the next
    /// [`recompute`](Self::recompute).
    pub fn finish(&mut self, flow: FlowId) -> bool {
        self.flows.remove(&flow).is_some()
    }

    /// Re-solves the max-min fair-share assignment for the current flow
    /// set, overwriting every flow's rate.
    pub fn recompute(&mut self) {
        let link_sets: Vec<&[LinkId]> = self.flows.values().map(|f| f.links.as_slice()).collect();
        let rates = max_min_rates(&self.capacities, &link_sets);
        for (flow, rate) in self.flows.values_mut().zip(rates) {
            flow.rate = rate;
        }
    }

    /// The absolute time at which a flow completes at its current rate:
    /// `time + remaining / rate`. Returns the current time for finished or
    /// infinite-rate flows and `f64::INFINITY` for stalled (zero-rate)
    /// flows, which must not be scheduled until a recompute revives them.
    pub fn finish_time(&self, flow: FlowId) -> f64 {
        let f = &self.flows[&flow];
        if f.remaining <= 0.0 || f.rate.is_infinite() {
            self.time
        } else if f.rate <= 0.0 {
            f64::INFINITY
        } else {
            self.time + f.remaining / f.rate
        }
    }

    /// Current rate of a flow (as of the last recompute).
    pub fn rate(&self, flow: FlowId) -> f64 {
        self.flows[&flow].rate
    }

    /// Volume still to transfer (as of the last advance).
    pub fn remaining(&self, flow: FlowId) -> f64 {
        self.flows[&flow].remaining
    }

    /// The links a flow crosses.
    pub fn links(&self, flow: FlowId) -> &[LinkId] {
        &self.flows[&flow].links
    }

    /// Whether the flow id is live (started and not yet finished).
    pub fn contains(&self, flow: FlowId) -> bool {
        self.flows.contains_key(&flow)
    }

    /// Number of in-flight flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// True when no flows are in flight.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Live flow ids in ascending order.
    pub fn flow_ids(&self) -> impl Iterator<Item = FlowId> + '_ {
        self.flows.keys().copied()
    }

    /// Link capacities in [`LinkId`] order (snapshot support).
    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }

    /// Next id [`start`](Self::start) would hand out (snapshot support).
    pub fn next_id(&self) -> FlowId {
        self.next_id
    }

    /// Raw per-flow state `(id, links, remaining, rate)` in ascending id
    /// order, for bit-exact serialisation.
    pub fn raw_flows(&self) -> impl Iterator<Item = (FlowId, &[LinkId], f64, f64)> + '_ {
        self.flows
            .iter()
            .map(|(&id, f)| (id, f.links.as_slice(), f.remaining, f.rate))
    }

    /// Rebuilds a model from serialised parts. Rates are restored verbatim
    /// (not recomputed) so a restored run continues bit-identically.
    ///
    /// # Panics
    ///
    /// Panics if a flow references an out-of-range link or an id at or
    /// above `next_id`.
    pub fn from_raw_parts(
        capacities: Vec<f64>,
        time: f64,
        next_id: FlowId,
        flows: Vec<(FlowId, Vec<LinkId>, f64, f64)>,
    ) -> Self {
        let mut map = BTreeMap::new();
        for (id, links, remaining, rate) in flows {
            assert!(id < next_id, "flow id {id} not below next_id {next_id}");
            for &link in &links {
                assert!(
                    (link as usize) < capacities.len(),
                    "unknown link {link} in restored flow {id}"
                );
            }
            map.insert(
                id,
                FlowState {
                    links,
                    remaining,
                    rate,
                },
            );
        }
        Self {
            capacities,
            flows: map,
            next_id,
            time,
        }
    }
}

/// Solves the max-min fair-share rate assignment by progressive filling.
///
/// `capacities[l]` is the capacity of link `l`; `flows[i]` lists the links
/// flow `i` crosses. Returns one rate per flow. Flows crossing no links
/// (and flows all of whose links are infinite-capacity) get
/// `f64::INFINITY`; flows crossing a zero-capacity link get `0.0`.
///
/// The result is the unique max-min fair allocation: every flow with a
/// finite rate is blocked by at least one *saturated* link on which its
/// rate is maximal, so no flow's rate can be increased without decreasing
/// that of some flow with an equal-or-smaller rate.
pub fn max_min_rates(capacities: &[f64], flows: &[&[LinkId]]) -> Vec<f64> {
    let n = flows.len();
    let l = capacities.len();
    let mut rates = vec![0.0f64; n];
    let mut frozen = vec![false; n];
    // Capacity already committed to frozen flows, per link.
    let mut used = vec![0.0f64; l];
    let mut unfrozen = 0usize;
    for (i, links) in flows.iter().enumerate() {
        if links.is_empty() {
            rates[i] = f64::INFINITY;
            frozen[i] = true;
        } else {
            unfrozen += 1;
        }
    }
    let mut count = vec![0u32; l];
    let mut bottleneck = vec![false; l];
    while unfrozen > 0 {
        count.iter_mut().for_each(|c| *c = 0);
        for (i, links) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            for &link in *links {
                count[link as usize] += 1;
            }
        }
        // The tightest fair share over all contended links.
        let mut share = f64::INFINITY;
        for link in 0..l {
            if count[link] == 0 {
                continue;
            }
            let residual = (capacities[link] - used[link]).max(0.0);
            let s = residual / count[link] as f64;
            if s < share {
                share = s;
            }
        }
        if share.is_infinite() {
            // Every remaining flow crosses only unconstrained links.
            for (i, rate) in rates.iter_mut().enumerate() {
                if !frozen[i] {
                    *rate = f64::INFINITY;
                    frozen[i] = true;
                }
            }
            break;
        }
        // Freeze every flow crossing a bottleneck link at the fair share.
        for link in 0..l {
            bottleneck[link] = if count[link] == 0 {
                false
            } else {
                let residual = (capacities[link] - used[link]).max(0.0);
                residual / count[link] as f64 <= share
            };
        }
        let mut froze_any = false;
        for (i, links) in flows.iter().enumerate() {
            if frozen[i] || !links.iter().any(|&lk| bottleneck[lk as usize]) {
                continue;
            }
            rates[i] = share;
            frozen[i] = true;
            unfrozen -= 1;
            froze_any = true;
            for &link in *links {
                used[link as usize] += share;
            }
        }
        debug_assert!(froze_any, "progressive filling froze no flow");
        if !froze_any {
            break; // defensive: avoid an infinite loop on fp pathology
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Independent reference: freeze exactly one bottleneck link per
    /// round, recomputing everything from scratch. Structurally different
    /// from the production solver (which freezes all tied bottlenecks at
    /// once and maintains incremental residuals), but computes the same
    /// allocation.
    fn reference_rates(capacities: &[f64], flows: &[&[LinkId]]) -> Vec<f64> {
        let n = flows.len();
        let mut rates = vec![f64::NAN; n];
        let mut frozen: Vec<bool> = flows.iter().map(|links| links.is_empty()).collect();
        for (i, done) in frozen.iter().enumerate() {
            if *done {
                rates[i] = f64::INFINITY;
            }
        }
        loop {
            if frozen.iter().all(|&f| f) {
                break;
            }
            // Residual capacity after charging every frozen flow.
            let mut best: Option<(f64, usize)> = None;
            for (link, &cap) in capacities.iter().enumerate() {
                let mut used = 0.0;
                let mut waiting = 0u32;
                for (i, links) in flows.iter().enumerate() {
                    if !links.contains(&(link as LinkId)) {
                        continue;
                    }
                    if frozen[i] {
                        if rates[i].is_finite() {
                            used += rates[i];
                        }
                    } else {
                        waiting += 1;
                    }
                }
                if waiting == 0 {
                    continue;
                }
                let share = (cap - used).max(0.0) / waiting as f64;
                if best.is_none() || share < best.unwrap().0 {
                    best = Some((share, link));
                }
            }
            match best {
                Some((share, link)) if share.is_finite() => {
                    for (i, links) in flows.iter().enumerate() {
                        if !frozen[i] && links.contains(&(link as LinkId)) {
                            rates[i] = share;
                            frozen[i] = true;
                        }
                    }
                }
                _ => {
                    // Only unconstrained flows left.
                    for (i, done) in frozen.iter_mut().enumerate() {
                        if !*done {
                            rates[i] = f64::INFINITY;
                            *done = true;
                        }
                    }
                }
            }
        }
        rates
    }

    #[test]
    fn single_flow_gets_the_bottleneck_capacity() {
        let rates = max_min_rates(&[10.0, 4.0], &[&[0, 1]]);
        assert_eq!(rates, vec![4.0]);
    }

    #[test]
    fn two_flows_split_a_link_evenly() {
        let rates = max_min_rates(&[10.0], &[&[0], &[0]]);
        assert_eq!(rates, vec![5.0, 5.0]);
    }

    #[test]
    fn classic_three_flow_line_network() {
        // Links A and B in series; flow 0 crosses both, flows 1 and 2 use
        // one each. With caps 1.0 each: flow 0 and flow 1 share A (0.5
        // each), flow 2 then gets the residual 0.5 on B... except flow 0
        // is already limited to 0.5, so flow 2 gets 1.0 - 0.5 = 0.5.
        let rates = max_min_rates(&[1.0, 1.0], &[&[0, 1], &[0], &[1]]);
        assert_eq!(rates, vec![0.5, 0.5, 0.5]);
    }

    #[test]
    fn unequal_bottlenecks_give_unequal_rates() {
        // Flow 0 pinned by a tight private link; flow 1 then takes the
        // rest of the shared link.
        let rates = max_min_rates(&[1.0, 10.0], &[&[0, 1], &[1]]);
        assert_eq!(rates, vec![1.0, 9.0]);
    }

    #[test]
    fn infinite_capacity_never_constrains() {
        let rates = max_min_rates(&[f64::INFINITY, 6.0], &[&[0], &[0, 1], &[1]]);
        assert_eq!(rates, vec![f64::INFINITY, 3.0, 3.0]);
    }

    #[test]
    fn zero_capacity_stalls_its_flows() {
        let rates = max_min_rates(&[0.0, 8.0], &[&[0, 1], &[1]]);
        assert_eq!(rates[0], 0.0);
        assert_eq!(rates[1], 8.0);
    }

    #[test]
    fn empty_link_set_is_unconstrained() {
        let rates = max_min_rates(&[1.0], &[&[], &[0]]);
        assert_eq!(rates, vec![f64::INFINITY, 1.0]);
    }

    #[test]
    fn model_advances_and_finishes_flows() {
        let mut model = FlowModel::new();
        let link = model.add_link(10.0);
        let a = model.start(vec![link], 100.0);
        let b = model.start(vec![link], 40.0);
        model.recompute();
        assert_eq!(model.rate(a), 5.0);
        assert_eq!(model.finish_time(b), 8.0);

        // b finishes at t=8; a has moved 40 of its 100 units.
        model.advance_to(8.0);
        assert!(model.finish(b));
        model.recompute();
        assert_eq!(model.remaining(a), 60.0);
        assert_eq!(model.rate(a), 10.0);
        assert_eq!(model.finish_time(a), 14.0);
    }

    #[test]
    fn capacity_change_reshapes_in_flight_rates() {
        let mut model = FlowModel::new();
        let link = model.add_link(8.0);
        let a = model.start(vec![link], 80.0);
        model.recompute();
        assert_eq!(model.finish_time(a), 10.0);

        model.advance_to(5.0);
        model.set_link_capacity(link, 2.0);
        model.recompute();
        assert_eq!(model.remaining(a), 40.0);
        assert_eq!(model.finish_time(a), 25.0);

        // Starving the link entirely stalls the flow.
        model.set_link_capacity(link, 0.0);
        model.recompute();
        assert_eq!(model.finish_time(a), f64::INFINITY);
    }

    #[test]
    fn stalled_then_revived_flow_resumes() {
        let mut model = FlowModel::new();
        let link = model.add_link(0.0);
        let a = model.start(vec![link], 10.0);
        model.recompute();
        assert_eq!(model.rate(a), 0.0);
        model.advance_to(100.0);
        assert_eq!(model.remaining(a), 10.0);
        model.set_link_capacity(link, 5.0);
        model.recompute();
        assert_eq!(model.finish_time(a), 102.0);
    }

    #[test]
    fn raw_parts_round_trip_bit_exactly() {
        let mut model = FlowModel::new();
        let l0 = model.add_link(3.0);
        let l1 = model.add_link(f64::INFINITY);
        model.start(vec![l0, l1], 7.5);
        model.start(vec![l1], 2.25);
        model.recompute();
        model.advance_to(1.375);

        let flows: Vec<_> = model
            .raw_flows()
            .map(|(id, links, remaining, rate)| (id, links.to_vec(), remaining, rate))
            .collect();
        let restored = FlowModel::from_raw_parts(
            model.capacities().to_vec(),
            model.time(),
            model.next_id(),
            flows,
        );
        assert_eq!(restored, model);
    }

    #[test]
    fn flow_ids_are_never_reused() {
        let mut model = FlowModel::new();
        let link = model.add_link(1.0);
        let a = model.start(vec![link], 1.0);
        model.finish(a);
        let b = model.start(vec![link], 1.0);
        assert_ne!(a, b);
        assert!(!model.contains(a));
        assert!(model.contains(b));
    }

    /// Max-min optimality certificate: every finite-rate flow crosses a
    /// saturated link on which its rate is maximal.
    fn assert_max_min(capacities: &[f64], flows: &[&[LinkId]], rates: &[f64]) {
        let tol = 1e-9;
        // Rates are non-negative and links respect capacity.
        for &r in rates {
            assert!(r >= 0.0, "negative rate {r}");
        }
        for (link, &cap) in capacities.iter().enumerate() {
            if cap.is_infinite() {
                continue;
            }
            let total: f64 = flows
                .iter()
                .zip(rates)
                .filter(|(links, _)| links.contains(&(link as LinkId)))
                .map(|(_, &r)| r)
                .sum();
            assert!(
                total <= cap + tol * (1.0 + cap),
                "link {link} over capacity: {total} > {cap}"
            );
        }
        // Bottleneck certificate.
        for (i, links) in flows.iter().enumerate() {
            if rates[i].is_infinite() {
                continue;
            }
            let has_bottleneck = links.iter().any(|&lk| {
                let link = lk as usize;
                let cap = capacities[link];
                if cap.is_infinite() {
                    return false;
                }
                let total: f64 = flows
                    .iter()
                    .zip(rates)
                    .filter(|(ls, _)| ls.contains(&lk))
                    .map(|(_, &r)| r)
                    .sum();
                let saturated = total >= cap - tol * (1.0 + cap);
                let maximal = flows
                    .iter()
                    .zip(rates)
                    .filter(|(ls, _)| ls.contains(&lk))
                    .all(|(_, &r)| rates[i] >= r - tol * (1.0 + r.abs()));
                saturated && maximal
            });
            assert!(
                has_bottleneck,
                "flow {i} (rate {}) has no saturated bottleneck link",
                rates[i]
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn solver_satisfies_max_min_optimality(
            caps in proptest::collection::vec(0.5f64..16.0, 1..6),
            picks in proptest::collection::vec(
                proptest::collection::vec(0usize..6, 1..4), 1..7),
        ) {
            let flows: Vec<Vec<LinkId>> = picks
                .iter()
                .map(|p| {
                    let mut links: Vec<LinkId> = p
                        .iter()
                        .map(|&x| (x % caps.len()) as LinkId)
                        .collect();
                    links.sort_unstable();
                    links.dedup();
                    links
                })
                .collect();
            let views: Vec<&[LinkId]> = flows.iter().map(|f| f.as_slice()).collect();
            let rates = max_min_rates(&caps, &views);
            prop_assert_eq!(rates.len(), views.len());
            assert_max_min(&caps, &views, &rates);
        }

        #[test]
        fn solver_matches_brute_force_reference(
            caps in proptest::collection::vec(0.5f64..16.0, 1..5),
            picks in proptest::collection::vec(
                proptest::collection::vec(0usize..5, 1..4), 1..6),
        ) {
            let flows: Vec<Vec<LinkId>> = picks
                .iter()
                .map(|p| {
                    let mut links: Vec<LinkId> = p
                        .iter()
                        .map(|&x| (x % caps.len()) as LinkId)
                        .collect();
                    links.sort_unstable();
                    links.dedup();
                    links
                })
                .collect();
            let views: Vec<&[LinkId]> = flows.iter().map(|f| f.as_slice()).collect();
            let fast = max_min_rates(&caps, &views);
            let slow = reference_rates(&caps, &views);
            for (i, (f, s)) in fast.iter().zip(&slow).enumerate() {
                if f.is_infinite() || s.is_infinite() {
                    prop_assert_eq!(f, s, "flow {} infinite mismatch", i);
                } else {
                    prop_assert!(
                        (f - s).abs() <= 1e-6 * (1.0 + s.abs()),
                        "flow {}: fast {} vs reference {}", i, f, s
                    );
                }
            }
        }

        #[test]
        fn mixed_infinite_capacities_stay_max_min(
            caps in proptest::collection::vec(
                prop_oneof![Just(f64::INFINITY), 0.5f64..8.0], 1..5),
            picks in proptest::collection::vec(
                proptest::collection::vec(0usize..5, 1..3), 1..6),
        ) {
            let flows: Vec<Vec<LinkId>> = picks
                .iter()
                .map(|p| {
                    let mut links: Vec<LinkId> = p
                        .iter()
                        .map(|&x| (x % caps.len()) as LinkId)
                        .collect();
                    links.sort_unstable();
                    links.dedup();
                    links
                })
                .collect();
            let views: Vec<&[LinkId]> = flows.iter().map(|f| f.as_slice()).collect();
            let rates = max_min_rates(&caps, &views);
            assert_max_min(&caps, &views, &rates);
        }
    }
}
