//! Integration tests of the scenario engine through the `rtds` facade: the
//! registry, the fault-injection semantics and the property the whole
//! subsystem hangs on — a zero-probability perturbation plan is
//! event-for-event identical to the unperturbed run, and a real one
//! demonstrably changes the outcome.

use proptest::prelude::*;
use rtds::core::{RtdsSystem, RunReport};
use rtds::scenarios::{
    builtin_scenarios, find_scenario, mix_seed, run_cell, Perturbation, PerturbationPlan, Scenario,
};
use rtds::sim::TraceEvent;

/// Runs one scenario cell by hand (mirroring `runner::run_cell`) with
/// tracing enabled, so tests can compare protocol-visible event streams.
fn traced_run(scenario: &Scenario, seed: u64) -> (RunReport, Vec<TraceEvent>) {
    let network = scenario.build_network(seed);
    let jobs = scenario.build_workload(&network, seed);
    let faults = scenario.perturbations.expand(&network, mix_seed(seed, 3));
    let mut system = RtdsSystem::new(network, scenario.config, mix_seed(seed, 5));
    system.enable_trace();
    system.set_fault_seed(mix_seed(seed, 4));
    for (time, fault) in faults {
        system.schedule_fault(time.max(0.0), fault);
    }
    system.submit_workload(jobs);
    let report = system.run();
    let trace = system.trace().events();
    (report, trace)
}

fn zero_probability_plan() -> PerturbationPlan {
    PerturbationPlan::new(vec![
        Perturbation::MessageLoss {
            start: 30.0,
            end: 200.0,
            probability: 0.0,
        },
        Perturbation::LinkJitter {
            start: 30.0,
            end: 200.0,
            period: 20.0,
            fraction: 0.0,
            factor: (0.5, 2.0),
        },
        Perturbation::LinkFailures {
            start: 30.0,
            end: 200.0,
            count: 0,
            downtime: 10.0,
        },
        Perturbation::SiteCrashes {
            start: 30.0,
            end: 200.0,
            count: 0,
            downtime: 10.0,
        },
    ])
}

proptest! {
    /// Satellite property: a scenario whose faults all have probability /
    /// rate zero is event-for-event identical to the unperturbed run — same
    /// per-job outcomes, same counters, same protocol trace — even though
    /// the no-op `SetMessageLoss` fault events do get scheduled and applied.
    #[test]
    fn zero_probability_faults_leave_the_run_untouched(seed in 0u64..25) {
        let mut quiet = find_scenario("paper-baseline").unwrap();
        assert!(quiet.perturbations.is_empty());
        let mut zeroed = quiet.clone();
        zeroed.perturbations = zero_probability_plan();

        // Shrink the workload so the property sweep stays fast.
        quiet.workload.horizon = 120.0;
        zeroed.workload.horizon = 120.0;

        let (unperturbed, trace_a) = traced_run(&quiet, seed);
        let (zero_faults, trace_b) = traced_run(&zeroed, seed);

        // The zeroed run did process fault events...
        prop_assert_eq!(zero_faults.stats.named("sim_fault_events"), 2);
        // ...but no protocol-visible observable moved.
        prop_assert_eq!(&unperturbed.jobs, &zero_faults.jobs);
        prop_assert_eq!(&unperturbed.guarantee, &zero_faults.guarantee);
        prop_assert_eq!(unperturbed.stats.messages_sent, zero_faults.stats.messages_sent);
        prop_assert_eq!(
            unperturbed.stats.messages_delivered,
            zero_faults.stats.messages_delivered
        );
        prop_assert_eq!(unperturbed.messages_per_job, zero_faults.messages_per_job);
        prop_assert_eq!(trace_a, trace_b);
        prop_assert_eq!(zero_faults.stats.named("sim_lost_random"), 0);
    }
}

#[test]
fn registry_is_reachable_through_the_facade() {
    let scenarios = builtin_scenarios();
    assert!(scenarios.len() >= 8);
    for required in [
        "paper-baseline",
        "overload-burst",
        "flaky-links",
        "partition-and-heal",
        "hetero-speed-sites",
        "wide-low-degree",
        "deep-chain-dags",
        "tight-laxity-storm",
    ] {
        assert!(
            scenarios.iter().any(|s| s.name == required),
            "registry is missing {required}"
        );
    }
}

#[test]
fn message_loss_scenario_changes_the_acceptance_ratio() {
    // lossy-messages shares the paper-baseline topology and workload
    // recipes, so for a fixed seed both run the same jobs on the same
    // network; the injected loss must cost acceptance.
    let baseline = run_cell(&find_scenario("paper-baseline").unwrap(), 1);
    let lossy = run_cell(&find_scenario("lossy-messages").unwrap(), 1);
    assert_eq!(baseline.submitted, lossy.submitted, "same workload");
    assert!(baseline.faults_injected == 0 && lossy.faults_injected > 0);
    assert!(
        lossy.guarantee_ratio < baseline.guarantee_ratio,
        "loss must reduce acceptance: {} vs {}",
        lossy.guarantee_ratio,
        baseline.guarantee_ratio
    );
    assert!(lossy.messages_lost > 0);
    assert_eq!(baseline.deadline_misses, 0);
    assert_eq!(lossy.deadline_misses, 0);
}

#[test]
fn dynamic_network_scenarios_inject_and_survive() {
    for name in ["flaky-links", "partition-and-heal", "site-crash-wave"] {
        let cell = run_cell(&find_scenario(name).unwrap(), 2);
        assert!(cell.faults_injected > 0, "{name} injected nothing");
        assert!(cell.submitted > 0, "{name} ran no jobs");
        // The safety invariant holds even under faults: an accepted job
        // never misses its deadline.
        assert_eq!(cell.deadline_misses, 0, "{name} missed deadlines");
    }
}
