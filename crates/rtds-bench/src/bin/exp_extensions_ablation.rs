//! E5 — ablation of the §13 generalisations: preemption, uniform machines,
//! busyness-weighted laxity dispatching, data-volume-aware communication and
//! the exact-ACS-diameter variant, each compared against the base
//! configuration on the same workload.
//!
//! Run with: `cargo run --release -p rtds-bench --bin exp_extensions_ablation`
//! (`--seed <u64>` defaults to 8, `--json <path>` dumps the table).

use rtds_bench::{comparison_row, workload, ExpArgs, WorkloadSpec};
use rtds_core::{LaxityDispatch, RtdsConfig};
use rtds_net::generators::{ring, DelayDistribution};
use rtds_net::SiteId;
use rtds_scenarios::Json;

fn main() {
    let args = ExpArgs::parse(&[], &[]);
    let seed = args.seed(8);
    // Heterogeneous ring: even sites are twice as fast.
    let mut network = ring(16, DelayDistribution::Constant(1.0), 2);
    for s in 0..16 {
        if s % 2 == 0 {
            network.set_speed(SiteId(s), 2.0);
        }
    }
    let jobs = workload(
        &network,
        WorkloadSpec {
            rate: 0.03,
            horizon: 250.0,
            hotspots: 4,
            seed,
            laxity: (1.4, 2.2),
            ..WorkloadSpec::default()
        },
    );
    println!(
        "== E5: ablation of the §13 extensions (16-site heterogeneous ring, {} jobs) ==",
        jobs.len()
    );
    println!();
    println!(
        "{:<34} {:>9} {:>8} {:>8} {:>12}",
        "configuration", "accepted", "ratio", "misses", "msgs/job"
    );
    let configs: Vec<(&str, RtdsConfig)> = vec![
        ("base (identical, non-preemptive)", RtdsConfig::default()),
        (
            "preemptive local scheduling",
            RtdsConfig {
                preemptive: true,
                ..RtdsConfig::default()
            },
        ),
        (
            "uniform machines (speeds used)",
            RtdsConfig {
                uniform_machines: true,
                ..RtdsConfig::default()
            },
        ),
        (
            "busyness-weighted laxity",
            RtdsConfig {
                laxity_dispatch: LaxityDispatch::BusynessWeighted,
                ..RtdsConfig::default()
            },
        ),
        (
            "exact ACS diameter",
            RtdsConfig {
                exact_acs_diameter: true,
                ..RtdsConfig::default()
            },
        ),
        (
            "ACS capped at 3 members",
            RtdsConfig {
                max_acs_size: 3,
                ..RtdsConfig::default()
            },
        ),
    ];
    let mut json_rows = Vec::new();
    for (label, config) in configs {
        let row = comparison_row(label, &network, &jobs, config, 4);
        println!(
            "{:<34} {:>4}/{:<4} {:>8.3} {:>8} {:>12.1}",
            label,
            row.accepted,
            row.submitted,
            row.ratio.unwrap_or(f64::NAN),
            row.misses,
            row.messages_per_job.unwrap_or(f64::NAN)
        );
        assert_eq!(row.misses, 0);
        json_rows.push(Json::object(vec![
            ("configuration", Json::str(label)),
            ("accepted", Json::UInt(row.accepted)),
            ("submitted", Json::UInt(row.submitted)),
            ("ratio", row.ratio.map(Json::Num).unwrap_or(Json::Null)),
            (
                "messages_per_job",
                row.messages_per_job.map(Json::Num).unwrap_or(Json::Null),
            ),
        ]));
    }
    args.write_json(&Json::object(vec![
        ("experiment", Json::str("extensions_ablation")),
        ("seed", Json::UInt(seed)),
        ("rows", Json::Array(json_rows)),
    ]));
    println!();
    println!("Expected shape: preemption and uniform-machine awareness add a few accepted");
    println!("jobs (more insertion freedom, faster sites charged correctly); the exact ACS");
    println!("diameter slightly improves acceptance by tightening the over-estimate; a");
    println!("small ACS cap trades a little acceptance for fewer messages per job.");
}
