//! E1 — guarantee ratio vs. arrival rate: RTDS against local-only,
//! random-offload, broadcast-bidding and the centralized oracle on a grid
//! with hotspot arrivals.
//!
//! Run with: `cargo run --release -p rtds-bench --bin exp_acceptance_vs_load`
//! (`--seed <u64>` defaults to 42, `--json <path>` dumps the table).

use rtds_bench::{parallel_sweep, policy_comparison, workload, ExpArgs, WorkloadSpec};
use rtds_core::RtdsConfig;
use rtds_net::generators::{grid, DelayDistribution};
use rtds_scenarios::Json;

fn main() {
    let args = ExpArgs::parse(&[], &[]);
    let seed = args.seed(42);
    let network = grid(5, 5, false, DelayDistribution::Constant(1.0), 3);
    let rates = vec![0.01, 0.02, 0.04, 0.08, 0.16];
    println!("== E1: acceptance ratio vs. arrival rate (25-site grid, 4 hotspot sites) ==");
    println!();
    println!(
        "{:>8} {:>6} | {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "rate", "jobs", "rtds", "local", "random", "bcast", "heft", "oracle"
    );
    let net = network.clone();
    let rows = parallel_sweep(rates.clone(), move |rate| {
        let jobs = workload(
            &net,
            WorkloadSpec {
                rate,
                horizon: 300.0,
                hotspots: 4,
                seed,
                ..WorkloadSpec::default()
            },
        );
        let rows = policy_comparison(&net, &jobs, RtdsConfig::default(), 7);
        (rate, jobs.len(), rows)
    });
    let mut json_rows = Vec::new();
    for (rate, njobs, rows) in rows {
        let ratio = |name: &str| {
            rows.iter()
                .find(|r| r.policy == name)
                .and_then(|r| r.ratio)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{:>8.3} {:>6} | {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            rate,
            njobs,
            ratio("rtds"),
            ratio("local-only"),
            ratio("random-offload"),
            ratio("broadcast-bidding"),
            ratio("global-heft"),
            ratio("centralized-oracle"),
        );
        assert!(rows.iter().all(|r| r.misses == 0), "deadline miss detected");
        json_rows.push(Json::object(vec![
            ("rate", Json::Num(rate)),
            ("jobs", Json::UInt(njobs as u64)),
            ("rtds", Json::Num(ratio("rtds"))),
            ("local_only", Json::Num(ratio("local-only"))),
            ("random_offload", Json::Num(ratio("random-offload"))),
            ("broadcast_bidding", Json::Num(ratio("broadcast-bidding"))),
            ("global_heft", Json::Num(ratio("global-heft"))),
            ("centralized_oracle", Json::Num(ratio("centralized-oracle"))),
        ]));
    }
    args.write_json(&Json::object(vec![
        ("experiment", Json::str("acceptance_vs_load")),
        ("seed", Json::UInt(seed)),
        ("rows", Json::Array(json_rows)),
    ]));
    println!();
    println!("Expected shape (paper §14): RTDS accepts more jobs than no cooperation");
    println!("(local-only) and blind forwarding, approaches the broadcast/oracle curve");
    println!("at low load, and the gap to local-only widens as hotspots saturate.");
}
