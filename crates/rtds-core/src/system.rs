//! One-call deployment of an RTDS system over the simulator.
//!
//! [`RtdsSystem`] assembles a network, one [`RtdsNode`] per site and the
//! discrete-event engine, accepts a workload of jobs, runs the simulation to
//! quiescence and produces a [`RunReport`] with the paper's metrics:
//! guarantee ratio, distribution ratio, message overhead, per-job outcomes
//! and the run-time safety check (accepted jobs never miss their deadline).

use crate::config::RtdsConfig;
use crate::messages::RtdsMsg;
use crate::node::{GlobalDistances, NodeBuilder, RtdsNode};
use crate::snapshot::{self as snap, SYSTEM_SNAPSHOT_SCHEMA};
use rtds_graph::{Job, JobId};
use rtds_metrics::MetricsRegistry;
use rtds_net::dijkstra::all_pairs_shortest_paths;
use rtds_net::{Network, SiteId};
use rtds_sched::executor;
use rtds_sched::{SchedulePlan, SiteResources};
use rtds_sim::json::Json;
use rtds_sim::snapshot as sim_snap;
use rtds_sim::snapshot::SnapshotError;
use rtds_sim::stats::{GuaranteeStats, SimStats};
use rtds_sim::{FaultEvent, Simulator, Trace};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How a submitted job ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobOutcomeKind {
    /// Guaranteed by the arrival site's local scheduler.
    AcceptedLocally,
    /// Guaranteed after distribution over a Computing Sphere.
    AcceptedDistributed,
    /// Rejected (could not be guaranteed in time).
    Rejected,
}

/// Per-job record of the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobReport {
    /// The job.
    pub job: JobId,
    /// Arrival site.
    pub arrival_site: usize,
    /// Arrival time (clamped to the start of the run).
    pub arrival: f64,
    /// Outcome.
    pub outcome: JobOutcomeKind,
    /// Completion time across all sites (None for rejected jobs).
    pub completion: Option<f64>,
    /// Absolute deadline of the job.
    pub deadline: f64,
    /// Whether an accepted job finished by its deadline (always true under
    /// faithful execution; kept as an explicit safety check).
    pub met_deadline: bool,
}

/// Aggregate report of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Number of jobs submitted.
    pub jobs_submitted: u64,
    /// Aggregated real-time outcome counters.
    pub guarantee: GuaranteeStats,
    /// Engine and protocol counters.
    pub stats: SimStats,
    /// Per-job outcomes, ordered by job id.
    pub jobs: Vec<JobReport>,
    /// Final simulated time.
    pub finished_at: f64,
    /// Average number of distribution messages per submitted job.
    pub messages_per_job: f64,
    /// The full telemetry registry: every protocol instrument from
    /// [`SimStats`] plus the report-level end-to-end histograms
    /// (`response_time`, `completion_slack`) folded over the per-job
    /// outcomes. Deterministic — a pure function of the run's inputs.
    pub metrics: MetricsRegistry,
}

impl RunReport {
    /// Guarantee ratio of the run.
    pub fn guarantee_ratio(&self) -> f64 {
        self.guarantee.guarantee_ratio()
    }

    /// Number of accepted jobs that missed their deadline (must be zero).
    pub fn deadline_misses(&self) -> u64 {
        self.guarantee.deadline_misses
    }
}

/// A deployed RTDS system: network + nodes + simulator + workload.
pub struct RtdsSystem {
    sim: Simulator<RtdsNode>,
    /// `(job, arrival site, arrival time, deadline)` of every submission.
    submitted: Vec<(JobId, usize, f64, f64)>,
    seed: u64,
}

impl RtdsSystem {
    /// Builds a system over `network` with the given configuration. The seed
    /// is kept for future stochastic extensions and for symmetry with the
    /// baseline policies (the RTDS protocol itself is deterministic).
    pub fn new(network: Network, config: RtdsConfig, seed: u64) -> Self {
        let sites = network.site_count();
        Self::with_resources(network, config, seed, vec![SiteResources::default(); sites])
    }

    /// Builds a system whose sites carry explicit resource bundles (one
    /// entry per site, in site order). [`RtdsSystem::new`] is the
    /// all-default-bundles special case — the paper's single-capacity model.
    pub fn with_resources(
        network: Network,
        config: RtdsConfig,
        seed: u64,
        resources: Vec<SiteResources>,
    ) -> Self {
        config.validate().expect("invalid RTDS configuration");
        assert_eq!(
            resources.len(),
            network.site_count(),
            "one resource bundle per site"
        );
        for r in &resources {
            r.validate().expect("invalid site resources");
        }
        let global: Option<GlobalDistances> = if config.exact_acs_diameter {
            let aps = all_pairs_shortest_paths(&network);
            Some(Arc::new(aps.into_iter().map(|sp| sp.dist).collect()))
        } else {
            None
        };
        let topology = network.clone();
        let sim = Simulator::new(network, |site: SiteId| {
            NodeBuilder::new(site)
                .neighbors(topology.neighbors(site).to_vec())
                .speed(topology.speed(site))
                .config(config)
                .resources(resources[site.0])
                .global_distances(global.clone())
                .build()
        });
        RtdsSystem {
            sim,
            submitted: Vec::new(),
            seed,
        }
    }

    /// Enables structured tracing as a bounded flight recorder (used by the
    /// Fig. 1 walkthrough binary); see [`RtdsSystem::set_trace`] for
    /// explicit ring sizes or streaming JSONL sinks.
    pub fn enable_trace(&mut self) {
        self.sim.enable_trace();
    }

    /// Installs an explicit trace recorder (ring, streaming JSONL, or
    /// disabled).
    pub fn set_trace(&mut self, trace: Trace) {
        self.sim.set_trace(trace);
    }

    /// The structured trace recorded so far.
    pub fn trace(&self) -> &Trace {
        self.sim.trace()
    }

    /// Mutable access to the trace recorder (to flush a streaming sink).
    pub fn trace_mut(&mut self) -> &mut Trace {
        self.sim.trace_mut()
    }

    /// Enables engine self-profiling (per-event-class dispatch metrics; see
    /// [`rtds_sim::engine::Simulator::enable_profiling`]). Opt-in because
    /// the profile metrics become part of deterministic reports.
    pub fn enable_profiling(&mut self) {
        self.sim.enable_profiling();
    }

    /// The engine self-profile collected so far.
    pub fn profile(&self) -> rtds_sim::EngineProfile {
        self.sim.profile()
    }

    /// Read access to the simulated network.
    pub fn network(&self) -> &Network {
        self.sim.network()
    }

    /// Read access to a node (after or between runs).
    pub fn node(&self, site: SiteId) -> &RtdsNode {
        self.sim.node(site)
    }

    /// Submits one job: it will arrive at `job.arrival_site` at its release
    /// time.
    pub fn submit_job(&mut self, job: Job) {
        let site = SiteId(job.arrival_site);
        assert!(
            site.0 < self.sim.network().site_count(),
            "arrival site {site} does not exist"
        );
        let time = job.arrival_time.max(0.0);
        self.submitted
            .push((job.id, job.arrival_site, time, job.deadline()));
        self.sim.inject_at(time, site, RtdsMsg::JobArrival { job });
    }

    /// Submits a whole workload.
    pub fn submit_workload(&mut self, jobs: Vec<Job>) {
        for job in jobs {
            self.submit_job(job);
        }
    }

    /// Schedules a perturbation (link jitter/failure, site crash, message
    /// loss) at an absolute simulated time. Used by the scenario layer to
    /// stress the §13 dynamic-network extensions.
    pub fn schedule_fault(&mut self, time: f64, fault: FaultEvent) {
        self.sim.schedule_fault(time, fault);
    }

    /// Seeds the RNG used exclusively for message-loss draws (the protocol
    /// itself stays deterministic either way).
    pub fn set_fault_seed(&mut self, seed: u64) {
        self.sim.set_fault_seed(seed);
    }

    /// Sets the message-loss probability immediately.
    pub fn set_message_loss(&mut self, probability: f64) {
        self.sim.set_message_loss(probability);
    }

    /// Number of simulation events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.sim.events_processed()
    }

    /// Caps the number of processed events (safety net for perturbed runs).
    pub fn set_max_events(&mut self, max: u64) {
        self.sim.set_max_events(max);
    }

    /// Engine access for the streaming execution path (see
    /// [`crate::streaming`]).
    pub(crate) fn sim(&self) -> &Simulator<RtdsNode> {
        &self.sim
    }

    /// Mutable engine access for the streaming execution path.
    pub(crate) fn sim_mut(&mut self) -> &mut Simulator<RtdsNode> {
        &mut self.sim
    }

    /// Enables the engine-level ordering log: the next `capacity` processed
    /// events record their `(time, class, seq)` dispatch triple (see
    /// [`rtds_sim::engine::Simulator::enable_order_log`]).
    pub fn enable_order_log(&mut self, capacity: usize) {
        self.sim.enable_order_log(capacity);
    }

    /// The ordering triples recorded so far.
    pub fn order_log(&self) -> &[(f64, u8, u64)] {
        self.sim.order_log()
    }

    /// Serializes the complete system state — engine, nodes, workload
    /// bookkeeping — as a deterministic JSON document
    /// (`rtds-system-snapshot/1`). [`RtdsSystem::resume`] rebuilds a system
    /// that continues the run event-for-event identically, so a checkpointed
    /// run's final report is byte-identical to an uninterrupted one. Trace
    /// recorders, profiling and the ordering log are observability surfaces
    /// and restart disabled (see [`rtds_sim::snapshot`]).
    pub fn checkpoint(&self) -> String {
        self.checkpoint_doc().render()
    }

    /// The checkpoint as a JSON document (used by the streaming checkpoint,
    /// which wraps it with the harvest-loop state).
    pub(crate) fn checkpoint_doc(&self) -> Json {
        let submitted: Vec<Json> = self
            .submitted
            .iter()
            .map(|(job, site, arrival, deadline)| {
                Json::Array(vec![
                    snap::encode_job_id(*job),
                    Json::UInt(*site as u64),
                    sim_snap::f64_bits(*arrival),
                    sim_snap::f64_bits(*deadline),
                ])
            })
            .collect();
        // The exact-distance table is shared by every node; serialize it
        // once, verbatim — faults may have mutated the topology since
        // construction, so recomputing it on restore would diverge.
        let global = self
            .sim
            .nodes()
            .next()
            .and_then(|n| n.global_distances().cloned());
        let global_doc = match &global {
            Some(dist) => Json::Array(
                dist.iter()
                    .map(|row| Json::Array(row.iter().map(|&d| sim_snap::f64_bits(d)).collect()))
                    .collect(),
            ),
            None => Json::Null,
        };
        Json::object(vec![
            ("schema", Json::str(SYSTEM_SNAPSHOT_SCHEMA)),
            ("seed", Json::UInt(self.seed)),
            ("submitted", Json::Array(submitted)),
            ("global_distances", global_doc),
            (
                "engine",
                sim_snap::snapshot_engine(
                    &self.sim,
                    |_, node| node.encode_snapshot(),
                    snap::encode_msg,
                ),
            ),
        ])
    }

    /// Rebuilds a system from a document written by
    /// [`RtdsSystem::checkpoint`].
    pub fn resume(text: &str) -> Result<RtdsSystem, SnapshotError> {
        let doc = Json::parse(text)
            .map_err(|e| SnapshotError(format!("checkpoint does not parse: {e:?}")))?;
        Self::resume_doc(&doc)
    }

    /// [`RtdsSystem::resume`] over an already-parsed document.
    pub(crate) fn resume_doc(doc: &Json) -> Result<RtdsSystem, SnapshotError> {
        let schema = sim_snap::as_str(sim_snap::get(doc, "schema")?, "schema")?;
        if schema != SYSTEM_SNAPSHOT_SCHEMA {
            return Err(SnapshotError(format!(
                "unsupported system snapshot schema {schema:?} (expected {SYSTEM_SNAPSHOT_SCHEMA:?})"
            )));
        }
        let global: Option<GlobalDistances> = match sim_snap::get(doc, "global_distances")? {
            Json::Null => None,
            rows => Some(Arc::new(
                sim_snap::as_items(rows, "global_distances")?
                    .iter()
                    .map(|row| {
                        sim_snap::as_items(row, "distance row")?
                            .iter()
                            .map(|d| sim_snap::f64_from_bits(d, "distance"))
                            .collect::<Result<Vec<f64>, SnapshotError>>()
                    })
                    .collect::<Result<Vec<Vec<f64>>, SnapshotError>>()?,
            )),
        };
        let submitted = sim_snap::get_items(doc, "submitted")?
            .iter()
            .map(|entry| {
                let fields = sim_snap::as_items(entry, "submission")?;
                if fields.len() != 4 {
                    return Err(SnapshotError(
                        "submission: expected [job, site, arrival, deadline]".into(),
                    ));
                }
                Ok((
                    snap::decode_job_id(&fields[0], "submission job")?,
                    sim_snap::as_u64(&fields[1], "submission site")? as usize,
                    sim_snap::f64_from_bits(&fields[2], "submission arrival")?,
                    sim_snap::f64_from_bits(&fields[3], "submission deadline")?,
                ))
            })
            .collect::<Result<Vec<(JobId, usize, f64, f64)>, SnapshotError>>()?;
        let sim = sim_snap::restore_engine(
            sim_snap::get(doc, "engine")?,
            |_, node_doc| RtdsNode::decode_snapshot(node_doc, global.clone()),
            snap::decode_msg,
        )?;
        Ok(RtdsSystem {
            sim,
            submitted,
            seed: sim_snap::get_u64(doc, "seed")?,
        })
    }

    /// Runs the simulation to quiescence and produces the report.
    pub fn run(&mut self) -> RunReport {
        self.sim.run_to_quiescence();
        self.build_report()
    }

    /// Runs the simulation up to the given horizon and produces the report.
    pub fn run_until(&mut self, horizon: f64) -> RunReport {
        self.sim.run_until(horizon);
        self.build_report()
    }

    fn build_report(&self) -> RunReport {
        let mut guarantee = GuaranteeStats::default();
        let mut accepted: BTreeMap<JobId, (bool, f64)> = BTreeMap::new();
        for node in self.sim.nodes() {
            guarantee.merge(&node.guarantee);
            for a in &node.accepted {
                accepted.insert(a.job, (a.distributed, a.deadline));
            }
        }
        let plans: Vec<&SchedulePlan> = self.sim.nodes().flat_map(|n| n.plans().iter()).collect();

        let mut jobs = Vec::new();
        for (job, site, arrival, deadline) in &self.submitted {
            let (outcome, completion, met) = match accepted.get(job) {
                Some((distributed, _)) => {
                    let completion = executor::job_completion(&plans, *job);
                    let met = completion.map(|c| c <= *deadline + 1e-9).unwrap_or(false);
                    let kind = if *distributed {
                        JobOutcomeKind::AcceptedDistributed
                    } else {
                        JobOutcomeKind::AcceptedLocally
                    };
                    (kind, completion, met)
                }
                None => (JobOutcomeKind::Rejected, None, false),
            };
            jobs.push(JobReport {
                job: *job,
                arrival_site: *site,
                arrival: *arrival,
                outcome,
                completion,
                deadline: *deadline,
                met_deadline: met,
            });
        }
        jobs.sort_by_key(|j| j.job);

        // Run-time verification: every accepted job must meet its deadline.
        for j in &jobs {
            match j.outcome {
                JobOutcomeKind::AcceptedLocally | JobOutcomeKind::AcceptedDistributed => {
                    if j.met_deadline {
                        guarantee.completed_on_time += 1;
                    } else {
                        guarantee.deadline_misses += 1;
                    }
                }
                JobOutcomeKind::Rejected => {}
            }
        }

        let stats = self.sim.stats().clone();
        // Report-level telemetry: the protocol registry plus the end-to-end
        // per-job histograms. Folding here (instead of inside the engine)
        // keeps `stats` a pure protocol observable, and histogram merging is
        // commutative, so this matches the streaming path's incremental
        // recording sample-for-sample.
        let mut metrics = stats.metrics().clone();
        for j in &jobs {
            if j.outcome == JobOutcomeKind::Rejected {
                continue;
            }
            if let Some(completion) = j.completion {
                metrics.record("response_time", completion - j.arrival);
                metrics.record("completion_slack", j.deadline - completion);
            }
        }
        let submitted_count = self.submitted.len() as u64;
        let messages_per_job = if submitted_count > 0 {
            stats.named("distribution_messages") as f64 / submitted_count as f64
        } else {
            0.0
        };
        RunReport {
            jobs_submitted: submitted_count,
            guarantee,
            stats,
            jobs,
            finished_at: self.sim.now(),
            messages_per_job,
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtds_graph::paper_instance::paper_job;
    use rtds_graph::{Job, JobParams, TaskGraph, TaskId};
    use rtds_net::generators::{line, ring, DelayDistribution};

    fn chain_job(id: u64, costs: &[f64], release: f64, deadline: f64, site: usize) -> Job {
        let mut g = TaskGraph::from_costs(costs);
        for i in 1..costs.len() {
            g.add_edge(TaskId(i - 1), TaskId(i)).unwrap();
        }
        Job::new(JobId(id), g, JobParams::new(release, deadline), site)
    }

    #[test]
    fn single_feasible_job_is_accepted_locally() {
        let net = ring(6, DelayDistribution::Constant(1.0), 0);
        let mut system = RtdsSystem::new(net, RtdsConfig::default(), 1);
        system.submit_job(chain_job(1, &[5.0, 5.0], 0.0, 50.0, 2));
        let report = system.run();
        assert_eq!(report.jobs_submitted, 1);
        assert_eq!(report.guarantee.accepted_locally, 1);
        assert_eq!(report.guarantee.rejected, 0);
        assert_eq!(report.deadline_misses(), 0);
        assert_eq!(report.jobs[0].outcome, JobOutcomeKind::AcceptedLocally);
        assert!(report.jobs[0].met_deadline);
        assert!(report.guarantee_ratio() > 0.99);
        // Only routing messages were needed.
        assert_eq!(report.stats.named("enroll"), 0);
    }

    #[test]
    fn overloaded_site_distributes_over_the_sphere() {
        // Site 2 of a 6-ring receives two heavy jobs with the same window:
        // the second cannot be guaranteed locally and must be distributed.
        let net = ring(6, DelayDistribution::Constant(1.0), 0);
        let mut system = RtdsSystem::new(net, RtdsConfig::default(), 1);
        system.submit_job(chain_job(1, &[30.0], 0.0, 40.0, 2));
        system.submit_job(chain_job(2, &[30.0], 0.0, 40.0, 2));
        let report = system.run();
        assert_eq!(report.jobs_submitted, 2);
        assert_eq!(report.guarantee.accepted_locally, 1);
        assert_eq!(
            report.guarantee.accepted_distributed + report.guarantee.rejected,
            1
        );
        // The distribution machinery was exercised.
        assert!(report.stats.named("enroll") > 0);
        assert_eq!(report.deadline_misses(), 0);
    }

    #[test]
    fn paper_job_runs_through_the_full_protocol() {
        let net = line(4, DelayDistribution::Constant(1.0), 0);
        let mut system = RtdsSystem::new(
            net,
            RtdsConfig {
                sphere_radius: 2,
                ..RtdsConfig::default()
            },
            7,
        );
        system.enable_trace();
        // Pre-load site 1 so the paper job cannot be guaranteed locally.
        system.submit_job(chain_job(10, &[60.0], 0.0, 70.0, 1));
        system.submit_job(paper_job(JobId(11), 1));
        let report = system.run();
        assert_eq!(report.jobs_submitted, 2);
        assert_eq!(report.deadline_misses(), 0);
        // The first job is local; the paper job must have been distributed
        // (or rejected — but with three idle neighbors it is accepted).
        assert_eq!(report.guarantee.accepted_locally, 1);
        assert_eq!(report.guarantee.accepted_distributed, 1);
        let paper_report = report.jobs.iter().find(|j| j.job == JobId(11)).unwrap();
        assert_eq!(paper_report.outcome, JobOutcomeKind::AcceptedDistributed);
        assert!(paper_report.met_deadline);
        // The trace shows the full Fig. 1 pipeline.
        let trace = system.trace();
        assert!(trace.of_kind("local-reject").count() >= 1);
        assert!(trace.of_kind("acs-enroll").count() >= 1);
        assert!(trace.of_kind("trial-mapping").count() >= 1);
        assert!(trace.of_kind("mapping-validated").count() >= 1);
        assert!(trace.of_kind("job-accepted").count() >= 1);
    }

    #[test]
    fn flow_transfers_ship_input_data_through_the_flow_plane() {
        // A fork-join job with per-edge data volumes, distributed off a busy
        // site over a ring whose links have finite bandwidth: the committed
        // members' input data must travel as flows (started, finished,
        // counted on both ends) rather than as instantaneous sends.
        let fork_join = |id: u64, release: f64, deadline: f64, site: usize| {
            let mut g = TaskGraph::from_costs(&[1.0, 10.0, 10.0, 10.0, 1.0]);
            for mid in 1..=3 {
                g.add_edge_with_volume(TaskId(0), TaskId(mid), 2.0).unwrap();
                g.add_edge_with_volume(TaskId(mid), TaskId(4), 2.0).unwrap();
            }
            Job::new(JobId(id), g, JobParams::new(release, deadline), site)
        };
        let mut net = ring(6, DelayDistribution::Constant(1.0), 0);
        let links: Vec<(SiteId, SiteId)> = net.links().map(|(a, b, _)| (a, b)).collect();
        for (a, b) in links {
            net.set_link_bandwidth(a, b, 0.5).unwrap();
        }
        let config = RtdsConfig {
            data_volume_aware: true,
            flow_transfers: true,
            ..RtdsConfig::default()
        };
        let mut system = RtdsSystem::new(net, config, 1);
        // Pre-load site 2 so the fork-join job cannot be guaranteed locally.
        system.submit_job(chain_job(10, &[60.0], 0.0, 70.0, 2));
        system.submit_job(fork_join(11, 0.0, 55.0, 2));
        let report = system.run();
        assert_eq!(report.guarantee.accepted_locally, 1);
        assert_eq!(report.guarantee.accepted_distributed, 1);
        assert_eq!(report.deadline_misses(), 0);
        // Input data moved through the flow plane and fully arrived.
        let sent = report.stats.named("task_data_sent");
        assert!(sent >= 1, "expected at least one flow transfer, got {sent}");
        assert_eq!(report.stats.named("task_data_received"), sent);
        assert_eq!(report.stats.named("sim_flow_started"), sent);
        assert_eq!(report.stats.named("sim_flow_finished"), sent);
    }

    #[test]
    fn checkpoint_mid_transfer_resumes_to_the_identical_report() {
        // Pause the flow-transfer run at an instant with a transfer still in
        // flight, round-trip the whole system through its checkpoint text,
        // and finish: the final report must equal the uninterrupted run's.
        let fork_join = |id: u64| {
            let mut g = TaskGraph::from_costs(&[1.0, 10.0, 10.0, 10.0, 1.0]);
            for mid in 1..=3 {
                g.add_edge_with_volume(TaskId(0), TaskId(mid), 2.0).unwrap();
                g.add_edge_with_volume(TaskId(mid), TaskId(4), 2.0).unwrap();
            }
            Job::new(JobId(id), g, JobParams::new(0.0, 55.0), 2)
        };
        let build = || {
            let mut net = ring(6, DelayDistribution::Constant(1.0), 0);
            let links: Vec<(SiteId, SiteId)> = net.links().map(|(a, b, _)| (a, b)).collect();
            for (a, b) in links {
                net.set_link_bandwidth(a, b, 0.5).unwrap();
            }
            let config = RtdsConfig {
                data_volume_aware: true,
                flow_transfers: true,
                ..RtdsConfig::default()
            };
            let mut system = RtdsSystem::new(net, config, 1);
            system.submit_job(chain_job(10, &[60.0], 0.0, 70.0, 2));
            system.submit_job(fork_join(11));
            system
        };
        let reference = build().run();
        assert!(reference.stats.named("sim_flow_finished") > 0);

        let mut paused = build();
        let mut snapshot = None;
        for t in 1..=60 {
            let partial = paused.run_until(t as f64);
            if partial.stats.named("sim_flow_started") > partial.stats.named("sim_flow_finished") {
                snapshot = Some(paused.checkpoint());
                break;
            }
        }
        let text = snapshot.expect("no pause instant caught a transfer in flight");
        assert!(text.contains(r#""rtds-flow-snapshot/1""#));
        let mut resumed = RtdsSystem::resume(&text).expect("mid-transfer checkpoint resumes");
        assert_eq!(resumed.run(), reference);
    }

    #[test]
    fn zero_volume_graphs_leave_flow_transfer_runs_identical() {
        // With no data volumes the flow path is never taken: a run with
        // `flow_transfers` enabled renders the exact same report as one
        // without it.
        let run = |flow_transfers: bool| {
            let net = ring(6, DelayDistribution::Constant(1.0), 0);
            let config = RtdsConfig {
                data_volume_aware: true,
                flow_transfers,
                ..RtdsConfig::default()
            };
            let mut system = RtdsSystem::new(net, config, 1);
            system.submit_job(chain_job(1, &[30.0], 0.0, 40.0, 2));
            system.submit_job(chain_job(2, &[30.0], 0.0, 40.0, 2));
            let report = system.run();
            let mut stats: Vec<(String, u64)> = report
                .stats
                .named_counters()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
            stats.sort();
            (
                report.guarantee.accepted(),
                report.finished_at.to_bits(),
                stats,
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn impossible_job_is_rejected_without_deadline_misses() {
        let net = ring(5, DelayDistribution::Constant(1.0), 0);
        let mut system = RtdsSystem::new(net, RtdsConfig::default(), 3);
        // 100 units of serial work in a 20-unit window: nobody can run it.
        system.submit_job(chain_job(1, &[50.0, 50.0], 0.0, 20.0, 0));
        let report = system.run();
        assert_eq!(report.guarantee.rejected, 1);
        assert_eq!(report.guarantee.accepted(), 0);
        assert_eq!(report.deadline_misses(), 0);
        assert_eq!(report.jobs[0].outcome, JobOutcomeKind::Rejected);
        assert_eq!(report.jobs[0].completion, None);
    }

    #[test]
    fn exact_diameter_mode_runs() {
        let net = ring(6, DelayDistribution::Uniform { min: 1.0, max: 3.0 }, 5);
        let config = RtdsConfig {
            exact_acs_diameter: true,
            ..RtdsConfig::default()
        };
        let mut system = RtdsSystem::new(net, config, 1);
        system.submit_job(chain_job(1, &[30.0], 0.0, 40.0, 2));
        system.submit_job(chain_job(2, &[30.0], 0.0, 40.0, 2));
        let report = system.run();
        assert_eq!(report.jobs_submitted, 2);
        assert_eq!(report.deadline_misses(), 0);
    }

    #[test]
    fn crashed_arrival_site_loses_its_jobs() {
        // Identical workloads; in the perturbed run the arrival site is down
        // over the arrival window, so its jobs are lost and end up rejected.
        let run = |crash: bool| {
            let net = ring(6, DelayDistribution::Constant(1.0), 0);
            let mut system = RtdsSystem::new(net, RtdsConfig::default(), 1);
            if crash {
                system.schedule_fault(5.0, FaultEvent::SiteDown { site: SiteId(2) });
                system.schedule_fault(40.0, FaultEvent::SiteUp { site: SiteId(2) });
            }
            system.submit_job(chain_job(1, &[5.0, 5.0], 10.0, 90.0, 2));
            system.submit_job(chain_job(2, &[5.0, 5.0], 50.0, 140.0, 2));
            system.run()
        };
        let healthy = run(false);
        let crashed = run(true);
        assert_eq!(healthy.guarantee.accepted(), 2);
        assert_eq!(crashed.guarantee.accepted(), 1);
        assert_eq!(crashed.jobs[0].outcome, JobOutcomeKind::Rejected);
        assert_eq!(crashed.jobs[1].outcome, JobOutcomeKind::AcceptedLocally);
        assert_eq!(crashed.deadline_misses(), 0);
        assert_eq!(crashed.stats.named("sim_dropped_arrival_site_down"), 1);
    }

    #[test]
    fn message_loss_degrades_distribution() {
        // Two heavy same-window jobs force a distribution. Loss starts only
        // after the one-time PCS construction (loss from t = 0 would defer
        // every arrival forever — the routing exchange could not finish);
        // with total loss the ACS machinery cannot complete, so the second
        // job is rejected instead of accepted remotely.
        let run = |loss: f64| {
            let net = ring(6, DelayDistribution::Constant(1.0), 0);
            let mut system = RtdsSystem::new(net, RtdsConfig::default(), 1);
            system.set_fault_seed(7);
            system.schedule_fault(10.0, FaultEvent::SetMessageLoss { probability: loss });
            system.submit_job(chain_job(1, &[30.0], 20.0, 60.0, 2));
            system.submit_job(chain_job(2, &[30.0], 20.0, 60.0, 2));
            system.run()
        };
        let clean = run(0.0);
        let lossy = run(1.0);
        assert_eq!(clean.guarantee.accepted_locally, 1);
        assert_eq!(lossy.guarantee.accepted_locally, 1);
        assert!(lossy.guarantee.accepted() < clean.guarantee.accepted());
        assert_eq!(lossy.guarantee.accepted_distributed, 0);
        assert!(lossy.stats.named("sim_lost_random") > 0);
        assert_eq!(lossy.deadline_misses(), 0);
    }

    #[test]
    #[should_panic(expected = "arrival site")]
    fn submitting_to_a_missing_site_panics() {
        let net = ring(3, DelayDistribution::Constant(1.0), 0);
        let mut system = RtdsSystem::new(net, RtdsConfig::default(), 1);
        system.submit_job(chain_job(1, &[1.0], 0.0, 10.0, 9));
    }
}
