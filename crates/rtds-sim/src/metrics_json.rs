//! Deterministic JSON export of a [`MetricsRegistry`].
//!
//! Renders a registry as the `metrics` section every report format shares:
//!
//! ```json
//! {
//!   "counters": { "enroll": 12, "routing_update/phase1": 40 },
//!   "gauges": { "inflight_jobs": { "last": 3.0, "peak": 59.0 } },
//!   "histograms": {
//!     "accept_latency": {
//!       "count": 46, "min": 0.5, "max": 31.0,
//!       "p50": 8.0, "p90": 16.0, "p99": 31.0
//!     }
//!   }
//! }
//! ```
//!
//! Two flattenings are provided. With `detail = true` every `(name, scope)`
//! entry renders separately under `name`, `name/phase<n>` or `name/site<n>`
//! keys; with `detail = false` each family is rolled up across its scopes
//! first (counters sum, gauges keep maxima, histograms merge) — the
//! compact form sweep reports use. Both renderings are byte-deterministic:
//! the registry iterates in key order and every number is either a `u64`
//! count, an exact recorded `f64`, or a power-of-two bucket bound.

use crate::json::Json;
use rtds_metrics::{HistogramSummary, MetricsRegistry};

/// Renders a histogram summary as the fixed six-field object.
pub fn summary_to_json(summary: &HistogramSummary) -> Json {
    Json::object(vec![
        ("count", Json::UInt(summary.count)),
        ("min", Json::Num(summary.min)),
        ("max", Json::Num(summary.max)),
        ("p50", Json::Num(summary.p50)),
        ("p90", Json::Num(summary.p90)),
        ("p99", Json::Num(summary.p99)),
    ])
}

/// Renders a registry as the shared `metrics` report section (see the
/// module docs for the two flattenings).
pub fn metrics_to_json(metrics: &MetricsRegistry, detail: bool) -> Json {
    let mut counters = Vec::new();
    for (name, scopes) in metrics.counter_families() {
        if detail {
            for (scope, value) in scopes {
                counters.push((format!("{name}{}", scope.suffix()), Json::UInt(value)));
            }
        } else {
            counters.push((
                name.to_string(),
                Json::UInt(scopes.iter().map(|(_, v)| *v).sum()),
            ));
        }
    }
    let mut gauges = Vec::new();
    for (name, scopes) in metrics.gauge_families() {
        if detail {
            for (scope, gauge) in scopes {
                gauges.push((
                    format!("{name}{}", scope.suffix()),
                    Json::object(vec![
                        ("last", Json::Num(gauge.last)),
                        ("peak", Json::Num(gauge.peak)),
                    ]),
                ));
            }
        } else if let Some(gauge) = metrics.gauge(name) {
            gauges.push((
                name.to_string(),
                Json::object(vec![
                    ("last", Json::Num(gauge.last)),
                    ("peak", Json::Num(gauge.peak)),
                ]),
            ));
        }
    }
    let mut histograms = Vec::new();
    for (name, scopes) in metrics.histogram_families() {
        if detail {
            for (scope, histogram) in scopes {
                histograms.push((
                    format!("{name}{}", scope.suffix()),
                    summary_to_json(&histogram.summary()),
                ));
            }
        } else {
            histograms.push((
                name.to_string(),
                summary_to_json(&metrics.histogram(name).summary()),
            ));
        }
    }
    Json::Object(vec![
        ("counters".to_string(), Json::Object(counters)),
        ("gauges".to_string(), Json::Object(gauges)),
        ("histograms".to_string(), Json::Object(histograms)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtds_metrics::Scope;

    fn sample_registry() -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.add("enroll", 12);
        m.add_scoped("routing_update", Scope::Phase(1), 40);
        m.add_scoped("routing_update", Scope::Phase(2), 38);
        m.gauge_set("inflight", 3.0);
        m.gauge_set("inflight", 9.0);
        m.gauge_set("inflight", 5.0);
        for v in [0.5, 1.5, 1.75, 8.0, 31.0] {
            m.record("latency", v);
        }
        m.record_scoped("fanout", Scope::Phase(1), 4.0);
        m
    }

    #[test]
    fn detail_rendering_flattens_scopes() {
        let json = metrics_to_json(&sample_registry(), true);
        let counters = json.get("counters").unwrap();
        assert_eq!(counters.get("enroll").and_then(Json::as_u64), Some(12));
        assert_eq!(
            counters.get("routing_update/phase1").and_then(Json::as_u64),
            Some(40)
        );
        assert!(counters.get("routing_update").is_none());
        let hist = json.get("histograms").unwrap();
        assert!(hist.get("fanout/phase1").is_some());
        let latency = hist.get("latency").unwrap();
        assert_eq!(latency.get("count").and_then(Json::as_u64), Some(5));
        assert_eq!(latency.get("min").and_then(Json::as_f64), Some(0.5));
        assert_eq!(latency.get("max").and_then(Json::as_f64), Some(31.0));
        // p50 (rank 3 of 5) falls in the [1, 2) bucket: bound 2.
        assert_eq!(latency.get("p50").and_then(Json::as_f64), Some(2.0));
        let gauge = json.get("gauges").unwrap().get("inflight").unwrap();
        assert_eq!(gauge.get("last").and_then(Json::as_f64), Some(5.0));
        assert_eq!(gauge.get("peak").and_then(Json::as_f64), Some(9.0));
    }

    #[test]
    fn compact_rendering_rolls_scopes_up() {
        let json = metrics_to_json(&sample_registry(), false);
        let counters = json.get("counters").unwrap();
        assert_eq!(
            counters.get("routing_update").and_then(Json::as_u64),
            Some(78)
        );
        assert!(counters.get("routing_update/phase1").is_none());
        let hist = json.get("histograms").unwrap();
        assert_eq!(
            hist.get("fanout")
                .unwrap()
                .get("count")
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn rendering_round_trips_and_is_stable() {
        for detail in [false, true] {
            let json = metrics_to_json(&sample_registry(), detail);
            let rendered = json.render();
            let reparsed = Json::parse(&rendered).unwrap();
            assert_eq!(reparsed, json);
            assert_eq!(reparsed.render(), rendered);
            // Rebuilding the registry renders byte-identically.
            assert_eq!(
                metrics_to_json(&sample_registry(), detail).render(),
                rendered
            );
        }
    }

    #[test]
    fn empty_registry_renders_empty_sections() {
        let json = metrics_to_json(&MetricsRegistry::new(), false);
        assert_eq!(
            json.render_compact(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
    }
}
