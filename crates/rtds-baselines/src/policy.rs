//! The report format shared by every distribution policy.

use serde::{Deserialize, Serialize};

/// Outcome summary of running one policy over one workload.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PolicyReport {
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs accepted on their arrival site.
    pub accepted_locally: u64,
    /// Jobs accepted somewhere else (after offloading / bidding /
    /// distribution).
    pub accepted_remotely: u64,
    /// Jobs rejected.
    pub rejected: u64,
    /// Accepted jobs that missed their deadline at run time (must stay 0 for
    /// every sound policy — reported as a safety check).
    pub deadline_misses: u64,
    /// Protocol messages exchanged to distribute jobs (excludes any one-time
    /// initialisation traffic).
    pub distribution_messages: u64,
}

impl PolicyReport {
    /// Total number of accepted jobs.
    pub fn accepted(&self) -> u64 {
        self.accepted_locally + self.accepted_remotely
    }

    /// Guarantee ratio (1.0 for an empty workload).
    pub fn guarantee_ratio(&self) -> f64 {
        if self.submitted == 0 {
            1.0
        } else {
            self.accepted() as f64 / self.submitted as f64
        }
    }

    /// Average number of distribution messages per submitted job.
    pub fn messages_per_job(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.distribution_messages as f64 / self.submitted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let r = PolicyReport::default();
        assert_eq!(r.guarantee_ratio(), 1.0);
        assert_eq!(r.messages_per_job(), 0.0);
        let r = PolicyReport {
            submitted: 10,
            accepted_locally: 4,
            accepted_remotely: 3,
            rejected: 3,
            deadline_misses: 0,
            distribution_messages: 50,
        };
        assert_eq!(r.accepted(), 7);
        assert!((r.guarantee_ratio() - 0.7).abs() < 1e-12);
        assert!((r.messages_per_job() - 5.0).abs() < 1e-12);
    }
}
