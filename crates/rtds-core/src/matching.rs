//! Maximum bipartite matching (the §10 "maximum coupling").
//!
//! During Trial-Mapping validation the initiator receives, from every site
//! `j` of the ACS, the list of logical processors whose task sets `T_i` the
//! site could locally satisfy. It then computes "a maximum coupling
//! (classical problem in graph theory solved in polynomial time)" between
//! sites and logical processors. If the coupling has cardinality `|U|`, the
//! induced permutation assigns each logical processor to a distinct physical
//! site; otherwise the job is rejected.
//!
//! We implement Hopcroft–Karp (`O(E √V)`), plus a brute-force reference used
//! by the property tests.

/// Computes a maximum matching in a bipartite graph.
///
/// * `left_count` — number of left vertices (logical processors).
/// * `right_count` — number of right vertices (candidate sites).
/// * `edges[l]` — the right vertices adjacent to left vertex `l`.
///
/// Returns `assignment[l] = Some(r)` for matched left vertices. The matching
/// is deterministic for a given input ordering.
pub fn maximum_bipartite_matching(
    left_count: usize,
    right_count: usize,
    edges: &[Vec<usize>],
) -> Vec<Option<usize>> {
    assert_eq!(
        edges.len(),
        left_count,
        "one adjacency list per left vertex"
    );
    for adj in edges {
        for &r in adj {
            assert!(r < right_count, "right vertex {r} out of range");
        }
    }
    const NIL: usize = usize::MAX;
    let mut match_left = vec![NIL; left_count];
    let mut match_right = vec![NIL; right_count];
    let mut dist = vec![0usize; left_count];

    // Breadth-first phase of Hopcroft–Karp: layer the free left vertices.
    let bfs = |match_left: &[usize], match_right: &[usize], dist: &mut [usize]| -> bool {
        let mut queue = std::collections::VecDeque::new();
        const INF: usize = usize::MAX;
        for l in 0..left_count {
            if match_left[l] == NIL {
                dist[l] = 0;
                queue.push_back(l);
            } else {
                dist[l] = INF;
            }
        }
        let mut found_augmenting = false;
        while let Some(l) = queue.pop_front() {
            for &r in &edges[l] {
                let next = match_right[r];
                if next == NIL {
                    found_augmenting = true;
                } else if dist[next] == INF {
                    dist[next] = dist[l] + 1;
                    queue.push_back(next);
                }
            }
        }
        found_augmenting
    };

    // Depth-first phase: find augmenting paths along the BFS layering.
    fn dfs(
        l: usize,
        edges: &[Vec<usize>],
        match_left: &mut [usize],
        match_right: &mut [usize],
        dist: &mut [usize],
    ) -> bool {
        const NIL: usize = usize::MAX;
        const INF: usize = usize::MAX;
        for idx in 0..edges[l].len() {
            let r = edges[l][idx];
            let next = match_right[r];
            let ok = if next == NIL {
                true
            } else if dist[next] == dist[l].wrapping_add(1) {
                dfs(next, edges, match_left, match_right, dist)
            } else {
                false
            };
            if ok {
                match_left[l] = r;
                match_right[r] = l;
                return true;
            }
        }
        dist[l] = INF;
        false
    }

    while bfs(&match_left, &match_right, &mut dist) {
        for l in 0..left_count {
            if match_left[l] == NIL {
                dfs(l, edges, &mut match_left, &mut match_right, &mut dist);
            }
        }
    }

    match_left
        .into_iter()
        .map(|r| if r == NIL { None } else { Some(r) })
        .collect()
}

/// Size of a matching returned by [`maximum_bipartite_matching`].
pub fn matching_size(assignment: &[Option<usize>]) -> usize {
    assignment.iter().filter(|a| a.is_some()).count()
}

/// Brute-force maximum matching size (exponential; only for small instances
/// in tests).
pub fn brute_force_matching_size(
    left_count: usize,
    right_count: usize,
    edges: &[Vec<usize>],
) -> usize {
    fn go(l: usize, left_count: usize, edges: &[Vec<usize>], used_right: &mut Vec<bool>) -> usize {
        if l == left_count {
            return 0;
        }
        // Option 1: leave l unmatched.
        let mut best = go(l + 1, left_count, edges, used_right);
        // Option 2: match l with any free neighbor.
        for &r in &edges[l] {
            if !used_right[r] {
                used_right[r] = true;
                best = best.max(1 + go(l + 1, left_count, edges, used_right));
                used_right[r] = false;
            }
        }
        best
    }
    let mut used = vec![false; right_count];
    go(0, left_count, edges, &mut used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_matching_on_identity() {
        let edges = vec![vec![0], vec![1], vec![2]];
        let m = maximum_bipartite_matching(3, 3, &edges);
        assert_eq!(m, vec![Some(0), Some(1), Some(2)]);
        assert_eq!(matching_size(&m), 3);
    }

    #[test]
    fn augmenting_path_is_found() {
        // l0 can only use r0; l1 can use r0 or r1. Greedy l1 -> r0 would block
        // l0; the maximum matching must re-route l1 to r1.
        let edges = vec![vec![0], vec![0, 1]];
        let m = maximum_bipartite_matching(2, 2, &edges);
        assert_eq!(matching_size(&m), 2);
        assert_eq!(m[0], Some(0));
        assert_eq!(m[1], Some(1));
    }

    #[test]
    fn no_edges_no_matching() {
        let edges = vec![vec![], vec![]];
        let m = maximum_bipartite_matching(2, 3, &edges);
        assert_eq!(m, vec![None, None]);
        assert_eq!(matching_size(&m), 0);
    }

    #[test]
    fn imperfect_matching_when_one_site_serves_everyone() {
        // Three logical processors but every one can only run on site 0: the
        // coupling has size 1 < |U| = 3, so the §10 validation rejects.
        let edges = vec![vec![0], vec![0], vec![0]];
        let m = maximum_bipartite_matching(3, 1, &edges);
        assert_eq!(matching_size(&m), 1);
    }

    #[test]
    fn matching_respects_adjacency() {
        let edges = vec![vec![2, 3], vec![0], vec![0, 1], vec![1, 3]];
        let m = maximum_bipartite_matching(4, 4, &edges);
        assert_eq!(matching_size(&m), 4);
        for (l, r) in m.iter().enumerate() {
            let r = r.unwrap();
            assert!(edges[l].contains(&r), "edge ({l}, {r}) does not exist");
        }
        // Distinct right vertices.
        let mut rights: Vec<usize> = m.iter().map(|r| r.unwrap()).collect();
        rights.sort_unstable();
        rights.dedup();
        assert_eq!(rights.len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_right_vertex_panics() {
        let edges = vec![vec![5]];
        let _ = maximum_bipartite_matching(1, 2, &edges);
    }

    /// Seeded cross-check on rectangular instances (the §10 validation sees
    /// more logical processors than candidate sites and vice versa), with
    /// varying edge densities, beyond the square-ish graphs the property
    /// test samples.
    #[test]
    fn hopcroft_karp_matches_brute_force_on_rectangular_random_graphs() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(2007);
        for case in 0..300 {
            let left = rng.random_range(1usize..=9);
            let right = rng.random_range(1usize..=5);
            let density = rng.random_range(0.05f64..0.9);
            let edges: Vec<Vec<usize>> = (0..left)
                .map(|_| (0..right).filter(|_| rng.random_bool(density)).collect())
                .collect();
            let m = maximum_bipartite_matching(left, right, &edges);
            assert_eq!(
                matching_size(&m),
                brute_force_matching_size(left, right, &edges),
                "case {case}: left={left} right={right} edges={edges:?}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Hopcroft–Karp matches the brute-force optimum on random small
        /// bipartite graphs, and the returned assignment is a valid matching.
        #[test]
        fn hopcroft_karp_is_maximum(
            left in 1usize..7,
            right in 1usize..7,
            edge_bits in proptest::collection::vec(proptest::bool::ANY, 49),
        ) {
            let edges: Vec<Vec<usize>> = (0..left)
                .map(|l| (0..right).filter(|r| edge_bits[l * 7 + r]).collect())
                .collect();
            let m = maximum_bipartite_matching(left, right, &edges);
            // Validity: matched pairs are edges, rights are distinct.
            let mut seen = std::collections::HashSet::new();
            for (l, r) in m.iter().enumerate() {
                if let Some(r) = r {
                    prop_assert!(edges[l].contains(r));
                    prop_assert!(seen.insert(*r));
                }
            }
            // Optimality.
            let best = brute_force_matching_size(left, right, &edges);
            prop_assert_eq!(matching_size(&m), best);
        }
    }
}
