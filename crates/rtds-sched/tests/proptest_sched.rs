//! Property-based tests for the local scheduler: plans never overlap,
//! admission/feasibility results always respect releases, deadlines and
//! precedence, and surplus stays within [0, 1].

use proptest::prelude::*;
use rtds_graph::generators::{CostDistribution, DagGenerator, DagShape, GeneratorConfig};
use rtds_graph::{JobId, TaskId};
use rtds_sched::admission::admit_dag_locally;
use rtds_sched::feasibility::{satisfiable, TaskRequest};
use rtds_sched::plan::{Reservation, SchedulePlan};
use rtds_sched::{
    brute_force_satisfiable, Scheduler, SchedulerKind, SiteResources, SiteScheduler, TimeInterval,
};

/// Builds a plan from arbitrary (start, duration) pairs, skipping the ones
/// that would overlap — mirrors how a site accumulates commitments over time.
fn plan_from_pairs(pairs: &[(f64, f64)]) -> SchedulePlan {
    let mut plan = SchedulePlan::new();
    for (i, &(start, dur)) in pairs.iter().enumerate() {
        let r = Reservation {
            job: JobId(1000 + i as u64),
            task: TaskId(0),
            start,
            end: start + dur,
        };
        let _ = plan.insert(r);
    }
    plan
}

fn arbitrary_busy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((0.0f64..200.0, 0.5f64..20.0), 0..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Plans built incrementally never contain overlapping reservations and
    /// their idle windows tile the observation window exactly.
    #[test]
    fn plan_invariants(pairs in arbitrary_busy()) {
        let plan = plan_from_pairs(&pairs);
        prop_assert!(plan.check_invariants());
        let from = 0.0;
        let to = 300.0;
        let idle: f64 = plan.idle_windows(from, to).iter().map(|w| w.duration()).sum();
        let busy = plan.busy_time(from, to);
        prop_assert!((idle + busy - (to - from)).abs() < 1e-6);
        let s = plan.surplus(from, to - from);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((s - idle / (to - from)).abs() < 1e-6);
        // Idle windows really are idle and maximal.
        for w in plan.idle_windows(from, to) {
            prop_assert!(plan.is_idle(w));
            prop_assert!(w.duration() > 0.0);
        }
    }

    /// earliest_fit returns slots that are idle, after the release, and end
    /// before the deadline; when it returns None, no single idle window can
    /// hold the task.
    #[test]
    fn earliest_fit_is_sound_and_complete(
        pairs in arbitrary_busy(),
        release in 0.0f64..150.0,
        extra in 1.0f64..100.0,
        duration in 0.5f64..30.0,
    ) {
        let plan = plan_from_pairs(&pairs);
        let deadline = release + extra;
        match plan.earliest_fit(release, deadline, duration) {
            Some(start) => {
                prop_assert!(start + 1e-9 >= release);
                prop_assert!(start + duration <= deadline + 1e-6);
                prop_assert!(plan.is_idle(TimeInterval::new(start + 1e-9, start + duration - 1e-9)));
            }
            None => {
                // No idle window inside [release, deadline) can hold it.
                for w in plan.idle_windows(release, deadline) {
                    let usable = (w.end.min(deadline) - w.start.max(release)).max(0.0);
                    prop_assert!(usable < duration - 1e-9,
                        "window {w:?} could hold duration {duration}");
                }
            }
        }
    }

    /// Preemptive fit uses only idle time, never exceeds the deadline and
    /// sums exactly to the requested duration; it succeeds whenever the
    /// non-preemptive fit does.
    #[test]
    fn preemptive_fit_dominates_non_preemptive(
        pairs in arbitrary_busy(),
        release in 0.0f64..150.0,
        extra in 1.0f64..100.0,
        duration in 0.5f64..30.0,
    ) {
        let plan = plan_from_pairs(&pairs);
        let deadline = release + extra;
        let np = plan.earliest_fit(release, deadline, duration);
        let p = plan.earliest_fit_preemptive(release, deadline, duration);
        if np.is_some() {
            prop_assert!(p.is_some(), "preemption must not lose feasibility");
        }
        if let Some(chunks) = p {
            let total: f64 = chunks.iter().map(|c| c.duration()).sum();
            prop_assert!((total - duration).abs() < 1e-6);
            for c in &chunks {
                prop_assert!(c.start + 1e-9 >= release);
                prop_assert!(c.end <= deadline + 1e-6);
                prop_assert!(plan.is_idle(TimeInterval::new(c.start + 1e-9, c.end - 1e-9)));
            }
            // Chunks are disjoint and ordered.
            for w in chunks.windows(2) {
                prop_assert!(w[0].end <= w[1].start + 1e-9);
            }
        }
    }

    /// The §10 satisfiability test only ever returns placements that respect
    /// each task's release/deadline and the committed plan.
    #[test]
    fn satisfiable_placements_are_valid(
        pairs in arbitrary_busy(),
        reqs in proptest::collection::vec((0.0f64..100.0, 1.0f64..40.0, 0.5f64..15.0), 1..6),
        preemptive in proptest::bool::ANY,
    ) {
        let plan = plan_from_pairs(&pairs);
        let requests: Vec<TaskRequest> = reqs
            .iter()
            .enumerate()
            .map(|(i, &(release, window, duration))| TaskRequest {
                job: JobId(7),
                task: TaskId(i),
                release,
                deadline: release + window,
                duration,
            })
            .collect();
        if let Some(placed) = satisfiable(&plan, &requests, preemptive) {
            // Every placement is inside its own request window and on idle time.
            let mut check = plan.clone();
            for r in &placed {
                let req = requests.iter().find(|q| q.task == r.task).unwrap();
                prop_assert!(r.start + 1e-9 >= req.release);
                prop_assert!(r.end <= req.deadline + 1e-6);
                prop_assert!(check.insert(*r).is_ok(), "placement overlaps");
            }
            // Total placed time per task equals the requested duration.
            for req in &requests {
                let total: f64 = placed
                    .iter()
                    .filter(|r| r.task == req.task)
                    .map(|r| r.duration())
                    .sum();
                prop_assert!((total - req.duration).abs() < 1e-6);
            }
        }
    }

    /// The §5 whole-DAG admission respects precedence, the deadline and the
    /// committed plan, for random DAGs and random background load.
    #[test]
    fn dag_admission_respects_precedence_and_deadline(
        pairs in arbitrary_busy(),
        n_tasks in 1usize..15,
        laxity in 1.2f64..6.0,
        seed in 0u64..500,
        preemptive in proptest::bool::ANY,
    ) {
        let cfg = GeneratorConfig {
            task_count: n_tasks,
            shape: DagShape::LayeredRandom { layers: 3, edge_prob: 0.3 },
            costs: CostDistribution::Uniform { min: 1.0, max: 6.0 },
            ccr: 0.0,
            laxity_factor: (laxity, laxity),
        };
        let mut generator = DagGenerator::new(cfg, seed);
        let job = generator.generate_job(0, 10.0);
        let plan = plan_from_pairs(&pairs);
        if let Some(adm) = admit_dag_locally(&plan, &job, 0.0, 1.0, preemptive) {
            prop_assert!(adm.completion <= job.deadline() + 1e-6);
            // Build per-task finish times and verify precedence.
            let mut finish = vec![0.0f64; job.graph.task_count()];
            let mut start = vec![f64::INFINITY; job.graph.task_count()];
            let mut check = plan.clone();
            for r in &adm.reservations {
                prop_assert!(r.start + 1e-9 >= job.release());
                prop_assert!(r.end <= job.deadline() + 1e-6);
                finish[r.task.0] = finish[r.task.0].max(r.end);
                start[r.task.0] = start[r.task.0].min(r.start);
                prop_assert!(check.insert(*r).is_ok(), "admission overlaps the plan");
            }
            for t in job.graph.task_ids() {
                for p in job.graph.predecessors(t) {
                    prop_assert!(start[t.0] + 1e-9 >= finish[p.0],
                        "task {t} starts before predecessor {p} finishes");
                }
            }
            // Total reserved time equals the total cost (unit speed).
            let reserved: f64 = adm.reservations.iter().map(|r| r.duration()).sum();
            prop_assert!((reserved - job.total_cost()).abs() < 1e-6);
        }
    }

    /// Every `Scheduler` implementation agrees with the brute-force
    /// feasibility oracle: whenever a policy accepts a request set, the
    /// oracle confirms a schedule exists, and the returned placements are
    /// in-window and committable. For singleton sets the policies are also
    /// complete (accept whenever the oracle does).
    #[test]
    fn schedulers_agree_with_the_brute_force_oracle(
        busy in proptest::collection::vec(
            proptest::collection::vec((0.0f64..60.0, 1.0f64..10.0), 0..4), 1..4),
        reqs in proptest::collection::vec((0.0f64..40.0, 4.0f64..30.0, 0.5f64..8.0), 0..5),
        kind_index in 0usize..3,
    ) {
        let cores: Vec<SchedulePlan> = busy.iter().map(|p| plan_from_pairs(p)).collect();
        let requests: Vec<TaskRequest> = reqs
            .iter()
            .enumerate()
            .map(|(i, &(release, window, duration))| TaskRequest {
                job: JobId(7),
                task: TaskId(i),
                release,
                deadline: release + window,
                duration,
            })
            .collect();
        let kind = SchedulerKind::all()[kind_index];
        let mut sched = SiteScheduler::from_parts(
            kind,
            SiteResources::multicore(cores.len(), 1.0),
            1.0,
            false,
            cores.clone(),
            Vec::new(),
        );
        if let Some(placed) = sched.satisfiable(&requests) {
            prop_assert!(
                brute_force_satisfiable(&cores, &requests),
                "{kind:?} accepted a set the exact oracle rejects"
            );
            for p in &placed {
                let req = requests.iter().find(|q| q.task == p.reservation.task).unwrap();
                prop_assert!(p.reservation.start + 1e-9 >= req.release);
                prop_assert!(p.reservation.end <= req.deadline + 1e-6);
            }
            // The answer is constructive: committing it succeeds as-is.
            prop_assert!(sched.reserve(&placed).is_ok());
            prop_assert!(sched.core_plans().iter().all(SchedulePlan::check_invariants));
        } else if requests.len() == 1 {
            prop_assert!(
                !brute_force_satisfiable(&cores, &requests),
                "{kind:?} rejected a single request the oracle can place"
            );
        }
    }

    /// On the degenerate single-core bundle, HEFT admissions are a valid
    /// schedule under the old single-capacity checker: every reservation
    /// inserts into the pre-existing `SchedulePlan`, stays inside the job
    /// window and respects precedence.
    #[test]
    fn single_core_heft_is_valid_under_the_old_checker(
        pairs in arbitrary_busy(),
        n_tasks in 1usize..12,
        laxity in 1.5f64..6.0,
        seed in 0u64..300,
    ) {
        let cfg = GeneratorConfig {
            task_count: n_tasks,
            shape: DagShape::LayeredRandom { layers: 3, edge_prob: 0.3 },
            costs: CostDistribution::Uniform { min: 1.0, max: 6.0 },
            ccr: 0.5,
            laxity_factor: (laxity, laxity),
        };
        let mut generator = DagGenerator::new(cfg, seed);
        let job = generator.generate_job(0, 10.0);
        let plan = plan_from_pairs(&pairs);
        let sched = SiteScheduler::from_parts(
            SchedulerKind::Heft,
            SiteResources::default(),
            1.0,
            false,
            vec![plan.clone()],
            Vec::new(),
        );
        if let Some(schedule) = sched.admit_dag(&job, 0.0, None) {
            prop_assert!(schedule.completion <= job.deadline() + 1e-6);
            let mut check = plan.clone();
            let mut finish = vec![0.0f64; job.graph.task_count()];
            let mut start = vec![f64::INFINITY; job.graph.task_count()];
            for p in &schedule.placements {
                prop_assert_eq!(p.core, 0, "single-core HEFT must stay on core 0");
                let r = p.reservation;
                prop_assert!(r.start + 1e-9 >= job.release());
                prop_assert!(r.end <= job.deadline() + 1e-6);
                finish[r.task.0] = finish[r.task.0].max(r.end);
                start[r.task.0] = start[r.task.0].min(r.start);
                prop_assert!(check.insert(r).is_ok(), "HEFT overlaps the old plan");
            }
            for t in job.graph.task_ids() {
                for p in job.graph.predecessors(t) {
                    prop_assert!(start[t.0] + 1e-9 >= finish[p.0]);
                }
            }
        }
    }
}
