//! Log-bucketed streaming histograms with deterministic percentile
//! summaries.
//!
//! A [`Histogram`] holds a fixed array of power-of-two buckets: bucket `i`
//! (for `1 <= i < BUCKET_COUNT - 1`) counts samples in
//! `[2^(MIN_EXP + i - 1), 2^(MIN_EXP + i))`, bucket `0` is the underflow
//! bucket (everything below `2^MIN_EXP`, including zero and negative
//! values), and the last bucket is the overflow bucket. Classifying a
//! sample reads the IEEE-754 exponent bits directly — no `log2` call, so
//! the bucket of a value is exact and identical on every platform.
//!
//! Because the state is nothing but unsigned bucket counts plus the exact
//! running minimum and maximum, [`Histogram::merge`] is associative and
//! commutative *bit-for-bit* (`u64` addition and `f64` min/max over
//! non-NaN values are both), and a percentile query walks the bucket
//! counts — so the summary of a merged histogram never depends on merge
//! order, sample order or thread count. That is the property the sharded
//! sweep runner relies on to produce byte-identical reports at any
//! parallelism.
//!
//! The price of determinism is resolution: a percentile is reported as the
//! upper bound of the bucket containing the requested rank (clamped into
//! the exact observed `[min, max]` range), i.e. within a factor of two of
//! the true order statistic. For latency distributions spanning orders of
//! magnitude this is the standard trade (HdrHistogram makes the same one
//! with finer sub-buckets).

/// Smallest resolved exponent: values below `2^MIN_EXP` underflow into
/// bucket 0. `2^-21` is far below any simulated-time quantity we track.
pub const MIN_EXP: i32 = -21;

/// Largest resolved exponent: values at or above `2^(MAX_EXP + 1)` overflow
/// into the top bucket. `2^42` is far above any simulated-time quantity.
pub const MAX_EXP: i32 = 41;

/// Number of buckets: one underflow + one per exponent + one overflow.
pub const BUCKET_COUNT: usize = (MAX_EXP - MIN_EXP + 2) as usize + 1;

/// `floor(log2(v))` for positive finite `v`, read straight off the IEEE-754
/// exponent field (subnormals collapse to the underflow range).
fn floor_log2(v: f64) -> i32 {
    let biased = ((v.to_bits() >> 52) & 0x7ff) as i32;
    if biased == 0 {
        // Subnormal: below 2^-1022, far under MIN_EXP either way.
        -1023
    } else {
        biased - 1023
    }
}

/// The bucket a sample lands in (see the module docs for the scheme).
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v < f64::MIN_POSITIVE {
        // NaN, zero, negatives and subnormals all underflow; the exact
        // value still reaches min/max, so nothing is silently lost.
        return 0;
    }
    if v.is_infinite() {
        return BUCKET_COUNT - 1;
    }
    let e = floor_log2(v);
    if e < MIN_EXP {
        0
    } else if e > MAX_EXP {
        BUCKET_COUNT - 1
    } else {
        (e - MIN_EXP) as usize + 1
    }
}

/// Upper bound of a bucket (`+inf` for the overflow bucket); percentile
/// queries report this bound clamped into the observed range.
fn bucket_upper_bound(index: usize) -> f64 {
    if index == 0 {
        exp2(MIN_EXP)
    } else if index >= BUCKET_COUNT - 1 {
        f64::INFINITY
    } else {
        exp2(MIN_EXP + index as i32)
    }
}

/// Exact `2^e` for the exponent range the buckets cover.
fn exp2(e: i32) -> f64 {
    f64::from_bits(((e + 1023) as u64) << 52)
}

/// A fixed-size log-bucketed histogram (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    count: u64,
    /// Exact running minimum (`+inf` when empty — the merge identity).
    min: f64,
    /// Exact running maximum (`-inf` when empty — the merge identity).
    max: f64,
    buckets: [u64; BUCKET_COUNT],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; BUCKET_COUNT],
        }
    }
}

impl Histogram {
    /// An empty histogram (the identity element of [`Histogram::merge`]).
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample. NaN samples are counted in the underflow bucket
    /// but excluded from min/max (a NaN min would poison the merge
    /// algebra).
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.buckets[bucket_index(value)] += 1;
        if !value.is_nan() {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact smallest recorded sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 || self.min.is_infinite() {
            0.0
        } else {
            self.min
        }
    }

    /// Exact largest recorded sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 || self.max.is_infinite() {
            0.0
        } else {
            self.max
        }
    }

    /// Whether no sample was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds another histogram into this one. Associative and commutative
    /// bit-for-bit: bucket counts add, min/max fold exactly.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) as the upper bound of the bucket
    /// holding the requested rank, clamped into the exact observed
    /// `[min, max]` range. Deterministic: a pure function of the bucket
    /// counts. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            // The 0-quantile is the exact observed minimum, not a bucket
            // bound.
            return self.min();
        }
        // 1-based rank of the requested order statistic.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(index).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// The fixed percentile summary every report surfaces.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }

    /// The raw state `(count, min, max, buckets)` — the exact internal
    /// representation, including the `±inf` min/max sentinels of an empty
    /// histogram. Snapshot path: [`Histogram::from_raw_parts`] rebuilds a
    /// bit-identical histogram from these values.
    pub fn raw_parts(&self) -> (u64, f64, f64, &[u64; BUCKET_COUNT]) {
        (self.count, self.min, self.max, &self.buckets)
    }

    /// Rebuilds a histogram from state captured by [`Histogram::raw_parts`].
    pub fn from_raw_parts(count: u64, min: f64, max: f64, buckets: [u64; BUCKET_COUNT]) -> Self {
        Histogram {
            count,
            min,
            max,
            buckets,
        }
    }

    /// The non-empty buckets as `(upper_bound, count)` pairs, in value
    /// order (exposed for tests and custom exports).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_upper_bound(i), n))
    }
}

/// The deterministic summary of a [`Histogram`]: count, exact min/max and
/// bucket-resolved p50/p90/p99. All zeros when empty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Exact minimum.
    pub min: f64,
    /// Exact maximum.
    pub max: f64,
    /// Median (bucket upper bound, clamped to the observed range).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_power_of_two() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(1e-12), 0); // below 2^-21
        assert_eq!(bucket_index(f64::INFINITY), BUCKET_COUNT - 1);
        assert_eq!(bucket_index(1e30), BUCKET_COUNT - 1); // above 2^42
                                                          // 1.0 = 2^0 lands in the bucket covering [1, 2).
        let one = bucket_index(1.0);
        assert_eq!(one, (0 - MIN_EXP) as usize + 1);
        assert_eq!(bucket_index(1.999), one);
        assert_eq!(bucket_index(2.0), one + 1);
        assert_eq!(bucket_index(0.5), one - 1);
        // Exact powers of two start a new bucket.
        for e in MIN_EXP..=MAX_EXP {
            let v = exp2(e);
            assert_eq!(bucket_index(v), (e - MIN_EXP) as usize + 1, "2^{e}");
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(
            h.summary(),
            HistogramSummary {
                count: 0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0
            }
        );
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn single_sample_summary_is_exact() {
        let mut h = Histogram::new();
        h.record(3.25);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 3.25);
        assert_eq!(s.max, 3.25);
        // One sample: every percentile clamps onto it exactly.
        assert_eq!(s.p50, 3.25);
        assert_eq!(s.p99, 3.25);
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let mut h = Histogram::new();
        // 90 samples near 1, 10 samples near 100.
        for _ in 0..90 {
            h.record(1.5);
        }
        for _ in 0..10 {
            h.record(100.0);
        }
        assert_eq!(h.count(), 100);
        // p50 and p90 are in the [1, 2) bucket: upper bound 2.
        assert_eq!(h.quantile(0.5), 2.0);
        assert_eq!(h.quantile(0.9), 2.0);
        // p99 lands among the 100s: bucket [64, 128) -> upper bound 128,
        // clamped to the exact max 100.
        assert_eq!(h.quantile(0.99), 100.0);
        assert_eq!(h.quantile(0.0), h.min());
        assert_eq!(h.quantile(1.0), 100.0);
    }

    #[test]
    fn negative_and_nan_samples_underflow_without_poisoning() {
        let mut h = Histogram::new();
        h.record(-4.0);
        h.record(f64::NAN);
        h.record(8.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), -4.0);
        assert_eq!(h.max(), 8.0);
        // The summary stays NaN-free.
        let s = h.summary();
        assert!(s.p50.is_finite() && s.p99.is_finite());
    }

    #[test]
    fn merge_is_order_independent() {
        let samples = [0.25, 1.0, 7.5, 7.5, 300.0, 0.0, 42.0];
        let mut whole = Histogram::new();
        for &v in &samples {
            whole.record(v);
        }
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for (i, &v) in samples.iter().enumerate() {
            if i % 2 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        let mut lr = left.clone();
        lr.merge(&right);
        let mut rl = right.clone();
        rl.merge(&left);
        assert_eq!(lr, rl);
        assert_eq!(lr, whole);
        // Identity element.
        let mut with_empty = whole.clone();
        with_empty.merge(&Histogram::new());
        assert_eq!(with_empty, whole);
    }
}
