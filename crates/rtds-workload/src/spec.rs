//! Compact job specifications and job-size mixes.
//!
//! A [`JobSpec`] is everything an arrival needs besides its time: where it
//! lands, how many tasks it has, and the private RNG seed that expands it
//! into a concrete DAG (see [`crate::factory::JobFactory`]). Keeping the
//! spec this small is what makes the trace format compact — one short JSONL
//! line per job — while still pinning the *entire* job bit-for-bit: the
//! seed determines the graph, the costs and the laxity draw.

use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// One job arrival, minus its time: the arrival site, the task count and
/// the seed that deterministically expands into the full DAG job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Index of the receiving site.
    pub site: usize,
    /// Number of tasks of the job's DAG (structured shapes round this to
    /// the nearest legal size, exactly as in `rtds_graph::generators`).
    pub tasks: usize,
    /// Per-job RNG seed: graph topology, task costs and the laxity factor
    /// are all drawn from a stream seeded with this value.
    pub seed: u64,
}

/// Distribution of job sizes (task counts) across a stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SizeMix {
    /// Every job has the same task count.
    Fixed {
        /// Task count.
        tasks: usize,
    },
    /// Task counts drawn uniformly from `[min, max]`.
    Uniform {
        /// Smallest job.
        min: usize,
        /// Largest job.
        max: usize,
    },
    /// Heavy-tail Pareto sizes: `min / U^(1/alpha)` rounded, capped at
    /// `cap`. Small `alpha` (1–2) yields the classical "mice and
    /// elephants" mix where rare huge DAGs dominate total work.
    Pareto {
        /// Tail index (smaller = heavier tail); clamped below at 0.1.
        alpha: f64,
        /// Smallest job (the Pareto scale parameter).
        min: usize,
        /// Hard cap so a single draw cannot dwarf the simulation.
        cap: usize,
    },
}

impl SizeMix {
    /// Draws one task count.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        match *self {
            SizeMix::Fixed { tasks } => tasks.max(1),
            SizeMix::Uniform { min, max } => {
                let lo = min.max(1);
                if max > lo {
                    rng.random_range(lo..=max)
                } else {
                    lo
                }
            }
            SizeMix::Pareto { alpha, min, cap } => {
                let lo = min.max(1);
                let hi = cap.max(lo);
                let u: f64 = rng.random_range(f64::EPSILON..1.0);
                let x = lo as f64 * u.powf(-1.0 / alpha.max(0.1));
                (x.round() as usize).clamp(lo, hi)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_and_uniform_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(SizeMix::Fixed { tasks: 7 }.sample(&mut rng), 7);
        assert_eq!(SizeMix::Fixed { tasks: 0 }.sample(&mut rng), 1);
        let mix = SizeMix::Uniform { min: 3, max: 9 };
        for _ in 0..200 {
            let n = mix.sample(&mut rng);
            assert!((3..=9).contains(&n));
        }
        // Degenerate range falls back to the minimum.
        assert_eq!(SizeMix::Uniform { min: 5, max: 5 }.sample(&mut rng), 5);
        assert_eq!(SizeMix::Uniform { min: 0, max: 0 }.sample(&mut rng), 1);
    }

    #[test]
    fn pareto_sizes_are_heavy_tailed_and_capped() {
        let mut rng = StdRng::seed_from_u64(2);
        let mix = SizeMix::Pareto {
            alpha: 1.3,
            min: 4,
            cap: 64,
        };
        let draws: Vec<usize> = (0..2000).map(|_| mix.sample(&mut rng)).collect();
        assert!(draws.iter().all(|&n| (4..=64).contains(&n)));
        // Most draws hug the minimum; some reach far into the tail.
        let small = draws.iter().filter(|&&n| n <= 8).count();
        let large = draws.iter().filter(|&&n| n >= 32).count();
        assert!(small > draws.len() / 2, "small {small}");
        assert!(large > 0, "no tail draws at all");
    }

    #[test]
    fn sampling_is_deterministic() {
        let mix = SizeMix::Pareto {
            alpha: 1.5,
            min: 4,
            cap: 48,
        };
        let run = || {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| mix.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
