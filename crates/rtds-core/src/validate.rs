//! Trial-Mapping validation (§10).
//!
//! Two halves:
//!
//! * the *member side* — given the trial mapping and the site's own
//!   scheduling plan, compute the list of logical processors whose task set
//!   `T_i` is locally satisfiable ([`endorsable_logical_processors`]),
//! * the *initiator side* — collect those lists, compute the maximum
//!   coupling between logical processors and sites, and either extract the
//!   execution permutation (coupling of size `|U|`) or reject the job
//!   ([`ValidationRound`]).

use crate::matching::{matching_size, maximum_bipartite_matching_csr, with_matching_workspace};
use crate::messages::TaskSpec;
use crate::snapshot as snap;
use rtds_graph::JobId;
use rtds_net::SiteId;
use rtds_sched::feasibility::{satisfiable, TaskRequest};
use rtds_sched::{SchedulePlan, Scheduler};
use rtds_sim::json::Json;
use rtds_sim::snapshot as sim_snap;
use rtds_sim::snapshot::SnapshotError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Member side: which logical processors of the trial mapping can this site
/// endorse, given its committed plan?
///
/// * `speed` — the site's relative computing power (durations are
///   `cost / speed`),
/// * `preemptive` — whether tasks may be split across idle windows.
pub fn endorsable_logical_processors(
    plan: &SchedulePlan,
    job: JobId,
    tasks_per_logical: &[Vec<TaskSpec>],
    speed: f64,
    preemptive: bool,
) -> Vec<usize> {
    assert!(speed > 0.0, "site speed must be positive");
    let mut endorsable = Vec::new();
    for (i, specs) in tasks_per_logical.iter().enumerate() {
        let requests: Vec<TaskRequest> = specs
            .iter()
            .map(|s| TaskRequest {
                job,
                task: s.task,
                release: s.release,
                deadline: s.deadline,
                duration: s.cost / speed,
            })
            .collect();
        if satisfiable(plan, &requests, preemptive).is_some() {
            endorsable.push(i);
        }
    }
    endorsable
}

/// Member side over a pluggable [`Scheduler`]: which logical processors can
/// this site endorse, given its committed per-core plans? Durations are
/// `cost / speed` with the given effective site speed. On a single-core
/// scheduler this is exactly [`endorsable_logical_processors`] (the
/// scheduler's satisfiability query delegates to the same §10 test).
pub fn endorsable_with(
    scheduler: &dyn Scheduler,
    job: JobId,
    tasks_per_logical: &[Vec<TaskSpec>],
    speed: f64,
) -> Vec<usize> {
    assert!(speed > 0.0, "site speed must be positive");
    let mut endorsable = Vec::new();
    for (i, specs) in tasks_per_logical.iter().enumerate() {
        let requests: Vec<TaskRequest> = specs
            .iter()
            .map(|s| TaskRequest {
                job,
                task: s.task,
                release: s.release,
                deadline: s.deadline,
                duration: s.cost / speed,
            })
            .collect();
        if scheduler.satisfiable(&requests).is_some() {
            endorsable.push(i);
        }
    }
    endorsable
}

/// Outcome of the initiator-side validation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ValidationOutcome {
    /// A perfect coupling exists: `assignment[i]` is the site chosen to
    /// endorse logical processor `i`.
    Accepted {
        /// Per-logical-processor selected site.
        assignment: Vec<SiteId>,
    },
    /// The maximum coupling is smaller than `|U|`: the job is rejected.
    Rejected {
        /// Size of the best coupling found.
        coupling_size: usize,
        /// Required size `|U|`.
        required: usize,
    },
}

/// Initiator-side state: collects validation replies from the ACS members and
/// computes the coupling once everyone has answered.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationRound {
    logical_count: usize,
    expected: Vec<SiteId>,
    replies: BTreeMap<SiteId, Vec<usize>>,
}

impl ValidationRound {
    /// Starts a round for `logical_count` logical processors, expecting a
    /// reply from every listed site.
    pub fn new(logical_count: usize, expected: Vec<SiteId>) -> Self {
        ValidationRound {
            logical_count,
            expected,
            replies: BTreeMap::new(),
        }
    }

    /// Records a member's reply (unknown or duplicate senders are ignored).
    pub fn record_reply(&mut self, from: SiteId, endorsable: Vec<usize>) {
        if self.expected.contains(&from) {
            self.replies.entry(from).or_insert(endorsable);
        }
    }

    /// Returns `true` once every expected site has answered.
    pub fn is_complete(&self) -> bool {
        self.replies.len() == self.expected.len()
    }

    /// Number of replies still missing.
    pub fn outstanding(&self) -> usize {
        self.expected.len() - self.replies.len()
    }

    /// Serializes the round (snapshot support; see [`crate::snapshot`]).
    pub(crate) fn encode_snapshot(&self) -> Json {
        Json::object(vec![
            ("logical_count", Json::UInt(self.logical_count as u64)),
            (
                "expected",
                Json::Array(
                    self.expected
                        .iter()
                        .map(|&s| snap::encode_site(s))
                        .collect(),
                ),
            ),
            (
                "replies",
                Json::Array(
                    self.replies
                        .iter()
                        .map(|(site, endorsable)| {
                            Json::Array(vec![
                                snap::encode_site(*site),
                                Json::Array(
                                    endorsable.iter().map(|&i| Json::UInt(i as u64)).collect(),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Inverse of [`ValidationRound::encode_snapshot`].
    pub(crate) fn decode_snapshot(doc: &Json) -> Result<Self, SnapshotError> {
        let mut replies = BTreeMap::new();
        for entry in sim_snap::get_items(doc, "replies")? {
            let pair = sim_snap::as_items(entry, "validation reply")?;
            if pair.len() != 2 {
                return Err(SnapshotError(
                    "validation reply: expected [site, endorsable]".into(),
                ));
            }
            replies.insert(
                snap::decode_site(&pair[0], "reply site")?,
                sim_snap::as_items(&pair[1], "reply endorsable")?
                    .iter()
                    .map(|i| Ok(sim_snap::as_u64(i, "endorsable index")? as usize))
                    .collect::<Result<Vec<usize>, SnapshotError>>()?,
            );
        }
        Ok(ValidationRound {
            logical_count: sim_snap::get_u64(doc, "logical_count")? as usize,
            expected: sim_snap::get_items(doc, "expected")?
                .iter()
                .map(|s| snap::decode_site(s, "expected site"))
                .collect::<Result<Vec<SiteId>, SnapshotError>>()?,
            replies,
        })
    }

    /// Computes the §10 maximum coupling and extracts the permutation.
    ///
    /// # Panics
    /// Panics if called before the round is complete.
    pub fn conclude(&self) -> ValidationOutcome {
        assert!(self.is_complete(), "validation round is not complete");
        // Sites in deterministic order.
        let sites: Vec<SiteId> = self.replies.keys().copied().collect();
        // Bipartite CSR: left = logical processors, right = sites. Pairs are
        // fed right-major, reproducing the historical per-left edge order
        // (and thereby the exact permutation the solver extracts);
        // out-of-range logical indices are dropped by the builder. The CSR
        // and solver scratch are thread-locals reused across every
        // Trial-Mapping validation of the run.
        let pairs = sites
            .iter()
            .enumerate()
            .flat_map(|(right_idx, site)| self.replies[site].iter().map(move |&l| (l, right_idx)));
        let matching = with_matching_workspace(|csr, scratch| {
            csr.rebuild_from_pairs(self.logical_count, sites.len(), pairs);
            maximum_bipartite_matching_csr(csr, scratch)
        });
        let size = matching_size(&matching);
        if size < self.logical_count {
            return ValidationOutcome::Rejected {
                coupling_size: size,
                required: self.logical_count,
            };
        }
        let assignment = matching
            .into_iter()
            .map(|r| sites[r.expect("perfect matching")])
            .collect();
        ValidationOutcome::Accepted { assignment }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtds_graph::TaskId;
    use rtds_sched::Reservation;

    fn spec(task: usize, release: f64, deadline: f64, cost: f64) -> TaskSpec {
        TaskSpec {
            task: TaskId(task),
            release,
            deadline,
            cost,
        }
    }

    #[test]
    fn member_side_endorsement() {
        // Plan busy on [0, 30): logical processor 0 (needs [0, 20)) cannot be
        // endorsed, logical processor 1 (window up to 60) can.
        let mut plan = SchedulePlan::new();
        plan.insert(Reservation {
            job: JobId(9),
            task: TaskId(0),
            start: 0.0,
            end: 30.0,
        })
        .unwrap();
        let mapping = vec![
            vec![spec(0, 0.0, 20.0, 10.0)],
            vec![spec(1, 0.0, 60.0, 10.0), spec(2, 0.0, 60.0, 5.0)],
        ];
        let endorsable = endorsable_logical_processors(&plan, JobId(1), &mapping, 1.0, false);
        assert_eq!(endorsable, vec![1]);
        // A fast site (speed 4) can also endorse processor 0: 10/4 = 2.5
        // units... still needs idle time before t = 20, which does not exist.
        let endorsable_fast = endorsable_logical_processors(&plan, JobId(1), &mapping, 4.0, false);
        assert_eq!(endorsable_fast, vec![1]);
        // An empty plan endorses everything.
        let idle = SchedulePlan::new();
        let endorsable_idle = endorsable_logical_processors(&idle, JobId(1), &mapping, 1.0, false);
        assert_eq!(endorsable_idle, vec![0, 1]);
        // An empty mapping is trivially endorsed (no logical processors).
        assert!(endorsable_logical_processors(&idle, JobId(1), &[], 1.0, false).is_empty());
    }

    #[test]
    fn scheduler_endorsement_matches_the_plan_based_test_on_one_core() {
        use rtds_sched::{SchedulerKind, SiteResources, SiteScheduler};
        let mut plan = SchedulePlan::new();
        plan.insert(Reservation {
            job: JobId(9),
            task: TaskId(0),
            start: 0.0,
            end: 30.0,
        })
        .unwrap();
        let mapping = vec![
            vec![spec(0, 0.0, 20.0, 10.0)],
            vec![spec(1, 0.0, 60.0, 10.0), spec(2, 0.0, 60.0, 5.0)],
        ];
        let sched = SiteScheduler::from_parts(
            SchedulerKind::Protocol,
            SiteResources::default(),
            1.0,
            false,
            vec![plan.clone()],
            Vec::new(),
        );
        assert_eq!(
            endorsable_with(&sched, JobId(1), &mapping, 1.0),
            endorsable_logical_processors(&plan, JobId(1), &mapping, 1.0, false)
        );
        // A second core lets the blocked logical processor through.
        let dual = SiteScheduler::from_parts(
            SchedulerKind::Protocol,
            SiteResources::multicore(2, 1.0),
            1.0,
            false,
            vec![plan, SchedulePlan::new()],
            Vec::new(),
        );
        assert_eq!(endorsable_with(&dual, JobId(1), &mapping, 1.0), vec![0, 1]);
    }

    #[test]
    fn round_accepts_with_perfect_coupling() {
        let mut round = ValidationRound::new(2, vec![SiteId(0), SiteId(1), SiteId(2)]);
        assert!(!round.is_complete());
        assert_eq!(round.outstanding(), 3);
        round.record_reply(SiteId(0), vec![0]);
        round.record_reply(SiteId(1), vec![0, 1]);
        round.record_reply(SiteId(2), vec![]);
        assert!(round.is_complete());
        match round.conclude() {
            ValidationOutcome::Accepted { assignment } => {
                assert_eq!(assignment.len(), 2);
                // Logical 0 must go to site 0 (the only way to cover both).
                assert_eq!(assignment[0], SiteId(0));
                assert_eq!(assignment[1], SiteId(1));
            }
            other => panic!("expected acceptance, got {other:?}"),
        }
    }

    #[test]
    fn round_rejects_without_perfect_coupling() {
        let mut round = ValidationRound::new(2, vec![SiteId(0), SiteId(1)]);
        round.record_reply(SiteId(0), vec![1]);
        round.record_reply(SiteId(1), vec![1]);
        match round.conclude() {
            ValidationOutcome::Rejected {
                coupling_size,
                required,
            } => {
                assert_eq!(coupling_size, 1);
                assert_eq!(required, 2);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_and_unknown_replies_are_ignored() {
        let mut round = ValidationRound::new(1, vec![SiteId(0)]);
        round.record_reply(SiteId(5), vec![0]); // unknown
        assert!(!round.is_complete());
        round.record_reply(SiteId(0), vec![0]);
        round.record_reply(SiteId(0), vec![]); // duplicate, ignored
        assert!(round.is_complete());
        match round.conclude() {
            ValidationOutcome::Accepted { assignment } => assert_eq!(assignment, vec![SiteId(0)]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn zero_logical_processors_is_vacuously_accepted() {
        let mut round = ValidationRound::new(0, vec![SiteId(0)]);
        round.record_reply(SiteId(0), vec![]);
        match round.conclude() {
            ValidationOutcome::Accepted { assignment } => assert!(assignment.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "not complete")]
    fn concluding_early_panics() {
        let round = ValidationRound::new(1, vec![SiteId(0)]);
        let _ = round.conclude();
    }

    #[test]
    fn out_of_range_endorsements_are_ignored() {
        let mut round = ValidationRound::new(1, vec![SiteId(0)]);
        round.record_reply(SiteId(0), vec![0, 7]); // 7 does not exist
        match round.conclude() {
            ValidationOutcome::Accepted { assignment } => assert_eq!(assignment, vec![SiteId(0)]),
            other => panic!("unexpected {other:?}"),
        }
    }
}
