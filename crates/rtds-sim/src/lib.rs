//! # rtds-sim — deterministic discrete-event simulation of the site network
//!
//! The paper's execution environment is a loosely coupled distributed system:
//! every site owns a computation processor and a system-management processor,
//! and sites exchange messages over faithful, loss-less, order-preserving
//! links whose only cost is a propagation delay (§2). This crate provides a
//! deterministic discrete-event engine with exactly those semantics:
//!
//! * [`engine::Simulator`] runs a [`engine::Protocol`] implementation on
//!   every site, delivering messages after the corresponding link delay and
//!   firing per-site timers,
//! * message delivery on a link is FIFO (constant per-link delay plus a
//!   monotonically increasing tie-breaking sequence number),
//! * everything is single-threaded and seeded, so two runs of the same
//!   configuration produce bit-identical traces — the experiment harness
//!   relies on this for reproducibility (the parallelism of the harness is
//!   across *runs*, not inside one run),
//! * [`arrivals`] generates sporadic job-arrival processes (Poisson,
//!   periodic-with-jitter, bursty); [`engine::ArrivalSource`] is the
//!   pull-based streaming counterpart used by
//!   [`engine::Simulator::run_streaming`] to inject arrivals on demand so
//!   run length is bounded by time, not by how many arrivals fit in memory
//!   (the open-loop generators live in the `rtds-workload` crate),
//! * [`json`] is the deterministic hand-rolled JSON layer behind every
//!   report and workload trace (the workspace `serde` is an offline no-op
//!   stub),
//! * [`faults`] injects timed perturbations beyond the paper's base model
//!   (link latency jitter, bandwidth brownouts, link failure/recovery, site
//!   crash/recovery, probabilistic message loss) for the §13
//!   dynamic-network scenarios; a quiet fault plane leaves runs
//!   bit-identical to the unperturbed engine,
//! * bulk data moves through a shared-bandwidth flow plane
//!   ([`engine::Context::transfer`]): concurrent transfers split link
//!   capacities max-min fairly (`rtds_flow`), and every start, finish or
//!   link fault re-solves the rates and reschedules in-flight completions
//!   under the same `(time, class, seq)` total order,
//! * [`stats`] aggregates message counts, named protocol counters and the
//!   real-time metrics the paper's claims are judged by (guarantee ratio);
//!   it is backed by the [`rtds_metrics`] registry, whose histograms and
//!   gauges protocols feed through [`engine::Context::record`] and which
//!   [`metrics_json`] renders as the deterministic `metrics` section of
//!   every report (see `docs/METRICS.md`),
//! * [`trace`] records typed, causally-linked per-site events into the
//!   bounded/streaming sinks of the `rtds-trace` crate — for debugging,
//!   golden tests, the Fig. 1 protocol-walkthrough binary and
//!   chrome://tracing exports (see `docs/TRACING.md`); the engine itself can
//!   self-profile dispatch work per event class via
//!   [`engine::Simulator::enable_profiling`].
//!
//! The topology the engine simulates over comes from [`rtds_net`]; the
//! production [`engine::Protocol`] implementation is the RTDS node of
//! [`rtds_core`](../rtds_core/index.html), and declarative fault plans are
//! expanded onto [`faults`] by
//! [`rtds_scenarios`](../rtds_scenarios/index.html). See
//! `docs/ARCHITECTURE.md` for the event-ordering and fault-interleaving
//! state machines.

pub mod arrivals;
pub mod engine;
pub mod event;
pub mod faults;
pub(crate) mod flow;
pub mod json;
pub mod metrics_json;
pub mod queue;
pub mod snapshot;
pub mod stats;
pub mod trace;

pub use arrivals::{ArrivalProcess, ArrivalSchedule};
pub use engine::{ArrivalSource, Context, EngineProfile, Protocol, Simulator, EVENT_CLASS_NAMES};
pub use event::{Event, EventPayload};
pub use faults::{FaultEvent, FaultState};
pub use json::Json;
pub use metrics_json::{metrics_to_json, summary_to_json};
pub use queue::{CalendarQueue, EventId};
pub use rtds_metrics::{Gauge, Histogram, HistogramSummary, MetricsRegistry, Scope};
pub use snapshot::{restore_engine, snapshot_engine, SnapshotError, ENGINE_SNAPSHOT_SCHEMA};
pub use stats::{GuaranteeStats, SimStats};
pub use trace::{Phase, SpanId, Trace, TraceEvent, TracePayload, TraceSink};
