//! Facade-level integration of the streaming workload subsystem: open-loop
//! sources drive the bounded-memory execution path through `rtds::workload`
//! and `rtds::core`, streaming scenario cells replay deterministically, and
//! a moderately long run keeps its resident state flat.

use rtds::core::{RtdsConfig, RtdsSystem, StreamOptions};
use rtds::net::generators::{grid, DelayDistribution};
use rtds::scenarios::{find_scenario, run_cell};
use rtds::workload::{JobFactory, JobTemplate, MergedSource, OpenLoopSpec, RateProcess, SizeMix};

fn poisson(rate: f64, max_jobs: u64, hotspots: usize) -> OpenLoopSpec {
    OpenLoopSpec {
        process: RateProcess::Poisson { rate },
        sizes: SizeMix::Uniform { min: 5, max: 10 },
        hotspots,
        horizon: f64::INFINITY,
        max_jobs,
    }
}

#[test]
fn long_streaming_run_keeps_resident_state_flat() {
    // 4,000 jobs through a 5x5 grid: the whole point of the subsystem is
    // that the in-flight population stays tiny while the run goes on.
    let network = grid(5, 5, false, DelayDistribution::Constant(1.0), 9);
    let mut system = RtdsSystem::new(network, RtdsConfig::default(), 9);
    let mut jobs = JobFactory::new(
        poisson(0.25, 4_000, 0).build(25, 33),
        JobTemplate::default(),
    );
    let report = system.run_streaming(&mut jobs, &StreamOptions::default());
    assert_eq!(report.guarantee.submitted, 4_000);
    assert_eq!(report.deadline_misses(), 0);
    assert_eq!(report.unharvested_completions, 0);
    assert!(
        report.guarantee_ratio() > 0.5,
        "{}",
        report.guarantee_ratio()
    );
    assert!(
        report.peak_inflight_jobs < 200,
        "peak in-flight {} for a 4000-job run",
        report.peak_inflight_jobs
    );
    assert!(
        report.peak_plan_reservations < 500,
        "plans were not pruned: {}",
        report.peak_plan_reservations
    );
    assert!(report.harvests > 100);
}

#[test]
fn merged_sources_compose_into_one_run() {
    // A background Poisson load merged with a bursty hotspot stream.
    let background = poisson(0.2, 150, 0).build(16, 1);
    let bursts = OpenLoopSpec {
        process: RateProcess::OnOff {
            on_rate: 1.2,
            off_rate: 0.0,
            mean_on: 15.0,
            mean_off: 60.0,
        },
        sizes: SizeMix::Pareto {
            alpha: 1.8,
            min: 4,
            cap: 20,
        },
        hotspots: 2,
        horizon: 400.0,
        max_jobs: 0,
    }
    .build(16, 2);
    let network = grid(4, 4, false, DelayDistribution::Constant(1.0), 3);
    let mut system = RtdsSystem::new(network, RtdsConfig::default(), 3);
    let mut jobs = JobFactory::new(
        MergedSource::new(background, bursts),
        JobTemplate::default(),
    );
    let report = system.run_streaming(&mut jobs, &StreamOptions::default());
    assert!(report.guarantee.submitted > 150);
    assert_eq!(report.deadline_misses(), 0);
}

#[test]
fn streaming_registry_cells_are_deterministic_through_the_facade() {
    let scenario = find_scenario("diurnal-wave").expect("registry scenario");
    let a = run_cell(&scenario, 7);
    let b = run_cell(&scenario, 7);
    assert_eq!(a, b);
    assert!(a.submitted > 0);
    assert_eq!(a.deadline_misses, 0);
}
