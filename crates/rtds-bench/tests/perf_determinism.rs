//! The exp_perf determinism contract: two runs of the binary with the same
//! seed must agree on every non-timing field of the JSON report — the only
//! nondeterministic fields are `wall_ms` and `events_per_sec`.

use std::process::Command;

const TIMING_FIELDS: [&str; 2] = ["wall_ms", "events_per_sec"];

fn run_exp_perf(json_path: &std::path::Path, extra: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_exp_perf"))
        .args(["--seed", "7", "--json"])
        .arg(json_path)
        .args(extra)
        .output()
        .expect("exp_perf runs");
    assert!(
        output.status.success(),
        "exp_perf failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let report = std::fs::read_to_string(json_path).expect("report written");
    let _ = std::fs::remove_file(json_path);
    report
}

/// Keeps only the deterministic lines of a report.
fn strip_timings(report: &str) -> String {
    report
        .lines()
        .filter(|line| !TIMING_FIELDS.iter().any(|f| line.contains(f)))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn two_seed_7_runs_agree_on_every_non_timing_field() {
    let dir = std::env::temp_dir();
    let first = run_exp_perf(&dir.join("rtds_perf_det_a.json"), &["--smoke"]);
    let second = run_exp_perf(&dir.join("rtds_perf_det_b.json"), &["--smoke"]);
    // The reports carry real timings (so they differ as a whole) …
    assert!(first.contains("\"wall_ms\": "));
    assert!(!first.contains("\"wall_ms\": null"));
    // … but agree byte-for-byte once the timing fields are stripped.
    assert_eq!(strip_timings(&first), strip_timings(&second));
}

#[test]
fn smoke_report_has_the_fixed_schema() {
    let report = run_exp_perf(
        &std::env::temp_dir().join("rtds_perf_schema.json"),
        &["--smoke"],
    );
    assert!(report.contains("\"schema\": \"rtds-exp-perf/4\""));
    assert!(report.contains("\"seed\": 7"));
    assert!(report.contains("\"smoke\": true"));
    // The soak tier is opt-in; without --soak the key is present but null.
    assert!(report.contains("\"soak\": null"));
    // The v4 flows section runs the registry flow scenarios at native size.
    assert!(report.contains("\"flows\": ["));
    assert!(report.contains("\"name\": \"incast-storm\""));
    assert!(report.contains("\"name\": \"paper-baseline\""));
    assert!(report.contains("\"name\": \"wide-low-degree/16\""));
    assert!(report.contains("\"deadline_misses\": 0"));
    // The v2 metrics section: deterministic histogram summaries, including
    // the per-phase routing fan-out and the latency/laxity distributions.
    assert!(report.contains("\"metrics\": {"));
    assert!(report.contains("\"accept_latency\": {"));
    assert!(report.contains("\"accept_laxity\": {"));
    assert!(report.contains("\"trial_mapping_latency\": {"));
    assert!(report.contains("\"routing_fanout/phase1\": {"));
    assert!(report.contains("\"response_time\": {"));
    assert!(report.contains("\"p99\": "));
}
