//! Deterministic engine snapshot/restore (`rtds-engine-snapshot/1`).
//!
//! A snapshot captures everything the engine needs to continue a run with
//! bit-identical behaviour: the pending-event queue (in pop order, with
//! sequence numbers), the clock, the fault plane including the exact
//! message-loss RNG position, the mutated topology (per-site adjacency
//! **insertion order** is semantic — broadcast order follows it), the
//! statistics registry and the dispatch counters. Protocol node state and
//! wire messages are domain types the engine knows nothing about, so
//! [`snapshot_engine`] / [`restore_engine`] take codec closures; the RTDS
//! node codecs live in `rtds-core`.
//!
//! Deliberately **not** captured: trace recorders, the engine self-profile
//! wall clocks and the ordering log. They are observability surfaces whose
//! content is allowed to differ between an interrupted and an
//! uninterrupted run; a restored engine restarts them disabled.
//!
//! Every `f64` is serialized as its IEEE-754 bit pattern (a JSON integer),
//! so restore is exact by construction — including the `±inf` min/max
//! sentinels of empty histograms, which the workspace's JSON layer would
//! otherwise flatten to `null`.

use crate::engine::{Protocol, Simulator};
use crate::event::EventPayload;
use crate::faults::{FaultEvent, FaultState};
use crate::flow::{EngineFlow, FlowPlane};
use crate::json::Json;
use crate::queue::CalendarQueue;
use crate::stats::SimStats;
use rtds_flow::FlowModel;
use rtds_metrics::{Gauge, Histogram, MetricsRegistry, Scope, BUCKET_COUNT};
use rtds_net::{LinkState, Network, SiteId};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Schema tag of the engine snapshot format.
pub const ENGINE_SNAPSHOT_SCHEMA: &str = "rtds-engine-snapshot/1";

/// Schema tag of the embedded shared-bandwidth plane section.
pub const FLOW_SNAPSHOT_SCHEMA: &str = "rtds-flow-snapshot/1";

/// Error raised when a snapshot document cannot be decoded.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotError(pub String);

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot error: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

fn err(message: impl Into<String>) -> SnapshotError {
    SnapshotError(message.into())
}

// ----- field helpers -------------------------------------------------------

/// Serializes an `f64` as its exact bit pattern.
pub fn f64_bits(x: f64) -> Json {
    Json::UInt(x.to_bits())
}

/// Inverse of [`f64_bits`].
pub fn f64_from_bits(j: &Json, what: &str) -> Result<f64, SnapshotError> {
    j.as_u64()
        .map(f64::from_bits)
        .ok_or_else(|| err(format!("{what}: expected f64 bit pattern")))
}

/// Looks up a required object field.
pub fn get<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, SnapshotError> {
    doc.get(key)
        .ok_or_else(|| err(format!("missing field {key:?}")))
}

/// Looks up a required unsigned-integer field.
pub fn get_u64(doc: &Json, key: &str) -> Result<u64, SnapshotError> {
    get(doc, key)?
        .as_u64()
        .ok_or_else(|| err(format!("{key}: expected unsigned integer")))
}

/// Looks up a required bit-pattern-encoded `f64` field.
pub fn get_f64(doc: &Json, key: &str) -> Result<f64, SnapshotError> {
    f64_from_bits(get(doc, key)?, key)
}

/// Looks up a required boolean field.
pub fn get_bool(doc: &Json, key: &str) -> Result<bool, SnapshotError> {
    match get(doc, key)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(err(format!("{key}: expected bool"))),
    }
}

/// Looks up a required array field.
pub fn get_items<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], SnapshotError> {
    get(doc, key)?
        .items()
        .ok_or_else(|| err(format!("{key}: expected array")))
}

/// Interprets a value as an unsigned integer.
pub fn as_u64(j: &Json, what: &str) -> Result<u64, SnapshotError> {
    j.as_u64()
        .ok_or_else(|| err(format!("{what}: expected unsigned integer")))
}

/// Interprets a value as an array.
pub fn as_items<'a>(j: &'a Json, what: &str) -> Result<&'a [Json], SnapshotError> {
    j.items()
        .ok_or_else(|| err(format!("{what}: expected array")))
}

/// Interprets a value as a string.
pub fn as_str<'a>(j: &'a Json, what: &str) -> Result<&'a str, SnapshotError> {
    j.as_str()
        .ok_or_else(|| err(format!("{what}: expected string")))
}

// ----- name interning ------------------------------------------------------

/// Process-wide intern table for instrument names read back from snapshots.
/// The registry keys instruments by `&'static str`; a restored name is
/// leaked exactly once per distinct string, so repeated restores in one
/// process do not accumulate memory.
static INTERNED: Mutex<BTreeMap<String, &'static str>> = Mutex::new(BTreeMap::new());

/// Returns a `&'static str` with the given content (leaked once per
/// distinct name, process-wide).
pub fn intern(name: &str) -> &'static str {
    let mut table = INTERNED.lock().expect("intern table poisoned");
    if let Some(&interned) = table.get(name) {
        return interned;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    table.insert(name.to_owned(), leaked);
    leaked
}

// ----- metrics -------------------------------------------------------------

fn encode_scope(scope: Scope) -> Json {
    match scope {
        Scope::Global => Json::str("g"),
        Scope::Phase(p) => Json::Array(vec![Json::str("p"), Json::UInt(p as u64)]),
        Scope::Site(s) => Json::Array(vec![Json::str("s"), Json::UInt(s as u64)]),
    }
}

fn decode_scope(j: &Json) -> Result<Scope, SnapshotError> {
    if let Some("g") = j.as_str() {
        return Ok(Scope::Global);
    }
    let parts = as_items(j, "scope")?;
    if parts.len() != 2 {
        return Err(err("scope: expected [kind, index]"));
    }
    let n = as_u64(&parts[1], "scope index")? as u32;
    match as_str(&parts[0], "scope kind")? {
        "p" => Ok(Scope::Phase(n)),
        "s" => Ok(Scope::Site(n)),
        other => Err(err(format!("scope: unknown kind {other:?}"))),
    }
}

fn encode_histogram(h: &Histogram) -> Json {
    let (count, min, max, buckets) = h.raw_parts();
    let nonzero: Vec<Json> = buckets
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(i, &n)| Json::Array(vec![Json::UInt(i as u64), Json::UInt(n)]))
        .collect();
    Json::object(vec![
        ("count", Json::UInt(count)),
        ("min", f64_bits(min)),
        ("max", f64_bits(max)),
        ("buckets", Json::Array(nonzero)),
    ])
}

fn decode_histogram(doc: &Json) -> Result<Histogram, SnapshotError> {
    let mut buckets = [0u64; BUCKET_COUNT];
    for entry in get_items(doc, "buckets")? {
        let pair = as_items(entry, "histogram bucket")?;
        if pair.len() != 2 {
            return Err(err("histogram bucket: expected [index, count]"));
        }
        let index = as_u64(&pair[0], "bucket index")? as usize;
        if index >= BUCKET_COUNT {
            return Err(err(format!("bucket index {index} out of range")));
        }
        buckets[index] = as_u64(&pair[1], "bucket count")?;
    }
    Ok(Histogram::from_raw_parts(
        get_u64(doc, "count")?,
        get_f64(doc, "min")?,
        get_f64(doc, "max")?,
        buckets,
    ))
}

/// Serializes a metrics registry (counters, scoped counters, gauges,
/// histograms) with exact float bits.
pub fn encode_registry(reg: &MetricsRegistry) -> Json {
    let counters: Vec<Json> = reg
        .global_counters()
        .map(|(name, value)| Json::Array(vec![Json::str(name), Json::UInt(value)]))
        .collect();
    let scoped: Vec<Json> = reg
        .scoped_counter_families()
        .map(|(name, scopes)| {
            let entries: Vec<Json> = scopes
                .iter()
                .map(|(s, v)| Json::Array(vec![encode_scope(*s), Json::UInt(*v)]))
                .collect();
            Json::Array(vec![Json::str(name), Json::Array(entries)])
        })
        .collect();
    let gauges: Vec<Json> = reg
        .gauge_families()
        .map(|(name, scopes)| {
            let entries: Vec<Json> = scopes
                .iter()
                .map(|(s, g)| {
                    Json::Array(vec![encode_scope(*s), f64_bits(g.last), f64_bits(g.peak)])
                })
                .collect();
            Json::Array(vec![Json::str(name), Json::Array(entries)])
        })
        .collect();
    let histograms: Vec<Json> = reg
        .histogram_families()
        .map(|(name, scopes)| {
            let entries: Vec<Json> = scopes
                .iter()
                .map(|(s, h)| Json::Array(vec![encode_scope(*s), encode_histogram(h)]))
                .collect();
            Json::Array(vec![Json::str(name), Json::Array(entries)])
        })
        .collect();
    Json::object(vec![
        ("counters", Json::Array(counters)),
        ("scoped", Json::Array(scoped)),
        ("gauges", Json::Array(gauges)),
        ("histograms", Json::Array(histograms)),
    ])
}

/// Restores a registry serialized by [`encode_registry`] into `reg`
/// (which should be empty).
pub fn decode_registry_into(reg: &mut MetricsRegistry, doc: &Json) -> Result<(), SnapshotError> {
    for entry in get_items(doc, "counters")? {
        let pair = as_items(entry, "counter")?;
        if pair.len() != 2 {
            return Err(err("counter: expected [name, value]"));
        }
        reg.add(
            intern(as_str(&pair[0], "counter name")?),
            as_u64(&pair[1], "counter value")?,
        );
    }
    for entry in get_items(doc, "scoped")? {
        let pair = as_items(entry, "scoped counter")?;
        if pair.len() != 2 {
            return Err(err("scoped counter: expected [name, entries]"));
        }
        let name = intern(as_str(&pair[0], "scoped counter name")?);
        for scoped in as_items(&pair[1], "scoped counter entries")? {
            let sv = as_items(scoped, "scoped counter entry")?;
            if sv.len() != 2 {
                return Err(err("scoped counter entry: expected [scope, value]"));
            }
            reg.add_scoped(name, decode_scope(&sv[0])?, as_u64(&sv[1], "scoped value")?);
        }
    }
    for entry in get_items(doc, "gauges")? {
        let pair = as_items(entry, "gauge")?;
        if pair.len() != 2 {
            return Err(err("gauge: expected [name, entries]"));
        }
        let name = intern(as_str(&pair[0], "gauge name")?);
        for scoped in as_items(&pair[1], "gauge entries")? {
            let sv = as_items(scoped, "gauge entry")?;
            if sv.len() != 3 {
                return Err(err("gauge entry: expected [scope, last, peak]"));
            }
            let gauge = Gauge {
                last: f64_from_bits(&sv[1], "gauge last")?,
                peak: f64_from_bits(&sv[2], "gauge peak")?,
            };
            reg.gauge_restore(name, decode_scope(&sv[0])?, gauge);
        }
    }
    for entry in get_items(doc, "histograms")? {
        let pair = as_items(entry, "histogram")?;
        if pair.len() != 2 {
            return Err(err("histogram: expected [name, entries]"));
        }
        let name = intern(as_str(&pair[0], "histogram name")?);
        for scoped in as_items(&pair[1], "histogram entries")? {
            let sv = as_items(scoped, "histogram entry")?;
            if sv.len() != 2 {
                return Err(err("histogram entry: expected [scope, state]"));
            }
            reg.histogram_restore(name, decode_scope(&sv[0])?, decode_histogram(&sv[1])?);
        }
    }
    Ok(())
}

// ----- stats ---------------------------------------------------------------

/// Serializes the engine statistics (message counters + registry).
pub fn encode_stats(stats: &SimStats) -> Json {
    Json::object(vec![
        ("messages_sent", Json::UInt(stats.messages_sent)),
        ("messages_delivered", Json::UInt(stats.messages_delivered)),
        ("metrics", encode_registry(stats.metrics())),
    ])
}

/// Inverse of [`encode_stats`].
pub fn decode_stats(doc: &Json) -> Result<SimStats, SnapshotError> {
    let mut stats = SimStats::default();
    stats.messages_sent = get_u64(doc, "messages_sent")?;
    stats.messages_delivered = get_u64(doc, "messages_delivered")?;
    decode_registry_into(stats.metrics_mut(), get(doc, "metrics")?)?;
    Ok(stats)
}

// ----- topology ------------------------------------------------------------

/// Serializes the (possibly fault-mutated) topology with its exact
/// adjacency insertion order. Each adjacency entry is
/// `[neighbor, delay_bits, bandwidth_bits]`.
pub fn encode_network(net: &Network) -> Json {
    let (adjacency, speeds) = net.raw_adjacency();
    let bandwidths = net.raw_bandwidths();
    let adjacency: Vec<Json> = adjacency
        .iter()
        .zip(bandwidths)
        .map(|(neighbors, bws)| {
            Json::Array(
                neighbors
                    .iter()
                    .zip(bws)
                    .map(|((n, d), bw)| {
                        Json::Array(vec![Json::UInt(n.0 as u64), f64_bits(*d), f64_bits(*bw)])
                    })
                    .collect(),
            )
        })
        .collect();
    Json::object(vec![
        ("adjacency", Json::Array(adjacency)),
        (
            "speeds",
            Json::Array(speeds.iter().map(|&s| f64_bits(s)).collect()),
        ),
    ])
}

/// Inverse of [`encode_network`]. Accepts two-entry adjacency links
/// (`[neighbor, delay]`, written before links carried bandwidths) as
/// unlimited-bandwidth links.
pub fn decode_network(doc: &Json) -> Result<Network, SnapshotError> {
    let mut adjacency = Vec::new();
    let mut bandwidths = Vec::new();
    for site in get_items(doc, "adjacency")? {
        let mut neighbors = Vec::new();
        let mut bws = Vec::new();
        for link in as_items(site, "adjacency row")? {
            let entry = as_items(link, "adjacency link")?;
            if entry.len() != 2 && entry.len() != 3 {
                return Err(err(
                    "adjacency link: expected [neighbor, delay] or [neighbor, delay, bandwidth]",
                ));
            }
            neighbors.push((
                SiteId(as_u64(&entry[0], "neighbor")? as usize),
                f64_from_bits(&entry[1], "link delay")?,
            ));
            bws.push(match entry.get(2) {
                Some(bw) => f64_from_bits(bw, "link bandwidth")?,
                None => f64::INFINITY,
            });
        }
        adjacency.push(neighbors);
        bandwidths.push(bws);
    }
    let speeds = get_items(doc, "speeds")?
        .iter()
        .map(|s| f64_from_bits(s, "speed"))
        .collect::<Result<Vec<f64>, SnapshotError>>()?;
    if adjacency.len() != speeds.len() {
        return Err(err("network: adjacency/speeds length mismatch"));
    }
    Ok(Network::from_raw_parts(adjacency, bandwidths, speeds))
}

// ----- faults --------------------------------------------------------------

/// Serializes the fault plane, including the message-loss RNG position.
pub fn encode_faults(faults: &FaultState) -> Json {
    let (failed_links, down_sites, loss, rng) = faults.raw_parts();
    let failed: Vec<Json> = failed_links
        .iter()
        .map(|(&(a, b), state)| {
            Json::Array(vec![
                Json::UInt(a as u64),
                Json::UInt(b as u64),
                f64_bits(state.delay),
                f64_bits(state.bandwidth),
            ])
        })
        .collect();
    Json::object(vec![
        ("failed_links", Json::Array(failed)),
        (
            "down_sites",
            Json::Array(down_sites.iter().map(|&d| Json::Bool(d)).collect()),
        ),
        ("loss_probability", f64_bits(loss)),
        (
            "rng",
            Json::Array(rng.iter().map(|&w| Json::UInt(w)).collect()),
        ),
    ])
}

/// Inverse of [`encode_faults`].
pub fn decode_faults(doc: &Json) -> Result<FaultState, SnapshotError> {
    let mut failed_links = BTreeMap::new();
    for link in get_items(doc, "failed_links")? {
        let entry = as_items(link, "failed link")?;
        if entry.len() != 3 && entry.len() != 4 {
            return Err(err(
                "failed link: expected [a, b, delay] or [a, b, delay, bandwidth]",
            ));
        }
        failed_links.insert(
            (
                as_u64(&entry[0], "failed link endpoint")? as usize,
                as_u64(&entry[1], "failed link endpoint")? as usize,
            ),
            LinkState {
                delay: f64_from_bits(&entry[2], "failed link delay")?,
                bandwidth: match entry.get(3) {
                    Some(bw) => f64_from_bits(bw, "failed link bandwidth")?,
                    None => f64::INFINITY,
                },
            },
        );
    }
    let down_sites = get_items(doc, "down_sites")?
        .iter()
        .map(|j| match j {
            Json::Bool(b) => Ok(*b),
            _ => Err(err("down_sites: expected bool")),
        })
        .collect::<Result<Vec<bool>, SnapshotError>>()?;
    let rng_words = get_items(doc, "rng")?;
    if rng_words.len() != 4 {
        return Err(err("rng: expected 4 state words"));
    }
    let mut rng = [0u64; 4];
    for (slot, word) in rng.iter_mut().zip(rng_words) {
        *slot = as_u64(word, "rng word")?;
    }
    Ok(FaultState::from_raw_parts(
        failed_links,
        down_sites,
        get_f64(doc, "loss_probability")?,
        rng,
    ))
}

// ----- fault events (queue payloads) ---------------------------------------

/// Serializes a scheduled perturbation.
pub fn encode_fault_event(fault: &FaultEvent) -> Json {
    match *fault {
        FaultEvent::SetLinkDelay { a, b, delay } => Json::object(vec![
            ("k", Json::str("delay")),
            ("a", Json::UInt(a.0 as u64)),
            ("b", Json::UInt(b.0 as u64)),
            ("d", f64_bits(delay)),
        ]),
        FaultEvent::LinkDown { a, b } => Json::object(vec![
            ("k", Json::str("link_down")),
            ("a", Json::UInt(a.0 as u64)),
            ("b", Json::UInt(b.0 as u64)),
        ]),
        FaultEvent::LinkUp { a, b } => Json::object(vec![
            ("k", Json::str("link_up")),
            ("a", Json::UInt(a.0 as u64)),
            ("b", Json::UInt(b.0 as u64)),
        ]),
        FaultEvent::SiteDown { site } => Json::object(vec![
            ("k", Json::str("site_down")),
            ("s", Json::UInt(site.0 as u64)),
        ]),
        FaultEvent::SiteUp { site } => Json::object(vec![
            ("k", Json::str("site_up")),
            ("s", Json::UInt(site.0 as u64)),
        ]),
        FaultEvent::SetMessageLoss { probability } => {
            Json::object(vec![("k", Json::str("loss")), ("p", f64_bits(probability))])
        }
        FaultEvent::SetLinkBandwidth { a, b, bandwidth } => Json::object(vec![
            ("k", Json::str("bw")),
            ("a", Json::UInt(a.0 as u64)),
            ("b", Json::UInt(b.0 as u64)),
            ("w", f64_bits(bandwidth)),
        ]),
    }
}

/// Inverse of [`encode_fault_event`].
pub fn decode_fault_event(doc: &Json) -> Result<FaultEvent, SnapshotError> {
    let site =
        |key: &str| -> Result<SiteId, SnapshotError> { Ok(SiteId(get_u64(doc, key)? as usize)) };
    match as_str(get(doc, "k")?, "fault kind")? {
        "delay" => Ok(FaultEvent::SetLinkDelay {
            a: site("a")?,
            b: site("b")?,
            delay: get_f64(doc, "d")?,
        }),
        "link_down" => Ok(FaultEvent::LinkDown {
            a: site("a")?,
            b: site("b")?,
        }),
        "link_up" => Ok(FaultEvent::LinkUp {
            a: site("a")?,
            b: site("b")?,
        }),
        "site_down" => Ok(FaultEvent::SiteDown { site: site("s")? }),
        "site_up" => Ok(FaultEvent::SiteUp { site: site("s")? }),
        "loss" => Ok(FaultEvent::SetMessageLoss {
            probability: get_f64(doc, "p")?,
        }),
        "bw" => Ok(FaultEvent::SetLinkBandwidth {
            a: site("a")?,
            b: site("b")?,
            bandwidth: get_f64(doc, "w")?,
        }),
        other => Err(err(format!("unknown fault kind {other:?}"))),
    }
}

// ----- event payloads ------------------------------------------------------

fn encode_payload<M>(payload: &EventPayload<M>, encode_msg: &impl Fn(&M) -> Json) -> Json {
    match payload {
        EventPayload::Deliver { from, message } => Json::object(vec![
            ("k", Json::str("d")),
            ("from", Json::UInt(from.0 as u64)),
            ("msg", encode_msg(message)),
        ]),
        EventPayload::External { message } => {
            Json::object(vec![("k", Json::str("e")), ("msg", encode_msg(message))])
        }
        EventPayload::Timer { timer_id } => {
            Json::object(vec![("k", Json::str("t")), ("id", Json::UInt(*timer_id))])
        }
        EventPayload::Fault { fault } => Json::object(vec![
            ("k", Json::str("f")),
            ("fault", encode_fault_event(fault)),
        ]),
        EventPayload::FlowStart {
            from,
            volume,
            message,
        } => Json::object(vec![
            ("k", Json::str("fs")),
            ("from", Json::UInt(from.0 as u64)),
            ("vol", f64_bits(*volume)),
            ("msg", encode_msg(message)),
        ]),
        EventPayload::FlowFinish { flow, epoch } => Json::object(vec![
            ("k", Json::str("ff")),
            ("id", Json::UInt(*flow)),
            ("ep", Json::UInt(*epoch)),
        ]),
    }
}

fn decode_payload<M>(
    doc: &Json,
    decode_msg: &impl Fn(&Json) -> Result<M, SnapshotError>,
) -> Result<EventPayload<M>, SnapshotError> {
    match as_str(get(doc, "k")?, "payload kind")? {
        "d" => Ok(EventPayload::Deliver {
            from: SiteId(get_u64(doc, "from")? as usize),
            message: decode_msg(get(doc, "msg")?)?,
        }),
        "e" => Ok(EventPayload::External {
            message: decode_msg(get(doc, "msg")?)?,
        }),
        "t" => Ok(EventPayload::Timer {
            timer_id: get_u64(doc, "id")?,
        }),
        "f" => Ok(EventPayload::Fault {
            fault: decode_fault_event(get(doc, "fault")?)?,
        }),
        "fs" => Ok(EventPayload::FlowStart {
            from: SiteId(get_u64(doc, "from")? as usize),
            volume: get_f64(doc, "vol")?,
            message: decode_msg(get(doc, "msg")?)?,
        }),
        "ff" => Ok(EventPayload::FlowFinish {
            flow: get_u64(doc, "id")?,
            epoch: get_u64(doc, "ep")?,
        }),
        other => Err(err(format!("unknown payload kind {other:?}"))),
    }
}

// ----- flow plane ----------------------------------------------------------

/// Serializes the shared-bandwidth plane (`rtds-flow-snapshot/1`): the
/// plane-allocated link table with exact capacities, and every in-flight
/// flow with its exact remaining volume and rate — rates are restored
/// verbatim, **not** recomputed, so a restored run replays the same
/// completion predictions bit-for-bit.
fn encode_flow_plane<M>(plane: &FlowPlane<M>, encode_msg: &impl Fn(&M) -> Json) -> Json {
    let links: Vec<Json> = plane
        .link_ids
        .iter()
        .map(|(&(a, b), &id)| {
            Json::Array(vec![
                Json::UInt(a as u64),
                Json::UInt(b as u64),
                Json::UInt(id as u64),
                f64_bits(plane.model.link_capacity(id)),
            ])
        })
        .collect();
    let flows: Vec<Json> = plane
        .flows
        .iter()
        .map(|(&id, f)| {
            Json::object(vec![
                ("id", Json::UInt(id)),
                ("from", Json::UInt(f.from.0 as u64)),
                ("to", Json::UInt(f.to.0 as u64)),
                ("vol", f64_bits(f.volume)),
                ("start", f64_bits(f.started)),
                ("ep", Json::UInt(f.epoch)),
                ("fin", f64_bits(f.finish)),
                ("rem", f64_bits(plane.model.remaining(id))),
                ("rate", f64_bits(plane.model.rate(id))),
                (
                    "links",
                    Json::Array(
                        f.links
                            .iter()
                            .map(|&(a, b)| {
                                Json::Array(vec![Json::UInt(a as u64), Json::UInt(b as u64)])
                            })
                            .collect(),
                    ),
                ),
                ("msg", encode_msg(&f.message)),
            ])
        })
        .collect();
    Json::object(vec![
        ("schema", Json::str(FLOW_SNAPSHOT_SCHEMA)),
        ("time", f64_bits(plane.model.time())),
        ("next_id", Json::UInt(plane.model.next_id())),
        ("next_epoch", Json::UInt(plane.next_epoch)),
        ("links", Json::Array(links)),
        ("flows", Json::Array(flows)),
    ])
}

/// Inverse of [`encode_flow_plane`].
fn decode_flow_plane<M>(
    doc: &Json,
    decode_msg: &impl Fn(&Json) -> Result<M, SnapshotError>,
) -> Result<FlowPlane<M>, SnapshotError> {
    let schema = as_str(get(doc, "schema")?, "flow schema")?;
    if schema != FLOW_SNAPSHOT_SCHEMA {
        return Err(err(format!(
            "unsupported flow snapshot schema {schema:?} (expected {FLOW_SNAPSHOT_SCHEMA:?})"
        )));
    }
    let mut link_ids = BTreeMap::new();
    let mut by_id: Vec<(u32, f64)> = Vec::new();
    for entry in get_items(doc, "links")? {
        let fields = as_items(entry, "flow link")?;
        if fields.len() != 4 {
            return Err(err("flow link: expected [a, b, id, capacity]"));
        }
        let a = as_u64(&fields[0], "flow link endpoint")? as usize;
        let b = as_u64(&fields[1], "flow link endpoint")? as usize;
        let id = as_u64(&fields[2], "flow link id")? as u32;
        link_ids.insert((a, b), id);
        by_id.push((id, f64_from_bits(&fields[3], "flow link capacity")?));
    }
    by_id.sort_by_key(|&(id, _)| id);
    if by_id
        .iter()
        .enumerate()
        .any(|(i, &(id, _))| id as usize != i)
    {
        return Err(err("flow links: ids must be dense from 0"));
    }
    let capacities: Vec<f64> = by_id.into_iter().map(|(_, cap)| cap).collect();
    let mut model_flows = Vec::new();
    let mut flows = BTreeMap::new();
    for entry in get_items(doc, "flows")? {
        let id = get_u64(entry, "id")?;
        let mut pair_links = Vec::new();
        let mut model_links = Vec::new();
        for link in get_items(entry, "links")? {
            let pair = as_items(link, "flow path link")?;
            if pair.len() != 2 {
                return Err(err("flow path link: expected [a, b]"));
            }
            let a = as_u64(&pair[0], "flow path endpoint")? as usize;
            let b = as_u64(&pair[1], "flow path endpoint")? as usize;
            let link_id = *link_ids
                .get(&(a, b))
                .ok_or_else(|| err(format!("flow {id}: unknown path link ({a}, {b})")))?;
            pair_links.push((a, b));
            model_links.push(link_id);
        }
        model_flows.push((
            id,
            model_links,
            get_f64(entry, "rem")?,
            get_f64(entry, "rate")?,
        ));
        flows.insert(
            id,
            EngineFlow {
                from: SiteId(get_u64(entry, "from")? as usize),
                to: SiteId(get_u64(entry, "to")? as usize),
                message: decode_msg(get(entry, "msg")?)?,
                volume: get_f64(entry, "vol")?,
                started: get_f64(entry, "start")?,
                epoch: get_u64(entry, "ep")?,
                links: pair_links,
                finish: get_f64(entry, "fin")?,
            },
        );
    }
    let model = FlowModel::from_raw_parts(
        capacities,
        get_f64(doc, "time")?,
        get_u64(doc, "next_id")?,
        model_flows,
    );
    Ok(FlowPlane {
        model,
        flows,
        link_ids,
        next_epoch: get_u64(doc, "next_epoch")?,
        topo_version: 0,
    })
}

// ----- engine --------------------------------------------------------------

/// Serializes the engine-owned state of a simulator. `encode_node` and
/// `encode_msg` are the domain codecs (protocol node state and wire
/// messages); the engine state itself — clock, queue, faults, topology,
/// statistics — is captured exactly.
pub fn snapshot_engine<P: Protocol>(
    sim: &Simulator<P>,
    encode_node: impl Fn(usize, &P) -> Json,
    encode_msg: impl Fn(&P::Msg) -> Json,
) -> Json {
    let queue = sim.queue();
    let mut events = Vec::with_capacity(queue.len());
    queue.for_each_sorted(|time, seq, target, payload| {
        events.push(Json::Array(vec![
            f64_bits(time),
            Json::UInt(seq),
            Json::UInt(target.0 as u64),
            encode_payload(payload, &encode_msg),
        ]));
    });
    let dispatch = sim.profile().dispatch_counts;
    Json::object(vec![
        ("schema", Json::str(ENGINE_SNAPSHOT_SCHEMA)),
        ("now", f64_bits(sim.now())),
        ("started", Json::Bool(sim.started())),
        ("max_events", Json::UInt(sim.max_events())),
        ("events_processed", Json::UInt(sim.events_processed())),
        (
            "dispatch_counts",
            Json::Array(dispatch.iter().map(|&c| Json::UInt(c)).collect()),
        ),
        ("stats", encode_stats(sim.stats())),
        ("faults", encode_faults(sim.faults())),
        ("network", encode_network(sim.network())),
        ("flows", encode_flow_plane(sim.flow_plane(), &encode_msg)),
        (
            "queue",
            Json::object(vec![
                ("next_seq", Json::UInt(queue.next_seq())),
                ("events", Json::Array(events)),
            ]),
        ),
        (
            "nodes",
            Json::Array(
                sim.nodes()
                    .enumerate()
                    .map(|(i, n)| encode_node(i, n))
                    .collect(),
            ),
        ),
    ])
}

/// Rebuilds a simulator from a document written by [`snapshot_engine`].
/// The restored engine continues the run event-for-event identically to
/// the uninterrupted one; trace recording, profiling and the order log
/// restart disabled.
pub fn restore_engine<P: Protocol>(
    doc: &Json,
    decode_node: impl Fn(usize, &Json) -> Result<P, SnapshotError>,
    decode_msg: impl Fn(&Json) -> Result<P::Msg, SnapshotError>,
) -> Result<Simulator<P>, SnapshotError> {
    let schema = as_str(get(doc, "schema")?, "schema")?;
    if schema != ENGINE_SNAPSHOT_SCHEMA {
        return Err(err(format!(
            "unsupported snapshot schema {schema:?} (expected {ENGINE_SNAPSHOT_SCHEMA:?})"
        )));
    }
    let network = decode_network(get(doc, "network")?)?;
    let nodes = get_items(doc, "nodes")?
        .iter()
        .enumerate()
        .map(|(i, j)| decode_node(i, j))
        .collect::<Result<Vec<P>, SnapshotError>>()?;
    if nodes.len() != network.site_count() {
        return Err(err("snapshot: node count does not match the topology"));
    }
    let queue_doc = get(doc, "queue")?;
    let events = get_items(queue_doc, "events")?;
    let mut queue: CalendarQueue<P::Msg> = CalendarQueue::with_capacity(events.len() + 16);
    for event in events {
        let fields = as_items(event, "queued event")?;
        if fields.len() != 4 {
            return Err(err("queued event: expected [time, seq, target, payload]"));
        }
        queue.push_raw(
            f64_from_bits(&fields[0], "event time")?,
            as_u64(&fields[1], "event seq")?,
            SiteId(as_u64(&fields[2], "event target")? as usize),
            decode_payload(&fields[3], &decode_msg)?,
        );
    }
    queue.set_next_seq(get_u64(queue_doc, "next_seq")?);
    let dispatch_items = get_items(doc, "dispatch_counts")?;
    // Four entries predate the flow event classes; their counters restore
    // as zero.
    if dispatch_items.len() != 4 && dispatch_items.len() != 6 {
        return Err(err("dispatch_counts: expected 4 or 6 entries"));
    }
    let mut dispatch_counts = [0u64; 6];
    for (slot, j) in dispatch_counts.iter_mut().zip(dispatch_items) {
        *slot = as_u64(j, "dispatch count")?;
    }
    // Snapshots written before the shared-bandwidth plane have no flow
    // section; they restore with an empty plane.
    let flows = match doc.get("flows") {
        Some(section) => decode_flow_plane(section, &decode_msg)?,
        None => FlowPlane::new(),
    };
    Ok(Simulator::from_restored(
        network,
        nodes,
        queue,
        get_f64(doc, "now")?,
        get_bool(doc, "started")?,
        decode_stats(get(doc, "stats")?)?,
        decode_faults(get(doc, "faults")?)?,
        get_u64(doc, "max_events")?,
        get_u64(doc, "events_processed")?,
        dispatch_counts,
        flows,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Context;
    use rtds_net::generators::{line, ring, DelayDistribution};

    fn encode_u32(m: &u32) -> Json {
        Json::UInt(*m as u64)
    }

    fn decode_u32(j: &Json) -> Result<u32, SnapshotError> {
        Ok(as_u64(j, "msg")? as u32)
    }

    /// A protocol with nontrivial state: floods a token, counts sightings,
    /// keeps a periodic timer running and records a histogram.
    #[derive(Debug, Default, PartialEq)]
    struct Gossip {
        seen: u32,
    }

    impl Protocol for Gossip {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.site() == SiteId(0) {
                ctx.broadcast(1);
                ctx.set_timer(3.0, 7);
            }
        }

        fn on_message(&mut self, _from: SiteId, msg: u32, ctx: &mut Context<'_, u32>) {
            self.seen += 1;
            ctx.count("gossip_seen", 1);
            ctx.record("gossip_hop", msg as f64);
            if msg < 4 {
                ctx.broadcast(msg + 1);
            }
        }

        fn on_timer(&mut self, timer_id: u64, ctx: &mut Context<'_, u32>) {
            if ctx.now() < 20.0 {
                ctx.set_timer(3.0, timer_id);
                ctx.count("gossip_timer", 1);
            }
        }
    }

    fn encode_gossip(_i: usize, node: &Gossip) -> Json {
        Json::object(vec![("seen", Json::UInt(node.seen as u64))])
    }

    fn decode_gossip(_i: usize, j: &Json) -> Result<Gossip, SnapshotError> {
        Ok(Gossip {
            seen: get_u64(j, "seen")? as u32,
        })
    }

    /// Runs a gossip sim to `pause`, snapshots (through a render → parse
    /// cycle), restores, finishes both, and demands identical end state.
    fn round_trip_at(pause: f64, loss: Option<(u64, f64)>) {
        let build = || {
            let net = ring(6, DelayDistribution::Uniform { min: 1.0, max: 3.0 }, 11);
            let mut sim = Simulator::new(net, |_| Gossip::default());
            if let Some((seed, p)) = loss {
                sim.set_fault_seed(seed);
                sim.schedule_fault(0.5, FaultEvent::SetMessageLoss { probability: p });
            }
            sim.schedule_fault(
                2.0,
                FaultEvent::LinkDown {
                    a: SiteId(1),
                    b: SiteId(2),
                },
            );
            sim.schedule_fault(
                8.0,
                FaultEvent::LinkUp {
                    a: SiteId(1),
                    b: SiteId(2),
                },
            );
            sim
        };

        // Uninterrupted reference run.
        let mut reference = build();
        reference.run_to_quiescence();

        // Interrupted run: pause, serialize, parse back, restore, finish.
        let mut paused = build();
        paused.run_until(pause);
        let doc = snapshot_engine(&paused, encode_gossip, encode_u32);
        let text = doc.render();
        let parsed = Json::parse(&text).expect("snapshot parses");
        // render → parse → render is a byte fixpoint (integers only).
        assert_eq!(parsed.render(), text);
        let mut restored: Simulator<Gossip> =
            restore_engine(&parsed, decode_gossip, decode_u32).expect("snapshot restores");
        restored.run_to_quiescence();

        assert_eq!(restored.now(), reference.now(), "final clock");
        assert_eq!(
            restored.events_processed(),
            reference.events_processed(),
            "event count"
        );
        assert_eq!(
            restored.stats().messages_sent,
            reference.stats().messages_sent
        );
        assert_eq!(
            restored.stats().messages_delivered,
            reference.stats().messages_delivered
        );
        assert_eq!(restored.stats().metrics(), reference.stats().metrics());
        assert_eq!(
            restored.profile().dispatch_counts,
            reference.profile().dispatch_counts
        );
        for s in 0..6 {
            assert_eq!(
                restored.node(SiteId(s)),
                reference.node(SiteId(s)),
                "site {s}"
            );
        }
    }

    #[test]
    fn round_trip_mid_flood_matches_uninterrupted_run() {
        round_trip_at(2.5, None);
    }

    #[test]
    fn round_trip_before_start_matches() {
        // Pause at 0: the on_start wave has run (run_until ensures start),
        // but almost everything is still queued.
        round_trip_at(0.0, None);
    }

    #[test]
    fn round_trip_preserves_the_loss_rng_stream() {
        // With message loss active, the restored run must continue the
        // exact RNG stream — a reseed would diverge immediately.
        round_trip_at(4.0, Some((42, 0.3)));
        round_trip_at(9.5, Some((7, 0.5)));
    }

    #[test]
    fn round_trip_preserves_fault_mutated_topology() {
        let mut sim = {
            let net = line(4, DelayDistribution::Constant(2.0), 0);
            let mut sim = Simulator::new(net, |_| Gossip::default());
            sim.schedule_fault(
                1.0,
                FaultEvent::LinkDown {
                    a: SiteId(2),
                    b: SiteId(3),
                },
            );
            sim.schedule_fault(
                1.5,
                FaultEvent::SetLinkDelay {
                    a: SiteId(0),
                    b: SiteId(1),
                    delay: 9.0,
                },
            );
            sim
        };
        sim.run_until(3.0);
        let doc = snapshot_engine(&sim, encode_gossip, encode_u32);
        let restored: Simulator<Gossip> = restore_engine(&doc, decode_gossip, decode_u32).unwrap();
        assert!(restored.faults().link_is_failed(SiteId(2), SiteId(3)));
        assert_eq!(
            restored.network().link_delay(SiteId(0), SiteId(1)),
            Some(9.0)
        );
        assert_eq!(restored.network().link_count(), 2);
        assert_eq!(restored.now(), sim.now());
    }

    /// A transfer-driven protocol for mid-flow snapshot tests: an external
    /// kick `1000 + v` moves `v` units to the last site.
    #[derive(Debug, Default, PartialEq)]
    struct Mover {
        received: Vec<(usize, u32, u64)>, // (from, volume, arrival bits)
    }

    impl Protocol for Mover {
        type Msg = u32;

        fn on_start(&mut self, _ctx: &mut Context<'_, u32>) {}

        fn on_message(&mut self, from: SiteId, msg: u32, ctx: &mut Context<'_, u32>) {
            if msg >= 1000 {
                let volume = msg - 1000;
                let to = SiteId(ctx.network().site_count() - 1);
                ctx.transfer(to, volume as f64, volume);
            } else {
                self.received.push((from.0, msg, ctx.now().to_bits()));
            }
        }
    }

    fn encode_mover(_i: usize, node: &Mover) -> Json {
        Json::Array(
            node.received
                .iter()
                .map(|&(from, msg, bits)| {
                    Json::Array(vec![
                        Json::UInt(from as u64),
                        Json::UInt(msg as u64),
                        Json::UInt(bits),
                    ])
                })
                .collect(),
        )
    }

    fn decode_mover(_i: usize, j: &Json) -> Result<Mover, SnapshotError> {
        let mut received = Vec::new();
        for entry in as_items(j, "mover state")? {
            let triple = as_items(entry, "mover entry")?;
            if triple.len() != 3 {
                return Err(err("mover entry: expected [from, msg, time]"));
            }
            received.push((
                as_u64(&triple[0], "from")? as usize,
                as_u64(&triple[1], "msg")? as u32,
                as_u64(&triple[2], "time")?,
            ));
        }
        Ok(Mover { received })
    }

    #[test]
    fn round_trip_mid_transfer_resumes_flows_bit_exactly() {
        let build = || {
            // 0 —(delay 1, bandwidth 0.5)— 1: transfers are slow, so the
            // pause lands with flows in flight.
            let mut net = Network::new(2);
            net.add_link_with_bandwidth(SiteId(0), SiteId(1), 1.0, 0.5)
                .unwrap();
            let mut sim = Simulator::new(net, |_| Mover::default());
            sim.inject_at(0.0, SiteId(0), 1008); // 8 units: alone, done at 17
            sim.inject_at(2.0, SiteId(0), 1004); // 4 units: contends from t = 3
                                                 // Mid-flight bandwidth brownout after the pause point, so the
                                                 // restored plane must also replay fault-driven rescheduling.
            sim.schedule_fault(
                9.0,
                FaultEvent::SetLinkBandwidth {
                    a: SiteId(0),
                    b: SiteId(1),
                    bandwidth: 0.25,
                },
            );
            sim
        };

        let mut reference = build();
        reference.run_to_quiescence();
        assert_eq!(reference.stats().named("sim_flow_finished"), 2);

        let mut paused = build();
        paused.run_until(5.0);
        assert!(
            paused.flows_in_flight() > 0,
            "pause must land mid-transfer for this test to bite"
        );
        let doc = snapshot_engine(&paused, encode_mover, encode_u32);
        let text = doc.render();
        assert!(
            text.contains(FLOW_SNAPSHOT_SCHEMA),
            "snapshot must carry the versioned flow section"
        );
        let parsed = Json::parse(&text).expect("snapshot parses");
        assert_eq!(parsed.render(), text);
        let mut restored: Simulator<Mover> =
            restore_engine(&parsed, decode_mover, decode_u32).expect("snapshot restores");
        assert_eq!(restored.flows_in_flight(), paused.flows_in_flight());
        restored.run_to_quiescence();

        assert_eq!(restored.now(), reference.now(), "final clock");
        assert_eq!(restored.events_processed(), reference.events_processed());
        assert_eq!(restored.stats().metrics(), reference.stats().metrics());
        assert_eq!(
            restored.profile().dispatch_counts,
            reference.profile().dispatch_counts
        );
        assert_eq!(restored.node(SiteId(1)), reference.node(SiteId(1)));
    }

    #[test]
    fn restore_accepts_pre_flow_snapshots() {
        // A snapshot written before links carried bandwidths (two-entry
        // adjacency links, three-entry failed links, four dispatch counts,
        // no flow section) must restore with an empty plane and unlimited
        // bandwidths.
        let mut sim = {
            let net = line(3, DelayDistribution::Constant(2.0), 0);
            let mut sim = Simulator::new(net, |_| Gossip::default());
            sim.schedule_fault(
                1.0,
                FaultEvent::LinkDown {
                    a: SiteId(1),
                    b: SiteId(2),
                },
            );
            sim
        };
        sim.run_until(3.0);
        let text = snapshot_engine(&sim, encode_gossip, encode_u32).render();
        // Rewrite the document into the legacy shape.
        let doc = Json::parse(&text).unwrap();
        let network = get(&doc, "network").unwrap();
        let legacy_adjacency: Vec<Json> = get_items(network, "adjacency")
            .unwrap()
            .iter()
            .map(|row| {
                Json::Array(
                    row.items()
                        .unwrap()
                        .iter()
                        .map(|link| Json::Array(link.items().unwrap()[..2].to_vec()))
                        .collect(),
                )
            })
            .collect();
        let legacy_network = Json::object(vec![
            ("adjacency", Json::Array(legacy_adjacency)),
            ("speeds", get(network, "speeds").unwrap().clone()),
        ]);
        let faults = get(&doc, "faults").unwrap();
        let legacy_failed: Vec<Json> = get_items(faults, "failed_links")
            .unwrap()
            .iter()
            .map(|entry| Json::Array(entry.items().unwrap()[..3].to_vec()))
            .collect();
        let legacy_faults = Json::object(vec![
            ("failed_links", Json::Array(legacy_failed)),
            ("down_sites", get(faults, "down_sites").unwrap().clone()),
            (
                "loss_probability",
                get(faults, "loss_probability").unwrap().clone(),
            ),
            ("rng", get(faults, "rng").unwrap().clone()),
        ]);
        let legacy_dispatch =
            Json::Array(get_items(&doc, "dispatch_counts").unwrap()[..4].to_vec());
        let legacy = Json::object(vec![
            ("schema", Json::str(ENGINE_SNAPSHOT_SCHEMA)),
            ("now", get(&doc, "now").unwrap().clone()),
            ("started", get(&doc, "started").unwrap().clone()),
            ("max_events", get(&doc, "max_events").unwrap().clone()),
            (
                "events_processed",
                get(&doc, "events_processed").unwrap().clone(),
            ),
            ("dispatch_counts", legacy_dispatch),
            ("stats", get(&doc, "stats").unwrap().clone()),
            ("faults", legacy_faults),
            ("network", legacy_network),
            ("queue", get(&doc, "queue").unwrap().clone()),
            ("nodes", get(&doc, "nodes").unwrap().clone()),
        ]);
        let mut restored: Simulator<Gossip> =
            restore_engine(&legacy, decode_gossip, decode_u32).expect("legacy snapshot restores");
        assert_eq!(restored.flows_in_flight(), 0);
        assert_eq!(
            restored.network().link_bandwidth(SiteId(0), SiteId(1)),
            Some(f64::INFINITY)
        );
        // The legacy run still finishes identically to the current one.
        let mut current: Simulator<Gossip> =
            restore_engine(&doc, decode_gossip, decode_u32).unwrap();
        restored.run_to_quiescence();
        current.run_to_quiescence();
        assert_eq!(restored.now(), current.now());
        assert_eq!(restored.events_processed(), current.events_processed());
    }

    #[test]
    fn restore_rejects_bad_documents() {
        let missing = Json::object(vec![("schema", Json::str("rtds-engine-snapshot/1"))]);
        assert!(restore_engine::<Gossip>(&missing, decode_gossip, decode_u32).is_err());
        let wrong = Json::object(vec![("schema", Json::str("something-else/9"))]);
        let e = match restore_engine::<Gossip>(&wrong, decode_gossip, decode_u32) {
            Err(e) => e,
            Ok(_) => panic!("wrong schema must be rejected"),
        };
        assert!(e.to_string().contains("schema"), "{e}");
    }

    #[test]
    fn fault_event_codec_round_trips_every_variant() {
        let variants = [
            FaultEvent::SetLinkDelay {
                a: SiteId(1),
                b: SiteId(2),
                delay: 0.1 + 0.2, // a value with no short decimal form
            },
            FaultEvent::LinkDown {
                a: SiteId(0),
                b: SiteId(5),
            },
            FaultEvent::LinkUp {
                a: SiteId(3),
                b: SiteId(4),
            },
            FaultEvent::SiteDown { site: SiteId(9) },
            FaultEvent::SiteUp { site: SiteId(9) },
            FaultEvent::SetMessageLoss { probability: 0.37 },
            FaultEvent::SetLinkBandwidth {
                a: SiteId(2),
                b: SiteId(6),
                bandwidth: 1.0 / 3.0,
            },
        ];
        for fault in variants {
            let doc = encode_fault_event(&fault);
            let text = doc.render_compact();
            let back = decode_fault_event(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, fault);
        }
    }

    #[test]
    fn registry_codec_round_trips_exactly() {
        let mut reg = MetricsRegistry::new();
        reg.add("alpha", 3);
        reg.add("beta", 1 << 60);
        reg.add_scoped("alpha", Scope::Site(4), 2);
        reg.add_scoped("alpha", Scope::Phase(1), 7);
        reg.gauge_set("queue", 12.0);
        reg.gauge_set("queue", 5.0); // last below peak
        reg.record("lat", 0.125);
        reg.record("lat", 1e9);
        reg.record_scoped("lat", Scope::Phase(2), f64::NAN);
        let doc = encode_registry(&reg);
        let text = doc.render();
        let parsed = Json::parse(&text).unwrap();
        let mut back = MetricsRegistry::new();
        decode_registry_into(&mut back, &parsed).unwrap();
        assert_eq!(back, reg);
        // Gauge last/peak restore exactly (set() could not produce this).
        let g = back.gauge_scoped("queue", Scope::Global).unwrap();
        assert_eq!((g.last, g.peak), (5.0, 12.0));
        // Re-encoding the restored registry is byte-identical.
        assert_eq!(encode_registry(&back).render(), text);
    }

    #[test]
    fn interning_returns_one_address_per_name() {
        let a = intern("snapshot-test-name");
        let b = intern("snapshot-test-name");
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a, "snapshot-test-name");
    }
}
