//! Criterion bench: workload generation (DAG families and critical-path
//! analysis), the substrate every experiment relies on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rtds_graph::critical_path_tasks;
use rtds_graph::generators::{CostDistribution, DagGenerator, DagShape, GeneratorConfig};
use std::hint::black_box;

fn bench_graph_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_gen");
    let shapes: Vec<(&str, DagShape)> = vec![
        (
            "layered",
            DagShape::LayeredRandom {
                layers: 5,
                edge_prob: 0.2,
            },
        ),
        ("erdos_renyi", DagShape::ErdosRenyi { edge_prob: 0.1 }),
        ("fork_join", DagShape::ForkJoin),
        ("gaussian", DagShape::GaussianElimination),
        ("fft", DagShape::FftButterfly),
    ];
    for (name, shape) in shapes {
        for &n in &[32usize, 256, 1024] {
            let cfg = GeneratorConfig {
                task_count: n,
                shape,
                costs: CostDistribution::Uniform {
                    min: 1.0,
                    max: 10.0,
                },
                ccr: 0.5,
                laxity_factor: (2.0, 3.0),
            };
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(BenchmarkId::new(name, n), &cfg, |b, cfg| {
                b.iter(|| {
                    let mut generator = DagGenerator::new(*cfg, 3);
                    black_box(generator.generate_job(0, 0.0))
                })
            });
        }
    }
    // Critical-path analysis on a large graph.
    let cfg = GeneratorConfig {
        task_count: 1000,
        shape: DagShape::LayeredRandom {
            layers: 10,
            edge_prob: 0.05,
        },
        costs: CostDistribution::Uniform {
            min: 1.0,
            max: 10.0,
        },
        ccr: 0.0,
        laxity_factor: (2.0, 3.0),
    };
    let graph = DagGenerator::new(cfg, 9).generate_graph();
    group.throughput(Throughput::Elements(1000));
    group.bench_function("critical_path_1000", |b| {
        b.iter(|| black_box(critical_path_tasks(&graph)))
    });
    group.finish();
}

criterion_group!(benches, bench_graph_gen);
criterion_main!(benches);
