//! Offline stub for `serde_derive`.
//!
//! The RTDS workspace builds in an environment without crates.io access, and
//! the codebase only ever *derives* `Serialize`/`Deserialize` — nothing is
//! serialized at runtime. These derives therefore expand to nothing: the
//! annotated types compile unchanged and carry no serialization impls. If a
//! future PR actually needs serialization, replace the `crates/compat` stubs
//! with the real crates (see crates/compat/README.md).

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
