//! # rtds-scenarios — declarative scenarios, fault injection and sweeps
//!
//! The paper evaluates RTDS on static networks with hand-built workloads;
//! its §13 sketches dynamic networks and sporadic overload without
//! evaluating them. This crate closes that gap with a declarative scenario
//! layer over the simulation engine:
//!
//! * [`spec`] — the [`Scenario`] type: a named, seeded composition of a
//!   topology recipe ([`TopologyRecipe`] + delays + site speeds), a workload
//!   recipe ([`WorkloadRecipe`]: arrival process, DAG family, laxity
//!   tightness) and a protocol configuration,
//! * [`perturb`] — [`PerturbationPlan`]s: link latency jitter, link
//!   failure/recovery, network partitions, site crashes and message loss,
//!   expanded deterministically into the engine's fault hooks
//!   ([`rtds_sim::faults`]),
//! * [`registry`] — ten built-in named scenarios, from the paper baseline
//!   to partition-and-heal and tight-laxity storms,
//! * [`runner`] — a sharded parallel sweep runner: `scenarios × seeds`
//!   fan out over worker threads, and the aggregate guarantee-ratio /
//!   message-overhead / slack report (with its JSON rendering) is
//!   byte-identical for any thread count,
//! * streaming scenarios — a [`Scenario`] may carry a [`StreamRecipe`]
//!   instead of a pre-materialized workload: arrivals are then pulled from
//!   an open-loop `rtds-workload` source (optionally via an in-memory
//!   record/replay round-trip) through the bounded-memory streaming
//!   execution path of `rtds-core`.
//!
//! The deterministic JSON writer behind the reports lives in
//! [`rtds_sim::json`] (re-exported here as [`json`]); the workspace `serde`
//! is an offline no-op stub.
//!
//! ## Quickstart
//!
//! ```
//! use rtds_scenarios::registry::find_scenario;
//! use rtds_scenarios::runner::{run_sweep, SweepConfig};
//!
//! let scenario = find_scenario("paper-baseline").unwrap();
//! let report = run_sweep(&[scenario], &SweepConfig::new(1, 2, 2));
//! let summary = report.scenario("paper-baseline").unwrap();
//! assert_eq!(summary.total_deadline_misses, 0);
//! assert!(summary.mean_guarantee_ratio > 0.0);
//! ```

pub mod perturb;
pub mod registry;
pub mod runner;
pub mod spec;

// The deterministic JSON layer moved down to `rtds-sim` so the workload
// trace format can use it without a dependency cycle; re-exported here to
// keep `rtds_scenarios::json::Json` paths working.
pub use perturb::{Perturbation, PerturbationPlan};
pub use registry::{builtin_scenarios, find_scenario, scenario_names};
pub use rtds_sim::json;
pub use rtds_sim::json::Json;
pub use runner::{
    parallel_sweep_sharded, run_cell, run_cell_traced, run_sweep, CellReport, ScenarioSummary,
    SweepConfig, SweepReport,
};
pub use spec::{
    mix_seed, ResourceRecipe, Scenario, SpeedRecipe, StreamRecipe, TopologyRecipe, TopologySpec,
    WorkloadRecipe,
};
