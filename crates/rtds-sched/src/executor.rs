//! Run-time execution of committed plans.
//!
//! Once a job's tasks are inserted into the scheduling plans of the selected
//! sites (§11), execution is deterministic: the computation processor simply
//! honours its reservations. The executor extracts per-job completion times
//! from a set of plans and checks the paper's run-time safety property —
//! an accepted job never misses its deadline under faithful execution —
//! which the integration tests and the simulation report rely on.

use crate::plan::SchedulePlan;
use rtds_graph::JobId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Execution outcome of one job across every site that hosts part of it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// The job.
    pub job: JobId,
    /// Number of task reservations committed for this job (chunks count
    /// individually in the preemptive model).
    pub reservations: usize,
    /// Completion time: the latest reservation end across all sites.
    pub completion: f64,
}

/// Collects the outcome of every job appearing in any of the given plans.
pub fn collect_outcomes(plans: &[&SchedulePlan]) -> Vec<JobOutcome> {
    let mut agg: BTreeMap<JobId, (usize, f64)> = BTreeMap::new();
    for plan in plans {
        for r in plan.reservations() {
            let entry = agg.entry(r.job).or_insert((0, f64::NEG_INFINITY));
            entry.0 += 1;
            entry.1 = entry.1.max(r.end);
        }
    }
    agg.into_iter()
        .map(|(job, (reservations, completion))| JobOutcome {
            job,
            reservations,
            completion,
        })
        .collect()
}

/// Completion time of a single job across the given plans, if any of its
/// tasks are committed anywhere.
pub fn job_completion(plans: &[&SchedulePlan], job: JobId) -> Option<f64> {
    plans
        .iter()
        .filter_map(|p| p.job_completion(job))
        .fold(None, |acc, e| Some(acc.map_or(e, |a: f64| a.max(e))))
}

/// Checks that a job committed across the given plans meets its deadline.
pub fn meets_deadline(plans: &[&SchedulePlan], job: JobId, deadline: f64) -> bool {
    match job_completion(plans, job) {
        Some(c) => c <= deadline + 1e-9,
        None => false,
    }
}

/// Utilization of one site over `[from, to)`: busy time divided by window
/// length.
pub fn utilization(plan: &SchedulePlan, from: f64, to: f64) -> f64 {
    let window = to - from;
    if window <= 0.0 {
        return 0.0;
    }
    (plan.busy_time(from, to) / window).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Reservation;
    use rtds_graph::TaskId;

    fn res(job: u64, task: usize, start: f64, end: f64) -> Reservation {
        Reservation {
            job: JobId(job),
            task: TaskId(task),
            start,
            end,
        }
    }

    #[test]
    fn outcomes_across_sites() {
        let mut p1 = SchedulePlan::new();
        p1.insert(res(1, 0, 0.0, 10.0)).unwrap();
        p1.insert(res(1, 2, 15.0, 20.0)).unwrap();
        p1.insert(res(2, 0, 20.0, 30.0)).unwrap();
        let mut p2 = SchedulePlan::new();
        p2.insert(res(1, 1, 0.0, 12.0)).unwrap();
        let plans = [&p1, &p2];

        let outcomes = collect_outcomes(&plans);
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].job, JobId(1));
        assert_eq!(outcomes[0].reservations, 3);
        assert_eq!(outcomes[0].completion, 20.0);
        assert_eq!(outcomes[1].job, JobId(2));
        assert_eq!(outcomes[1].completion, 30.0);

        assert_eq!(job_completion(&plans, JobId(1)), Some(20.0));
        assert_eq!(job_completion(&plans, JobId(9)), None);
        assert!(meets_deadline(&plans, JobId(1), 20.0));
        assert!(meets_deadline(&plans, JobId(1), 25.0));
        assert!(!meets_deadline(&plans, JobId(1), 19.0));
        assert!(!meets_deadline(&plans, JobId(9), 100.0));
    }

    #[test]
    fn utilization_is_clamped() {
        let mut p = SchedulePlan::new();
        p.insert(res(1, 0, 0.0, 50.0)).unwrap();
        assert_eq!(utilization(&p, 0.0, 100.0), 0.5);
        assert_eq!(utilization(&p, 0.0, 50.0), 1.0);
        assert_eq!(utilization(&p, 50.0, 100.0), 0.0);
        assert_eq!(utilization(&p, 10.0, 10.0), 0.0);
    }

    #[test]
    fn empty_plans_have_no_outcomes() {
        let p = SchedulePlan::new();
        assert!(collect_outcomes(&[&p]).is_empty());
        assert!(collect_outcomes(&[]).is_empty());
    }
}
