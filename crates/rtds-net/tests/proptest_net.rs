//! Property-based tests for the network substrate: the interrupted
//! distributed Bellman–Ford must agree with centralized references, spheres
//! must satisfy the §6 structural properties, and the dense (vector-indexed)
//! routing table must behave identically to the ordered-map representation
//! it replaced.

use proptest::prelude::*;
use rtds_net::bellman_ford::phased_apsp;
use rtds_net::dijkstra::{hop_limited_distance, shortest_paths};
use rtds_net::generators::{
    barabasi_albert, erdos_renyi_connected, grid, random_geometric, ring, DelayDistribution,
};
use rtds_net::routing::{RouteEntry, RoutingTable};
use rtds_net::siteset::SiteSet;
use rtds_net::sphere::Sphere;
use rtds_net::topology::{Network, SiteId};
use std::collections::BTreeMap;

/// The historical `BTreeMap`-backed routing table, kept verbatim as the
/// behavioral reference the dense representation is pinned against.
#[derive(Debug, Clone)]
struct MapRoutingTable {
    owner: SiteId,
    entries: BTreeMap<SiteId, RouteEntry>,
}

impl MapRoutingTable {
    fn initial(owner: SiteId, neighbors: &[(SiteId, f64)]) -> Self {
        let mut entries = BTreeMap::new();
        entries.insert(
            owner,
            RouteEntry {
                destination: owner,
                distance: 0.0,
                next_hop: None,
                hops: 0,
            },
        );
        for &(nb, delay) in neighbors {
            entries.insert(
                nb,
                RouteEntry {
                    destination: nb,
                    distance: delay,
                    next_hop: Some(nb),
                    hops: 1,
                },
            );
        }
        MapRoutingTable { owner, entries }
    }

    fn merge_from_neighbor(
        &mut self,
        neighbor: SiteId,
        link_delay: f64,
        lines: &[RouteEntry],
    ) -> bool {
        let mut changed = false;
        for line in lines {
            let dest = line.destination;
            if dest == self.owner {
                continue;
            }
            let candidate = RouteEntry {
                destination: dest,
                distance: line.distance + link_delay,
                next_hop: Some(neighbor),
                hops: line.hops + 1,
            };
            let better = match self.entries.get(&dest) {
                None => true,
                Some(existing) => {
                    candidate.distance < existing.distance - 1e-12
                        || ((candidate.distance - existing.distance).abs() <= 1e-12
                            && candidate.hops < existing.hops)
                }
            };
            if better {
                self.entries.insert(dest, candidate);
                changed = true;
            }
        }
        changed
    }

    fn lines(&self) -> Vec<RouteEntry> {
        self.entries.values().copied().collect()
    }
}

#[derive(Debug, Clone, Copy)]
enum Topo {
    Ring(usize),
    Grid(usize, usize),
    ErdosRenyi(usize),
    BarabasiAlbert(usize),
    Geometric(usize),
}

fn build(topo: Topo, delays: DelayDistribution, seed: u64) -> Network {
    match topo {
        Topo::Ring(n) => ring(n, delays, seed),
        Topo::Grid(w, h) => grid(w, h, false, delays, seed),
        Topo::ErdosRenyi(n) => erdos_renyi_connected(n, 0.12, delays, seed),
        Topo::BarabasiAlbert(n) => barabasi_albert(n, 2, delays, seed),
        Topo::Geometric(n) => random_geometric(n, 0.25, delays, seed),
    }
}

fn arbitrary_topo() -> impl Strategy<Value = Topo> {
    prop_oneof![
        (3usize..20).prop_map(Topo::Ring),
        ((2usize..6), (2usize..6)).prop_map(|(w, h)| Topo::Grid(w, h)),
        (5usize..25).prop_map(Topo::ErdosRenyi),
        (5usize..25).prop_map(Topo::BarabasiAlbert),
        (5usize..20).prop_map(Topo::Geometric),
    ]
}

fn arbitrary_delays() -> impl Strategy<Value = DelayDistribution> {
    prop_oneof![
        (0.5f64..5.0).prop_map(DelayDistribution::Constant),
        (0.5f64..2.0, 2.0f64..8.0).prop_map(|(min, max)| DelayDistribution::Uniform { min, max }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All generated topologies are connected and their links are symmetric.
    #[test]
    fn generated_networks_are_connected(
        topo in arbitrary_topo(),
        delays in arbitrary_delays(),
        seed in 0u64..500,
    ) {
        let net = build(topo, delays, seed);
        prop_assert!(net.is_connected());
        for (a, b, d) in net.links() {
            prop_assert_eq!(net.link_delay(a, b), Some(d));
            prop_assert_eq!(net.link_delay(b, a), Some(d));
            prop_assert!(d >= 0.0);
        }
    }

    /// Run long enough, the interrupted Bellman–Ford converges exactly to
    /// Dijkstra's distances from every source.
    #[test]
    fn phased_apsp_converges_to_dijkstra(
        topo in arbitrary_topo(),
        delays in arbitrary_delays(),
        seed in 0u64..500,
    ) {
        let net = build(topo, delays, seed);
        let n = net.site_count();
        let result = phased_apsp(&net, n + 2);
        for s in net.sites() {
            let sp = shortest_paths(&net, s);
            for d in net.sites() {
                let got = result.tables[s.0].distance(d).unwrap_or(f64::INFINITY);
                prop_assert!((got - sp.dist[d.0]).abs() < 1e-6,
                    "{s}->{d}: table {got} vs dijkstra {}", sp.dist[d.0]);
            }
        }
    }

    /// Interrupted after `p` phases, every table distance equals the best
    /// delay over paths of at most `p + 1` links — never better, never worse.
    #[test]
    fn interrupted_apsp_is_hop_limited_optimal(
        topo in arbitrary_topo(),
        delays in arbitrary_delays(),
        seed in 0u64..500,
        phases in 0usize..6,
    ) {
        let net = build(topo, delays, seed);
        let result = phased_apsp(&net, phases);
        for s in net.sites() {
            let reference = hop_limited_distance(&net, s, phases + 1);
            for d in net.sites() {
                let got = result.tables[s.0].distance(d).unwrap_or(f64::INFINITY);
                if reference[d.0].is_infinite() {
                    prop_assert!(got.is_infinite());
                } else {
                    prop_assert!((got - reference[d.0]).abs() < 1e-6,
                        "{s}->{d} at {phases} phases: {got} vs {}", reference[d.0]);
                }
            }
        }
    }

    /// §6 sphere properties: after 2h phases the sphere of radius h around any
    /// site contains exactly the sites at hop distance <= h, its delays match
    /// hop-limited optima, and the members' mutual distances bound the
    /// delay diameter.
    #[test]
    fn spheres_satisfy_structural_properties(
        topo in arbitrary_topo(),
        delays in arbitrary_delays(),
        seed in 0u64..500,
        h in 1usize..4,
    ) {
        let net = build(topo, delays, seed);
        let result = phased_apsp(&net, 2 * h);
        for s in net.sites().take(5) {
            let sphere = Sphere::from_tables(&result.tables[s.0], &result.tables, h);
            prop_assert!(sphere.contains(s));
            prop_assert_eq!(sphere.center, s);
            // Membership compared against BFS hop distances: every site at
            // hop distance <= h must be a member. (The converse need not hold
            // with non-uniform delays: the delay-minimal route to a hop-close
            // site may use more than h links, excluding it from the table's
            // h-hop view — the paper accepts this, the sphere is built from
            // the routing table only.)
            let hops = net.hop_distances(s);
            for d in net.sites() {
                if hops[d.0] <= h {
                    prop_assert!(
                        sphere.contains(d) || result.tables[s.0].hops(d).map(|x| x > h).unwrap_or(false),
                        "site {d} at hop distance {} missing from radius-{h} sphere of {s}",
                        hops[d.0]
                    );
                }
            }
            // Delays from the centre are consistent with the routing table.
            for &m in &sphere.members {
                let delay = sphere.delay_to(m).unwrap();
                prop_assert!((delay - result.tables[s.0].distance(m).unwrap()).abs() < 1e-9);
            }
            // The delay diameter is at least the largest centre-to-member
            // delay (the centre is itself a member).
            let max_center_delay = sphere
                .delays
                .iter()
                .copied()
                .fold(0.0f64, f64::max);
            prop_assert!(sphere.delay_diameter + 1e-9 >= max_center_delay);
        }
    }

    /// The dense routing table is line-for-line equivalent to the historical
    /// ordered-map representation over a full phased exchange on randomized
    /// topologies: same change flags, same message contents (order included),
    /// same final routes.
    #[test]
    fn dense_routing_table_matches_map_reference(
        topo in arbitrary_topo(),
        delays in arbitrary_delays(),
        seed in 0u64..500,
        phases in 1usize..6,
    ) {
        let net = build(topo, delays, seed);
        let mut dense: Vec<RoutingTable> = net
            .sites()
            .map(|s| RoutingTable::initial(s, net.neighbors(s)))
            .collect();
        let mut reference: Vec<MapRoutingTable> = net
            .sites()
            .map(|s| MapRoutingTable::initial(s, net.neighbors(s)))
            .collect();
        for _ in 0..phases {
            // The send step: every site snapshots its lines. The snapshots —
            // the wire contents of routing-update messages — must be
            // identical, ordering included.
            let dense_lines: Vec<Vec<RouteEntry>> = dense.iter().map(|t| t.lines()).collect();
            let reference_lines: Vec<Vec<RouteEntry>> =
                reference.iter().map(|t| t.lines()).collect();
            prop_assert_eq!(&dense_lines, &reference_lines);
            // The receive step: merge every neighbor's snapshot.
            for s in net.sites() {
                for &(nb, delay) in net.neighbors(s) {
                    let changed_dense =
                        dense[s.0].merge_from_neighbor(nb, delay, &dense_lines[nb.0]);
                    let changed_reference =
                        reference[s.0].merge_from_neighbor(nb, delay, &reference_lines[nb.0]);
                    prop_assert_eq!(changed_dense, changed_reference, "site {} from {}", s, nb);
                }
            }
        }
        for s in net.sites() {
            prop_assert_eq!(dense[s.0].lines(), reference[s.0].lines(), "site {}", s);
            prop_assert_eq!(dense[s.0].len(), reference[s.0].entries.len());
            for d in net.sites() {
                prop_assert_eq!(
                    dense[s.0].route(d).copied(),
                    reference[s.0].entries.get(&d).copied(),
                    "route {} -> {}", s, d
                );
            }
        }
    }

    /// The sphere's bitset membership agrees with binary search over the
    /// sorted member vector for every site of the network.
    #[test]
    fn sphere_bitset_matches_sorted_members(
        topo in arbitrary_topo(),
        delays in arbitrary_delays(),
        seed in 0u64..500,
        h in 1usize..4,
    ) {
        let net = build(topo, delays, seed);
        let result = phased_apsp(&net, 2 * h);
        for s in net.sites().take(4) {
            let sphere = Sphere::from_tables(&result.tables[s.0], &result.tables, h);
            let set = SiteSet::from_sites(&sphere.members);
            prop_assert_eq!(sphere.member_set(), &set);
            prop_assert_eq!(set.len(), sphere.members.len());
            prop_assert_eq!(set.iter().collect::<Vec<_>>(), sphere.members.clone());
            for d in net.sites() {
                prop_assert_eq!(
                    sphere.contains(d),
                    sphere.members.binary_search(&d).is_ok(),
                    "membership of {} in sphere of {}", d, s
                );
            }
            // Out-of-range probes are simply absent.
            prop_assert!(!sphere.contains(SiteId(net.site_count() + 1000)));
        }
    }

    /// Dijkstra path reconstruction yields paths whose total delay equals the
    /// reported distance.
    #[test]
    fn dijkstra_paths_are_consistent(
        topo in arbitrary_topo(),
        delays in arbitrary_delays(),
        seed in 0u64..500,
    ) {
        let net = build(topo, delays, seed);
        let sp = shortest_paths(&net, SiteId(0));
        for d in net.sites() {
            let path = sp.path_to(d).expect("connected network");
            prop_assert_eq!(path[0], SiteId(0));
            prop_assert_eq!(*path.last().unwrap(), d);
            let mut total = 0.0;
            for w in path.windows(2) {
                total += net.link_delay(w[0], w[1]).expect("path uses existing links");
            }
            prop_assert!((total - sp.dist[d.0]).abs() < 1e-6);
            prop_assert_eq!(path.len() - 1, sp.hops[d.0]);
        }
    }
}
