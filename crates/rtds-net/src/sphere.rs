//! Hop-bounded spheres — the structural core of the Computing Sphere (§6).
//!
//! A sphere of radius `h` rooted at site `k` is the set of sites whose best
//! known route from `k` uses at most `h` links. §6 lists the properties the
//! Computing Sphere enjoys once the interrupted APSP has run for `2h` phases:
//!
//! * every member has a unique minimum-communication-delay path to `k`
//!   (materialised here by the `next_hop` chain of `k`'s routing table),
//! * the hop diameter of the sphere is bounded by a constant (`≤ 2h`),
//! * minimum-delay paths exist between any pair of sphere members (within the
//!   `2h`-hop horizon), which is what allows the delay-diameter of the sphere
//!   to be computed and later over-approximate task-to-task communication in
//!   the Mapper (§12).

use crate::routing::RoutingTable;
use crate::siteset::SiteSet;
use crate::topology::SiteId;
use serde::{Deserialize, Serialize};

/// A hop-bounded sphere around a centre site.
///
/// Membership is answered by a fixed-width [`SiteSet`] bitset (O(1) per
/// probe); the sorted `members` vector is kept alongside it for ordered
/// iteration and the parallel `delays`.
///
/// The bitset is derived from `members` by the constructors and is the
/// *only* source [`Sphere::contains`] consults — a sphere is an immutable
/// snapshot. Do not mutate the public fields in place; build a new sphere
/// via [`Sphere::new`] instead, or `contains` will disagree with the
/// vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sphere {
    /// The root site `k`.
    pub center: SiteId,
    /// Hop radius `h`.
    pub radius: usize,
    /// Members of the sphere (always includes the centre), sorted by site id.
    pub members: Vec<SiteId>,
    /// Minimum delay from the centre to each member (same order as
    /// `members`).
    pub delays: Vec<f64>,
    /// Delay diameter of the sphere: the largest pairwise minimum delay known
    /// between two members (used by the Mapper as the communication-delay
    /// over-estimate ω).
    pub delay_diameter: f64,
    /// Bitset over `members` (derived, kept in sync by the constructor).
    members_set: SiteSet,
}

impl Sphere {
    /// Assembles a sphere from its parts, deriving the membership bitset.
    /// `members` must be sorted by site id with `delays` parallel to it.
    pub fn new(
        center: SiteId,
        radius: usize,
        members: Vec<SiteId>,
        delays: Vec<f64>,
        delay_diameter: f64,
    ) -> Self {
        debug_assert_eq!(members.len(), delays.len());
        debug_assert!(members.windows(2).all(|w| w[0] < w[1]), "members sorted");
        let members_set = SiteSet::from_sites(&members);
        Sphere {
            center,
            radius,
            members,
            delays,
            delay_diameter,
            members_set,
        }
    }

    /// Builds the sphere of hop radius `h` around the owner of `center_table`,
    /// using the member tables to compute the pairwise delay diameter.
    ///
    /// `tables` must contain a routing table for every site id referenced by
    /// the centre table (indexed by site id); tables of non-member sites are
    /// simply ignored.
    pub fn from_tables(
        center_table: &RoutingTable,
        tables: &[RoutingTable],
        radius: usize,
    ) -> Self {
        let center = center_table.owner();
        let mut members = center_table.destinations_within_hops(radius);
        members.sort_unstable();
        let delays = members
            .iter()
            .map(|m| center_table.distance(*m).unwrap_or(f64::INFINITY))
            .collect::<Vec<_>>();
        let mut diameter = 0.0f64;
        for &a in &members {
            for &b in &members {
                if a == b {
                    continue;
                }
                if let Some(d) = tables.get(a.0).and_then(|t| t.distance(b)) {
                    diameter = diameter.max(d);
                }
            }
        }
        Sphere::new(center, radius, members, delays, diameter)
    }

    /// Number of member sites (including the centre).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the sphere contains only its centre.
    pub fn is_empty(&self) -> bool {
        self.members.len() <= 1
    }

    /// Returns `true` if the given site belongs to the sphere (O(1) bitset
    /// probe).
    #[inline]
    pub fn contains(&self, s: SiteId) -> bool {
        self.members_set.contains(s)
    }

    /// The membership bitset.
    pub fn member_set(&self) -> &SiteSet {
        &self.members_set
    }

    /// Minimum known delay from the centre to a member site.
    pub fn delay_to(&self, s: SiteId) -> Option<f64> {
        self.members
            .binary_search(&s)
            .ok()
            .map(|idx| self.delays[idx])
    }

    /// Members other than the centre.
    pub fn peers(&self) -> impl Iterator<Item = SiteId> + '_ {
        let center = self.center;
        self.members.iter().copied().filter(move |m| *m != center)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bellman_ford::phased_apsp;
    use crate::generators::{line, ring, DelayDistribution};
    use crate::topology::Network;

    #[test]
    fn sphere_on_a_line() {
        let net = line(9, DelayDistribution::Constant(2.0), 0);
        let result = phased_apsp(&net, 8);
        let sphere = Sphere::from_tables(&result.tables[4], &result.tables, 2);
        assert_eq!(sphere.center, SiteId(4));
        assert_eq!(
            sphere.members,
            vec![SiteId(2), SiteId(3), SiteId(4), SiteId(5), SiteId(6)]
        );
        assert_eq!(sphere.len(), 5);
        assert!(!sphere.is_empty());
        assert!(sphere.contains(SiteId(2)));
        assert!(!sphere.contains(SiteId(0)));
        assert_eq!(sphere.delay_to(SiteId(6)), Some(4.0));
        assert_eq!(sphere.delay_to(SiteId(0)), None);
        // Farthest pair inside the sphere: sites 2 and 6, delay 8.
        assert_eq!(sphere.delay_diameter, 8.0);
        assert_eq!(sphere.peers().count(), 4);
    }

    #[test]
    fn radius_zero_is_only_the_center() {
        let net = ring(5, DelayDistribution::Constant(1.0), 0);
        let result = phased_apsp(&net, 4);
        let sphere = Sphere::from_tables(&result.tables[0], &result.tables, 0);
        assert_eq!(sphere.members, vec![SiteId(0)]);
        assert!(sphere.is_empty());
        assert_eq!(sphere.delay_diameter, 0.0);
    }

    #[test]
    fn sphere_respects_2h_phase_budget() {
        // With only 2h phases of table exchange, the sphere of radius h is
        // complete and pairwise distances inside it are known.
        let h = 2;
        let net = ring(12, DelayDistribution::Constant(1.0), 0);
        let result = phased_apsp(&net, 2 * h);
        let sphere = Sphere::from_tables(&result.tables[0], &result.tables, h);
        // On a ring, radius-2 sphere = 5 consecutive sites.
        assert_eq!(sphere.len(), 5);
        // Diameter between extreme members (2 hops each side of the centre) is
        // 4 links of delay 1 — and it is visible within the 2h-hop horizon.
        assert_eq!(sphere.delay_diameter, 4.0);
    }

    #[test]
    fn delay_diameter_uses_member_tables_not_center_only() {
        // Star with distinct delays: the diameter is between two leaves, a
        // quantity the centre's own table alone cannot provide.
        let mut net = Network::new(4);
        net.add_link(SiteId(0), SiteId(1), 1.0).unwrap();
        net.add_link(SiteId(0), SiteId(2), 5.0).unwrap();
        net.add_link(SiteId(0), SiteId(3), 2.0).unwrap();
        let result = phased_apsp(&net, 4);
        let sphere = Sphere::from_tables(&result.tables[0], &result.tables, 1);
        assert_eq!(sphere.len(), 4);
        // Leaf 2 to leaf 3 = 5 + 2 = 7, the largest pairwise distance.
        assert_eq!(sphere.delay_diameter, 7.0);
    }
}
