//! A tiny shared argument parser for the experiment binaries (no external
//! dependencies — the build environment has no registry access).
//!
//! Every `exp_*` binary accepts at least:
//!
//! * `--seed <u64>` — the workload/system seed that used to be a hard-coded
//!   constant (each binary documents its default);
//! * `--json <path>` — write the experiment's machine-readable report to
//!   `path` in addition to the human-readable stdout tables.
//!
//! Binaries may layer extra flags (`exp_scenarios` adds `--list`,
//! `--scenario`, `--seeds`, `--threads`) through [`ExpArgs::value_of`] /
//! [`ExpArgs::has`]. Unknown flags abort with a usage message rather than
//! being silently ignored.

use rtds_scenarios::Json;

/// Parsed command-line arguments of one experiment binary.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    binary: String,
    args: Vec<String>,
    known: Vec<&'static str>,
}

impl ExpArgs {
    /// Parses the process arguments, accepting `--seed` and `--json` plus
    /// the given extra value-taking or boolean flags (names without `--`).
    pub fn parse(extra_flags: &[&'static str]) -> ExpArgs {
        let mut argv = std::env::args();
        let binary = argv.next().unwrap_or_else(|| "exp".into());
        Self::from_vec(&binary, argv.collect(), extra_flags)
    }

    /// Testable constructor from an explicit argument vector.
    pub fn from_vec(binary: &str, args: Vec<String>, extra_flags: &[&'static str]) -> ExpArgs {
        let mut known = vec!["seed", "json"];
        known.extend_from_slice(extra_flags);
        let parsed = ExpArgs {
            binary: binary.to_string(),
            args,
            known,
        };
        let mut previous_was_flag = false;
        for arg in &parsed.args {
            match arg.strip_prefix("--") {
                Some(name) => {
                    if !parsed.known.contains(&name) {
                        parsed.usage_error(&format!("unknown flag --{name}"));
                    }
                    previous_was_flag = true;
                }
                // A bare token is only legal as the value of the flag right
                // before it; a stray positional argument (e.g. a scenario
                // name without --scenario) must not be silently ignored.
                None if previous_was_flag => previous_was_flag = false,
                None => parsed.usage_error(&format!("unexpected argument {arg:?}")),
            }
        }
        parsed
    }

    fn usage_error(&self, message: &str) -> ! {
        eprintln!("{}: {message}", self.binary);
        eprintln!(
            "usage: {} {}",
            self.binary,
            self.known
                .iter()
                .map(|f| format!("[--{f} <value>]"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        std::process::exit(2);
    }

    /// Returns `true` if the boolean flag is present.
    pub fn has(&self, flag: &str) -> bool {
        self.args.iter().any(|a| a == &format!("--{flag}"))
    }

    /// The value following `--flag`, if any.
    pub fn value_of(&self, flag: &str) -> Option<&str> {
        let needle = format!("--{flag}");
        let mut iter = self.args.iter();
        while let Some(arg) = iter.next() {
            if arg == &needle {
                match iter.next() {
                    Some(value) if !value.starts_with("--") => return Some(value),
                    _ => self.usage_error(&format!("--{flag} needs a value")),
                }
            }
        }
        None
    }

    /// The `--seed` value, or `default` (the binary's historical constant).
    pub fn seed(&self, default: u64) -> u64 {
        match self.value_of("seed") {
            None => default,
            Some(raw) => raw
                .parse()
                .unwrap_or_else(|_| self.usage_error(&format!("--seed: not a u64: {raw:?}"))),
        }
    }

    /// A generic `usize` flag with a default.
    pub fn usize_of(&self, flag: &str, default: usize) -> usize {
        match self.value_of(flag) {
            None => default,
            Some(raw) => raw
                .parse()
                .unwrap_or_else(|_| self.usage_error(&format!("--{flag}: not a usize: {raw:?}"))),
        }
    }

    /// The `--json` output path, if requested.
    pub fn json_path(&self) -> Option<&str> {
        self.value_of("json")
    }

    /// Writes the report to the `--json` path when one was given.
    pub fn write_json(&self, report: &Json) {
        if let Some(path) = self.json_path() {
            write_json_report(path, &report.render());
        }
    }
}

/// Writes an already-rendered JSON document to `path`, aborting the
/// experiment on I/O errors.
pub fn write_json_report(path: &str, body: &str) {
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("cannot write JSON report to {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote JSON report to {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> ExpArgs {
        ExpArgs::from_vec(
            "exp_test",
            v.iter().map(|s| s.to_string()).collect(),
            &["list"],
        )
    }

    #[test]
    fn defaults_and_values() {
        let a = args(&[]);
        assert_eq!(a.seed(42), 42);
        assert_eq!(a.json_path(), None);
        assert!(!a.has("list"));

        let a = args(&["--seed", "7", "--json", "/tmp/out.json", "--list"]);
        assert_eq!(a.seed(42), 7);
        assert_eq!(a.json_path(), Some("/tmp/out.json"));
        assert!(a.has("list"));
        assert_eq!(a.usize_of("seed", 0), 7);
        assert_eq!(a.usize_of("missing", 9), 9);
    }

    #[test]
    fn json_report_round_trips_to_disk() {
        let path = std::env::temp_dir().join("rtds_args_test.json");
        let path = path.to_str().unwrap();
        write_json_report(path, &Json::object(vec![("x", Json::Int(1))]).render());
        let body = std::fs::read_to_string(path).unwrap();
        assert_eq!(body, "{\n  \"x\": 1\n}\n");
        let _ = std::fs::remove_file(path);
    }
}
