//! # rtds-bench — experiment harness and micro-benchmarks
//!
//! This crate regenerates every exhibit of the paper and the simulation-grade
//! evaluation of its claims (see DESIGN.md §4 and EXPERIMENTS.md):
//!
//! * binaries (`src/bin/`):
//!   * `exp_fig1_overview` — a traced walk through the Fig. 1 protocol
//!     pipeline for one distributed job,
//!   * `exp_table1_example` — Fig. 2 instance, Fig. 3 schedule `S`,
//!     Fig. 4 schedule `S*`, Table 1 adjusted windows,
//!   * `exp_acceptance_vs_load` — E1: guarantee ratio vs. arrival rate for
//!     RTDS and the baselines,
//!   * `exp_overhead_vs_size` — E2: messages per job vs. network size,
//!   * `exp_sphere_radius` — E3: the sphere-radius `h` trade-off,
//!   * `exp_laxity_tightness` — E4: acceptance vs. deadline tightness
//!     (which exercises adjustment cases (i)/(ii)/(iii)),
//!   * `exp_extensions_ablation` — E5: the §13 extension switches,
//!   * `exp_scenarios` — the declarative scenario engine: registry listing,
//!     fault-injection scenarios and the sharded seed sweep (see
//!     [`rtds_scenarios`]),
//!   * `exp_flows` — E7: the shared-bandwidth flow plane under contention
//!     (the registry flow scenarios through `rtds-flow`, with the
//!     `--assert-contention` tripwire proving transfers really share
//!     bandwidth; see `docs/NETWORK.md`),
//!   * `exp_perf` — the fixed performance suite behind the recorded
//!     `BENCH_<n>.json` trajectory (see [`perf`] and `docs/PERFORMANCE.md`);
//!     its `--baseline <BENCH_N.json>` mode diffs a run against a recorded
//!     report and exits nonzero on deterministic-field mismatches or a
//!     >20 % events/sec regression,
//!   * `exp_workloads` — streaming open-loop workload runs (the million-job
//!     driver) with JSONL trace `--record`/`--replay` round-trips (see
//!     [`rtds_workload`] and `docs/WORKLOADS.md`),
//! * Criterion benches (`benches/`): the Mapper, the Hopcroft–Karp matching,
//!   the phased routing exchange, the local admission test, DAG generation
//!   and an end-to-end job distribution.
//!
//! The harness utilities in this library build reproducible workloads and run
//! policy comparisons in parallel across CPU cores (one simulation per
//! thread; each individual simulation stays deterministic). Every binary
//! accepts `--seed <u64>` and `--json <path>` through the shared [`args`]
//! parser.

pub mod args;
pub mod harness;
pub mod perf;
pub mod tracing;

pub use perf::{resume_soak, run_perf_suite, run_soak, PerfReport, SoakResult};

pub use args::{write_json_report, ExpArgs};
pub use harness::{
    baseline_policies, comparison_row, parallel_sweep, policy_comparison, workload, ComparisonRow,
    WorkloadSpec,
};
pub use tracing::{TraceSetup, TRACE_FLAGS};
// The sharded generalisation of `parallel_sweep` lives with the scenario
// sweep runner; re-exported here so harness users find both in one place.
pub use rtds_scenarios::parallel_sweep_sharded;
