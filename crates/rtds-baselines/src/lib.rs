//! # rtds-baselines — comparison policies for the RTDS evaluation
//!
//! The paper's qualitative claims ("a limited number of sites and
//! communication links", "an increase of the number of accepted jobs") only
//! make sense relative to alternatives. This crate provides the policies the
//! experiment harness compares RTDS against:
//!
//! * [`local_only`] — accept a job only if the arrival site can guarantee it
//!   locally (no cooperation at all): the lower bound on acceptance,
//! * [`random_offload`] — on local failure, forward the whole job to a random
//!   neighbor with a bounded number of forwarding hops (a naive cooperation
//!   scheme with very low overhead),
//! * [`broadcast_bidding`] — focused addressing / bidding in the style of
//!   Cheng, Stankovic and Ramamritham \[4\]: on local failure the initiator
//!   floods a request for bids over the *whole* network, collects surplus
//!   bids during a bidding window and then offers the job to the best
//!   bidders; acceptance is good but the message cost grows with the network
//!   size — exactly what the Computing Sphere is designed to avoid,
//! * [`centralized`] — an omniscient centralized scheduler with exact global
//!   knowledge and zero protocol cost; an upper bound on what any on-line
//!   distribution scheme could accept,
//! * [`global_heft`] — centralized insertion-based HEFT list scheduling
//!   with communication-inclusive upward ranks (Topcuoglu et al.); the
//!   classic DAG-scheduling heuristic as a distribution baseline,
//! * [`policy`] — the common report type and the [`DistributionPolicy`]
//!   trait unifying all five entry points, so harnesses iterate over
//!   `Box<dyn DistributionPolicy>` instead of hand-wiring each signature.
//!
//! Every policy consumes the same ingredients as RTDS itself — networks from
//! [`rtds_net`], jobs from [`rtds_graph`], plans from [`rtds_sched`] — and is
//! driven side-by-side with [`rtds_core`](../rtds_core/index.html) by the
//! comparison harness in [`rtds_bench`](../rtds_bench/index.html).

pub mod broadcast_bidding;
pub mod centralized;
pub mod global_heft;
pub mod local_only;
pub mod policy;
pub mod random_offload;

pub use broadcast_bidding::{run_broadcast_bidding, BiddingConfig};
pub use centralized::run_centralized_oracle;
pub use global_heft::run_global_heft;
pub use local_only::run_local_only;
pub use policy::{
    all_policies, BroadcastBidding, CentralizedOracle, DistributionPolicy, GlobalHeft, LocalOnly,
    PolicyReport, RandomOffload,
};
pub use random_offload::{run_random_offload, RandomOffloadConfig};
