//! Fig. 1 — algorithm overview: traces one job through every protocol stage
//! (local test, ACS enrollment, trial mapping, validation, permutation,
//! execution) on a small network.
//!
//! Run with: `cargo run -p rtds-bench --bin exp_fig1_overview`
//! (`--seed <u64>` defaults to 1 and seeds the system; `--json <path>`
//! dumps the stage counts; `--trace-out <p>` / `--chrome-trace <p>` export
//! the captured span trace as `rtds-trace/1` JSONL / Chrome `about:tracing`
//! JSON — see `docs/TRACING.md`).

use rtds_bench::{ExpArgs, TraceSetup, TRACE_FLAGS};
use rtds_core::{RtdsConfig, RtdsSystem};
use rtds_graph::paper_instance::paper_job;
use rtds_graph::{Job, JobId, JobParams, TaskGraph, TaskId};
use rtds_net::generators::{line, DelayDistribution};
use rtds_scenarios::Json;
use rtds_sim::trace::{render_jsonl, Value as TraceValue};
use rtds_sim::Trace;

fn blocking_job(id: u64, site: usize) -> Job {
    // A 60-unit filler job that keeps the arrival site busy so the paper job
    // cannot be guaranteed locally.
    let g = TaskGraph::from_costs(&[60.0]);
    debug_assert_eq!(g.cost(TaskId(0)), 60.0);
    Job::new(JobId(id), g, JobParams::new(0.0, 70.0), site)
}

fn main() {
    let args = ExpArgs::parse(&TRACE_FLAGS, &[]);
    let tracing = TraceSetup::from_args(&args);
    let seed = args.seed(1);
    let network = line(4, DelayDistribution::Constant(1.0), 0);
    let config = RtdsConfig {
        sphere_radius: 2,
        ..RtdsConfig::default()
    };
    let mut system = RtdsSystem::new(network, config, seed);
    // The walkthrough renders the events afterwards, so the recorder is
    // always ring-backed; `--trace-out` writes the rendered document.
    system.set_trace(Trace::ring(tracing.ring_capacity()));

    // Load site 1, then submit the paper's worked-example job there.
    system.submit_job(blocking_job(1, 1));
    system.submit_job(paper_job(JobId(2), 1));
    let report = system.run();

    println!("== Fig. 1: protocol walkthrough for one distributed job ==");
    println!();
    print!("{}", system.trace().render());
    println!();
    println!(
        "submitted {}, accepted locally {}, accepted distributed {}, rejected {}",
        report.jobs_submitted,
        report.guarantee.accepted_locally,
        report.guarantee.accepted_distributed,
        report.guarantee.rejected,
    );
    println!("deadline misses: {}", report.deadline_misses());
    println!();
    // The stages of Fig. 1, in order, must all appear in the trace.
    let mut json_stages = Vec::new();
    for stage in [
        "local-test",
        "local-reject",
        "acs-enroll",
        "acs-joined",
        "trial-mapping",
        "validation",
        "mapping-validated",
        "execute",
        "job-accepted",
    ] {
        let n = system.trace().of_kind(stage).count();
        println!("stage {:<20} observed {} time(s)", stage, n);
        assert!(n > 0, "protocol stage {stage} missing from the trace");
        json_stages.push(Json::object(vec![
            ("stage", Json::str(stage)),
            ("observed", Json::UInt(n as u64)),
        ]));
    }
    args.write_json(&Json::object(vec![
        ("experiment", Json::str("fig1_overview")),
        ("seed", Json::UInt(seed)),
        ("jobs_submitted", Json::UInt(report.jobs_submitted)),
        (
            "accepted_distributed",
            Json::UInt(report.guarantee.accepted_distributed),
        ),
        ("deadline_misses", Json::UInt(report.deadline_misses())),
        ("stages", Json::Array(json_stages)),
    ]));
    if tracing.is_active() {
        let document = render_jsonl(
            &[
                ("experiment", TraceValue::Str("fig1_overview".into())),
                ("seed", TraceValue::U64(seed)),
            ],
            &system.trace().events(),
        );
        tracing.export_document(&document);
    }
    println!();
    println!("RESULT: every stage of the Fig. 1 pipeline was exercised.");
}
