//! E2 — distribution messages per job vs. network size: the Computing Sphere
//! keeps the per-job cost flat while broadcast bidding scales with the
//! network ("our network may be unbounded since we never broadcast over all
//! the network", §3).
//!
//! Run with: `cargo run --release -p rtds-bench --bin exp_overhead_vs_size`
//! (`--seed <u64>` defaults to 5, `--json <path>` dumps the table).

use rtds_baselines::{run_broadcast_bidding, BiddingConfig};
use rtds_bench::{comparison_row, parallel_sweep, workload, ExpArgs, WorkloadSpec};
use rtds_core::RtdsConfig;
use rtds_net::generators::{barabasi_albert, DelayDistribution};
use rtds_scenarios::Json;

fn opt_num(value: Option<f64>) -> Json {
    value.map(Json::Num).unwrap_or(Json::Null)
}

fn main() {
    let args = ExpArgs::parse(&[], &[]);
    let seed = args.seed(5);
    let sizes = vec![16usize, 32, 64, 128, 256, 512];
    println!("== E2: messages per job vs. network size (Barabasi-Albert, m = 2, 4 hotspots) ==");
    println!();
    println!(
        "{:>7} {:>6} | {:>14} {:>14} | {:>10} {:>10}",
        "sites", "jobs", "rtds msg/job", "bcast msg/job", "rtds", "bcast"
    );
    let results = parallel_sweep(sizes, |n| {
        let network = barabasi_albert(n, 2, DelayDistribution::Constant(1.0), 11);
        let jobs = workload(
            &network,
            WorkloadSpec {
                rate: 0.03,
                horizon: 250.0,
                hotspots: 4,
                seed,
                tasks_per_job: 6,
                ..WorkloadSpec::default()
            },
        );
        // "Limited number of sites": the ACS is capped at 8 members, which is
        // the knob the paper's claim is about. Without the cap, a radius-2
        // sphere around a scale-free hub would itself grow with the network.
        let config = RtdsConfig {
            max_acs_size: 8,
            ..RtdsConfig::default()
        };
        let rtds = comparison_row("rtds", &network, &jobs, config, 3);
        let bcast = run_broadcast_bidding(&network, &jobs, BiddingConfig::default());
        (n, jobs.len(), rtds, bcast)
    });
    let mut rtds_costs = Vec::new();
    let mut json_rows = Vec::new();
    for (n, njobs, rtds, bcast) in results {
        println!(
            "{:>7} {:>6} | {:>14.1} {:>14.1} | {:>10.3} {:>10.3}",
            n,
            njobs,
            rtds.messages_per_job.unwrap_or(f64::NAN),
            bcast.messages_per_job().unwrap_or(f64::NAN),
            rtds.ratio.unwrap_or(f64::NAN),
            bcast.guarantee_ratio().unwrap_or(f64::NAN),
        );
        assert_eq!(rtds.misses, 0);
        json_rows.push(Json::object(vec![
            ("sites", Json::UInt(n as u64)),
            ("jobs", Json::UInt(njobs as u64)),
            ("rtds_messages_per_job", opt_num(rtds.messages_per_job)),
            (
                "broadcast_messages_per_job",
                opt_num(bcast.messages_per_job()),
            ),
            ("rtds_ratio", opt_num(rtds.ratio)),
            ("broadcast_ratio", opt_num(bcast.guarantee_ratio())),
        ]));
        rtds_costs.push(rtds.messages_per_job.unwrap_or(0.0));
    }
    args.write_json(&Json::object(vec![
        ("experiment", Json::str("overhead_vs_size")),
        ("seed", Json::UInt(seed)),
        ("rows", Json::Array(json_rows)),
    ]));
    println!();
    let first = rtds_costs.first().copied().unwrap_or(0.0);
    let last = rtds_costs.last().copied().unwrap_or(0.0);
    println!(
        "RTDS per-job cost moved from {:.1} to {:.1} messages over a 32x network growth;",
        first, last
    );
    println!("broadcast bidding grows linearly with the number of links and sites.");
}
