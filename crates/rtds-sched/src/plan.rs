//! The scheduling plan of one site's computation processor.
//!
//! A plan is the ordered set of task reservations the site has *committed*
//! to. Everything the paper asks of the local scheduler reduces to questions
//! about this plan:
//!
//! * §5 local test — can a DAG be interleaved with the committed
//!   reservations before its deadline?
//! * §10 validation — can a set of tasks with releases and deadlines be
//!   interleaved with the committed reservations?
//! * §2 surplus — how much of the observation window is still idle?
//!
//! Insertion is *non-preemptive* by default (each task occupies one
//! contiguous slot) with a preemptive variant (a task may be split across
//! idle windows) supporting the §13 preemptive generalisation.

use crate::interval::{subtract_busy, TimeInterval};
use rtds_graph::{JobId, TaskId};
use serde::{Deserialize, Serialize};

/// Tolerance used when comparing times; all workloads in this crate operate
/// on times well above this scale.
pub(crate) const TIME_EPS: f64 = 1e-9;

/// A committed reservation: one task of one job occupying `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reservation {
    /// Owning job.
    pub job: JobId,
    /// Task within the job.
    pub task: TaskId,
    /// Start time.
    pub start: f64,
    /// End time (exclusive).
    pub end: f64,
}

impl Reservation {
    /// The occupied interval.
    pub fn interval(&self) -> TimeInterval {
        TimeInterval::new(self.start, self.end)
    }

    /// Duration of the reservation.
    pub fn duration(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }
}

/// Errors raised by plan mutations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanError {
    /// The new reservation overlaps an existing one.
    Overlap,
    /// The reservation is malformed (non-finite or non-positive length).
    Malformed,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Overlap => write!(f, "reservation overlaps the committed plan"),
            PlanError::Malformed => write!(f, "malformed reservation"),
        }
    }
}

impl std::error::Error for PlanError {}

/// The committed schedule of one site, kept sorted by start time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SchedulePlan {
    reservations: Vec<Reservation>,
}

impl SchedulePlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        SchedulePlan::default()
    }

    /// Rebuilds a plan from reservations captured by
    /// [`SchedulePlan::reservations`].
    ///
    /// # Panics
    /// Panics if the reservations are not in start-time order — the order
    /// is an invariant every query relies on, and a snapshot written by
    /// this crate always satisfies it.
    pub fn from_reservations(reservations: Vec<Reservation>) -> Self {
        assert!(
            reservations.windows(2).all(|w| w[0].start <= w[1].start),
            "reservations must be sorted by start time"
        );
        SchedulePlan { reservations }
    }

    /// Committed reservations in start-time order.
    pub fn reservations(&self) -> &[Reservation] {
        &self.reservations
    }

    /// Number of committed reservations.
    pub fn len(&self) -> usize {
        self.reservations.len()
    }

    /// Returns `true` if nothing is committed.
    pub fn is_empty(&self) -> bool {
        self.reservations.is_empty()
    }

    /// Reservations belonging to one job.
    pub fn job_reservations(&self, job: JobId) -> impl Iterator<Item = &Reservation> {
        self.reservations.iter().filter(move |r| r.job == job)
    }

    /// Returns `true` if the given interval does not overlap any committed
    /// reservation.
    pub fn is_idle(&self, interval: TimeInterval) -> bool {
        if interval.is_empty() {
            return true;
        }
        !self
            .reservations
            .iter()
            .any(|r| r.interval().overlaps(&interval))
    }

    /// Idle windows of the plan inside `[from, to)`.
    pub fn idle_windows(&self, from: f64, to: f64) -> Vec<TimeInterval> {
        let busy: Vec<TimeInterval> = self.reservations.iter().map(|r| r.interval()).collect();
        subtract_busy(TimeInterval::new(from, to), &busy)
    }

    /// Total busy time inside `[from, to)`.
    pub fn busy_time(&self, from: f64, to: f64) -> f64 {
        let window = TimeInterval::new(from, to);
        self.reservations
            .iter()
            .map(|r| r.interval().intersect(&window).duration())
            .sum()
    }

    /// Earliest start `s >= earliest` such that `[s, s + duration)` is idle
    /// and `s + duration <= deadline`. Returns `None` if no such slot exists.
    ///
    /// This is the §5/§10 insertion primitive for the non-preemptive model.
    pub fn earliest_fit(&self, earliest: f64, deadline: f64, duration: f64) -> Option<f64> {
        if duration < 0.0 || earliest + duration > deadline + TIME_EPS {
            return None;
        }
        if duration == 0.0 {
            return Some(earliest);
        }
        for window in self.idle_windows(earliest, deadline) {
            let start = window.start.max(earliest);
            if start + duration <= window.end + TIME_EPS && start + duration <= deadline + TIME_EPS
            {
                return Some(start);
            }
        }
        None
    }

    /// Preemptive variant of [`SchedulePlan::earliest_fit`]: greedily fills
    /// idle windows from `earliest` on and returns the chunks used (in time
    /// order) if the whole duration fits before the deadline.
    pub fn earliest_fit_preemptive(
        &self,
        earliest: f64,
        deadline: f64,
        duration: f64,
    ) -> Option<Vec<TimeInterval>> {
        if duration < 0.0 {
            return None;
        }
        if duration == 0.0 {
            return Some(Vec::new());
        }
        let mut remaining = duration;
        let mut chunks = Vec::new();
        for window in self.idle_windows(earliest, deadline) {
            if remaining <= TIME_EPS {
                break;
            }
            let usable = window.duration().min(remaining);
            if usable > TIME_EPS {
                chunks.push(TimeInterval::new(window.start, window.start + usable));
                remaining -= usable;
            }
        }
        if remaining <= TIME_EPS {
            Some(chunks)
        } else {
            None
        }
    }

    /// Commits a reservation.
    pub fn insert(&mut self, reservation: Reservation) -> Result<(), PlanError> {
        if !(reservation.start.is_finite() && reservation.end.is_finite())
            || reservation.end < reservation.start - TIME_EPS
        {
            return Err(PlanError::Malformed);
        }
        if !self.is_idle(reservation.interval()) {
            return Err(PlanError::Overlap);
        }
        let pos = self
            .reservations
            .partition_point(|r| r.start <= reservation.start);
        self.reservations.insert(pos, reservation);
        Ok(())
    }

    /// Commits several reservations atomically: either all succeed or the
    /// plan is left unchanged.
    pub fn insert_all(&mut self, reservations: &[Reservation]) -> Result<(), PlanError> {
        let backup = self.reservations.clone();
        for r in reservations {
            if let Err(e) = self.insert(*r) {
                self.reservations = backup;
                return Err(e);
            }
        }
        Ok(())
    }

    /// Removes every reservation of a job (used when a trial mapping is
    /// invalidated or a lock is released without selection).
    pub fn remove_job(&mut self, job: JobId) -> usize {
        let before = self.reservations.len();
        self.reservations.retain(|r| r.job != job);
        before - self.reservations.len()
    }

    /// Removes and returns every reservation that has fully completed by
    /// `cutoff` (end `<= cutoff`), preserving the start-time order of both
    /// the removed and the surviving reservations.
    ///
    /// This is the pruning primitive of the streaming execution path: past
    /// reservations can never influence an admission or validation test
    /// again (those only look at `[now, ·)` windows), so a long open-loop
    /// run periodically drains them to keep the plan sized by the *active*
    /// window instead of the whole history. The drained records carry the
    /// completion times the streaming report aggregates.
    pub fn drain_completed(&mut self, cutoff: f64) -> Vec<Reservation> {
        let mut done = Vec::new();
        self.reservations.retain(|r| {
            if r.end <= cutoff + TIME_EPS {
                done.push(*r);
                false
            } else {
                true
            }
        });
        done
    }

    /// The first instant at or after `t` at which the processor is idle.
    pub fn next_idle_time(&self, t: f64) -> f64 {
        let mut cursor = t;
        for r in &self.reservations {
            if r.end <= cursor + TIME_EPS {
                continue;
            }
            if r.start > cursor + TIME_EPS {
                break;
            }
            cursor = r.end;
        }
        cursor
    }

    /// Completion time of a job on this site: the latest reservation end of
    /// the job, if any of its tasks run here.
    pub fn job_completion(&self, job: JobId) -> Option<f64> {
        self.job_reservations(job)
            .map(|r| r.end)
            .fold(None, |acc, e| Some(acc.map_or(e, |a: f64| a.max(e))))
    }

    /// Surplus over the observation window `[now, now + window)`: the §2
    /// ratio of idle time to window length. An empty window yields 1.0.
    pub fn surplus(&self, now: f64, window: f64) -> f64 {
        if window <= 0.0 {
            return 1.0;
        }
        let idle = window - self.busy_time(now, now + window);
        (idle / window).clamp(0.0, 1.0)
    }

    /// Checks the internal non-overlap invariant (used by property tests and
    /// debug assertions in the protocol layer).
    pub fn check_invariants(&self) -> bool {
        self.reservations
            .windows(2)
            .all(|w| w[0].start <= w[1].start + TIME_EPS && w[0].end <= w[1].start + TIME_EPS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(job: u64, task: usize, start: f64, end: f64) -> Reservation {
        Reservation {
            job: JobId(job),
            task: TaskId(task),
            start,
            end,
        }
    }

    #[test]
    fn insert_and_query() {
        let mut plan = SchedulePlan::new();
        assert!(plan.is_empty());
        plan.insert(res(1, 0, 10.0, 20.0)).unwrap();
        plan.insert(res(1, 1, 30.0, 35.0)).unwrap();
        plan.insert(res(2, 0, 0.0, 5.0)).unwrap();
        assert_eq!(plan.len(), 3);
        assert!(plan.check_invariants());
        // Sorted by start.
        let starts: Vec<f64> = plan.reservations().iter().map(|r| r.start).collect();
        assert_eq!(starts, vec![0.0, 10.0, 30.0]);
        assert!(plan.is_idle(TimeInterval::new(5.0, 10.0)));
        assert!(!plan.is_idle(TimeInterval::new(4.0, 6.0)));
        assert_eq!(plan.busy_time(0.0, 40.0), 20.0);
        assert_eq!(plan.job_reservations(JobId(1)).count(), 2);
        assert_eq!(plan.job_completion(JobId(1)), Some(35.0));
        assert_eq!(plan.job_completion(JobId(9)), None);
        assert_eq!(plan.reservations()[0].duration(), 5.0);
    }

    #[test]
    fn overlap_and_malformed_rejected() {
        let mut plan = SchedulePlan::new();
        plan.insert(res(1, 0, 10.0, 20.0)).unwrap();
        assert_eq!(plan.insert(res(2, 0, 15.0, 25.0)), Err(PlanError::Overlap));
        assert_eq!(plan.insert(res(2, 0, 5.0, 11.0)), Err(PlanError::Overlap));
        assert_eq!(
            plan.insert(res(2, 0, f64::NAN, 1.0)),
            Err(PlanError::Malformed)
        );
        assert_eq!(plan.insert(res(2, 0, 5.0, 3.0)), Err(PlanError::Malformed));
        // Touching intervals are fine (closed-open semantics).
        plan.insert(res(2, 0, 20.0, 22.0)).unwrap();
        assert_eq!(plan.len(), 2);
        assert!(PlanError::Overlap.to_string().contains("overlap"));
    }

    #[test]
    fn insert_all_is_atomic() {
        let mut plan = SchedulePlan::new();
        plan.insert(res(1, 0, 10.0, 20.0)).unwrap();
        let batch = vec![res(2, 0, 0.0, 5.0), res(2, 1, 15.0, 18.0)];
        assert_eq!(plan.insert_all(&batch), Err(PlanError::Overlap));
        assert_eq!(plan.len(), 1); // rolled back
        let ok = vec![res(2, 0, 0.0, 5.0), res(2, 1, 20.0, 25.0)];
        plan.insert_all(&ok).unwrap();
        assert_eq!(plan.len(), 3);
    }

    #[test]
    fn idle_windows_and_earliest_fit() {
        let mut plan = SchedulePlan::new();
        plan.insert(res(1, 0, 10.0, 20.0)).unwrap();
        plan.insert(res(1, 1, 30.0, 40.0)).unwrap();
        let idle = plan.idle_windows(0.0, 50.0);
        assert_eq!(
            idle,
            vec![
                TimeInterval::new(0.0, 10.0),
                TimeInterval::new(20.0, 30.0),
                TimeInterval::new(40.0, 50.0),
            ]
        );
        // Fits in the first window.
        assert_eq!(plan.earliest_fit(0.0, 50.0, 8.0), Some(0.0));
        // Too long for the first window, fits in the second.
        assert_eq!(plan.earliest_fit(5.0, 50.0, 9.0), Some(20.0));
        // Release inside a busy interval.
        assert_eq!(plan.earliest_fit(12.0, 50.0, 5.0), Some(20.0));
        // Deadline too tight.
        assert_eq!(plan.earliest_fit(12.0, 24.0, 5.0), None);
        // Exactly fitting against the deadline.
        assert_eq!(plan.earliest_fit(20.0, 30.0, 10.0), Some(20.0));
        // Zero duration always fits.
        assert_eq!(plan.earliest_fit(15.0, 15.0, 0.0), Some(15.0));
        // Infeasible by definition.
        assert_eq!(plan.earliest_fit(40.0, 45.0, 10.0), None);
    }

    #[test]
    fn preemptive_fit_spans_windows() {
        let mut plan = SchedulePlan::new();
        plan.insert(res(1, 0, 10.0, 20.0)).unwrap();
        plan.insert(res(1, 1, 30.0, 40.0)).unwrap();
        // 15 units must split across [0,10) and [20,30).
        let chunks = plan.earliest_fit_preemptive(0.0, 40.0, 15.0).unwrap();
        assert_eq!(
            chunks,
            vec![TimeInterval::new(0.0, 10.0), TimeInterval::new(20.0, 25.0)]
        );
        // Exactly the available idle time in [0, 40): 10 + 10 = 20.
        assert!(plan.earliest_fit_preemptive(0.0, 40.0, 20.0).is_some());
        assert!(plan.earliest_fit_preemptive(0.0, 40.0, 20.5).is_none());
        assert_eq!(plan.earliest_fit_preemptive(0.0, 40.0, 0.0), Some(vec![]));
        // A non-preemptive fit of 15 would have to wait until t = 40.
        assert_eq!(plan.earliest_fit(0.0, 60.0, 15.0), Some(40.0));
    }

    #[test]
    fn remove_job_and_next_idle() {
        let mut plan = SchedulePlan::new();
        plan.insert(res(1, 0, 0.0, 10.0)).unwrap();
        plan.insert(res(2, 0, 10.0, 15.0)).unwrap();
        plan.insert(res(1, 1, 15.0, 20.0)).unwrap();
        assert_eq!(plan.next_idle_time(0.0), 20.0);
        assert_eq!(plan.next_idle_time(12.0), 20.0);
        assert_eq!(plan.next_idle_time(25.0), 25.0);
        assert_eq!(plan.remove_job(JobId(1)), 2);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.next_idle_time(0.0), 0.0);
        assert_eq!(plan.remove_job(JobId(99)), 0);
    }

    #[test]
    fn drain_completed_prunes_the_past_only() {
        let mut plan = SchedulePlan::new();
        plan.insert(res(1, 0, 0.0, 10.0)).unwrap();
        plan.insert(res(2, 0, 10.0, 30.0)).unwrap();
        plan.insert(res(1, 1, 30.0, 35.0)).unwrap();
        let drained = plan.drain_completed(10.0);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].job, JobId(1));
        assert_eq!(drained[0].end, 10.0);
        assert_eq!(plan.len(), 2);
        assert!(plan.check_invariants());
        // Queries over the remaining window are unaffected by pruning.
        assert_eq!(plan.earliest_fit(10.0, 60.0, 5.0), Some(35.0));
        assert_eq!(plan.job_completion(JobId(2)), Some(30.0));
        // Draining everything empties the plan.
        let rest = plan.drain_completed(f64::INFINITY);
        assert_eq!(rest.len(), 2);
        assert!(plan.is_empty());
        assert!(plan.drain_completed(100.0).is_empty());
    }

    #[test]
    fn surplus_matches_definition() {
        let mut plan = SchedulePlan::new();
        assert_eq!(plan.surplus(0.0, 100.0), 1.0);
        plan.insert(res(1, 0, 0.0, 50.0)).unwrap();
        assert_eq!(plan.surplus(0.0, 100.0), 0.5);
        // Paper's example surpluses: 0.5 and 0.4 are plain idle ratios.
        plan.insert(res(1, 1, 60.0, 70.0)).unwrap();
        assert!((plan.surplus(0.0, 100.0) - 0.4).abs() < 1e-12);
        // Window starting mid-run only counts the overlap.
        assert!((plan.surplus(50.0, 50.0) - 0.8).abs() < 1e-12);
        // Degenerate window.
        assert_eq!(plan.surplus(0.0, 0.0), 1.0);
    }
}
