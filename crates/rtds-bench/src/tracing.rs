//! Shared `--trace-out` / `--trace-ring` / `--chrome-trace` wiring for the
//! experiment binaries.
//!
//! Every binary that exposes protocol tracing parses the same three flags
//! through [`TraceSetup::from_args`] (extend the binary's value-flag list
//! with [`TRACE_FLAGS`]):
//!
//! * `--trace-out <path>` — stream every protocol event as one
//!   `rtds-trace/1` JSONL line (constant memory, unbounded file),
//! * `--trace-ring <capacity>` — keep the most recent `capacity` events in
//!   a bounded in-process ring (the flight recorder) and print retention /
//!   drop counters at the end,
//! * `--chrome-trace <path>` — export the captured events in Chrome's
//!   `about:tracing` / Perfetto JSON format.
//!
//! `--trace-out` and `--trace-ring` are mutually exclusive: the first
//! retains nothing in memory, the second writes nothing to disk. A lone
//! `--chrome-trace` implicitly enables the default flight recorder; with
//! `--trace-out` the exporter re-reads the JSONL file instead, so the two
//! renderings come from the same byte stream. See `docs/TRACING.md`.

use crate::ExpArgs;
use rtds_core::RtdsSystem;
use rtds_scenarios::Json;
use rtds_sim::trace::{chrome_trace, read_jsonl, Value, DEFAULT_RING_CAPACITY};
use rtds_sim::Trace;
use std::fs::File;
use std::io::BufWriter;

/// The value-taking flags parsed by [`TraceSetup::from_args`]; splice into
/// the binary's `ExpArgs::parse` value-flag list.
pub const TRACE_FLAGS: [&str; 3] = ["trace-out", "trace-ring", "chrome-trace"];

/// Parsed tracing configuration of one experiment run.
#[derive(Debug, Clone, Default)]
pub struct TraceSetup {
    out: Option<String>,
    ring: Option<usize>,
    chrome: Option<String>,
}

impl TraceSetup {
    /// Reads the [`TRACE_FLAGS`] from parsed arguments, rejecting the
    /// contradictory `--trace-out` + `--trace-ring` combination.
    pub fn from_args(args: &ExpArgs) -> TraceSetup {
        let out = args.value_of("trace-out").map(str::to_string);
        let ring = args.value_of("trace-ring").map(|raw| {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("--trace-ring: not a usize: {raw:?}");
                std::process::exit(2);
            })
        });
        let chrome = args.value_of("chrome-trace").map(str::to_string);
        if out.is_some() && ring.is_some() {
            eprintln!(
                "--trace-out streams every event to disk and retains nothing; \
                 it cannot be combined with the bounded in-memory --trace-ring"
            );
            std::process::exit(2);
        }
        TraceSetup { out, ring, chrome }
    }

    /// Returns `true` if any tracing flag was given.
    pub fn is_active(&self) -> bool {
        self.out.is_some() || self.ring.is_some() || self.chrome.is_some()
    }

    /// Installs the requested recorder on the system (no-op when inactive).
    /// `metadata` becomes the JSONL header of a `--trace-out` stream, so the
    /// file is self-describing.
    pub fn install(&self, system: &mut RtdsSystem, metadata: &[(&str, Value)]) {
        if !self.is_active() {
            return;
        }
        let trace = match &self.out {
            Some(path) => {
                let file = File::create(path).unwrap_or_else(|e| {
                    eprintln!("cannot create trace {path}: {e}");
                    std::process::exit(1);
                });
                Trace::jsonl(Box::new(BufWriter::new(file)), metadata)
            }
            None => Trace::ring(self.ring.unwrap_or(DEFAULT_RING_CAPACITY)),
        };
        system.set_trace(trace);
    }

    /// The ring capacity to use for bounded captures: `--trace-ring` when
    /// given, the flight-recorder default otherwise.
    pub fn ring_capacity(&self) -> usize {
        self.ring.unwrap_or(DEFAULT_RING_CAPACITY)
    }

    /// Writes an already-rendered `rtds-trace/1` JSONL document to
    /// `--trace-out` and/or its Chrome rendering to `--chrome-trace`. Used
    /// by binaries that capture a bounded trace in memory (the Fig. 1
    /// walkthrough, a traced scenario cell) rather than streaming — for
    /// those, `--trace-out` means "render the retained events", and the
    /// Chrome export parses the exact document written to disk.
    pub fn export_document(&self, jsonl: &str) {
        if let Some(path) = &self.out {
            if let Err(e) = std::fs::write(path, jsonl) {
                eprintln!("cannot write trace to {path}: {e}");
                std::process::exit(1);
            }
            println!(
                "trace: wrote {} JSONL lines to {path}",
                jsonl.lines().count()
            );
        }
        let Some(chrome_path) = &self.chrome else {
            return;
        };
        let (_header, events) = read_jsonl(jsonl).unwrap_or_else(|e| {
            eprintln!("internal error: trace document does not parse: {e}");
            std::process::exit(1);
        });
        let rendered = chrome_trace(&events);
        if let Err(e) = Json::parse(&rendered) {
            eprintln!("internal error: Chrome export is not valid JSON: {e}");
            std::process::exit(1);
        }
        if let Err(e) = std::fs::write(chrome_path, &rendered) {
            eprintln!("cannot write Chrome trace to {chrome_path}: {e}");
            std::process::exit(1);
        }
        println!(
            "trace: wrote Chrome trace ({} events) to {chrome_path}",
            events.len()
        );
    }

    /// Flushes the recorder, prints the retention summary and renders the
    /// Chrome export if one was requested (no-op when inactive).
    pub fn finish(&self, system: &mut RtdsSystem) {
        if !self.is_active() {
            return;
        }
        system.trace_mut().flush();
        let recorded = system.trace().recorded();
        match &self.out {
            Some(path) => println!("trace: streamed {recorded} events to {path}"),
            None => println!(
                "trace: recorded {recorded} events, retained {}, dropped {}",
                system.trace().len(),
                system.trace().dropped()
            ),
        }
        let Some(chrome_path) = &self.chrome else {
            return;
        };
        let events = match &self.out {
            // Re-read the streamed file so the export reflects exactly the
            // bytes on disk (and doubles as a parse check of the stream).
            Some(path) => {
                let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                    eprintln!("cannot re-read trace {path}: {e}");
                    std::process::exit(1);
                });
                let (_header, events) = read_jsonl(&text).unwrap_or_else(|e| {
                    eprintln!("trace {path} does not round-trip: {e}");
                    std::process::exit(1);
                });
                events
            }
            None => system.trace().events(),
        };
        let rendered = chrome_trace(&events);
        if let Err(e) = Json::parse(&rendered) {
            eprintln!("internal error: Chrome export is not valid JSON: {e}");
            std::process::exit(1);
        }
        if let Err(e) = std::fs::write(chrome_path, &rendered) {
            eprintln!("cannot write Chrome trace to {chrome_path}: {e}");
            std::process::exit(1);
        }
        println!(
            "trace: wrote Chrome trace ({} events) to {chrome_path}",
            events.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(argv: &[&str]) -> TraceSetup {
        let args = ExpArgs::from_vec(
            "exp_test",
            argv.iter().map(|s| s.to_string()).collect(),
            &TRACE_FLAGS,
            &[],
        );
        TraceSetup::from_args(&args)
    }

    #[test]
    fn inactive_without_flags() {
        let s = setup(&[]);
        assert!(!s.is_active());
        assert!(TraceSetup::default().out.is_none());
    }

    #[test]
    fn ring_and_chrome_flags_parse() {
        let s = setup(&["--trace-ring", "128", "--chrome-trace", "/tmp/x.json"]);
        assert!(s.is_active());
        assert_eq!(s.ring, Some(128));
        assert_eq!(s.chrome.as_deref(), Some("/tmp/x.json"));
        assert!(s.out.is_none());
        let s = setup(&["--trace-out=/tmp/t.jsonl"]);
        assert_eq!(s.out.as_deref(), Some("/tmp/t.jsonl"));
        assert!(s.ring.is_none());
    }

    #[test]
    fn install_and_finish_round_trip_through_a_system() {
        use rtds_core::RtdsConfig;
        use rtds_graph::paper_instance::paper_job;
        use rtds_graph::JobId;
        use rtds_net::generators::{line, DelayDistribution};

        let dir = std::env::temp_dir();
        let out = dir.join("rtds_trace_setup_test.jsonl");
        let chrome = dir.join("rtds_trace_setup_test.chrome.json");
        let s = TraceSetup {
            out: Some(out.to_str().unwrap().to_string()),
            ring: None,
            chrome: Some(chrome.to_str().unwrap().to_string()),
        };
        let network = line(4, DelayDistribution::Constant(1.0), 0);
        let mut system = RtdsSystem::new(network, RtdsConfig::default(), 1);
        s.install(&mut system, &[("seed", Value::U64(1))]);
        assert!(system.trace().is_enabled());
        system.submit_job(paper_job(JobId(1), 1));
        system.run();
        s.finish(&mut system);

        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.starts_with("{\"schema\":\"rtds-trace/1\""));
        let (_, events) = read_jsonl(&text).unwrap();
        assert!(!events.is_empty());
        let rendered = std::fs::read_to_string(&chrome).unwrap();
        assert!(rendered.contains("\"traceEvents\""));
        Json::parse(&rendered).unwrap();
        let _ = std::fs::remove_file(&out);
        let _ = std::fs::remove_file(&chrome);
    }
}
