#!/usr/bin/env bash
# Scenario smoke: registry listing plus one seeded fault-injection sweep,
# re-run on two worker threads to pin thread-count invariance of the report
# (byte-compare). Used by CI and runnable locally from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${SMOKE_OUT_DIR:-.}"
cargo run --release --bin exp_scenarios -- --list
cargo run --release --bin exp_scenarios -- --scenario lossy-messages --seed 1 --seeds 2 \
    --json "$out/scenario-smoke.json"
cargo run --release --bin exp_scenarios -- --scenario lossy-messages --seed 1 --seeds 2 \
    --threads 2 --json "$out/scenario-smoke-t2.json"
cmp "$out/scenario-smoke.json" "$out/scenario-smoke-t2.json"
echo "scenario smoke OK: sweep report is thread-count invariant"
