#!/usr/bin/env bash
# Flow smoke: two same-seed exp_flows runs must produce byte-identical
# reports (the rtds-exp-flows/1 schema carries no timing fields at all),
# and the incast-storm contention tripwire must hold: p99 transfer time
# strictly above the uncontended bound max(volume)/min(bandwidth), proving
# transfers share link bandwidth instead of each enjoying full capacity.
# Used by CI and runnable locally from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${SMOKE_OUT_DIR:-.}"
cargo run --release --bin exp_flows -- --seed 1 --seeds 2 --json "$out/flow-smoke.json" \
    --assert-contention
cargo run --release --bin exp_flows -- --seed 1 --seeds 2 --json "$out/flow-smoke-b.json"
cmp "$out/flow-smoke.json" "$out/flow-smoke-b.json"
grep -q '"schema": "rtds-exp-flows/1"' "$out/flow-smoke.json"
grep -q '"name": "incast-storm"' "$out/flow-smoke.json"
grep -q '"contended": true' "$out/flow-smoke.json"
# A single-scenario run exercises the --scenario filter.
cargo run --release --bin exp_flows -- --scenario incast-storm --seed 1 --seeds 2 \
    --json "$out/flow-smoke-incast.json" --assert-contention
echo "flow smoke OK: report is byte-identical and incast transfers really contend"
