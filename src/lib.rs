//! # rtds — Real-Time Distributed Scheduling of Precedence Graphs on Arbitrary Wide Networks
//!
//! Facade crate re-exporting the whole RTDS reproduction workspace
//! (Butelle, Finta, Hakem — IPPS 2007). See the individual crates for the
//! detailed documentation:
//!
//! * [`graph`] — the DAG job model (tasks, precedence, critical paths,
//!   workload generators, the paper's Fig. 2 instance),
//! * [`net`] — network topologies, routing tables, the phased distributed
//!   Bellman–Ford of §7 and hop-bounded spheres; links carry a bandwidth
//!   capacity alongside their delay,
//! * [`flow`] — the shared-bandwidth flow-level network model: a
//!   dependency-free max-min fair-share rate solver with event-driven
//!   recomputation, driven by the engine's `FlowStart`/`FlowFinish`
//!   events (see `docs/NETWORK.md`),
//! * [`sim`] — the deterministic discrete-event simulation engine (sites,
//!   messages, sporadic arrivals, statistics),
//! * [`metrics`] — deterministic streaming telemetry: counters, gauges and
//!   log-bucketed histograms whose percentile summaries are byte-identical
//!   across runs and thread counts; every report format renders a registry
//!   as its `metrics` section (see `docs/METRICS.md`),
//! * [`trace`] — causal span tracing: deterministic derived span ids,
//!   typed protocol event payloads, bounded-ring / streaming-JSONL sinks
//!   (`rtds-trace/1`) and a Chrome `about:tracing` exporter; the engine can
//!   also self-profile per-event-class dispatch into the metrics registry
//!   (see `docs/TRACING.md`),
//! * [`sched`] — the per-site local scheduler (§5): reservation plans, idle
//!   intervals, admission tests and surplus, plus the multicore resource
//!   model (`SiteResources`, per-task speedup laws) and the pluggable
//!   `Scheduler` trait with protocol / HEFT / lookahead policies (see
//!   `docs/SCHEDULING.md`),
//! * [`core`] — the RTDS protocol itself: Potential/Available Computing
//!   Spheres, the Mapper, release/deadline adjustment, Trial-Mapping
//!   validation by maximum matching and distributed execution,
//! * [`baselines`] — the comparison policies (local-only, random offload,
//!   broadcast bidding à la focused addressing, global HEFT, centralized
//!   oracle) unified behind the `DistributionPolicy` trait,
//! * [`scenarios`] — the declarative scenario engine: named seeded
//!   scenarios composing topology, workload and fault-injection recipes
//!   (link jitter/failure, partitions, site crashes, message loss), a
//!   built-in registry and a sharded deterministic sweep runner,
//! * [`workload`] — the streaming open-loop workload subsystem: composable
//!   seeded arrival processes (Poisson, bursty on/off, diurnal, heavy-tail
//!   Pareto size mixes), a deterministic JSONL trace format with
//!   record/replay, and the job factory feeding the bounded-memory
//!   streaming execution path (`rtds::core::RtdsSystem::run_streaming`) —
//!   a million-job run keeps only the in-flight jobs resident.
//!
//! Architecture notes with protocol state-machine diagrams live in
//! `docs/ARCHITECTURE.md`; the measurement methodology behind the recorded
//! `BENCH_<n>.json` performance trajectory lives in `docs/PERFORMANCE.md`;
//! the workload trace format and replay semantics live in
//! `docs/WORKLOADS.md`.
//!
//! ## Quickstart
//!
//! ```
//! use rtds::core::{RtdsConfig, RtdsSystem};
//! use rtds::graph::paper_instance::paper_job;
//! use rtds::graph::JobId;
//! use rtds::net::generators::{ring, DelayDistribution};
//!
//! // A nine-site ring with unit link delays and a sphere radius of 2 hops.
//! let network = ring(9, DelayDistribution::Constant(1.0), 1);
//! let config = RtdsConfig { sphere_radius: 2, ..RtdsConfig::default() };
//! let mut system = RtdsSystem::new(network, config, 7);
//!
//! // Submit the paper's worked-example job at site 0 and run to quiescence.
//! system.submit_job(paper_job(JobId(1), 0));
//! let report = system.run();
//! assert_eq!(report.jobs_submitted, 1);
//! ```

pub use rtds_baselines as baselines;
pub use rtds_core as core;
pub use rtds_flow as flow;
pub use rtds_graph as graph;
pub use rtds_metrics as metrics;
pub use rtds_net as net;
pub use rtds_scenarios as scenarios;
pub use rtds_sched as sched;
pub use rtds_sim as sim;
pub use rtds_trace as trace;
pub use rtds_workload as workload;
