//! Criterion bench: the §5 local admission test and the §10 satisfiability
//! test against plans of increasing occupancy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rtds_graph::generators::{CostDistribution, DagGenerator, DagShape, GeneratorConfig};
use rtds_graph::{JobId, TaskId};
use rtds_sched::admission::admit_dag_locally;
use rtds_sched::feasibility::{satisfiable, TaskRequest};
use rtds_sched::{Reservation, SchedulePlan};
use std::hint::black_box;

fn loaded_plan(reservations: usize) -> SchedulePlan {
    let mut plan = SchedulePlan::new();
    for i in 0..reservations {
        let start = i as f64 * 20.0;
        plan.insert(Reservation {
            job: JobId(1000 + i as u64),
            task: TaskId(0),
            start,
            end: start + 12.0,
        })
        .unwrap();
    }
    plan
}

fn bench_local_sched(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_sched");
    for &existing in &[0usize, 20, 100, 500] {
        let plan = loaded_plan(existing);
        let cfg = GeneratorConfig {
            task_count: 12,
            shape: DagShape::LayeredRandom {
                layers: 3,
                edge_prob: 0.3,
            },
            costs: CostDistribution::Uniform { min: 1.0, max: 6.0 },
            ccr: 0.0,
            laxity_factor: (3.0, 3.0),
        };
        let job = DagGenerator::new(cfg, 5).generate_job(0, 0.0);
        // Rate unit: tasks placed (or probed) per second against the plan.
        group.throughput(Throughput::Elements(cfg.task_count as u64));
        group.bench_with_input(
            BenchmarkId::new("admit_dag", existing),
            &(plan.clone(), job.clone()),
            |b, (plan, job)| b.iter(|| black_box(admit_dag_locally(plan, job, 0.0, 1.0, false))),
        );
        let requests: Vec<TaskRequest> = (0..10)
            .map(|i| TaskRequest {
                job: JobId(5),
                task: TaskId(i),
                release: i as f64 * 5.0,
                deadline: i as f64 * 5.0 + 400.0,
                duration: 4.0,
            })
            .collect();
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(
            BenchmarkId::new("satisfiable", existing),
            &(plan, requests),
            |b, (plan, requests)| b.iter(|| black_box(satisfiable(plan, requests, false))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_local_sched);
criterion_main!(benches);
