//! Local satisfiability of task sets (§10).
//!
//! During Trial-Mapping validation every site `j` of the ACS receives the
//! mapping `M` and, for each logical processor `i`, decides whether the set
//! `T_i` of tasks assigned to `i` is *locally satisfiable*: "each task `t` of
//! `T_i` may be executed with respect to its release `r(t)` and deadline
//! `d(t)`" — in-between the reservations `j` has already committed to.
//!
//! Non-preemptive single-machine feasibility with releases and deadlines is
//! NP-hard in general; like the paper (which leaves the local scheduler
//! unspecified beyond the insertion idea of §5) we use a deterministic
//! heuristic: earliest-deadline-first insertion into the idle windows, with
//! the duration of each task taken from the mapping. The preemptive variant
//! (§13) splits tasks across idle windows and is exact for the single-site
//! subproblem it solves.

use crate::plan::{Reservation, SchedulePlan, TIME_EPS};
use rtds_graph::{JobId, TaskId};
use serde::{Deserialize, Serialize};

/// One task of a trial mapping, as seen by a validating site.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskRequest {
    /// Owning job.
    pub job: JobId,
    /// Task id within the job.
    pub task: TaskId,
    /// Release `r(t)` assigned by the Mapper (absolute time).
    pub release: f64,
    /// Deadline `d(t)` assigned by the Mapper (absolute time).
    pub deadline: f64,
    /// Execution duration budgeted by the Mapper for this task on this
    /// logical processor.
    pub duration: f64,
}

impl TaskRequest {
    /// Returns `true` if the request is internally consistent (its own window
    /// can hold its duration).
    pub fn is_well_formed(&self) -> bool {
        self.duration >= 0.0
            && self.release.is_finite()
            && self.deadline.is_finite()
            && self.release + self.duration <= self.deadline + TIME_EPS
    }
}

/// Attempts to schedule all `requests` in-between the committed reservations
/// of `plan`. Returns the reservations that would be added (not committed) if
/// every task fits, `None` otherwise.
///
/// * Non-preemptive (`preemptive = false`): each task gets one contiguous
///   slot starting at the earliest idle instant after its release.
/// * Preemptive (`preemptive = true`): a task may be split across idle
///   windows; the returned reservations contain one entry per chunk.
///
/// Requests are processed in earliest-deadline-first order (ties broken by
/// release then task id), which is deterministic and matches the §5
/// "schedule in-between already accepted tasks" idea.
pub fn satisfiable(
    plan: &SchedulePlan,
    requests: &[TaskRequest],
    preemptive: bool,
) -> Option<Vec<Reservation>> {
    if requests.iter().any(|r| !r.is_well_formed()) {
        return None;
    }
    let mut ordered: Vec<&TaskRequest> = requests.iter().collect();
    ordered.sort_by(|a, b| {
        a.deadline
            .partial_cmp(&b.deadline)
            .unwrap()
            .then(a.release.partial_cmp(&b.release).unwrap())
            .then(a.task.0.cmp(&b.task.0))
            .then(a.job.0.cmp(&b.job.0))
    });
    // Work on a scratch copy so partially placed sets never touch the real
    // plan.
    let mut scratch = plan.clone();
    let mut added = Vec::new();
    for req in ordered {
        if preemptive {
            let chunks =
                scratch.earliest_fit_preemptive(req.release, req.deadline, req.duration)?;
            for chunk in chunks {
                let r = Reservation {
                    job: req.job,
                    task: req.task,
                    start: chunk.start,
                    end: chunk.end,
                };
                scratch.insert(r).ok()?;
                added.push(r);
            }
        } else {
            let start = scratch.earliest_fit(req.release, req.deadline, req.duration)?;
            let r = Reservation {
                job: req.job,
                task: req.task,
                start,
                end: start + req.duration,
            };
            scratch.insert(r).ok()?;
            added.push(r);
        }
    }
    Some(added)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(task: usize, release: f64, deadline: f64, duration: f64) -> TaskRequest {
        TaskRequest {
            job: JobId(7),
            task: TaskId(task),
            release,
            deadline,
            duration,
        }
    }

    fn busy_plan() -> SchedulePlan {
        let mut plan = SchedulePlan::new();
        plan.insert(Reservation {
            job: JobId(1),
            task: TaskId(0),
            start: 10.0,
            end: 20.0,
        })
        .unwrap();
        plan.insert(Reservation {
            job: JobId(1),
            task: TaskId(1),
            start: 40.0,
            end: 50.0,
        })
        .unwrap();
        plan
    }

    #[test]
    fn empty_request_set_is_satisfiable() {
        let plan = SchedulePlan::new();
        assert_eq!(satisfiable(&plan, &[], false), Some(vec![]));
        assert_eq!(satisfiable(&plan, &[], true), Some(vec![]));
    }

    #[test]
    fn fits_around_existing_reservations() {
        let plan = busy_plan();
        let reqs = vec![req(0, 0.0, 10.0, 10.0), req(1, 0.0, 40.0, 20.0)];
        let placed = satisfiable(&plan, &reqs, false).unwrap();
        assert_eq!(placed.len(), 2);
        // Task 0 (earlier deadline) takes [0, 10), task 1 takes [20, 40).
        assert_eq!(placed[0].start, 0.0);
        assert_eq!(placed[0].end, 10.0);
        assert_eq!(placed[1].start, 20.0);
        assert_eq!(placed[1].end, 40.0);
        // The original plan is untouched.
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn rejects_when_the_window_is_too_tight() {
        let plan = busy_plan();
        // Needs 15 contiguous units before t = 30 but only [0,10) and [20,30)
        // are idle.
        assert!(satisfiable(&plan, &[req(0, 0.0, 30.0, 15.0)], false).is_none());
        // Preemption makes it feasible: 10 + 5 across the two windows.
        let chunks = satisfiable(&plan, &[req(0, 0.0, 30.0, 15.0)], true).unwrap();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].start, 0.0);
        assert_eq!(chunks[0].end, 10.0);
        assert_eq!(chunks[1].start, 20.0);
        assert_eq!(chunks[1].end, 25.0);
    }

    #[test]
    fn edf_order_matters_and_is_used() {
        let plan = SchedulePlan::new();
        // Two tasks competing for the same early window: the tight-deadline
        // one must be placed first or the set is (wrongly) declared
        // infeasible.
        let reqs = vec![req(0, 0.0, 100.0, 10.0), req(1, 0.0, 10.0, 10.0)];
        let placed = satisfiable(&plan, &reqs, false).unwrap();
        // Task 1 (deadline 10) gets [0, 10), task 0 gets [10, 20).
        let t1 = placed.iter().find(|r| r.task == TaskId(1)).unwrap();
        let t0 = placed.iter().find(|r| r.task == TaskId(0)).unwrap();
        assert_eq!((t1.start, t1.end), (0.0, 10.0));
        assert_eq!((t0.start, t0.end), (10.0, 20.0));
    }

    #[test]
    fn genuinely_infeasible_sets_are_rejected() {
        let plan = SchedulePlan::new();
        // Three tasks of length 10 all due by 20: total demand 30 > 20.
        let reqs = vec![
            req(0, 0.0, 20.0, 10.0),
            req(1, 0.0, 20.0, 10.0),
            req(2, 0.0, 20.0, 10.0),
        ];
        assert!(satisfiable(&plan, &reqs, false).is_none());
        assert!(satisfiable(&plan, &reqs, true).is_none());
    }

    #[test]
    fn malformed_requests_are_rejected() {
        let plan = SchedulePlan::new();
        // Duration longer than the task's own window.
        assert!(satisfiable(&plan, &[req(0, 10.0, 15.0, 6.0)], false).is_none());
        // Negative duration.
        assert!(satisfiable(&plan, &[req(0, 0.0, 10.0, -1.0)], true).is_none());
        assert!(!req(0, 10.0, 15.0, 6.0).is_well_formed());
        assert!(req(0, 10.0, 16.0, 6.0).is_well_formed());
    }

    #[test]
    fn releases_are_respected() {
        let plan = SchedulePlan::new();
        let placed = satisfiable(&plan, &[req(0, 25.0, 60.0, 10.0)], false).unwrap();
        assert_eq!(placed[0].start, 25.0);
        let chunks = satisfiable(&plan, &[req(0, 25.0, 60.0, 10.0)], true).unwrap();
        assert_eq!(chunks[0].start, 25.0);
    }
}
