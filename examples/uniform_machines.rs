//! The §13 generalisations in action: uniform (related) machines, the
//! preemptive model, busyness-weighted laxity dispatching and data-volume
//! aware communication delays.
//!
//! Run with: `cargo run --release --example uniform_machines`

use rtds::core::{LaxityDispatch, RtdsConfig, RtdsSystem};
use rtds::graph::generators::{CostDistribution, DagGenerator, DagShape, GeneratorConfig};
use rtds::graph::Job;
use rtds::net::generators::{ring, DelayDistribution};
use rtds::net::{Network, SiteId};
use rtds::sim::arrivals::{ArrivalProcess, ArrivalSchedule};

fn heterogeneous_ring(n: usize) -> Network {
    let mut net = ring(n, DelayDistribution::Constant(1.0), 4);
    // Alternate fast (2x) and slow (1x) sites.
    for s in 0..n {
        if s % 2 == 0 {
            net.set_speed(SiteId(s), 2.0);
        }
    }
    net
}

fn workload(site_count: usize, seed: u64, ccr: f64) -> Vec<Job> {
    let schedule = ArrivalSchedule::generate(
        ArrivalProcess::Poisson { rate: 0.01 },
        site_count,
        300.0,
        seed,
    );
    let cfg = GeneratorConfig {
        task_count: 10,
        shape: DagShape::LayeredRandom {
            layers: 3,
            edge_prob: 0.35,
        },
        costs: CostDistribution::Uniform {
            min: 2.0,
            max: 10.0,
        },
        ccr,
        laxity_factor: (1.5, 2.2),
    };
    let mut generator = DagGenerator::new(cfg, seed);
    schedule
        .arrivals()
        .iter()
        .map(|a| generator.generate_job(a.site.index(), a.time))
        .collect()
}

fn run(label: &str, network: Network, jobs: Vec<Job>, config: RtdsConfig) {
    let mut system = RtdsSystem::new(network, config, 3);
    system.submit_workload(jobs);
    let report = system.run();
    println!(
        "{:<34} accepted {:>4}/{:<4}  ratio {:>6.3}  misses {}  msgs/job {:>6.1}",
        label,
        report.guarantee.accepted(),
        report.jobs_submitted,
        report.guarantee_ratio(),
        report.deadline_misses(),
        report.messages_per_job
    );
    assert_eq!(report.deadline_misses(), 0);
}

fn main() {
    let n = 12;
    let base_jobs = workload(n, 17, 0.0);
    let volume_jobs = workload(n, 17, 0.5);
    let net = heterogeneous_ring(n);

    println!("§13 generalisations on a {n}-site ring (every other site is 2x faster)\n");

    run(
        "identical machines (base model)",
        net.clone(),
        base_jobs.clone(),
        RtdsConfig::default(),
    );
    run(
        "uniform machines (speeds honoured)",
        net.clone(),
        base_jobs.clone(),
        RtdsConfig {
            uniform_machines: true,
            ..RtdsConfig::default()
        },
    );
    run(
        "preemptive local scheduling",
        net.clone(),
        base_jobs.clone(),
        RtdsConfig {
            preemptive: true,
            ..RtdsConfig::default()
        },
    );
    run(
        "busyness-weighted laxity dispatch",
        net.clone(),
        base_jobs.clone(),
        RtdsConfig {
            laxity_dispatch: LaxityDispatch::BusynessWeighted,
            ..RtdsConfig::default()
        },
    );
    run(
        "data-volume-aware comm delays",
        net,
        volume_jobs,
        RtdsConfig {
            data_volume_aware: true,
            throughput: 4.0,
            ..RtdsConfig::default()
        },
    );
}
