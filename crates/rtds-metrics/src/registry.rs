//! The named-instrument registry: counters, gauges and histograms under
//! `&'static str` names with optional scoped labels.
//!
//! Instruments are keyed by a static name (every instrument name in the
//! workspace is a literal, so the hot path never allocates a `String` per
//! bump) plus a [`Scope`] label — `Global`, `Phase(n)` (one routing-exchange
//! phase, one harvest pass, …) or `Site(n)` (one site of the simulated
//! network). Storage is ordered (`BTreeMap` keyed by name then scope), so
//! iteration order — and therefore any JSON rendering — is deterministic.
//!
//! [`MetricsRegistry::merge`] folds a whole registry into another:
//! counters add, gauges fold by maximum, histograms merge bucket-wise. All
//! three operations are associative and commutative, which makes a merged
//! registry independent of merge order — the property the sharded sweep
//! runner and the per-scenario aggregates rely on for byte-identical
//! reports at any thread count.

use crate::histogram::Histogram;
use std::collections::BTreeMap;

/// The label dimension of an instrument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scope {
    /// Unscoped (the default for [`MetricsRegistry::add`] and friends).
    Global,
    /// One phase of a phased computation (routing exchange, harvest, …).
    Phase(u32),
    /// One site of the simulated network.
    Site(u32),
}

impl Scope {
    /// The suffix appended to the instrument name in flattened exports
    /// (empty for `Global`, `/phase<n>` and `/site<n>` otherwise).
    pub fn suffix(&self) -> String {
        match self {
            Scope::Global => String::new(),
            Scope::Phase(p) => format!("/phase{p}"),
            Scope::Site(s) => format!("/site{s}"),
        }
    }
}

/// A gauge: the last value set and the peak (high-water mark) ever set.
/// Merging two gauges keeps the maxima of both fields, so a merged gauge
/// reports the global high-water mark regardless of merge order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gauge {
    /// Most recently set value (under merge: the maximum of the two).
    pub last: f64,
    /// Largest value ever set.
    pub peak: f64,
}

impl Gauge {
    fn set(&mut self, value: f64) {
        self.last = value;
        if value > self.peak {
            self.peak = value;
        }
    }

    fn merge(&mut self, other: &Gauge) {
        self.last = self.last.max(other.last);
        self.peak = self.peak.max(other.peak);
    }
}

/// The registry of named instruments (see the module docs).
///
/// Global counters — the by-far hottest instrument (several bumps per
/// protocol message) — live in a flat single-level map, exactly the
/// structure the pre-metrics `SimStats` used, so the per-message cost is
/// one ordered-map walk. The rarer scoped counters, and the cold gauges
/// and histograms, use nested per-scope maps.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    /// `Scope::Global` counters (the hot path).
    counters: BTreeMap<&'static str, u64>,
    /// Non-global counters only (`add_scoped` with `Global` routes to the
    /// flat map, keeping the representation canonical).
    scoped_counters: BTreeMap<&'static str, BTreeMap<Scope, u64>>,
    gauges: BTreeMap<&'static str, BTreeMap<Scope, Gauge>>,
    histograms: BTreeMap<&'static str, BTreeMap<Scope, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry (the identity element of [`MetricsRegistry::merge`]).
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Whether no instrument was ever touched.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.scoped_counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
    }

    // ----- counters -------------------------------------------------------

    /// Adds to a global counter, creating it at zero if needed. One flat
    /// map walk — this is the per-protocol-message hot path.
    pub fn add(&mut self, name: &'static str, amount: u64) {
        *self.counters.entry(name).or_insert(0) += amount;
    }

    /// Adds to a scoped counter.
    pub fn add_scoped(&mut self, name: &'static str, scope: Scope, amount: u64) {
        match scope {
            Scope::Global => self.add(name, amount),
            scope => {
                *self
                    .scoped_counters
                    .entry(name)
                    .or_default()
                    .entry(scope)
                    .or_insert(0) += amount;
            }
        }
    }

    /// Total of a counter across all scopes (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
            + self
                .scoped_counters
                .get(name)
                .map(|scopes| scopes.values().sum())
                .unwrap_or(0)
    }

    /// Value of one scoped counter entry (zero if never touched).
    pub fn counter_scoped(&self, name: &str, scope: Scope) -> u64 {
        match scope {
            Scope::Global => self.counters.get(name).copied().unwrap_or(0),
            scope => self
                .scoped_counters
                .get(name)
                .and_then(|scopes| scopes.get(&scope).copied())
                .unwrap_or(0),
        }
    }

    /// All counter families in name order: `(name, per-scope values)` with
    /// the scopes of each name in `Scope` order (`Global` first). Export
    /// path — allocates the merged view.
    pub fn counter_families(&self) -> Vec<(&'static str, Vec<(Scope, u64)>)> {
        let mut families: BTreeMap<&'static str, Vec<(Scope, u64)>> = BTreeMap::new();
        for (name, value) in &self.counters {
            families
                .entry(name)
                .or_default()
                .push((Scope::Global, *value));
        }
        for (name, scopes) in &self.scoped_counters {
            let family = families.entry(name).or_default();
            family.extend(scopes.iter().map(|(s, v)| (*s, *v)));
            // Global (pushed first when present) already precedes the
            // nested scopes, which iterate in Scope order themselves.
        }
        families.into_iter().collect()
    }

    // ----- gauges ---------------------------------------------------------

    /// Sets a global gauge (tracks both the last and the peak value).
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.gauge_set_scoped(name, Scope::Global, value);
    }

    /// Sets a scoped gauge.
    pub fn gauge_set_scoped(&mut self, name: &'static str, scope: Scope, value: f64) {
        self.gauges
            .entry(name)
            .or_default()
            .entry(scope)
            .or_insert(Gauge {
                last: f64::NEG_INFINITY,
                peak: f64::NEG_INFINITY,
            })
            .set(value);
    }

    /// A gauge merged across all its scopes (None if never set).
    pub fn gauge(&self, name: &str) -> Option<Gauge> {
        let scopes = self.gauges.get(name)?;
        let mut merged: Option<Gauge> = None;
        for g in scopes.values() {
            match merged.as_mut() {
                Some(m) => m.merge(g),
                None => merged = Some(*g),
            }
        }
        merged
    }

    /// One scoped gauge entry.
    pub fn gauge_scoped(&self, name: &str, scope: Scope) -> Option<Gauge> {
        self.gauges
            .get(name)
            .and_then(|scopes| scopes.get(&scope))
            .copied()
    }

    /// All gauge families in name order.
    pub fn gauge_families(&self) -> impl Iterator<Item = (&'static str, &BTreeMap<Scope, Gauge>)> {
        self.gauges.iter().map(|(k, v)| (*k, v))
    }

    // ----- histograms -----------------------------------------------------

    /// Records a sample into a global histogram.
    pub fn record(&mut self, name: &'static str, value: f64) {
        self.record_scoped(name, Scope::Global, value);
    }

    /// Records a sample into a scoped histogram.
    pub fn record_scoped(&mut self, name: &'static str, scope: Scope, value: f64) {
        self.histograms
            .entry(name)
            .or_default()
            .entry(scope)
            .or_default()
            .record(value);
    }

    /// A histogram merged across all its scopes (empty if never recorded).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut merged = Histogram::new();
        if let Some(scopes) = self.histograms.get(name) {
            for h in scopes.values() {
                merged.merge(h);
            }
        }
        merged
    }

    /// One scoped histogram entry.
    pub fn histogram_scoped(&self, name: &str, scope: Scope) -> Option<&Histogram> {
        self.histograms
            .get(name)
            .and_then(|scopes| scopes.get(&scope))
    }

    /// All histogram families in name order.
    pub fn histogram_families(
        &self,
    ) -> impl Iterator<Item = (&'static str, &BTreeMap<Scope, Histogram>)> {
        self.histograms.iter().map(|(k, v)| (*k, v))
    }

    // ----- aggregation ----------------------------------------------------

    /// Folds another registry into this one: counters add, gauges keep
    /// maxima, histograms merge bucket-wise. Associative and commutative,
    /// with the empty registry as identity.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, value) in &other.counters {
            *self.counters.entry(name).or_insert(0) += value;
        }
        for (name, scopes) in &other.scoped_counters {
            let mine = self.scoped_counters.entry(name).or_default();
            for (scope, value) in scopes {
                *mine.entry(*scope).or_insert(0) += value;
            }
        }
        for (name, scopes) in &other.gauges {
            let mine = self.gauges.entry(name).or_default();
            for (scope, gauge) in scopes {
                mine.entry(*scope).or_insert(*gauge).merge(gauge);
            }
        }
        for (name, scopes) in &other.histograms {
            let mine = self.histograms.entry(name).or_default();
            for (scope, histogram) in scopes {
                mine.entry(*scope).or_default().merge(histogram);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_total_across_scopes() {
        let mut m = MetricsRegistry::new();
        assert!(m.is_empty());
        m.add("msgs", 3);
        m.add_scoped("msgs", Scope::Site(2), 4);
        m.add_scoped("msgs", Scope::Phase(1), 1);
        assert_eq!(m.counter("msgs"), 8);
        assert_eq!(m.counter_scoped("msgs", Scope::Global), 3);
        assert_eq!(m.counter_scoped("msgs", Scope::Site(2)), 4);
        assert_eq!(m.counter("absent"), 0);
        assert!(!m.is_empty());
        // Family iteration surfaces scopes in Ord order: Global, Phase, Site.
        let families = m.counter_families();
        let (name, scopes) = &families[0];
        assert_eq!(*name, "msgs");
        let order: Vec<Scope> = scopes.iter().map(|(s, _)| *s).collect();
        assert_eq!(order, vec![Scope::Global, Scope::Phase(1), Scope::Site(2)]);
        // A purely scoped counter still shows up as a family.
        let mut scoped_only = MetricsRegistry::new();
        scoped_only.add_scoped("only", Scope::Phase(4), 2);
        assert_eq!(scoped_only.counter("only"), 2);
        assert_eq!(scoped_only.counter_families().len(), 1);
    }

    #[test]
    fn gauges_track_last_and_peak() {
        let mut m = MetricsRegistry::new();
        m.gauge_set("inflight", 5.0);
        m.gauge_set("inflight", 12.0);
        m.gauge_set("inflight", 3.0);
        let g = m.gauge("inflight").unwrap();
        assert_eq!(g.last, 3.0);
        assert_eq!(g.peak, 12.0);
        assert!(m.gauge("absent").is_none());
        m.gauge_set_scoped("inflight", Scope::Site(1), 40.0);
        // The merged view keeps the global high-water mark.
        assert_eq!(m.gauge("inflight").unwrap().peak, 40.0);
        assert_eq!(
            m.gauge_scoped("inflight", Scope::Global).unwrap().peak,
            12.0
        );
    }

    #[test]
    fn histograms_roll_up_across_scopes() {
        let mut m = MetricsRegistry::new();
        m.record_scoped("fanout", Scope::Phase(1), 4.0);
        m.record_scoped("fanout", Scope::Phase(2), 4.0);
        m.record_scoped("fanout", Scope::Phase(2), 16.0);
        assert_eq!(m.histogram("fanout").count(), 3);
        assert_eq!(m.histogram("fanout").max(), 16.0);
        assert_eq!(
            m.histogram_scoped("fanout", Scope::Phase(2))
                .unwrap()
                .count(),
            2
        );
        assert!(m.histogram_scoped("fanout", Scope::Site(9)).is_none());
        assert!(m.histogram("absent").is_empty());
    }

    #[test]
    fn merge_combines_every_family() {
        let mut a = MetricsRegistry::new();
        a.add("c", 1);
        a.gauge_set("g", 10.0);
        a.record("h", 2.0);
        let mut b = MetricsRegistry::new();
        b.add("c", 2);
        b.add_scoped("c", Scope::Site(0), 5);
        b.gauge_set("g", 4.0);
        b.record("h", 50.0);
        b.record_scoped("h", Scope::Phase(3), 1.0);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("c"), 8);
        assert_eq!(ab.gauge("g").unwrap().peak, 10.0);
        assert_eq!(ab.histogram("h").count(), 3);
        // Identity.
        let mut with_empty = ab.clone();
        with_empty.merge(&MetricsRegistry::new());
        assert_eq!(with_empty, ab);
    }

    #[test]
    fn scope_suffixes() {
        assert_eq!(Scope::Global.suffix(), "");
        assert_eq!(Scope::Phase(2).suffix(), "/phase2");
        assert_eq!(Scope::Site(17).suffix(), "/site17");
    }
}
