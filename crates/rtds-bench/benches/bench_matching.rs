//! Criterion bench: Hopcroft–Karp maximum matching (the §10 coupling) as a
//! function of the ACS size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::prelude::*;
use rand::rngs::StdRng;
use rtds_core::{maximum_bipartite_matching, maximum_bipartite_matching_csr, BipartiteCsr};
use std::hint::black_box;

fn random_bipartite(left: usize, right: usize, p: f64, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..left)
        .map(|_| (0..right).filter(|_| rng.random_bool(p)).collect())
        .collect()
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    for &n in &[8usize, 32, 128, 512, 2048] {
        // Density scaled so edge counts (the solver's unit of work) grow
        // linearly with n instead of quadratically.
        let p = (16.0 / n as f64).min(0.5);
        let edges = random_bipartite(n, n, p, 3);
        let edge_count: usize = edges.iter().map(Vec::len).sum();
        group.throughput(Throughput::Elements(edge_count as u64));
        group.bench_with_input(BenchmarkId::new("hopcroft_karp", n), &edges, |b, edges| {
            b.iter(|| black_box(maximum_bipartite_matching(n, n, edges)))
        });
        // CSR fast path with a caller-held scratch (what the validation
        // round runs): no per-solve allocation at all.
        let csr = BipartiteCsr::from_lists(&edges, n);
        group.bench_with_input(BenchmarkId::new("hopcroft_karp_csr", n), &csr, |b, csr| {
            let mut scratch = rtds_core::MatchScratch::default();
            b.iter(|| black_box(maximum_bipartite_matching_csr(csr, &mut scratch)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
