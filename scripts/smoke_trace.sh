#!/usr/bin/env bash
# Trace smoke: the span-trace subsystem's CLI surface end to end. Recording
# the same scenario cell twice must produce byte-identical rtds-trace/1
# JSONL (span ids are derived, not allocated), the Chrome export must be
# well-formed, and the streaming path must report bounded ring retention.
# Used by CI and runnable locally from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${SMOKE_OUT_DIR:-.}"
cargo run --release --bin exp_scenarios -- --scenario paper-baseline --seeds 1 \
    --trace-out "$out/trace-smoke-a.jsonl" --chrome-trace "$out/trace-smoke.chrome.json"
cargo run --release --bin exp_scenarios -- --scenario paper-baseline --seeds 1 \
    --trace-out "$out/trace-smoke-b.jsonl"
cmp "$out/trace-smoke-a.jsonl" "$out/trace-smoke-b.jsonl"
head -1 "$out/trace-smoke-a.jsonl" | grep -q '"schema":"rtds-trace/1"'
grep -q '"traceEvents"' "$out/trace-smoke.chrome.json"
# The bounded flight recorder must overflow on a real run and say so.
cargo run --release --bin exp_workloads -- --seed 3 --jobs 500 --rate 0.4 --sites 16 \
    --trace-ring 128 > "$out/trace-smoke-ring.txt"
grep -q 'dropped' "$out/trace-smoke-ring.txt"
# Streaming and Chrome export compose with the Fig. 1 walkthrough too.
cargo run --release --bin exp_fig1_overview -- \
    --trace-out "$out/trace-smoke-fig1.jsonl" \
    --chrome-trace "$out/trace-smoke-fig1.chrome.json" > /dev/null
grep -q '"kind":"acs-enroll"' "$out/trace-smoke-fig1.jsonl"
echo "trace smoke OK: same-seed traces are byte-identical and exports are well-formed"
