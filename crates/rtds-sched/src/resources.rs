//! The multicore site resource model.
//!
//! The paper evaluates single-capacity sites; this module generalises a site
//! to a dslab-compute-style resource bundle — a number of identical cores, a
//! relative speed and a memory capacity — plus a per-task *demand* (cores,
//! memory, speedup law). The degenerate bundle `cores = 1, memory = ∞` with
//! single-core demands reproduces the paper's model exactly: every scheduler
//! built over it delegates to the original single-plan primitives, so all
//! pre-multicore reports stay byte-identical.

use serde::{Deserialize, Serialize};

/// Compute resources of one site.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiteResources {
    /// Number of identical cores (`>= 1`).
    pub cores: usize,
    /// Relative speed multiplier applied on top of the site's base speed
    /// (1.0 = the site's own speed; the §13 uniform-machines factor is
    /// composed with this, not replaced by it).
    pub speed: f64,
    /// Memory capacity in abstract units ([`f64::INFINITY`] = unlimited).
    pub memory: f64,
}

impl Default for SiteResources {
    fn default() -> Self {
        SiteResources {
            cores: 1,
            speed: 1.0,
            memory: f64::INFINITY,
        }
    }
}

impl SiteResources {
    /// A single-core site with the given relative speed and unlimited
    /// memory — the paper's model.
    pub fn single_core(speed: f64) -> Self {
        SiteResources {
            cores: 1,
            speed,
            memory: f64::INFINITY,
        }
    }

    /// A multicore site with unlimited memory.
    pub fn multicore(cores: usize, speed: f64) -> Self {
        SiteResources {
            cores: cores.max(1),
            speed,
            memory: f64::INFINITY,
        }
    }

    /// Returns `true` for the degenerate paper-model shape: one core,
    /// unit speed multiplier, unlimited memory. On this shape every
    /// scheduler query reduces to the original single-plan primitives.
    pub fn is_degenerate(&self) -> bool {
        self.cores == 1 && self.speed == 1.0 && self.memory.is_infinite()
    }

    /// Validates the bundle.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("site must have at least one core".into());
        }
        if !(self.speed.is_finite() && self.speed > 0.0) {
            return Err(format!("site speed must be positive, got {}", self.speed));
        }
        if self.memory.is_nan() || self.memory < 0.0 {
            return Err(format!("site memory must be >= 0, got {}", self.memory));
        }
        Ok(())
    }
}

/// How a task's execution time scales with the cores granted to it.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum SpeedupFn {
    /// No parallel speedup: the task runs at single-core speed however many
    /// cores it occupies.
    #[default]
    Flat,
    /// Perfect linear speedup: `k` cores run the task `k` times faster.
    Linear,
    /// Amdahl's law with the given parallelisable fraction `p` in `[0, 1]`:
    /// `k` cores yield a factor `1 / ((1 - p) + p / k)`.
    Amdahl {
        /// Fraction of the work that parallelises.
        parallel_fraction: f64,
    },
}

impl SpeedupFn {
    /// Speedup factor when the task runs on `cores` cores (`>= 1.0`).
    pub fn factor(&self, cores: usize) -> f64 {
        let k = cores.max(1) as f64;
        match *self {
            SpeedupFn::Flat => 1.0,
            SpeedupFn::Linear => k,
            SpeedupFn::Amdahl { parallel_fraction } => {
                let p = parallel_fraction.clamp(0.0, 1.0);
                1.0 / ((1.0 - p) + p / k)
            }
        }
    }
}

/// Resource demand of one task: how many cores it occupies simultaneously
/// (gang-scheduled), how much memory it holds while resident, and how its
/// duration scales with the cores it gets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskDemand {
    /// Cores occupied for the whole execution (clamped to the site's cores).
    pub cores: usize,
    /// Memory held for the duration of the reservation.
    pub memory: f64,
    /// Duration scaling law.
    pub speedup: SpeedupFn,
}

impl Default for TaskDemand {
    fn default() -> Self {
        TaskDemand {
            cores: 1,
            memory: 0.0,
            speedup: SpeedupFn::Flat,
        }
    }
}

impl TaskDemand {
    /// Cores actually granted on a site: the demand clamped to what exists.
    pub fn granted_cores(&self, resources: &SiteResources) -> usize {
        self.cores.clamp(1, resources.cores)
    }

    /// Execution time of a task of the given `cost` on `resources`, where
    /// `base_speed` is the site's effective speed (the §13 uniform-machines
    /// factor). The resource speed multiplier and the speedup law compose
    /// multiplicatively.
    pub fn duration(&self, cost: f64, base_speed: f64, resources: &SiteResources) -> f64 {
        let granted = self.granted_cores(resources);
        cost / (base_speed * resources.speed * self.speedup.factor(granted))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_resources_are_the_paper_model() {
        let r = SiteResources::default();
        assert_eq!(r.cores, 1);
        assert_eq!(r.speed, 1.0);
        assert!(r.memory.is_infinite());
        assert!(r.is_degenerate());
        assert!(r.validate().is_ok());
        assert!(SiteResources::single_core(2.0).validate().is_ok());
        assert!(!SiteResources::single_core(2.0).is_degenerate());
        assert!(!SiteResources::multicore(4, 1.0).is_degenerate());
        assert_eq!(SiteResources::multicore(0, 1.0).cores, 1);
    }

    #[test]
    fn invalid_resources_are_rejected() {
        let bad = |f: fn(&mut SiteResources)| {
            let mut r = SiteResources::default();
            f(&mut r);
            r.validate().is_err()
        };
        assert!(bad(|r| r.cores = 0));
        assert!(bad(|r| r.speed = 0.0));
        assert!(bad(|r| r.speed = f64::NAN));
        assert!(bad(|r| r.memory = -1.0));
        assert!(bad(|r| r.memory = f64::NAN));
    }

    #[test]
    fn speedup_laws_match_their_definitions() {
        assert_eq!(SpeedupFn::Flat.factor(8), 1.0);
        assert_eq!(SpeedupFn::Linear.factor(1), 1.0);
        assert_eq!(SpeedupFn::Linear.factor(4), 4.0);
        // Amdahl: p = 0 is flat, p = 1 is linear, and factors are monotone
        // in the core count but bounded by 1 / (1 - p).
        let flat = SpeedupFn::Amdahl {
            parallel_fraction: 0.0,
        };
        assert_eq!(flat.factor(16), 1.0);
        let linear = SpeedupFn::Amdahl {
            parallel_fraction: 1.0,
        };
        assert_eq!(linear.factor(4), 4.0);
        let amdahl = SpeedupFn::Amdahl {
            parallel_fraction: 0.8,
        };
        assert!((amdahl.factor(2) - 1.0 / (0.2 + 0.4)).abs() < 1e-12);
        assert!(amdahl.factor(4) > amdahl.factor(2));
        assert!(amdahl.factor(1_000_000) < 5.0);
        assert_eq!(amdahl.factor(1), 1.0);
        // Out-of-range fractions are clamped, zero cores treated as one.
        assert_eq!(
            SpeedupFn::Amdahl {
                parallel_fraction: 7.0
            }
            .factor(2),
            2.0
        );
        assert_eq!(SpeedupFn::Linear.factor(0), 1.0);
    }

    #[test]
    fn demand_duration_composes_speed_and_speedup() {
        let site = SiteResources::multicore(4, 2.0);
        let demand = TaskDemand {
            cores: 2,
            memory: 1.0,
            speedup: SpeedupFn::Linear,
        };
        // cost 12 at base speed 1.5 × resource multiplier 2 × linear(2).
        assert!((demand.duration(12.0, 1.5, &site) - 12.0 / (1.5 * 2.0 * 2.0)).abs() < 1e-12);
        // Demands above the site's cores are clamped.
        let wide = TaskDemand {
            cores: 16,
            ..demand
        };
        assert_eq!(wide.granted_cores(&site), 4);
        // The default demand on a degenerate site is exactly cost / speed.
        let default_site = SiteResources::default();
        let d = TaskDemand::default();
        assert_eq!(d.duration(10.0, 2.0, &default_site), 5.0);
        assert_eq!(d.granted_cores(&default_site), 1);
    }
}
