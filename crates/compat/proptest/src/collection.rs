//! Collection strategies (only `vec` is needed).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Length specification for [`fn@vec`]: either a half-open range or an exact
/// size, mirroring proptest's `SizeRange` conversions.
#[derive(Debug, Clone)]
pub struct SizeRange(core::ops::Range<usize>);

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange(exact..exact + 1)
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(range: core::ops::Range<usize>) -> Self {
        assert!(!range.is_empty(), "empty length range for collection::vec");
        SizeRange(range)
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: core::ops::RangeInclusive<usize>) -> Self {
        let (lo, hi) = range.into_inner();
        assert!(lo <= hi, "empty length range for collection::vec");
        SizeRange(lo..hi + 1)
    }
}

/// Strategy for `Vec`s with element strategy `S` and a length drawn from a
/// [`SizeRange`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `proptest::collection::vec(element, len)` — `len` may be a `usize`, a
/// `Range<usize>` or a `RangeInclusive<usize>`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.0.clone());
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
