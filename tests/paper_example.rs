//! Golden integration test: the complete worked example of the paper
//! (§12.1/§12.2, Figs. 2–4, Table 1), exercised through the public facade.

use rtds::core::{
    adjust_mapping, gantt_rows, map_dag, table1_rows, AdjustCase, AdjustOutcome, JobOutcomeKind,
    LaxityDispatch, MapperInput, ProcessorSpec, RtdsConfig, RtdsSystem,
};
use rtds::graph::paper_instance::*;
use rtds::graph::JobId;
use rtds::net::generators::{line, DelayDistribution};

fn paper_mapping() -> (
    rtds::graph::TaskGraph,
    rtds::core::MapperResult,
    Vec<ProcessorSpec>,
) {
    let graph = paper_task_graph();
    let processors = vec![
        ProcessorSpec::with_surplus(PAPER_SURPLUS_P1),
        ProcessorSpec::with_surplus(PAPER_SURPLUS_P2),
    ];
    let input = MapperInput::new(&graph, PAPER_RELEASE, &processors, PAPER_ACS_DIAMETER);
    let result = map_dag(&input).expect("the paper instance maps");
    (graph, result, processors)
}

#[test]
fn figure_2_instance_structure() {
    let graph = paper_task_graph();
    assert_eq!(graph.task_count(), 5);
    assert_eq!(graph.edge_count(), 5);
    let costs: Vec<f64> = graph.tasks().map(|t| t.cost).collect();
    assert_eq!(costs, PAPER_COSTS.to_vec());
    for (a, b) in PAPER_EDGES {
        assert!(graph.successors(rtds::graph::TaskId(a)).any(|s| s.0 == b));
    }
}

#[test]
fn figure_3_schedule_s() {
    let (_, result, _) = paper_mapping();
    let rows = gantt_rows(&result, false);
    for (task, proc, start, finish) in EXPECTED_SCHEDULE_S {
        let row = rows.iter().find(|r| r.task == task).unwrap();
        assert_eq!(row.processor, proc, "task {}", task + 1);
        assert!((row.start - start).abs() < 1e-9, "task {} start", task + 1);
        assert!(
            (row.finish - finish).abs() < 1e-9,
            "task {} finish",
            task + 1
        );
    }
    assert!((result.makespan - EXPECTED_MAKESPAN_S).abs() < 1e-9);
}

#[test]
fn figure_4_schedule_s_star() {
    let (_, result, _) = paper_mapping();
    let rows = gantt_rows(&result, true);
    for (task, proc, start, finish) in EXPECTED_SCHEDULE_S_STAR {
        let row = rows.iter().find(|r| r.task == task).unwrap();
        assert_eq!(row.processor, proc);
        assert!(
            (row.start - start).abs() < 1e-9,
            "task {} S* start",
            task + 1
        );
        assert!(
            (row.finish - finish).abs() < 1e-9,
            "task {} S* finish",
            task + 1
        );
    }
    assert!((result.makespan_star - EXPECTED_MAKESPAN_S_STAR).abs() < 1e-9);
}

#[test]
fn table_1_adjusted_windows() {
    let (graph, result, processors) = paper_mapping();
    let adjusted = adjust_mapping(
        &graph,
        &result,
        PAPER_RELEASE,
        PAPER_DEADLINE,
        &processors,
        LaxityDispatch::Uniform,
    );
    match &adjusted {
        AdjustOutcome::Adjusted { case, .. } => assert_eq!(*case, AdjustCase::ScaledByWindow),
        other => panic!("unexpected outcome {other:?}"),
    }
    let rows = table1_rows(&graph, &result, &adjusted).unwrap();
    for (task, ri, di, r_adj, d_adj) in EXPECTED_TABLE1 {
        let row = rows.iter().find(|r| r.task == task).unwrap();
        assert!((row.r_raw - ri).abs() < 1e-9, "r_{}", task + 1);
        assert!((row.d_raw - di).abs() < 1e-9, "d_{}", task + 1);
        assert!((row.r_adjusted - r_adj).abs() < 1e-9, "r(t{})", task + 1);
        assert!((row.d_adjusted - d_adj).abs() < 1e-9, "d(t{})", task + 1);
    }
}

#[test]
fn adjustment_cases_cover_the_window_spectrum() {
    let (graph, result, processors) = paper_mapping();
    // (window, expected case) sweep around the published M* = 19 and M = 33.
    for (deadline, expect_reject, expect_case) in [
        (10.0, true, None),
        (18.9, true, None),
        (19.0, false, Some(AdjustCase::LaxityScattered)),
        (25.0, false, Some(AdjustCase::LaxityScattered)),
        (33.0, false, Some(AdjustCase::ScaledByWindow)),
        (66.0, false, Some(AdjustCase::ScaledByWindow)),
        (200.0, false, Some(AdjustCase::ScaledByWindow)),
    ] {
        let outcome = adjust_mapping(
            &graph,
            &result,
            0.0,
            deadline,
            &processors,
            LaxityDispatch::Uniform,
        );
        assert_eq!(outcome.is_rejected(), expect_reject, "deadline {deadline}");
        if let AdjustOutcome::Adjusted {
            case,
            release,
            deadline: d,
        } = outcome
        {
            assert_eq!(Some(case), expect_case, "deadline {deadline}");
            // All windows inside the job window and able to hold their cost.
            for t in graph.task_ids() {
                assert!(d[t.0] <= deadline + 1e-9);
                assert!(release[t.0] >= -1e-9);
                assert!(d[t.0] - release[t.0] + 1e-9 >= graph.cost(t));
            }
        }
    }
}

#[test]
fn fig2_job_meets_its_deadline_end_to_end_on_the_papers_topology() {
    // §12.1 runs the Fig. 2 job across two processors joined by an ACS of
    // delay-diameter 3: a two-site line with link delay 3 reproduces that
    // topology. Submitted through the full protocol, the job must be
    // guaranteed and complete within the published deadline of 66.
    let network = line(2, DelayDistribution::Constant(PAPER_ACS_DIAMETER), 1);
    let config = RtdsConfig {
        sphere_radius: 1,
        ..RtdsConfig::default()
    };
    let mut system = RtdsSystem::new(network, config, 7);
    system.submit_job(paper_job(JobId(1), 0));
    let report = system.run();

    assert_eq!(report.jobs_submitted, 1);
    assert_eq!(report.deadline_misses(), 0);
    let job = &report.jobs[0];
    assert_ne!(
        job.outcome,
        JobOutcomeKind::Rejected,
        "the paper's worked example is feasible on its own topology"
    );
    assert!(job.met_deadline);
    assert!((job.deadline - PAPER_DEADLINE).abs() < 1e-9);
    let completion = job.completion.expect("accepted jobs report completion");
    assert!(
        completion <= PAPER_DEADLINE + 1e-9,
        "completion {completion} exceeds the paper deadline {PAPER_DEADLINE}"
    );
}
