//! Quickstart: build a small network, submit a couple of jobs and print what
//! the RTDS protocol did with them.
//!
//! Run with: `cargo run --example quickstart`

use rtds::core::{RtdsConfig, RtdsSystem};
use rtds::graph::generators::{DagGenerator, DagShape, GeneratorConfig};
use rtds::net::generators::{grid, DelayDistribution};

fn main() {
    // A 4 x 4 grid of identical sites with unit link delays.
    let network = grid(4, 4, false, DelayDistribution::Constant(1.0), 7);

    // Computing Spheres of hop radius 2; everything else at its default.
    let config = RtdsConfig {
        sphere_radius: 2,
        ..RtdsConfig::default()
    };
    let mut system = RtdsSystem::new(network, config, 42);

    // A small stream of random layered DAGs arriving at site 5.
    let gen_cfg = GeneratorConfig {
        task_count: 12,
        shape: DagShape::LayeredRandom {
            layers: 3,
            edge_prob: 0.3,
        },
        laxity_factor: (1.6, 2.5),
        ..GeneratorConfig::default()
    };
    let mut generator = DagGenerator::new(gen_cfg, 1);
    for i in 0..6 {
        let job = generator.generate_job(5, 10.0 + 5.0 * i as f64);
        println!(
            "submitting {} ({} tasks, window [{:.1}, {:.1}])",
            job.id,
            job.graph.task_count(),
            job.release(),
            job.deadline()
        );
        system.submit_job(job);
    }

    let report = system.run();

    println!();
    println!("jobs submitted        : {}", report.jobs_submitted);
    println!(
        "accepted locally      : {}",
        report.guarantee.accepted_locally
    );
    println!(
        "accepted distributed  : {}",
        report.guarantee.accepted_distributed
    );
    println!("rejected              : {}", report.guarantee.rejected);
    println!("guarantee ratio       : {:.2}", report.guarantee_ratio());
    println!("deadline misses       : {}", report.deadline_misses());
    println!("messages per job      : {:.1}", report.messages_per_job);
    println!();
    for job in &report.jobs {
        println!(
            "  {:?} at site {} -> {:?} (completion {:?})",
            job.job, job.arrival_site, job.outcome, job.completion
        );
    }
    assert_eq!(
        report.deadline_misses(),
        0,
        "accepted jobs never miss deadlines"
    );
}
