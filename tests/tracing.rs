//! Integration tests of the span-tracing subsystem through the `rtds`
//! facade: the deterministic properties the whole design hangs on.
//!
//! * The JSONL rendering of a traced cell is **byte-identical** across
//!   sweep thread counts — span ids are derived from `(job seed, phase,
//!   site, seq)`, never allocated from a counter, so concurrency cannot
//!   leak into them.
//! * A recorded document **round-trips**: parse → re-render reproduces the
//!   input bytes exactly (the JSON dialect is shortest-round-trip floats
//!   with a fixed escape set), and every line is also valid in the
//!   simulator's own `Json` dialect.
//! * Every trace is a **well-formed span forest**: no self-parents, no
//!   cycles, parents recorded before children, stable re-parenting.
//! * The ring sink keeps million-job runs **bounded**: retained events
//!   never exceed capacity while the drop counters account for the rest
//!   (the `#[ignore]`d acceptance run drives 1,000,000 jobs through it and
//!   checks the process RSS).

use proptest::prelude::*;
use rtds::scenarios::{find_scenario, mix_seed, parallel_sweep_sharded, run_cell_traced, Json};
use rtds::trace::{check_well_formed, read_jsonl};

/// One small sweep's worth of traced cells, rendered and concatenated in
/// input order. `capacity` bounds each cell's ring.
fn sweep_documents(threads: usize, seeds: &[u64], capacity: usize) -> Vec<String> {
    let scenario = find_scenario("paper-baseline").expect("registry has paper-baseline");
    let cells: Vec<u64> = seeds.to_vec();
    parallel_sweep_sharded(cells, threads, |seed| {
        let (_cell, document) = run_cell_traced(&scenario, seed, capacity);
        document
    })
}

#[test]
fn jsonl_documents_are_byte_identical_across_thread_counts() {
    let seeds = [1, 2, 3, 4, 5];
    let one = sweep_documents(1, &seeds, 4096);
    let two = sweep_documents(2, &seeds, 4096);
    let four = sweep_documents(4, &seeds, 4096);
    assert!(one.iter().all(|d| !d.is_empty()));
    assert_eq!(one, two, "2-thread sweep changed the trace bytes");
    assert_eq!(one, four, "4-thread sweep changed the trace bytes");
    // Different seeds genuinely produce different traces — the identity
    // above is not vacuous.
    assert_ne!(one[0], one[1]);
}

#[test]
fn recorded_documents_round_trip_byte_for_byte() {
    let scenario = find_scenario("overload-burst").unwrap();
    let (_cell, document) = run_cell_traced(&scenario, 7, 8192);
    let (header, events) = read_jsonl(&document).expect("our own rendering parses");
    assert!(!events.is_empty());
    let rerendered = rtds::trace::render_jsonl_with_header(&header, &events);
    assert_eq!(document, rerendered, "parse → re-render must be a fixpoint");
    // Dialect compatibility: every line is also a valid document in the
    // simulator's own JSON dialect (tooling can use either parser).
    for line in document.lines() {
        Json::parse(line).unwrap_or_else(|e| panic!("line {line:?} is not Json-dialect: {e}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every scenario trace is a well-formed span forest, whatever the
    /// seed: parents precede children, no cycles, consistent re-parenting.
    #[test]
    fn traces_are_well_formed_span_forests(seed in 0u64..1000) {
        let scenario = find_scenario("paper-baseline").unwrap();
        let (_cell, document) = run_cell_traced(&scenario, seed, 1 << 20);
        let (_header, events) = read_jsonl(&document).expect("rendering parses");
        prop_assert!(!events.is_empty());
        if let Err(e) = check_well_formed(&events) {
            prop_assert!(false, "seed {}: {}", seed, e);
        }
    }
}

#[test]
fn ring_capacity_bounds_retention_and_accounts_for_drops() {
    use rtds::core::{RtdsConfig, RtdsSystem, StreamOptions};
    use rtds::net::generators::{grid, DelayDistribution};
    use rtds::sim::Trace;
    use rtds::workload::{JobFactory, JobTemplate, OpenLoopSpec, RateProcess, SizeMix};

    let seed = 11u64;
    let capacity = 64usize;
    let network = grid(4, 4, false, DelayDistribution::Constant(1.0), 0);
    let mut system = RtdsSystem::new(network, RtdsConfig::default(), mix_seed(seed, 5));
    system.set_trace(Trace::ring(capacity));
    let spec = OpenLoopSpec {
        process: RateProcess::Poisson { rate: 0.5 },
        sizes: SizeMix::Uniform { min: 6, max: 10 },
        hotspots: 0,
        horizon: f64::INFINITY,
        max_jobs: 300,
    };
    let mut factory = JobFactory::new(spec.build(16, mix_seed(seed, 2)), JobTemplate::default());
    let report = system.run_streaming(&mut factory, &StreamOptions::default());
    assert_eq!(report.guarantee.submitted, 300);

    let trace = system.trace();
    assert_eq!(trace.ring_capacity(), Some(capacity));
    assert!(trace.len() <= capacity, "ring exceeded its capacity");
    assert!(
        trace.recorded() > capacity as u64,
        "run too small to overflow"
    );
    assert_eq!(
        trace.recorded(),
        trace.len() as u64 + trace.dropped(),
        "every recorded event is either retained or counted as dropped"
    );
    // The retained suffix is still chronological.
    let events = trace.events();
    assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
}

/// Acceptance-scale run (release only — takes minutes in debug):
///
/// ```text
/// cargo test --release --test tracing -- --ignored
/// ```
///
/// Streams 1,000,000 jobs through the engine with the default flight
/// recorder installed and asserts the whole thing stayed bounded: retained
/// events never exceed the ring capacity and the process RSS stays far
/// below what retaining every event would need (~60 B × ~24 events/job ≈
/// 1.4 GiB); two same-seed runs agree event-for-event.
#[test]
#[ignore]
fn million_job_stream_keeps_tracing_bounded() {
    use rtds::core::{RtdsConfig, RtdsSystem, StreamOptions};
    use rtds::net::generators::{grid, DelayDistribution};
    use rtds::sim::Trace;
    use rtds::workload::{JobFactory, JobTemplate, OpenLoopSpec, RateProcess, SizeMix};

    let run = |seed: u64| {
        let network = grid(
            8,
            8,
            false,
            DelayDistribution::Constant(1.0),
            mix_seed(seed, 1),
        );
        let mut system = RtdsSystem::new(network, RtdsConfig::default(), mix_seed(seed, 5));
        system.set_trace(Trace::flight_recorder());
        system.set_fault_seed(mix_seed(seed, 4));
        system.set_max_events(10_000_000_000);
        let spec = OpenLoopSpec {
            process: RateProcess::Poisson { rate: 0.5 },
            sizes: SizeMix::Uniform { min: 6, max: 10 },
            hotspots: 0,
            horizon: f64::INFINITY,
            max_jobs: 1_000_000,
        };
        let mut factory =
            JobFactory::new(spec.build(64, mix_seed(seed, 2)), JobTemplate::default());
        let report = system.run_streaming(&mut factory, &StreamOptions::default());
        assert_eq!(report.guarantee.submitted, 1_000_000);
        let capacity = system.trace().ring_capacity().expect("ring installed");
        assert!(system.trace().len() <= capacity);
        assert!(
            system.trace().dropped() > 0,
            "1M jobs must overflow the ring"
        );
        assert_eq!(
            system.trace().recorded(),
            system.trace().len() as u64 + system.trace().dropped()
        );
        system.trace().events()
    };

    let first = run(42);
    let second = run(42);
    assert_eq!(first, second, "same-seed runs must retain identical events");

    // Bounded memory: the resident set after two full runs stays well under
    // a budget that retaining tens of millions of events would blow.
    let status = std::fs::read_to_string("/proc/self/status").expect("linux /proc");
    let rss_kib: u64 = status
        .lines()
        .find(|l| l.starts_with("VmRSS:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .expect("VmRSS present");
    assert!(
        rss_kib < 1_000_000,
        "RSS {rss_kib} KiB — tracing (or the stream path) is no longer bounded"
    );
}
