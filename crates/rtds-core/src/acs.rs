//! Available Computing Sphere construction (§8) — initiator-side bookkeeping.
//!
//! When a job cannot be guaranteed locally, the initiator `k` enrols a subset
//! of its PCS. Each enrolled site locks itself for `k` and replies with its
//! surplus. [`AcsCollection`] tracks the outstanding answers and produces the
//! final ACS — the logical-processor list handed to the Mapper, sorted by
//! decreasing surplus as §9 requires — once every contacted site has
//! answered.

use crate::mapper::ProcessorSpec;
use crate::snapshot as snap;
use rtds_net::SiteId;
use rtds_sim::json::Json;
use rtds_sim::snapshot as sim_snap;
use rtds_sim::snapshot::SnapshotError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One member of a constructed ACS.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcsMember {
    /// The member site.
    pub site: SiteId,
    /// Its reported surplus.
    pub surplus: f64,
    /// Its relative computing power.
    pub speed: f64,
    /// Minimum known delay from the initiator to this site (0 for the
    /// initiator itself).
    pub delay: f64,
}

/// Initiator-side state of one ACS construction round.
#[derive(Debug, Clone, PartialEq)]
pub struct AcsCollection {
    /// Sites contacted and not yet heard from.
    outstanding: BTreeMap<SiteId, f64>,
    /// Positive answers, including the initiator's own entry.
    members: Vec<AcsMember>,
    /// Sites that answered busy.
    busy: Vec<SiteId>,
}

impl AcsCollection {
    /// Starts a collection round. `own` is the initiator's own entry
    /// (surplus, speed); `contacted` lists the enrolled candidates with the
    /// initiator-to-candidate delay.
    pub fn new(
        initiator: SiteId,
        own_surplus: f64,
        own_speed: f64,
        contacted: &[(SiteId, f64)],
    ) -> Self {
        let outstanding: BTreeMap<SiteId, f64> = contacted.iter().copied().collect();
        AcsCollection {
            outstanding,
            members: vec![AcsMember {
                site: initiator,
                surplus: own_surplus,
                speed: own_speed,
                delay: 0.0,
            }],
            busy: Vec::new(),
        }
    }

    /// Records a positive answer. Unknown senders are ignored (stale
    /// replies).
    pub fn record_ack(&mut self, from: SiteId, surplus: f64, speed: f64) {
        if let Some(delay) = self.outstanding.remove(&from) {
            self.members.push(AcsMember {
                site: from,
                surplus,
                speed,
                delay,
            });
        }
    }

    /// Records a negative (busy) answer.
    pub fn record_busy(&mut self, from: SiteId) {
        if self.outstanding.remove(&from).is_some() {
            self.busy.push(from);
        }
    }

    /// Returns `true` once every contacted site has answered.
    pub fn is_complete(&self) -> bool {
        self.outstanding.is_empty()
    }

    /// Number of answers still outstanding.
    pub fn outstanding_count(&self) -> usize {
        self.outstanding.len()
    }

    /// The members collected so far (initiator first, then in answer order).
    pub fn members(&self) -> &[AcsMember] {
        &self.members
    }

    /// Sites that refused (were locked).
    pub fn busy_sites(&self) -> &[SiteId] {
        &self.busy
    }

    /// Produces the Mapper input: members sorted by decreasing surplus (§9),
    /// with ties broken by increasing delay then site id for determinism.
    /// Returns the ordered members and the matching [`ProcessorSpec`] list.
    pub fn sorted_for_mapper(&self) -> (Vec<AcsMember>, Vec<ProcessorSpec>) {
        let mut ordered = self.members.clone();
        ordered.sort_by(|a, b| {
            b.surplus
                .partial_cmp(&a.surplus)
                .unwrap()
                .then(a.delay.partial_cmp(&b.delay).unwrap())
                .then(a.site.0.cmp(&b.site.0))
        });
        let specs = ordered
            .iter()
            .map(|m| ProcessorSpec {
                surplus: m.surplus,
                speed: m.speed,
            })
            .collect();
        (ordered, specs)
    }

    /// Serializes the collection round (snapshot support; see
    /// [`crate::snapshot`]).
    pub(crate) fn encode_snapshot(&self) -> Json {
        Json::object(vec![
            (
                "outstanding",
                Json::Array(
                    self.outstanding
                        .iter()
                        .map(|(site, delay)| {
                            Json::Array(vec![snap::encode_site(*site), sim_snap::f64_bits(*delay)])
                        })
                        .collect(),
                ),
            ),
            (
                "members",
                Json::Array(self.members.iter().map(encode_member).collect()),
            ),
            (
                "busy",
                Json::Array(self.busy.iter().map(|&s| snap::encode_site(s)).collect()),
            ),
        ])
    }

    /// Inverse of [`AcsCollection::encode_snapshot`].
    pub(crate) fn decode_snapshot(doc: &Json) -> Result<Self, SnapshotError> {
        let mut outstanding = BTreeMap::new();
        for entry in sim_snap::get_items(doc, "outstanding")? {
            let pair = sim_snap::as_items(entry, "outstanding entry")?;
            if pair.len() != 2 {
                return Err(SnapshotError(
                    "outstanding entry: expected [site, delay]".into(),
                ));
            }
            outstanding.insert(
                snap::decode_site(&pair[0], "outstanding site")?,
                sim_snap::f64_from_bits(&pair[1], "outstanding delay")?,
            );
        }
        Ok(AcsCollection {
            outstanding,
            members: sim_snap::get_items(doc, "members")?
                .iter()
                .map(decode_member)
                .collect::<Result<Vec<AcsMember>, SnapshotError>>()?,
            busy: sim_snap::get_items(doc, "busy")?
                .iter()
                .map(|s| snap::decode_site(s, "busy site"))
                .collect::<Result<Vec<SiteId>, SnapshotError>>()?,
        })
    }

    /// Conservative ACS delay-diameter computable from the initiator's local
    /// knowledge only: `max_{a,b} (δ(k,a) + δ(k,b))` over distinct members.
    pub fn local_diameter_estimate(&self) -> f64 {
        let mut best = 0.0f64;
        for (i, a) in self.members.iter().enumerate() {
            for (j, b) in self.members.iter().enumerate() {
                if i != j {
                    best = best.max(a.delay + b.delay);
                }
            }
        }
        best
    }
}

/// One ACS member as `[site, surplus, speed, delay]`.
pub(crate) fn encode_member(m: &AcsMember) -> Json {
    Json::Array(vec![
        snap::encode_site(m.site),
        sim_snap::f64_bits(m.surplus),
        sim_snap::f64_bits(m.speed),
        sim_snap::f64_bits(m.delay),
    ])
}

/// Inverse of [`encode_member`].
pub(crate) fn decode_member(j: &Json) -> Result<AcsMember, SnapshotError> {
    let fields = sim_snap::as_items(j, "acs member")?;
    if fields.len() != 4 {
        return Err(SnapshotError(
            "acs member: expected [site, surplus, speed, delay]".into(),
        ));
    }
    Ok(AcsMember {
        site: snap::decode_site(&fields[0], "member site")?,
        surplus: sim_snap::f64_from_bits(&fields[1], "member surplus")?,
        speed: sim_snap::f64_from_bits(&fields[2], "member speed")?,
        delay: sim_snap::f64_from_bits(&fields[3], "member delay")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collection_round_tracks_answers() {
        let contacted = vec![(SiteId(1), 2.0), (SiteId(2), 5.0), (SiteId(3), 1.0)];
        let mut acs = AcsCollection::new(SiteId(0), 0.8, 1.0, &contacted);
        assert!(!acs.is_complete());
        assert_eq!(acs.outstanding_count(), 3);
        acs.record_ack(SiteId(2), 0.4, 1.0);
        acs.record_busy(SiteId(3));
        assert!(!acs.is_complete());
        acs.record_ack(SiteId(1), 0.5, 2.0);
        assert!(acs.is_complete());
        assert_eq!(acs.members().len(), 3); // initiator + 2 acks
        assert_eq!(acs.busy_sites(), &[SiteId(3)]);
        // Stale/duplicate answers are ignored.
        acs.record_ack(SiteId(2), 0.9, 1.0);
        acs.record_busy(SiteId(9));
        assert_eq!(acs.members().len(), 3);
        assert_eq!(acs.busy_sites().len(), 1);
    }

    #[test]
    fn mapper_order_is_by_decreasing_surplus() {
        let contacted = vec![(SiteId(1), 2.0), (SiteId(2), 5.0)];
        let mut acs = AcsCollection::new(SiteId(0), 0.5, 1.0, &contacted);
        acs.record_ack(SiteId(1), 0.9, 1.0);
        acs.record_ack(SiteId(2), 0.7, 1.5);
        let (ordered, specs) = acs.sorted_for_mapper();
        assert_eq!(
            ordered.iter().map(|m| m.site).collect::<Vec<_>>(),
            vec![SiteId(1), SiteId(2), SiteId(0)]
        );
        assert_eq!(specs[0].surplus, 0.9);
        assert_eq!(specs[1].speed, 1.5);
        assert_eq!(specs[2].surplus, 0.5);
    }

    #[test]
    fn surplus_ties_break_by_delay_then_id() {
        let contacted = vec![(SiteId(5), 3.0), (SiteId(2), 1.0)];
        let mut acs = AcsCollection::new(SiteId(0), 0.5, 1.0, &contacted);
        acs.record_ack(SiteId(5), 0.5, 1.0);
        acs.record_ack(SiteId(2), 0.5, 1.0);
        let (ordered, _) = acs.sorted_for_mapper();
        // All surpluses equal: initiator (delay 0) first, then site 2
        // (delay 1), then site 5 (delay 3).
        assert_eq!(
            ordered.iter().map(|m| m.site).collect::<Vec<_>>(),
            vec![SiteId(0), SiteId(2), SiteId(5)]
        );
    }

    #[test]
    fn diameter_estimate() {
        let contacted = vec![(SiteId(1), 2.0), (SiteId(2), 5.0)];
        let mut acs = AcsCollection::new(SiteId(0), 0.5, 1.0, &contacted);
        assert_eq!(acs.local_diameter_estimate(), 0.0); // only the initiator
        acs.record_ack(SiteId(1), 0.9, 1.0);
        assert_eq!(acs.local_diameter_estimate(), 2.0); // k <-> 1
        acs.record_ack(SiteId(2), 0.7, 1.0);
        assert_eq!(acs.local_diameter_estimate(), 7.0); // 1 <-> 2 via k
    }

    #[test]
    fn empty_contact_list_is_immediately_complete() {
        let acs = AcsCollection::new(SiteId(0), 1.0, 1.0, &[]);
        assert!(acs.is_complete());
        assert_eq!(acs.members().len(), 1);
        let (ordered, specs) = acs.sorted_for_mapper();
        assert_eq!(ordered.len(), 1);
        assert_eq!(specs.len(), 1);
    }
}
