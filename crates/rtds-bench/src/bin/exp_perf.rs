//! `exp_perf` — the fixed performance suite behind the `BENCH_<n>.json`
//! trajectory.
//!
//! Runs the paper-baseline scenario plus three registry scenarios scaled to
//! 16/64/256 sites, plus the three native-sized flow scenarios of the
//! report's `flows` section (see [`rtds_bench::perf`]), printing a
//! throughput table and writing the deterministic-schema JSON report.
//! Timings (`wall_ms`, `events_per_sec`) are the only nondeterministic
//! fields; everything else is a pure function of `--seed`.
//!
//! ```text
//! exp_perf [--seed <u64>] [--json <path>] [--smoke] [--baseline <BENCH_N.json>]
//!          [--soak <events> [--checkpoint <path>]] [--resume <path>]
//! ```
//!
//! `--smoke` runs only the native paper baseline and the 16-site tier (the
//! CI smoke configuration). `--baseline <path>` diffs this run against a
//! previously recorded report: any deterministic-field mismatch, or an
//! aggregate events/sec regression of more than 20 % against the recorded
//! throughput, exits nonzero — `exp_perf --baseline BENCH_1.json` is the
//! one-line "did I break or slow down the engine" check.
//!
//! `--soak <events>` adds the streaming soak tier: an open-ended Poisson
//! stream on a 256-site grid, capped only by the event budget, reported in
//! the `soak` section of the JSON (absent budgets render the key as
//! `null`, and the section is never compared against baselines). With
//! `--checkpoint <path>` the soak pauses at half the budget, writes the
//! `rtds-stream-snapshot/1` document to the path and resumes from the
//! written bytes — exercising the full serialize → disk → deserialize
//! cycle while leaving the file behind. `--resume <path>` instead restores
//! a previously written soak snapshot (same `--seed`!) and drives it to
//! its original cap.

use rtds_bench::perf::{compare_with_baseline, run_perf_suite, PERF_TIERS};
use rtds_bench::{resume_soak, run_soak, write_json_report, ExpArgs, SoakResult};

/// Tolerated aggregate events/sec drop before `--baseline` fails the run.
const REGRESSION_TOLERANCE: f64 = 0.2;

/// Runs (or resumes) the optional soak tier according to the CLI flags.
fn soak_tier(args: &ExpArgs, seed: u64) -> Option<SoakResult> {
    if let Some(path) = args.value_of("resume") {
        if args.has("soak") || args.has("checkpoint") {
            eprintln!("--resume excludes --soak/--checkpoint: the snapshot carries the budget");
            std::process::exit(1);
        }
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read snapshot {path}: {e}");
            std::process::exit(1);
        });
        return Some(resume_soak(seed, &text).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        }));
    }
    if !args.has("soak") {
        if args.has("checkpoint") {
            eprintln!("--checkpoint only applies to a --soak run");
            std::process::exit(1);
        }
        return None;
    }
    let events = args.u64_of("soak", 0);
    if events == 0 {
        eprintln!("--soak needs a positive event budget");
        std::process::exit(1);
    }
    Some(
        run_soak(seed, events, args.value_of("checkpoint")).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        }),
    )
}

fn main() {
    let args = ExpArgs::parse(&["baseline", "soak", "checkpoint", "resume"], &["smoke"]);
    let seed = args.seed(7);
    let smoke = args.has("smoke");
    println!(
        "exp_perf: fixed suite, seed {seed}{}",
        if smoke { ", smoke tier only" } else { "" }
    );
    println!();
    println!(
        "{:<26} {:>5} {:>5} {:>6} {:>9} {:>9} {:>10} {:>9} {:>12}",
        "workload", "sites", "jobs", "ratio", "msgs", "msgs/job", "events", "wall ms", "events/s"
    );
    let mut report = run_perf_suite(seed, smoke);
    for w in report.workloads.iter().chain(&report.flows) {
        println!(
            "{:<26} {:>5} {:>5} {:>6.3} {:>9} {:>9.1} {:>10} {:>9.1} {:>12.0}",
            w.name,
            w.sites,
            w.submitted,
            w.guarantee_ratio,
            w.messages_sent,
            w.messages_per_job,
            w.events_processed,
            w.wall.as_secs_f64() * 1e3,
            w.events_per_sec()
        );
    }
    println!();
    for &tier in &PERF_TIERS {
        if report.workloads.iter().any(|w| w.tier == tier) {
            println!(
                "tier {tier:>3} sites: {:>12.0} events/s",
                report.tier_events_per_sec(tier)
            );
        }
    }
    report.soak = soak_tier(&args, seed);
    if let Some(soak) = &report.soak {
        println!();
        println!(
            "soak: {} events in {:.1} ms ({:.0} events/s){}",
            soak.events_processed,
            soak.wall.as_secs_f64() * 1e3,
            soak.events_per_sec(),
            if soak.checkpointed {
                ", through a checkpoint"
            } else {
                ""
            }
        );
        println!(
            "      {} jobs submitted, {} accepted locally, {} distributed, {} deadline misses",
            soak.submitted, soak.accepted_locally, soak.accepted_distributed, soak.deadline_misses
        );
        println!(
            "      peaks: {} in-flight jobs, {} reservations, {} pending events{}",
            soak.peak_inflight_jobs,
            soak.peak_plan_reservations,
            soak.peak_queue_len,
            match soak.peak_rss_kb {
                Some(kb) => format!(", {kb} kB RSS"),
                None => String::new(),
            }
        );
    }
    if let Some(path) = args.json_path() {
        write_json_report(path, &report.to_json(true));
    }
    if let Some(path) = args.value_of("baseline") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(1);
        });
        let comparison = compare_with_baseline(&report, &text).unwrap_or_else(|e| {
            eprintln!("baseline {path}: {e}");
            std::process::exit(1);
        });
        println!();
        let mut failed = false;
        if comparison.fields_match() {
            println!("baseline {path}: deterministic fields match byte-for-byte");
        } else {
            failed = true;
            eprintln!("baseline {path}: deterministic fields DIVERGED:");
            for line in &comparison.mismatches {
                eprintln!("  {line}");
            }
        }
        match comparison.baseline_events_per_sec {
            Some(base) => {
                println!(
                    "throughput: {:.0} events/s vs recorded {:.0} ({:+.1} %)",
                    comparison.current_events_per_sec,
                    base,
                    100.0 * (comparison.current_events_per_sec / base - 1.0)
                );
                if comparison.regressed(REGRESSION_TOLERANCE) {
                    failed = true;
                    eprintln!(
                        "throughput regressed more than {:.0} % against the baseline",
                        REGRESSION_TOLERANCE * 100.0
                    );
                }
            }
            None => println!(
                "baseline records no events/sec (timings nulled); skipping the regression check"
            ),
        }
        if failed {
            std::process::exit(1);
        }
    }
}
