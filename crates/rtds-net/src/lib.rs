//! # rtds-net — the communication network substrate of the RTDS paper
//!
//! The paper assumes (§2) an *arbitrary connected graph* of sites joined by
//! bidirectional communication links. Each site knows the delay of its
//! adjacent links; the delays need not satisfy the triangle inequality; the
//! links are faithful, loss-less and order-preserving, and the number of
//! sites is unknown (the network may be "arbitrarily wide").
//!
//! This crate provides:
//!
//! * [`Network`] — the weighted site graph with structural queries,
//! * [`generators`] — topology families (rings, grids, tori, hypercubes,
//!   random geometric graphs, connected Erdős–Rényi, Barabási–Albert,
//!   random trees, stars, complete graphs) with configurable delay
//!   distributions,
//! * [`dijkstra`] — reference shortest paths, eccentricities and diameters
//!   used to validate the distributed algorithm,
//! * [`routing`] — the `<destination, distance, next hop>` routing tables of
//!   §7.1, stored densely (a vector indexed by destination site id),
//! * [`bellman_ford`] — the *interrupted* phase-synchronous distributed
//!   All-Pairs Shortest Paths algorithm of §7.2 (Bertsekas–Gallager style),
//! * [`sphere`] — hop-bounded sphere extraction: the structural core of the
//!   Potential Computing Sphere,
//! * [`siteset`] — the fixed-width [`SiteSet`] bitset answering sphere
//!   membership in O(1).
//!
//! The protocol layers on top live in [`rtds_core`](../rtds_core/index.html);
//! the discrete-event engine driving them is
//! [`rtds_sim`](../rtds_sim/index.html).

pub mod bellman_ford;
pub mod dijkstra;
pub mod generators;
pub mod routing;
pub mod siteset;
pub mod sphere;
pub mod topology;

pub use bellman_ford::{phased_apsp, PhasedApspResult};
pub use dijkstra::{all_pairs_shortest_paths, shortest_paths, ShortestPaths};
pub use generators::DelayDistribution;
pub use routing::{RouteEntry, RoutingTable};
pub use siteset::SiteSet;
pub use sphere::Sphere;
pub use topology::{LinkState, Network, SiteId};
