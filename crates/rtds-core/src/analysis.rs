//! Extraction of the paper's exhibits from Mapper results.
//!
//! The experiment harness reprints Fig. 3 (`S`), Fig. 4 (`S*`) and Table 1
//! from a [`MapperResult`] plus an [`AdjustOutcome`]; the golden integration
//! tests compare these rows against the constants published in the paper (and
//! recorded in `rtds_graph::paper_instance`).

use crate::adjust::AdjustOutcome;
use crate::mapper::MapperResult;
use rtds_graph::TaskGraph;
use serde::{Deserialize, Serialize};

/// One row of a Gantt rendering: a task on a logical processor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GanttRow {
    /// Task index (0-based; printed 1-based by the binaries).
    pub task: usize,
    /// Logical processor index.
    pub processor: usize,
    /// Start time.
    pub start: f64,
    /// Finish time.
    pub finish: f64,
}

/// One row of Table 1: raw and adjusted windows of a task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Task index (0-based).
    pub task: usize,
    /// `r_i`: start time in `S`.
    pub r_raw: f64,
    /// `d_i`: finish time in `S`.
    pub d_raw: f64,
    /// Adjusted release `r(t_i)`.
    pub r_adjusted: f64,
    /// Adjusted deadline `d(t_i)`.
    pub d_adjusted: f64,
}

/// Gantt rows of the schedule `S` (or `S*` when `star` is true), sorted by
/// processor then start time.
pub fn gantt_rows(result: &MapperResult, star: bool) -> Vec<GanttRow> {
    let n = result.assignment.len();
    let mut rows: Vec<GanttRow> = (0..n)
        .map(|t| GanttRow {
            task: t,
            processor: result.assignment[t],
            start: if star {
                result.star_start[t]
            } else {
                result.start[t]
            },
            finish: if star {
                result.star_finish[t]
            } else {
                result.finish[t]
            },
        })
        .collect();
    rows.sort_by(|a, b| {
        a.processor
            .cmp(&b.processor)
            .then(a.start.partial_cmp(&b.start).unwrap())
    });
    rows
}

/// Table 1 rows; returns `None` when the adjustment rejected the job.
pub fn table1_rows(
    graph: &TaskGraph,
    result: &MapperResult,
    adjusted: &AdjustOutcome,
) -> Option<Vec<Table1Row>> {
    let (release, deadline) = adjusted.windows()?;
    Some(
        graph
            .task_ids()
            .map(|t| Table1Row {
                task: t.0,
                r_raw: result.start[t.0],
                d_raw: result.finish[t.0],
                r_adjusted: release[t.0],
                d_adjusted: deadline[t.0],
            })
            .collect(),
    )
}

/// Renders Gantt rows as fixed-width text (one line per task).
pub fn render_gantt(rows: &[GanttRow]) -> String {
    let mut out = String::new();
    for r in rows {
        out.push_str(&format!(
            "p{}  t{}  [{:>7.2}, {:>7.2}]\n",
            r.processor + 1,
            r.task + 1,
            r.start,
            r.finish
        ));
    }
    out
}

/// Renders Table 1 rows as fixed-width text matching the paper's layout.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::from("ti    ri     di     r(ti)   d(ti)\n");
    for r in rows {
        out.push_str(&format!(
            "{:<4} {:>6.1} {:>6.1} {:>7.1} {:>7.1}\n",
            r.task + 1,
            r.r_raw,
            r.d_raw,
            r.r_adjusted,
            r.d_adjusted
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjust::adjust_mapping;
    use crate::config::LaxityDispatch;
    use crate::mapper::{map_dag, MapperInput, ProcessorSpec};
    use rtds_graph::paper_instance::{
        paper_task_graph, EXPECTED_SCHEDULE_S, EXPECTED_SCHEDULE_S_STAR, EXPECTED_TABLE1,
        PAPER_ACS_DIAMETER, PAPER_DEADLINE, PAPER_RELEASE, PAPER_SURPLUS_P1, PAPER_SURPLUS_P2,
    };

    fn paper_setup() -> (rtds_graph::TaskGraph, MapperResult, AdjustOutcome) {
        let graph = paper_task_graph();
        let processors = vec![
            ProcessorSpec::with_surplus(PAPER_SURPLUS_P1),
            ProcessorSpec::with_surplus(PAPER_SURPLUS_P2),
        ];
        let input = MapperInput::new(&graph, PAPER_RELEASE, &processors, PAPER_ACS_DIAMETER);
        let result = map_dag(&input).unwrap();
        let adjusted = adjust_mapping(
            &graph,
            &result,
            PAPER_RELEASE,
            PAPER_DEADLINE,
            &processors,
            LaxityDispatch::Uniform,
        );
        (graph, result, adjusted)
    }

    #[test]
    fn gantt_rows_match_fig3_and_fig4() {
        let (_, result, _) = paper_setup();
        let s = gantt_rows(&result, false);
        assert_eq!(s.len(), 5);
        for row in &s {
            let expected = EXPECTED_SCHEDULE_S
                .iter()
                .find(|(t, _, _, _)| *t == row.task)
                .unwrap();
            assert_eq!(row.processor, expected.1);
            assert!((row.start - expected.2).abs() < 1e-9);
            assert!((row.finish - expected.3).abs() < 1e-9);
        }
        let s_star = gantt_rows(&result, true);
        for row in &s_star {
            let expected = EXPECTED_SCHEDULE_S_STAR
                .iter()
                .find(|(t, _, _, _)| *t == row.task)
                .unwrap();
            assert!((row.start - expected.2).abs() < 1e-9);
            assert!((row.finish - expected.3).abs() < 1e-9);
        }
        // Rows are grouped by processor and ordered by start.
        for w in s.windows(2) {
            assert!(w[0].processor < w[1].processor || w[0].start <= w[1].start);
        }
        let text = render_gantt(&s);
        assert!(text.contains("p1  t1"));
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn table1_rows_match_the_paper() {
        let (graph, result, adjusted) = paper_setup();
        let rows = table1_rows(&graph, &result, &adjusted).unwrap();
        assert_eq!(rows.len(), 5);
        for row in &rows {
            let expected = EXPECTED_TABLE1
                .iter()
                .find(|(t, _, _, _, _)| *t == row.task)
                .unwrap();
            assert!((row.r_raw - expected.1).abs() < 1e-9);
            assert!((row.d_raw - expected.2).abs() < 1e-9);
            assert!((row.r_adjusted - expected.3).abs() < 1e-9);
            assert!((row.d_adjusted - expected.4).abs() < 1e-9);
        }
        let text = render_table1(&rows);
        assert!(text.contains("r(ti)"));
        assert_eq!(text.lines().count(), 6);
    }

    #[test]
    fn table1_rows_are_none_when_rejected() {
        let (graph, result, _) = paper_setup();
        let processors = vec![
            ProcessorSpec::with_surplus(PAPER_SURPLUS_P1),
            ProcessorSpec::with_surplus(PAPER_SURPLUS_P2),
        ];
        let rejected = adjust_mapping(
            &graph,
            &result,
            0.0,
            10.0,
            &processors,
            LaxityDispatch::Uniform,
        );
        assert!(table1_rows(&graph, &result, &rejected).is_none());
    }
}
