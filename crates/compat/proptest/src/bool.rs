//! Boolean strategies.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// The strategy behind [`ANY`].
#[derive(Debug, Clone, Copy)]
pub struct Any;

/// Uniformly random booleans (`proptest::bool::ANY`).
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;
    fn sample(&self, rng: &mut StdRng) -> bool {
        rng.random_bool(0.5)
    }
}
