//! # rtds-metrics — deterministic streaming telemetry
//!
//! A zero-allocation-on-hot-path metrics layer shared by the whole RTDS
//! workspace: the simulation engine, the protocol nodes, the workload
//! generators and every experiment binary record into one
//! [`MetricsRegistry`] of named counters, gauges and log-bucketed streaming
//! [`Histogram`]s.
//!
//! Design constraints (in priority order):
//!
//! 1. **Determinism.** Every summary a report surfaces — counts, exact
//!    min/max, bucket-resolved p50/p90/p99 — is a pure function of the
//!    recorded samples, independent of sample order, merge order and
//!    thread count. Buckets are fixed powers of two classified from the
//!    IEEE-754 exponent bits, so there is no floating-point accumulation
//!    anywhere: merging is `u64` addition plus exact `f64` min/max, both
//!    associative and commutative.
//! 2. **Hot-path cost.** Instrument names are `&'static str` literals and
//!    a histogram is a fixed `u64` array: recording a sample is two map
//!    walks and an increment, with allocation only on the first touch of
//!    an instrument.
//! 3. **Scopes.** Instruments optionally carry a [`Scope`] label
//!    (`Phase(n)`, `Site(n)`), and any scoped family can be rolled up into
//!    its global view by the same associative merge.
//!
//! This crate is dependency-free and simulation-agnostic; the JSON export
//! lives in `rtds_sim::json` (the workspace's deterministic JSON layer),
//! which renders a registry as a `metrics` report section. See
//! `docs/METRICS.md` for the bucket scheme, the determinism guarantees and
//! a how-to for adding an instrument.

pub mod histogram;
pub mod registry;

pub use histogram::{bucket_index, Histogram, HistogramSummary, BUCKET_COUNT, MAX_EXP, MIN_EXP};
pub use registry::{Gauge, MetricsRegistry, Scope};
