//! The report format and policy trait shared by every distribution policy.

use crate::broadcast_bidding::{run_broadcast_bidding, BiddingConfig};
use crate::centralized::run_centralized_oracle;
use crate::global_heft::run_global_heft;
use crate::local_only::run_local_only;
use crate::random_offload::{run_random_offload, RandomOffloadConfig};
use rtds_graph::Job;
use rtds_net::Network;
use serde::{Deserialize, Serialize};

/// Outcome summary of running one policy over one workload.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PolicyReport {
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs accepted on their arrival site.
    pub accepted_locally: u64,
    /// Jobs accepted somewhere else (after offloading / bidding /
    /// distribution).
    pub accepted_remotely: u64,
    /// Jobs rejected.
    pub rejected: u64,
    /// Accepted jobs that missed their deadline at run time (must stay 0 for
    /// every sound policy — reported as a safety check).
    pub deadline_misses: u64,
    /// Protocol messages exchanged to distribute jobs (excludes any one-time
    /// initialisation traffic).
    pub distribution_messages: u64,
}

impl PolicyReport {
    /// Total number of accepted jobs.
    pub fn accepted(&self) -> u64 {
        self.accepted_locally + self.accepted_remotely
    }

    /// Guarantee ratio, or `None` for an empty workload (a 0/0 ratio is
    /// undefined — report formats render it as `null`, not as a fake 1.0).
    pub fn guarantee_ratio(&self) -> Option<f64> {
        if self.submitted == 0 {
            None
        } else {
            Some(self.accepted() as f64 / self.submitted as f64)
        }
    }

    /// Average number of distribution messages per submitted job, or `None`
    /// for an empty workload.
    pub fn messages_per_job(&self) -> Option<f64> {
        if self.submitted == 0 {
            None
        } else {
            Some(self.distribution_messages as f64 / self.submitted as f64)
        }
    }
}

/// A distribution policy: given a network and a workload, decide which jobs
/// run where and report the outcome. Every baseline implements this trait so
/// harnesses can iterate over a uniform `Vec<Box<dyn DistributionPolicy>>`
/// instead of hand-wiring five differently-shaped entry points.
pub trait DistributionPolicy {
    /// Stable policy name used in report rows.
    fn name(&self) -> &'static str;
    /// Runs the policy over the workload and summarises the outcome.
    fn run(&self, network: &Network, jobs: &[Job]) -> PolicyReport;
}

/// [`crate::local_only`] behind the trait.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalOnly {
    /// Whether sites may split tasks across idle windows.
    pub preemptive: bool,
}

impl DistributionPolicy for LocalOnly {
    fn name(&self) -> &'static str {
        "local-only"
    }
    fn run(&self, network: &Network, jobs: &[Job]) -> PolicyReport {
        run_local_only(network, jobs, self.preemptive)
    }
}

/// [`crate::random_offload`] behind the trait.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomOffload {
    /// Forwarding parameters.
    pub config: RandomOffloadConfig,
}

impl DistributionPolicy for RandomOffload {
    fn name(&self) -> &'static str {
        "random-offload"
    }
    fn run(&self, network: &Network, jobs: &[Job]) -> PolicyReport {
        run_random_offload(network, jobs, self.config)
    }
}

/// [`crate::broadcast_bidding`] behind the trait.
#[derive(Debug, Clone, Copy, Default)]
pub struct BroadcastBidding {
    /// Bidding parameters.
    pub config: BiddingConfig,
}

impl DistributionPolicy for BroadcastBidding {
    fn name(&self) -> &'static str {
        "broadcast-bidding"
    }
    fn run(&self, network: &Network, jobs: &[Job]) -> PolicyReport {
        run_broadcast_bidding(network, jobs, self.config)
    }
}

/// [`crate::centralized`] behind the trait.
#[derive(Debug, Clone, Copy, Default)]
pub struct CentralizedOracle {
    /// Whether sites may split tasks across idle windows.
    pub preemptive: bool,
}

impl DistributionPolicy for CentralizedOracle {
    fn name(&self) -> &'static str {
        "centralized-oracle"
    }
    fn run(&self, network: &Network, jobs: &[Job]) -> PolicyReport {
        run_centralized_oracle(network, jobs, self.preemptive)
    }
}

/// [`crate::global_heft`] behind the trait.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalHeft {
    /// Whether sites may split tasks across idle windows.
    pub preemptive: bool,
}

impl DistributionPolicy for GlobalHeft {
    fn name(&self) -> &'static str {
        "global-heft"
    }
    fn run(&self, network: &Network, jobs: &[Job]) -> PolicyReport {
        run_global_heft(network, jobs, self.preemptive)
    }
}

/// All five baselines with their default parameters, in comparison order.
pub fn all_policies() -> Vec<Box<dyn DistributionPolicy>> {
    vec![
        Box::new(LocalOnly::default()),
        Box::new(RandomOffload::default()),
        Box::new(BroadcastBidding::default()),
        Box::new(GlobalHeft::default()),
        Box::new(CentralizedOracle::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtds_graph::{JobId, JobParams, TaskGraph};
    use rtds_net::generators::{ring, DelayDistribution};

    #[test]
    fn ratios() {
        let r = PolicyReport::default();
        assert_eq!(r.guarantee_ratio(), None);
        assert_eq!(r.messages_per_job(), None);
        let r = PolicyReport {
            submitted: 10,
            accepted_locally: 4,
            accepted_remotely: 3,
            rejected: 3,
            deadline_misses: 0,
            distribution_messages: 50,
        };
        assert_eq!(r.accepted(), 7);
        assert!((r.guarantee_ratio().unwrap() - 0.7).abs() < 1e-12);
        assert!((r.messages_per_job().unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn the_trait_covers_all_five_baselines() {
        let policies = all_policies();
        assert_eq!(policies.len(), 5);
        let names: Vec<&str> = policies.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "local-only",
                "random-offload",
                "broadcast-bidding",
                "global-heft",
                "centralized-oracle",
            ]
        );
        // Every policy runs the same tiny workload and accounts for every
        // submitted job.
        let net = ring(4, DelayDistribution::Constant(1.0), 0);
        let jobs = vec![Job::new(
            JobId(1),
            TaskGraph::from_costs(&[3.0]),
            JobParams::new(0.0, 20.0),
            0,
        )];
        for policy in &policies {
            let report = policy.run(&net, &jobs);
            assert_eq!(report.submitted, 1, "{}", policy.name());
            assert_eq!(report.accepted() + report.rejected, 1, "{}", policy.name());
            assert_eq!(report.deadline_misses, 0, "{}", policy.name());
        }
    }

    #[test]
    fn trait_calls_match_the_free_functions() {
        let net = ring(5, DelayDistribution::Constant(1.0), 0);
        let jobs: Vec<Job> = (0..6)
            .map(|i| {
                Job::new(
                    JobId(i),
                    TaskGraph::from_costs(&[25.0]),
                    JobParams::new(i as f64, i as f64 + 30.0),
                    (i % 5) as usize,
                )
            })
            .collect();
        assert_eq!(
            LocalOnly::default().run(&net, &jobs),
            run_local_only(&net, &jobs, false)
        );
        assert_eq!(
            RandomOffload::default().run(&net, &jobs),
            run_random_offload(&net, &jobs, RandomOffloadConfig::default())
        );
        assert_eq!(
            BroadcastBidding::default().run(&net, &jobs),
            run_broadcast_bidding(&net, &jobs, BiddingConfig::default())
        );
        assert_eq!(
            GlobalHeft::default().run(&net, &jobs),
            run_global_heft(&net, &jobs, false)
        );
        assert_eq!(
            CentralizedOracle::default().run(&net, &jobs),
            run_centralized_oracle(&net, &jobs, false)
        );
    }
}
