//! System-level snapshot/restore (`rtds-system-snapshot/1`).
//!
//! The engine snapshot of [`rtds_sim::snapshot`] captures the clock, queue,
//! faults, topology and statistics, but treats protocol node state and wire
//! messages as opaque domain values behind codec closures. This module
//! provides those codecs for the RTDS protocol — every leaf type that
//! appears in an [`crate::node::RtdsNode`] or an [`crate::messages::RtdsMsg`]
//! — plus the document layout of [`crate::system::RtdsSystem::checkpoint`]
//! and the streaming-run checkpoint of
//! [`crate::system::RtdsSystem::run_streaming_checkpoint`].
//!
//! Conventions follow the engine layer: every `f64` is stored as its
//! IEEE-754 bit pattern (restore is exact by construction), arrays are used
//! for fixed-shape records, and decode errors carry the field path that
//! failed. The per-struct `encode_snapshot`/`decode_snapshot` methods live
//! inside their owning modules (`pcs`, `acs`, `validate`, `node`,
//! `streaming`) because they read private fields; this module holds only
//! the shared leaf codecs.

use crate::config::{DemandRule, LaxityDispatch, RtdsConfig};
use crate::messages::{RtdsMsg, TaskSpec};
use crate::node::AcceptedJob;
use rtds_graph::{EdgeData, Job, JobId, JobParams, Task, TaskGraph, TaskId};
use rtds_net::routing::RouteEntry;
use rtds_net::sphere::Sphere;
use rtds_net::SiteId;
use rtds_sched::{
    MemHold, Reservation, SchedulePlan, Scheduler, SchedulerKind, SiteResources, SiteScheduler,
};
use rtds_sim::json::Json;
use rtds_sim::snapshot::{
    as_items, as_str, as_u64, f64_bits, f64_from_bits, get, get_bool, get_f64, get_items, get_u64,
};
use rtds_sim::stats::GuaranteeStats;
use std::sync::Arc;

pub use rtds_sim::snapshot::SnapshotError;

/// Schema tag of the batch-system snapshot format.
pub const SYSTEM_SNAPSHOT_SCHEMA: &str = "rtds-system-snapshot/1";

/// Schema tag of the streaming-run checkpoint format (wraps a system
/// snapshot plus the harvest-loop state).
pub const STREAM_SNAPSHOT_SCHEMA: &str = "rtds-stream-snapshot/1";

/// Schema tag of the per-site scheduler section inside node snapshots
/// (policy kind, resource bundle, per-core plans, memory holds).
pub const SCHED_SNAPSHOT_SCHEMA: &str = "rtds-sched-snapshot/1";

fn err(message: impl Into<String>) -> SnapshotError {
    SnapshotError(message.into())
}

// ----- primitives ----------------------------------------------------------

pub(crate) fn encode_site(s: SiteId) -> Json {
    Json::UInt(s.0 as u64)
}

pub(crate) fn decode_site(j: &Json, what: &str) -> Result<SiteId, SnapshotError> {
    Ok(SiteId(as_u64(j, what)? as usize))
}

pub(crate) fn encode_job_id(j: JobId) -> Json {
    Json::UInt(j.0)
}

pub(crate) fn decode_job_id(j: &Json, what: &str) -> Result<JobId, SnapshotError> {
    Ok(JobId(as_u64(j, what)?))
}

// ----- routing -------------------------------------------------------------

/// One route line as `[destination, distance, next_hop | null, hops]`.
pub(crate) fn encode_route_entry(e: &RouteEntry) -> Json {
    Json::Array(vec![
        encode_site(e.destination),
        f64_bits(e.distance),
        match e.next_hop {
            Some(h) => encode_site(h),
            None => Json::Null,
        },
        Json::UInt(e.hops as u64),
    ])
}

pub(crate) fn decode_route_entry(j: &Json) -> Result<RouteEntry, SnapshotError> {
    let fields = as_items(j, "route entry")?;
    if fields.len() != 4 {
        return Err(err("route entry: expected [dest, dist, next_hop, hops]"));
    }
    Ok(RouteEntry {
        destination: decode_site(&fields[0], "route destination")?,
        distance: f64_from_bits(&fields[1], "route distance")?,
        next_hop: match &fields[2] {
            Json::Null => None,
            other => Some(decode_site(other, "route next hop")?),
        },
        hops: as_u64(&fields[3], "route hops")? as usize,
    })
}

pub(crate) fn encode_route_lines(lines: &[RouteEntry]) -> Json {
    Json::Array(lines.iter().map(encode_route_entry).collect())
}

pub(crate) fn decode_route_lines(j: &Json, what: &str) -> Result<Vec<RouteEntry>, SnapshotError> {
    as_items(j, what)?.iter().map(decode_route_entry).collect()
}

// ----- spheres -------------------------------------------------------------

pub(crate) fn encode_sphere(s: &Sphere) -> Json {
    Json::object(vec![
        ("center", encode_site(s.center)),
        ("radius", Json::UInt(s.radius as u64)),
        (
            "members",
            Json::Array(s.members.iter().map(|&m| encode_site(m)).collect()),
        ),
        (
            "delays",
            Json::Array(s.delays.iter().map(|&d| f64_bits(d)).collect()),
        ),
        ("delay_diameter", f64_bits(s.delay_diameter)),
    ])
}

pub(crate) fn decode_sphere(doc: &Json) -> Result<Sphere, SnapshotError> {
    let members = get_items(doc, "members")?
        .iter()
        .map(|m| decode_site(m, "sphere member"))
        .collect::<Result<Vec<SiteId>, SnapshotError>>()?;
    let delays = get_items(doc, "delays")?
        .iter()
        .map(|d| f64_from_bits(d, "sphere delay"))
        .collect::<Result<Vec<f64>, SnapshotError>>()?;
    if members.len() != delays.len() {
        return Err(err("sphere: members/delays length mismatch"));
    }
    Ok(Sphere::new(
        decode_site(get(doc, "center")?, "sphere center")?,
        get_u64(doc, "radius")? as usize,
        members,
        delays,
        get_f64(doc, "delay_diameter")?,
    ))
}

// ----- task graphs and jobs ------------------------------------------------

/// One adjacency list as `[[task, volume], …]` in insertion order.
fn encode_adjacency(lists: &[Vec<(TaskId, EdgeData)>]) -> Json {
    Json::Array(
        lists
            .iter()
            .map(|list| {
                Json::Array(
                    list.iter()
                        .map(|(t, data)| {
                            Json::Array(vec![Json::UInt(t.0 as u64), f64_bits(data.data_volume)])
                        })
                        .collect(),
                )
            })
            .collect(),
    )
}

fn decode_adjacency(doc: &Json, what: &str) -> Result<Vec<Vec<(TaskId, EdgeData)>>, SnapshotError> {
    as_items(doc, what)?
        .iter()
        .map(|list| {
            as_items(list, what)?
                .iter()
                .map(|entry| {
                    let pair = as_items(entry, what)?;
                    if pair.len() != 2 {
                        return Err(err(format!("{what}: expected [task, volume]")));
                    }
                    Ok((
                        TaskId(as_u64(&pair[0], what)? as usize),
                        EdgeData {
                            data_volume: f64_from_bits(&pair[1], what)?,
                        },
                    ))
                })
                .collect()
        })
        .collect()
}

/// A task graph as `{tasks: [[cost, label | null], …], succs: …, preds: …}`.
/// Both adjacency views are stored verbatim: their per-list insertion
/// orders are semantic (mapper tie-breaking and message fan-out follow
/// them) and interleave differently when the generator added edges out of
/// source-major order, so neither can be re-derived from the other.
pub(crate) fn encode_graph(g: &TaskGraph) -> Json {
    let tasks: Vec<Json> = g
        .tasks()
        .map(|t| {
            Json::Array(vec![
                f64_bits(t.cost),
                match &t.label {
                    Some(l) => Json::str(l),
                    None => Json::Null,
                },
            ])
        })
        .collect();
    let (succs, preds) = g.raw_adjacency();
    Json::object(vec![
        ("tasks", Json::Array(tasks)),
        ("succs", encode_adjacency(succs)),
        ("preds", encode_adjacency(preds)),
    ])
}

pub(crate) fn decode_graph(doc: &Json) -> Result<TaskGraph, SnapshotError> {
    let mut tasks = Vec::new();
    for task in get_items(doc, "tasks")? {
        let fields = as_items(task, "graph task")?;
        if fields.len() != 2 {
            return Err(err("graph task: expected [cost, label]"));
        }
        tasks.push(Task {
            id: TaskId(tasks.len()),
            cost: f64_from_bits(&fields[0], "task cost")?,
            label: match &fields[1] {
                Json::Null => None,
                other => Some(as_str(other, "task label")?.to_string()),
            },
        });
    }
    let succs = decode_adjacency(get(doc, "succs")?, "graph succs")?;
    let preds = decode_adjacency(get(doc, "preds")?, "graph preds")?;
    if succs.len() != tasks.len() || preds.len() != tasks.len() {
        return Err(err("graph adjacency length does not match task count"));
    }
    Ok(TaskGraph::from_raw_parts(tasks, succs, preds))
}

pub(crate) fn encode_job(job: &Job) -> Json {
    Json::object(vec![
        ("id", encode_job_id(job.id)),
        ("graph", encode_graph(&job.graph)),
        ("release", f64_bits(job.params.release)),
        ("deadline", f64_bits(job.params.deadline)),
        ("site", Json::UInt(job.arrival_site as u64)),
        ("arrival", f64_bits(job.arrival_time)),
    ])
}

pub(crate) fn decode_job(doc: &Json) -> Result<Job, SnapshotError> {
    Ok(Job {
        id: decode_job_id(get(doc, "id")?, "job id")?,
        graph: decode_graph(get(doc, "graph")?)?,
        params: JobParams {
            release: get_f64(doc, "release")?,
            deadline: get_f64(doc, "deadline")?,
        },
        arrival_site: get_u64(doc, "site")? as usize,
        arrival_time: get_f64(doc, "arrival")?,
    })
}

// ----- task specs ----------------------------------------------------------

/// A task spec as `[task, release, deadline, cost]`.
pub(crate) fn encode_task_spec(s: &TaskSpec) -> Json {
    Json::Array(vec![
        Json::UInt(s.task.0 as u64),
        f64_bits(s.release),
        f64_bits(s.deadline),
        f64_bits(s.cost),
    ])
}

pub(crate) fn decode_task_spec(j: &Json) -> Result<TaskSpec, SnapshotError> {
    let fields = as_items(j, "task spec")?;
    if fields.len() != 4 {
        return Err(err("task spec: expected [task, release, deadline, cost]"));
    }
    Ok(TaskSpec {
        task: TaskId(as_u64(&fields[0], "spec task")? as usize),
        release: f64_from_bits(&fields[1], "spec release")?,
        deadline: f64_from_bits(&fields[2], "spec deadline")?,
        cost: f64_from_bits(&fields[3], "spec cost")?,
    })
}

pub(crate) fn encode_tasks_per_logical(tpl: &[Vec<TaskSpec>]) -> Json {
    Json::Array(
        tpl.iter()
            .map(|specs| Json::Array(specs.iter().map(encode_task_spec).collect()))
            .collect(),
    )
}

pub(crate) fn decode_tasks_per_logical(
    j: &Json,
    what: &str,
) -> Result<Arc<[Vec<TaskSpec>]>, SnapshotError> {
    as_items(j, what)?
        .iter()
        .map(|specs| {
            as_items(specs, "logical task set")?
                .iter()
                .map(decode_task_spec)
                .collect::<Result<Vec<TaskSpec>, SnapshotError>>()
        })
        .collect::<Result<Vec<Vec<TaskSpec>>, SnapshotError>>()
        .map(Arc::from)
}

// ----- wire messages -------------------------------------------------------

/// An [`RtdsMsg`] as a `{"k": kind, …}` object. Kinds are two-letter codes
/// so queued-event payloads stay compact in million-event snapshots.
pub(crate) fn encode_msg(msg: &RtdsMsg) -> Json {
    match msg {
        RtdsMsg::RoutingUpdate { phase, lines } => Json::object(vec![
            ("k", Json::str("ru")),
            ("phase", Json::UInt(*phase as u64)),
            ("lines", encode_route_lines(lines)),
        ]),
        RtdsMsg::JobArrival { job } => {
            Json::object(vec![("k", Json::str("ja")), ("job", encode_job(job))])
        }
        RtdsMsg::Enroll { initiator, job } => Json::object(vec![
            ("k", Json::str("en")),
            ("initiator", encode_site(*initiator)),
            ("job", encode_job_id(*job)),
        ]),
        RtdsMsg::EnrollAck {
            job,
            surplus,
            speed,
        } => Json::object(vec![
            ("k", Json::str("ea")),
            ("job", encode_job_id(*job)),
            ("surplus", f64_bits(*surplus)),
            ("speed", f64_bits(*speed)),
        ]),
        RtdsMsg::EnrollBusy { job } => {
            Json::object(vec![("k", Json::str("eb")), ("job", encode_job_id(*job))])
        }
        RtdsMsg::TrialMapping {
            job,
            tasks_per_logical,
        } => Json::object(vec![
            ("k", Json::str("tm")),
            ("job", encode_job_id(*job)),
            ("tpl", encode_tasks_per_logical(tasks_per_logical)),
        ]),
        RtdsMsg::ValidationReply { job, endorsable } => Json::object(vec![
            ("k", Json::str("vr")),
            ("job", encode_job_id(*job)),
            (
                "endorsable",
                Json::Array(endorsable.iter().map(|&i| Json::UInt(i as u64)).collect()),
            ),
        ]),
        RtdsMsg::Permutation {
            job,
            logical,
            tasks,
        } => Json::object(vec![
            ("k", Json::str("pm")),
            ("job", encode_job_id(*job)),
            (
                "logical",
                match logical {
                    Some(l) => Json::UInt(*l as u64),
                    None => Json::Null,
                },
            ),
            (
                "tasks",
                Json::Array(tasks.iter().map(encode_task_spec).collect()),
            ),
        ]),
        RtdsMsg::Unlock { job } => {
            Json::object(vec![("k", Json::str("ul")), ("job", encode_job_id(*job))])
        }
        RtdsMsg::TaskData { job, volume } => Json::object(vec![
            ("k", Json::str("td")),
            ("job", encode_job_id(*job)),
            ("vol", f64_bits(*volume)),
        ]),
    }
}

/// Inverse of [`encode_msg`].
pub(crate) fn decode_msg(doc: &Json) -> Result<RtdsMsg, SnapshotError> {
    let job = |key: &str| -> Result<JobId, SnapshotError> {
        decode_job_id(get(doc, key)?, "message job id")
    };
    match as_str(get(doc, "k")?, "message kind")? {
        "ru" => Ok(RtdsMsg::RoutingUpdate {
            phase: get_u64(doc, "phase")? as usize,
            lines: decode_route_lines(get(doc, "lines")?, "routing lines")?.into(),
        }),
        "ja" => Ok(RtdsMsg::JobArrival {
            job: decode_job(get(doc, "job")?)?,
        }),
        "en" => Ok(RtdsMsg::Enroll {
            initiator: decode_site(get(doc, "initiator")?, "enroll initiator")?,
            job: job("job")?,
        }),
        "ea" => Ok(RtdsMsg::EnrollAck {
            job: job("job")?,
            surplus: get_f64(doc, "surplus")?,
            speed: get_f64(doc, "speed")?,
        }),
        "eb" => Ok(RtdsMsg::EnrollBusy { job: job("job")? }),
        "tm" => Ok(RtdsMsg::TrialMapping {
            job: job("job")?,
            tasks_per_logical: decode_tasks_per_logical(get(doc, "tpl")?, "tpl")?,
        }),
        "vr" => Ok(RtdsMsg::ValidationReply {
            job: job("job")?,
            endorsable: get_items(doc, "endorsable")?
                .iter()
                .map(|i| Ok(as_u64(i, "endorsable index")? as usize))
                .collect::<Result<Vec<usize>, SnapshotError>>()?,
        }),
        "pm" => Ok(RtdsMsg::Permutation {
            job: job("job")?,
            logical: match get(doc, "logical")? {
                Json::Null => None,
                other => Some(as_u64(other, "permutation logical")? as usize),
            },
            tasks: get_items(doc, "tasks")?
                .iter()
                .map(decode_task_spec)
                .collect::<Result<Vec<TaskSpec>, SnapshotError>>()?,
        }),
        "ul" => Ok(RtdsMsg::Unlock { job: job("job")? }),
        "td" => Ok(RtdsMsg::TaskData {
            job: job("job")?,
            volume: f64_from_bits(get(doc, "vol")?, "task data volume")?,
        }),
        other => Err(err(format!("unknown message kind {other:?}"))),
    }
}

// ----- configuration -------------------------------------------------------

pub(crate) fn encode_config(c: &RtdsConfig) -> Json {
    Json::object(vec![
        ("sphere_radius", Json::UInt(c.sphere_radius as u64)),
        ("observation_window", f64_bits(c.observation_window)),
        ("max_acs_size", Json::UInt(c.max_acs_size as u64)),
        ("preemptive", Json::Bool(c.preemptive)),
        ("uniform_machines", Json::Bool(c.uniform_machines)),
        (
            "laxity_dispatch",
            Json::str(match c.laxity_dispatch {
                LaxityDispatch::Uniform => "uniform",
                LaxityDispatch::BusynessWeighted => "busyness",
            }),
        ),
        ("data_volume_aware", Json::Bool(c.data_volume_aware)),
        ("throughput", f64_bits(c.throughput)),
        ("surplus_floor", f64_bits(c.surplus_floor)),
        ("exact_acs_diameter", Json::Bool(c.exact_acs_diameter)),
        ("flow_transfers", Json::Bool(c.flow_transfers)),
        ("scheduler", Json::str(c.scheduler.name())),
        (
            "demand",
            match c.demand {
                DemandRule::SingleCore => Json::Null,
                DemandRule::WideTasks {
                    cores,
                    parallel_fraction,
                    memory,
                } => Json::Array(vec![
                    Json::UInt(cores as u64),
                    f64_bits(parallel_fraction),
                    f64_bits(memory),
                ]),
            },
        ),
    ])
}

pub(crate) fn decode_config(doc: &Json) -> Result<RtdsConfig, SnapshotError> {
    Ok(RtdsConfig {
        sphere_radius: get_u64(doc, "sphere_radius")? as usize,
        observation_window: get_f64(doc, "observation_window")?,
        max_acs_size: get_u64(doc, "max_acs_size")? as usize,
        preemptive: get_bool(doc, "preemptive")?,
        uniform_machines: get_bool(doc, "uniform_machines")?,
        laxity_dispatch: match as_str(get(doc, "laxity_dispatch")?, "laxity_dispatch")? {
            "uniform" => LaxityDispatch::Uniform,
            "busyness" => LaxityDispatch::BusynessWeighted,
            other => return Err(err(format!("unknown laxity dispatch {other:?}"))),
        },
        data_volume_aware: get_bool(doc, "data_volume_aware")?,
        throughput: get_f64(doc, "throughput")?,
        surplus_floor: get_f64(doc, "surplus_floor")?,
        exact_acs_diameter: get_bool(doc, "exact_acs_diameter")?,
        // Absent in snapshots taken before the flow plane existed: those
        // runs could not have transfers in flight, so `false` is exact.
        flow_transfers: if get(doc, "flow_transfers").is_ok() {
            get_bool(doc, "flow_transfers")?
        } else {
            false
        },
        // Absent in snapshots taken before the multicore model: those runs
        // used the protocol scheduler with single-core demands.
        scheduler: if let Ok(j) = get(doc, "scheduler") {
            let name = as_str(j, "scheduler")?;
            SchedulerKind::parse(name)
                .ok_or_else(|| err(format!("unknown scheduler kind {name:?}")))?
        } else {
            SchedulerKind::Protocol
        },
        demand: match get(doc, "demand") {
            Ok(Json::Null) | Err(_) => DemandRule::SingleCore,
            Ok(j) => {
                let fields = as_items(j, "demand")?;
                if fields.len() != 3 {
                    return Err(err("demand: expected [cores, parallel_fraction, memory]"));
                }
                DemandRule::WideTasks {
                    cores: as_u64(&fields[0], "demand cores")? as usize,
                    parallel_fraction: f64_from_bits(&fields[1], "demand parallel_fraction")?,
                    memory: f64_from_bits(&fields[2], "demand memory")?,
                }
            }
        },
    })
}

// ----- guarantee counters --------------------------------------------------

pub(crate) fn encode_guarantee(g: &GuaranteeStats) -> Json {
    Json::Array(vec![
        Json::UInt(g.submitted),
        Json::UInt(g.accepted_locally),
        Json::UInt(g.accepted_distributed),
        Json::UInt(g.rejected),
        Json::UInt(g.completed_on_time),
        Json::UInt(g.deadline_misses),
    ])
}

pub(crate) fn decode_guarantee(j: &Json) -> Result<GuaranteeStats, SnapshotError> {
    let fields = as_items(j, "guarantee counters")?;
    if fields.len() != 6 {
        return Err(err("guarantee counters: expected 6 entries"));
    }
    let n = |i: usize| as_u64(&fields[i], "guarantee counter");
    Ok(GuaranteeStats {
        submitted: n(0)?,
        accepted_locally: n(1)?,
        accepted_distributed: n(2)?,
        rejected: n(3)?,
        completed_on_time: n(4)?,
        deadline_misses: n(5)?,
    })
}

// ----- schedule plans ------------------------------------------------------

/// A plan as the sorted reservation list `[[job, task, start, end], …]`.
pub(crate) fn encode_plan(plan: &SchedulePlan) -> Json {
    Json::Array(
        plan.reservations()
            .iter()
            .map(|r| {
                Json::Array(vec![
                    encode_job_id(r.job),
                    Json::UInt(r.task.0 as u64),
                    f64_bits(r.start),
                    f64_bits(r.end),
                ])
            })
            .collect(),
    )
}

pub(crate) fn decode_plan(j: &Json, what: &str) -> Result<SchedulePlan, SnapshotError> {
    let reservations = as_items(j, what)?
        .iter()
        .map(|r| {
            let fields = as_items(r, "reservation")?;
            if fields.len() != 4 {
                return Err(err("reservation: expected [job, task, start, end]"));
            }
            Ok(Reservation {
                job: decode_job_id(&fields[0], "reservation job")?,
                task: TaskId(as_u64(&fields[1], "reservation task")? as usize),
                start: f64_from_bits(&fields[2], "reservation start")?,
                end: f64_from_bits(&fields[3], "reservation end")?,
            })
        })
        .collect::<Result<Vec<Reservation>, SnapshotError>>()?;
    Ok(SchedulePlan::from_reservations(reservations))
}

// ----- site scheduler (`rtds-sched-snapshot/1`) ----------------------------

/// The full per-site scheduler state: policy kind, resource bundle, base
/// speed, per-core plans and committed memory holds.
pub(crate) fn encode_sched(s: &SiteScheduler) -> Json {
    let (base_speed, preemptive, holds) = s.snapshot_parts();
    let resources = s.resources();
    Json::object(vec![
        ("schema", Json::str(SCHED_SNAPSHOT_SCHEMA)),
        ("kind", Json::str(s.kind().name())),
        ("cores", Json::UInt(resources.cores as u64)),
        ("speed", f64_bits(resources.speed)),
        ("memory", f64_bits(resources.memory)),
        ("base_speed", f64_bits(base_speed)),
        ("preemptive", Json::Bool(preemptive)),
        (
            "plans",
            Json::Array(s.core_plans().iter().map(encode_plan).collect()),
        ),
        (
            "holds",
            Json::Array(
                holds
                    .iter()
                    .map(|h| {
                        Json::Array(vec![
                            encode_job_id(h.job),
                            f64_bits(h.start),
                            f64_bits(h.end),
                            f64_bits(h.bytes),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

pub(crate) fn decode_sched(doc: &Json) -> Result<SiteScheduler, SnapshotError> {
    let schema = as_str(get(doc, "schema")?, "sched schema")?;
    if schema != SCHED_SNAPSHOT_SCHEMA {
        return Err(err(format!(
            "unsupported scheduler snapshot schema {schema:?} (expected {SCHED_SNAPSHOT_SCHEMA:?})"
        )));
    }
    let kind_name = as_str(get(doc, "kind")?, "sched kind")?;
    let kind = SchedulerKind::parse(kind_name)
        .ok_or_else(|| err(format!("unknown scheduler kind {kind_name:?}")))?;
    let resources = SiteResources {
        cores: get_u64(doc, "cores")? as usize,
        speed: get_f64(doc, "speed")?,
        memory: get_f64(doc, "memory")?,
    };
    let plans = get_items(doc, "plans")?
        .iter()
        .map(|p| decode_plan(p, "core plan"))
        .collect::<Result<Vec<SchedulePlan>, SnapshotError>>()?;
    if plans.len() != resources.cores {
        return Err(err(format!(
            "scheduler snapshot has {} plans for {} cores",
            plans.len(),
            resources.cores
        )));
    }
    let holds = get_items(doc, "holds")?
        .iter()
        .map(|h| {
            let fields = as_items(h, "memory hold")?;
            if fields.len() != 4 {
                return Err(err("memory hold: expected [job, start, end, bytes]"));
            }
            Ok(MemHold {
                job: decode_job_id(&fields[0], "hold job")?,
                start: f64_from_bits(&fields[1], "hold start")?,
                end: f64_from_bits(&fields[2], "hold end")?,
                bytes: f64_from_bits(&fields[3], "hold bytes")?,
            })
        })
        .collect::<Result<Vec<MemHold>, SnapshotError>>()?;
    Ok(SiteScheduler::from_parts(
        kind,
        resources,
        get_f64(doc, "base_speed")?,
        get_bool(doc, "preemptive")?,
        plans,
        holds,
    ))
}

// ----- accepted jobs -------------------------------------------------------

pub(crate) fn encode_accepted(a: &AcceptedJob) -> Json {
    Json::Array(vec![
        encode_job_id(a.job),
        f64_bits(a.deadline),
        Json::Bool(a.distributed),
    ])
}

pub(crate) fn decode_accepted(j: &Json) -> Result<AcceptedJob, SnapshotError> {
    let fields = as_items(j, "accepted job")?;
    if fields.len() != 3 {
        return Err(err("accepted job: expected [job, deadline, distributed]"));
    }
    Ok(AcceptedJob {
        job: decode_job_id(&fields[0], "accepted job id")?,
        deadline: f64_from_bits(&fields[1], "accepted deadline")?,
        distributed: match &fields[2] {
            Json::Bool(b) => *b,
            _ => return Err(err("accepted distributed: expected bool")),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtds_graph::generators::{DagGenerator, GeneratorConfig};

    fn round_trip_msg(msg: RtdsMsg) {
        let doc = encode_msg(&msg);
        let text = doc.render();
        let parsed = Json::parse(&text).expect("message doc parses");
        let back = decode_msg(&parsed).expect("message decodes");
        assert_eq!(back, msg);
    }

    #[test]
    fn every_message_variant_round_trips() {
        let spec = TaskSpec {
            task: TaskId(2),
            release: 1.5,
            deadline: 9.25,
            cost: 3.0,
        };
        let lines = vec![
            RouteEntry {
                destination: SiteId(0),
                distance: 0.0,
                next_hop: None,
                hops: 0,
            },
            RouteEntry {
                destination: SiteId(3),
                distance: 2.75,
                next_hop: Some(SiteId(1)),
                hops: 2,
            },
        ];
        let mut generator = DagGenerator::new(GeneratorConfig::default(), 5);
        let job = generator.generate_job(1, 4.0);
        round_trip_msg(RtdsMsg::RoutingUpdate {
            phase: 3,
            lines: lines.into(),
        });
        round_trip_msg(RtdsMsg::JobArrival { job });
        round_trip_msg(RtdsMsg::Enroll {
            initiator: SiteId(4),
            job: JobId(9),
        });
        round_trip_msg(RtdsMsg::EnrollAck {
            job: JobId(9),
            surplus: 0.5,
            speed: 1.25,
        });
        round_trip_msg(RtdsMsg::EnrollBusy { job: JobId(9) });
        round_trip_msg(RtdsMsg::TrialMapping {
            job: JobId(9),
            tasks_per_logical: vec![vec![spec], vec![]].into(),
        });
        round_trip_msg(RtdsMsg::ValidationReply {
            job: JobId(9),
            endorsable: vec![0, 2],
        });
        round_trip_msg(RtdsMsg::Permutation {
            job: JobId(9),
            logical: Some(1),
            tasks: vec![spec],
        });
        round_trip_msg(RtdsMsg::Permutation {
            job: JobId(9),
            logical: None,
            tasks: vec![],
        });
        round_trip_msg(RtdsMsg::Unlock { job: JobId(9) });
        round_trip_msg(RtdsMsg::TaskData {
            job: JobId(9),
            volume: 12.5,
        });
    }

    #[test]
    fn graph_round_trip_preserves_labels_volumes_and_edge_order() {
        let mut g = TaskGraph::new();
        let a = g.add_labelled_task(2.0, "src");
        let b = g.add_task(3.5);
        let c = g.add_labelled_task(1.0, "sink");
        g.add_edge_with_volume(a, c, 7.5).unwrap();
        g.add_edge_with_volume(a, b, 0.0).unwrap();
        g.add_edge_with_volume(b, c, 2.25).unwrap();
        let back = decode_graph(&encode_graph(&g)).expect("graph decodes");
        assert_eq!(back, g);
        // Successor-list order is insertion order, preserved verbatim.
        let succ: Vec<TaskId> = back.successors(a).collect();
        assert_eq!(succ, vec![c, b]);
        assert_eq!(back.data_volume(a, c), Some(7.5));
        assert_eq!(back.task(a).label.as_deref(), Some("src"));
        assert_eq!(back.task(b).label, None);
    }

    #[test]
    fn config_round_trip_both_dispatch_modes() {
        for dispatch in [LaxityDispatch::Uniform, LaxityDispatch::BusynessWeighted] {
            let config = RtdsConfig {
                laxity_dispatch: dispatch,
                preemptive: true,
                throughput: 3.5,
                ..RtdsConfig::default()
            };
            let back = decode_config(&encode_config(&config)).expect("config decodes");
            assert_eq!(back, config);
        }
        let config = RtdsConfig {
            data_volume_aware: true,
            flow_transfers: true,
            ..RtdsConfig::default()
        };
        let back = decode_config(&encode_config(&config)).expect("config decodes");
        assert_eq!(back, config);
    }

    #[test]
    fn pre_flow_configs_decode_with_flow_transfers_off() {
        // Snapshots taken before the flow plane existed have no
        // `flow_transfers` key; they decode to the exact pre-flow behavior.
        let mut doc = encode_config(&RtdsConfig::default());
        if let Json::Object(fields) = &mut doc {
            fields.retain(|(k, _)| *k != "flow_transfers");
        }
        let text = doc.render();
        let parsed = Json::parse(&text).expect("legacy config parses");
        let back = decode_config(&parsed).expect("legacy config decodes");
        assert!(!back.flow_transfers);
        assert_eq!(back, RtdsConfig::default());
    }

    #[test]
    fn sphere_and_plan_round_trip() {
        let sphere = Sphere::new(
            SiteId(2),
            2,
            vec![SiteId(1), SiteId(2), SiteId(4)],
            vec![1.5, 0.0, 2.5],
            4.0,
        );
        let back = decode_sphere(&encode_sphere(&sphere)).expect("sphere decodes");
        assert_eq!(back, sphere);

        let mut plan = SchedulePlan::new();
        plan.insert(Reservation {
            job: JobId(1),
            task: TaskId(0),
            start: 1.0,
            end: 3.0,
        })
        .unwrap();
        plan.insert(Reservation {
            job: JobId(2),
            task: TaskId(1),
            start: 4.0,
            end: 6.5,
        })
        .unwrap();
        let back = decode_plan(&encode_plan(&plan), "plan").expect("plan decodes");
        assert_eq!(back.reservations(), plan.reservations());
    }

    #[test]
    fn config_round_trip_scheduler_and_demand() {
        let config = RtdsConfig {
            scheduler: SchedulerKind::Heft,
            demand: DemandRule::WideTasks {
                cores: 3,
                parallel_fraction: 0.75,
                memory: 8.0,
            },
            ..RtdsConfig::default()
        };
        let back = decode_config(&encode_config(&config)).expect("config decodes");
        assert_eq!(back, config);
    }

    #[test]
    fn pre_multicore_configs_decode_with_protocol_scheduler() {
        // Snapshots taken before the multicore model have neither key; they
        // decode to the exact pre-multicore behavior.
        let mut doc = encode_config(&RtdsConfig::default());
        if let Json::Object(fields) = &mut doc {
            fields.retain(|(k, _)| *k != "scheduler" && *k != "demand");
        }
        let text = doc.render();
        let parsed = Json::parse(&text).expect("legacy config parses");
        let back = decode_config(&parsed).expect("legacy config decodes");
        assert_eq!(back.scheduler, SchedulerKind::Protocol);
        assert_eq!(back.demand, DemandRule::SingleCore);
        assert_eq!(back, RtdsConfig::default());
    }

    #[test]
    fn sched_section_round_trips_through_text() {
        use rtds_sched::Placement;
        let mut sched = SiteScheduler::new(
            SchedulerKind::Lookahead,
            SiteResources {
                cores: 2,
                speed: 1.5,
                memory: 32.0,
            },
            2.0,
            true,
        );
        sched
            .reserve(&[
                Placement {
                    core: 0,
                    reservation: Reservation {
                        job: JobId(1),
                        task: TaskId(0),
                        start: 0.5,
                        end: 2.5,
                    },
                },
                Placement {
                    core: 1,
                    reservation: Reservation {
                        job: JobId(1),
                        task: TaskId(1),
                        start: 1.0,
                        end: 4.0,
                    },
                },
            ])
            .unwrap();
        sched
            .reserve_dag(&rtds_sched::DagSchedule {
                placements: Vec::new(),
                holds: vec![MemHold {
                    job: JobId(1),
                    start: 0.5,
                    end: 4.0,
                    bytes: 16.0,
                }],
                completion: 4.0,
            })
            .unwrap();
        let doc = encode_sched(&sched);
        let text = doc.render();
        assert!(text.contains(SCHED_SNAPSHOT_SCHEMA));
        let parsed = Json::parse(&text).expect("sched section parses");
        let back = decode_sched(&parsed).expect("sched section decodes");
        assert_eq!(back, sched);
        // Infinite memory (the default bundle) survives the bit-pattern trip.
        let default = SiteScheduler::new(
            SchedulerKind::Protocol,
            SiteResources::default(),
            1.0,
            false,
        );
        let back = decode_sched(&Json::parse(&encode_sched(&default).render()).unwrap())
            .expect("default sched decodes");
        assert_eq!(back, default);
        assert!(back.resources().memory.is_infinite());
    }
}
