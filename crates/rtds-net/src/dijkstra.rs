//! Reference shortest-path computations.
//!
//! The distributed algorithm of §7 is validated against a plain centralized
//! Dijkstra: within the hop budget of the interrupted Bellman–Ford, both must
//! agree on minimum delays. Dijkstra is also used by the centralized-oracle
//! baseline and by analysis utilities (network delay diameter, ACS diameter
//! cross-checks).

use crate::topology::{Network, SiteId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a single-source shortest-path computation.
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPaths {
    /// Source site.
    pub source: SiteId,
    /// `dist[i]` is the minimum delay from the source to site `i`
    /// (`f64::INFINITY` if unreachable).
    pub dist: Vec<f64>,
    /// `parent[i]` is the predecessor of `i` on a shortest path, if any.
    pub parent: Vec<Option<SiteId>>,
    /// `hops[i]` is the number of links of the *delay-minimal* path found
    /// (ties broken towards fewer hops).
    pub hops: Vec<usize>,
}

impl ShortestPaths {
    /// Reconstructs the shortest path from the source to `target`
    /// (inclusive of both endpoints); `None` if unreachable.
    pub fn path_to(&self, target: SiteId) -> Option<Vec<SiteId>> {
        if self.dist[target.0].is_infinite() {
            return None;
        }
        let mut path = vec![target];
        let mut cur = target;
        while let Some(p) = self.parent[cur.0] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// The first hop taken from the source towards `target`, if any.
    pub fn next_hop_to(&self, target: SiteId) -> Option<SiteId> {
        let path = self.path_to(target)?;
        path.get(1).copied()
    }

    /// Maximum finite distance (the source's delay eccentricity).
    pub fn eccentricity(&self) -> f64 {
        self.dist
            .iter()
            .copied()
            .filter(|d| d.is_finite())
            .fold(0.0, f64::max)
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    hops: usize,
    site: SiteId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (dist, hops, site): invert the comparison.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then(other.hops.cmp(&self.hops))
            .then(other.site.0.cmp(&self.site.0))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra from a single source, breaking delay ties towards fewer hops
/// (this matches the paper's Computing-Sphere preference for "close" sites in
/// terms of both hops and delay).
pub fn shortest_paths(net: &Network, source: SiteId) -> ShortestPaths {
    let n = net.site_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut hops = vec![usize::MAX; n];
    let mut parent = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source.0] = 0.0;
    hops[source.0] = 0;
    heap.push(HeapEntry {
        dist: 0.0,
        hops: 0,
        site: source,
    });
    while let Some(HeapEntry {
        dist: d,
        hops: h,
        site: u,
    }) = heap.pop()
    {
        if done[u.0] {
            continue;
        }
        done[u.0] = true;
        for &(v, w) in net.neighbors(u) {
            let nd = d + w;
            let nh = h + 1;
            let better =
                nd < dist[v.0] - 1e-12 || ((nd - dist[v.0]).abs() <= 1e-12 && nh < hops[v.0]);
            if better {
                dist[v.0] = nd;
                hops[v.0] = nh;
                parent[v.0] = Some(u);
                heap.push(HeapEntry {
                    dist: nd,
                    hops: nh,
                    site: v,
                });
            }
        }
    }
    // Normalise unreachable hop counts.
    for i in 0..n {
        if dist[i].is_infinite() {
            hops[i] = usize::MAX;
        }
    }
    ShortestPaths {
        source,
        dist,
        parent,
        hops,
    }
}

/// All-pairs shortest paths (one Dijkstra per site).
pub fn all_pairs_shortest_paths(net: &Network) -> Vec<ShortestPaths> {
    net.sites().map(|s| shortest_paths(net, s)).collect()
}

/// Delay diameter of the network (max over pairs of min delay); `None` if the
/// network is empty or disconnected.
pub fn delay_diameter(net: &Network) -> Option<f64> {
    if net.site_count() == 0 {
        return None;
    }
    let mut max = 0.0f64;
    for s in net.sites() {
        let sp = shortest_paths(net, s);
        for d in &sp.dist {
            if d.is_infinite() {
                return None;
            }
            max = max.max(*d);
        }
    }
    Some(max)
}

/// Minimum delay achievable between two sites using paths of at most
/// `max_hops` links (brute-force dynamic program; used to validate the
/// interrupted Bellman–Ford, which has exactly this semantics).
pub fn hop_limited_distance(net: &Network, source: SiteId, max_hops: usize) -> Vec<f64> {
    let n = net.site_count();
    let mut dist = vec![f64::INFINITY; n];
    dist[source.0] = 0.0;
    let mut current = dist.clone();
    for _ in 0..max_hops {
        let mut next = current.clone();
        for u in net.sites() {
            if current[u.0].is_finite() {
                for &(v, w) in net.neighbors(u) {
                    let nd = current[u.0] + w;
                    if nd < next[v.0] {
                        next[v.0] = nd;
                    }
                }
            }
        }
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid, line, DelayDistribution};

    fn triangle_no_triangle_inequality() -> Network {
        // Direct link 0--2 costs 5 but the two-hop path 0-1-2 costs 3, so the
        // triangle inequality is violated (as the paper explicitly allows).
        let mut n = Network::new(3);
        n.add_link(SiteId(0), SiteId(1), 1.0).unwrap();
        n.add_link(SiteId(1), SiteId(2), 2.0).unwrap();
        n.add_link(SiteId(0), SiteId(2), 5.0).unwrap();
        n
    }

    #[test]
    fn shortest_paths_prefer_multi_hop_when_cheaper() {
        let net = triangle_no_triangle_inequality();
        let sp = shortest_paths(&net, SiteId(0));
        assert_eq!(sp.dist, vec![0.0, 1.0, 3.0]);
        assert_eq!(sp.hops, vec![0, 1, 2]);
        assert_eq!(
            sp.path_to(SiteId(2)),
            Some(vec![SiteId(0), SiteId(1), SiteId(2)])
        );
        assert_eq!(sp.next_hop_to(SiteId(2)), Some(SiteId(1)));
        assert_eq!(sp.next_hop_to(SiteId(0)), None);
        assert_eq!(sp.eccentricity(), 3.0);
    }

    #[test]
    fn unreachable_sites() {
        let mut net = Network::new(3);
        net.add_link(SiteId(0), SiteId(1), 1.0).unwrap();
        let sp = shortest_paths(&net, SiteId(0));
        assert!(sp.dist[2].is_infinite());
        assert_eq!(sp.hops[2], usize::MAX);
        assert_eq!(sp.path_to(SiteId(2)), None);
        assert_eq!(delay_diameter(&net), None);
    }

    #[test]
    fn diameter_of_line() {
        let net = line(5, DelayDistribution::Constant(2.0), 0);
        assert_eq!(delay_diameter(&net), Some(8.0));
        let aps = all_pairs_shortest_paths(&net);
        assert_eq!(aps.len(), 5);
        assert_eq!(aps[0].dist[4], 8.0);
        assert_eq!(aps[4].dist[0], 8.0);
    }

    #[test]
    fn tie_breaking_prefers_fewer_hops() {
        // Two equal-delay routes from 0 to 3: direct (1 hop, delay 4) and via
        // 1 and 2 (3 hops, delay 4). Dijkstra must report the 1-hop route.
        let mut net = Network::new(4);
        net.add_link(SiteId(0), SiteId(3), 4.0).unwrap();
        net.add_link(SiteId(0), SiteId(1), 1.0).unwrap();
        net.add_link(SiteId(1), SiteId(2), 1.0).unwrap();
        net.add_link(SiteId(2), SiteId(3), 2.0).unwrap();
        let sp = shortest_paths(&net, SiteId(0));
        assert_eq!(sp.dist[3], 4.0);
        assert_eq!(sp.hops[3], 1);
        assert_eq!(sp.path_to(SiteId(3)), Some(vec![SiteId(0), SiteId(3)]));
    }

    #[test]
    fn hop_limited_distances() {
        let net = triangle_no_triangle_inequality();
        let d1 = hop_limited_distance(&net, SiteId(0), 1);
        assert_eq!(d1, vec![0.0, 1.0, 5.0]);
        let d2 = hop_limited_distance(&net, SiteId(0), 2);
        assert_eq!(d2, vec![0.0, 1.0, 3.0]);
        let d0 = hop_limited_distance(&net, SiteId(0), 0);
        assert_eq!(d0[1], f64::INFINITY);
    }

    #[test]
    fn grid_distances_match_manhattan() {
        let net = grid(4, 4, false, DelayDistribution::Constant(1.0), 0);
        let sp = shortest_paths(&net, SiteId(0));
        // Site (3, 3) has index 15 and Manhattan distance 6.
        assert_eq!(sp.dist[15], 6.0);
        assert_eq!(sp.hops[15], 6);
    }
}
