//! Simulation events and the event queue.
//!
//! The queue is a binary heap keyed by the explicit total order
//! `(time, class, sequence)`:
//!
//! * `time` — simulated firing time;
//! * `class` — [`EventPayload::class_rank`]: fault/perturbation events rank
//!   before everything else at the same timestamp, so a link that fails at
//!   time `t` already affects every message delivered at `t`; external
//!   arrivals rank next, before deliveries and timers, so the position of a
//!   same-time arrival does not depend on *when* it was scheduled — a
//!   pre-materialized workload (all arrivals injected before the run, with
//!   the lowest sequence numbers) and a streaming workload (arrivals pulled
//!   from an [`crate::engine::ArrivalSource`] mid-run) produce the identical
//!   event order, which the record/replay equivalence of the workload layer
//!   relies on;
//! * `sequence` — assigned at scheduling time and strictly increasing.
//!
//! This order gives two guarantees the paper relies on:
//!
//! * determinism — ties in simulated time are broken by the explicit class
//!   rank and then by scheduling order, so a run is a pure function of its
//!   inputs;
//! * per-link FIFO — while a link's delay is constant, two messages sent
//!   over it experience the same propagation delay, hence the earlier-sent
//!   one is delivered first (order-preserving links, §2). A latency-jitter
//!   fault ([`FaultEvent::SetLinkDelay`]) deliberately breaks this for
//!   messages straddling the change: a message sent after a delay *drop*
//!   can overtake one still in flight — exactly the reordering a dynamic
//!   network inflicts, and part of what jitter scenarios test. Unperturbed
//!   runs keep the full FIFO guarantee.

use crate::faults::FaultEvent;
use rtds_net::SiteId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq)]
pub enum EventPayload<M> {
    /// A message from `from` is delivered to the target site.
    Deliver { from: SiteId, message: M },
    /// A timer previously set by the target site fires.
    Timer { timer_id: u64 },
    /// An external stimulus injected by the experiment driver (for example a
    /// job arrival). Delivered like a message from the site to itself.
    External { message: M },
    /// A perturbation applied by the engine itself (never dispatched to a
    /// protocol handler). The target site is ignored.
    Fault { fault: FaultEvent },
    /// A data transfer initiated by [`crate::engine::Context::transfer`]
    /// begins occupying bandwidth toward the target site. Fires after the
    /// path's propagation delay; the engine then registers a flow in the
    /// shared-bandwidth model and schedules its completion.
    FlowStart {
        /// The site that initiated the transfer.
        from: SiteId,
        /// Data volume to move across the path.
        volume: f64,
        /// Message delivered to the target when the transfer completes.
        message: M,
    },
    /// A previously started flow is predicted to complete. Carries the
    /// epoch at which the prediction was made: rate recomputations bump
    /// the flow's epoch and schedule a fresh completion, so a mismatching
    /// event is stale and ignored (counted as `sim_flow_stale_finish`).
    FlowFinish {
        /// Engine-side flow id.
        flow: u64,
        /// Scheduling epoch of the prediction.
        epoch: u64,
    },
}

impl<M> EventPayload<M> {
    /// Tie-breaking class of the payload at equal timestamps: faults apply
    /// before any protocol event, external arrivals before deliveries and
    /// timers (so arrival position is independent of scheduling time — see
    /// the module docs), deliveries/timers keep their scheduling order
    /// relative to each other, and flow events rank last so a same-time
    /// delivery (whose handler may start or reshape transfers) is applied
    /// before the bandwidth plane is re-solved.
    pub fn class_rank(&self) -> u8 {
        match self {
            EventPayload::Fault { .. } => 0,
            EventPayload::External { .. } => 1,
            EventPayload::Deliver { .. } | EventPayload::Timer { .. } => 2,
            EventPayload::FlowStart { .. } | EventPayload::FlowFinish { .. } => 3,
        }
    }
}

/// A scheduled event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event<M> {
    /// Simulated time at which the event fires.
    pub time: f64,
    /// Scheduling sequence number (total order tie-breaker).
    pub seq: u64,
    /// Site handling the event.
    pub target: SiteId,
    /// Payload.
    pub payload: EventPayload<M>,
}

impl<M: PartialEq> Eq for Event<M> {}

impl<M: PartialEq> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first under the
        // explicit total order (time, class, seq).
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then(other.payload.class_rank().cmp(&self.payload.class_rank()))
            .then(other.seq.cmp(&self.seq))
    }
}

impl<M: PartialEq> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Priority queue of pending events.
#[derive(Debug)]
pub struct EventQueue<M: PartialEq> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M: PartialEq> Default for EventQueue<M> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<M: PartialEq> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty queue whose heap is pre-sized for `capacity` pending
    /// events (the simulator sizes this off the topology so the start-up
    /// wave does not regrow the heap).
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules an event, assigning it the next sequence number.
    pub fn push(&mut self, time: f64, target: SiteId, payload: EventPayload<M>) {
        assert!(time.is_finite(), "event time must be finite");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            time,
            seq,
            target,
            payload,
        });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(5.0, SiteId(0), EventPayload::Timer { timer_id: 1 });
        q.push(1.0, SiteId(1), EventPayload::Timer { timer_id: 2 });
        q.push(3.0, SiteId(2), EventPayload::Timer { timer_id: 3 });
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(1.0));
        let order: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(order, vec![1.0, 3.0, 5.0]);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut q: EventQueue<&'static str> = EventQueue::new();
        q.push(
            2.0,
            SiteId(0),
            EventPayload::Deliver {
                from: SiteId(1),
                message: "first",
            },
        );
        q.push(
            2.0,
            SiteId(0),
            EventPayload::Deliver {
                from: SiteId(1),
                message: "second",
            },
        );
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        match (a.payload, b.payload) {
            (
                EventPayload::Deliver { message: m1, .. },
                EventPayload::Deliver { message: m2, .. },
            ) => {
                assert_eq!(m1, "first");
                assert_eq!(m2, "second");
            }
            other => panic!("unexpected payloads {other:?}"),
        }
        assert!(a.seq < b.seq);
    }

    #[test]
    fn faults_rank_before_protocol_events_at_the_same_time() {
        let mut q: EventQueue<u32> = EventQueue::new();
        // Scheduled last, but a same-time fault must pop first.
        q.push(2.0, SiteId(0), EventPayload::Timer { timer_id: 1 });
        q.push(
            2.0,
            SiteId(0),
            EventPayload::Deliver {
                from: SiteId(1),
                message: 9,
            },
        );
        q.push(
            2.0,
            SiteId(0),
            EventPayload::Fault {
                fault: FaultEvent::SiteDown { site: SiteId(0) },
            },
        );
        let order: Vec<u8> = std::iter::from_fn(|| q.pop())
            .map(|e| e.payload.class_rank())
            .collect();
        assert_eq!(order, vec![0, 2, 2]);
    }

    #[test]
    fn external_arrivals_rank_before_deliveries_at_the_same_time() {
        // Scheduled after the delivery (higher seq), but the same-time
        // arrival must still pop first — this pins streaming injection to
        // the pre-materialized order.
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(
            3.0,
            SiteId(0),
            EventPayload::Deliver {
                from: SiteId(1),
                message: 1,
            },
        );
        q.push(3.0, SiteId(0), EventPayload::External { message: 2 });
        let order: Vec<u8> = std::iter::from_fn(|| q.pop())
            .map(|e| e.payload.class_rank())
            .collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn flow_events_rank_after_protocol_events_at_the_same_time() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(
            2.0,
            SiteId(0),
            EventPayload::FlowFinish { flow: 0, epoch: 0 },
        );
        q.push(
            2.0,
            SiteId(0),
            EventPayload::FlowStart {
                from: SiteId(1),
                volume: 3.0,
                message: 7,
            },
        );
        q.push(
            2.0,
            SiteId(0),
            EventPayload::Deliver {
                from: SiteId(1),
                message: 9,
            },
        );
        q.push(
            2.0,
            SiteId(0),
            EventPayload::Fault {
                fault: FaultEvent::SiteDown { site: SiteId(0) },
            },
        );
        let order: Vec<u8> = std::iter::from_fn(|| q.pop())
            .map(|e| e.payload.class_rank())
            .collect();
        assert_eq!(order, vec![0, 2, 3, 3]);
    }

    #[test]
    fn earlier_protocol_events_still_precede_later_faults() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(
            2.0,
            SiteId(0),
            EventPayload::Fault {
                fault: FaultEvent::SetMessageLoss { probability: 0.5 },
            },
        );
        q.push(1.0, SiteId(0), EventPayload::Timer { timer_id: 1 });
        let first = q.pop().unwrap();
        assert_eq!(first.time, 1.0);
        assert_eq!(first.payload.class_rank(), 2);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_times_rejected() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(f64::NAN, SiteId(0), EventPayload::Timer { timer_id: 0 });
    }
}
