//! Property-based end-to-end tests of the full protocol: for arbitrary
//! topologies, workloads and configurations, the system terminates, never
//! double-books a processor, never misses a deadline it guaranteed, and its
//! bookkeeping stays consistent.

use proptest::prelude::*;
use rtds::core::{LaxityDispatch, RtdsConfig, RtdsSystem};
use rtds::graph::generators::{CostDistribution, DagGenerator, DagShape, GeneratorConfig};
use rtds::graph::Job;
use rtds::net::generators::{erdos_renyi_connected, grid, ring, DelayDistribution};
use rtds::net::Network;
use rtds::sim::arrivals::{ArrivalProcess, ArrivalSchedule};

#[derive(Debug, Clone, Copy)]
enum Topo {
    Ring(usize),
    Grid(usize, usize),
    ErdosRenyi(usize),
}

fn build(topo: Topo, seed: u64) -> Network {
    let delays = DelayDistribution::Uniform { min: 0.5, max: 2.0 };
    match topo {
        Topo::Ring(n) => ring(n, delays, seed),
        Topo::Grid(w, h) => grid(w, h, false, delays, seed),
        Topo::ErdosRenyi(n) => erdos_renyi_connected(n, 0.2, delays, seed),
    }
}

fn arbitrary_topo() -> impl Strategy<Value = Topo> {
    prop_oneof![
        (4usize..12).prop_map(Topo::Ring),
        ((2usize..4), (2usize..4)).prop_map(|(w, h)| Topo::Grid(w, h)),
        (5usize..14).prop_map(Topo::ErdosRenyi),
    ]
}

fn arbitrary_config() -> impl Strategy<Value = RtdsConfig> {
    (
        1usize..4,
        proptest::bool::ANY,
        proptest::bool::ANY,
        proptest::bool::ANY,
        0usize..4,
    )
        .prop_map(
            |(radius, preemptive, uniform, busyness, max_acs)| RtdsConfig {
                sphere_radius: radius,
                preemptive,
                uniform_machines: uniform,
                laxity_dispatch: if busyness {
                    LaxityDispatch::BusynessWeighted
                } else {
                    LaxityDispatch::Uniform
                },
                max_acs_size: max_acs,
                ..RtdsConfig::default()
            },
        )
}

fn workload(network: &Network, rate: f64, seed: u64) -> Vec<Job> {
    let schedule = ArrivalSchedule::generate(
        ArrivalProcess::Poisson { rate },
        network.site_count(),
        150.0,
        seed,
    );
    let cfg = GeneratorConfig {
        task_count: 6,
        shape: DagShape::LayeredRandom {
            layers: 2,
            edge_prob: 0.4,
        },
        costs: CostDistribution::Uniform { min: 1.0, max: 8.0 },
        ccr: 0.0,
        laxity_factor: (1.3, 3.0),
    };
    let mut generator = DagGenerator::new(cfg, seed);
    schedule
        .arrivals()
        .iter()
        .map(|a| generator.generate_job(a.site.index(), a.time))
        .collect()
}

proptest! {
    // End-to-end runs are comparatively expensive; 24 cases keep the suite
    // under a few seconds while still covering a wide cross-product.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn protocol_safety_holds_for_arbitrary_deployments(
        topo in arbitrary_topo(),
        config in arbitrary_config(),
        net_seed in 0u64..200,
        load_seed in 0u64..200,
        rate in 0.005f64..0.03,
    ) {
        let network = build(topo, net_seed);
        let jobs = workload(&network, rate, load_seed);
        let submitted = jobs.len() as u64;
        let mut system = RtdsSystem::new(network.clone(), config, net_seed ^ load_seed);
        system.submit_workload(jobs);
        let report = system.run();

        // Termination bookkeeping.
        prop_assert_eq!(report.jobs_submitted, submitted);
        prop_assert_eq!(report.guarantee.accepted() + report.guarantee.rejected, submitted);
        // Safety: accepted implies on-time; no placement ever failed; plans
        // stay consistent; no locks or queued jobs survive quiescence.
        prop_assert_eq!(report.deadline_misses(), 0);
        prop_assert_eq!(report.stats.named("placement_failures"), 0);
        for site in network.sites() {
            let node = system.node(site);
            prop_assert!(node.check_plan_invariants());
            prop_assert!(!node.is_locked());
            prop_assert_eq!(node.queued_len(), 0);
            prop_assert!(node.sphere().is_some());
        }
        // Message accounting: delivered never exceeds sent.
        prop_assert!(report.stats.messages_delivered <= report.stats.messages_sent);
    }
}
