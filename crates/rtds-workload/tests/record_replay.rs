//! Record/replay and streaming-equivalence properties of the workload
//! subsystem, per arrival process:
//!
//! * recording a source and replaying the trace yields the identical
//!   arrival stream, and re-recording the replay reproduces the trace
//!   byte-for-byte (the "identical event trace" property),
//! * a live streaming run and a replayed-trace streaming run produce the
//!   identical scenario report,
//! * streaming execution and the classic batch path (materialize all jobs,
//!   submit up front) agree on every deterministic report field.

use proptest::prelude::*;
use rtds_core::{RtdsConfig, RtdsSystem, StreamOptions, StreamReport};
use rtds_net::generators::{grid, DelayDistribution};
use rtds_sim::json::Json;
use rtds_workload::{
    materialize, reader_from_string, record_to_string, JobFactory, JobTemplate, OpenLoopSpec,
    RateProcess, SizeMix, WorkloadSource,
};

/// One configuration per arrival process family (plus the heavy-tail size
/// mix riding on Poisson arrivals).
fn processes() -> Vec<(&'static str, OpenLoopSpec)> {
    let sizes = SizeMix::Uniform { min: 5, max: 9 };
    let base = |process| OpenLoopSpec {
        process,
        sizes,
        hotspots: 0,
        horizon: 150.0,
        max_jobs: 90,
    };
    vec![
        ("poisson", base(RateProcess::Poisson { rate: 0.6 })),
        (
            "onoff",
            base(RateProcess::OnOff {
                on_rate: 1.5,
                off_rate: 0.05,
                mean_on: 20.0,
                mean_off: 30.0,
            }),
        ),
        (
            "diurnal",
            base(RateProcess::Diurnal {
                base: 0.1,
                peak: 1.4,
                period: 100.0,
            }),
        ),
        (
            "pareto-sizes",
            OpenLoopSpec {
                sizes: SizeMix::Pareto {
                    alpha: 1.6,
                    min: 4,
                    cap: 24,
                },
                ..base(RateProcess::Poisson { rate: 0.5 })
            },
        ),
    ]
}

const SITES: usize = 9;

fn drain(mut source: impl WorkloadSource) -> Vec<(f64, rtds_workload::JobSpec)> {
    let mut out = Vec::new();
    while let Some(a) = source.next_arrival() {
        out.push(a);
    }
    out
}

fn stream_run(source: impl WorkloadSource, seed: u64) -> StreamReport {
    let network = grid(3, 3, false, DelayDistribution::Constant(1.0), seed);
    let mut system = RtdsSystem::new(network, RtdsConfig::default(), seed);
    let mut factory = JobFactory::new(source, JobTemplate::default());
    system.run_streaming(&mut factory, &StreamOptions::default())
}

#[test]
fn record_replay_is_identical_per_process_and_seed() {
    for (name, spec) in processes() {
        for seed in [1u64, 2, 3] {
            let metadata = [("seed", Json::UInt(seed))];
            let trace = record_to_string(&mut spec.build(SITES, seed), &metadata);

            // The replayed arrival stream equals the live stream exactly.
            let live = drain(spec.build(SITES, seed));
            let replayed = drain(reader_from_string(trace.clone()));
            assert_eq!(live, replayed, "{name} seed {seed}");
            assert!(!live.is_empty(), "{name} seed {seed} emitted nothing");

            // Re-recording the replay reproduces the trace byte-for-byte.
            let again = record_to_string(&mut reader_from_string(trace.clone()), &metadata);
            assert_eq!(again, trace, "{name} seed {seed} trace round-trip");

            // Live streaming run vs replayed-trace run: identical report.
            let live_report = stream_run(spec.build(SITES, seed), seed);
            let replay_report = stream_run(reader_from_string(trace), seed);
            assert_eq!(live_report, replay_report, "{name} seed {seed} report");
            assert_eq!(live_report.deadline_misses(), 0, "{name} seed {seed}");
            assert_eq!(live_report.unharvested_completions, 0, "{name} seed {seed}");
        }
    }
}

#[test]
fn streaming_and_batch_execution_agree_per_process_and_seed() {
    for (name, spec) in processes() {
        for seed in [4u64, 5, 6] {
            let label = format!("{name} seed {seed}");
            let jobs = materialize(spec.build(SITES, seed), JobTemplate::default());
            assert!(!jobs.is_empty(), "{label}");

            let network = grid(3, 3, false, DelayDistribution::Constant(1.0), seed);
            let mut batch = RtdsSystem::new(network, RtdsConfig::default(), seed);
            batch.submit_workload(jobs.clone());
            let batch_report = batch.run();

            let stream_report = stream_run(spec.build(SITES, seed), seed);
            assert_eq!(
                stream_report.guarantee.submitted, batch_report.jobs_submitted,
                "{label}"
            );
            assert_eq!(
                stream_report.guarantee.accepted_locally, batch_report.guarantee.accepted_locally,
                "{label}"
            );
            assert_eq!(
                stream_report.guarantee.accepted_distributed,
                batch_report.guarantee.accepted_distributed,
                "{label}"
            );
            assert_eq!(
                stream_report.guarantee.completed_on_time, batch_report.guarantee.completed_on_time,
                "{label}"
            );
            assert_eq!(stream_report.stats, batch_report.stats, "{label}");
            assert_eq!(
                stream_report.events_processed,
                batch.events_processed(),
                "{label}"
            );
            assert_eq!(
                stream_report.finished_at, batch_report.finished_at,
                "{label}"
            );
            // The streaming run keeps fewer jobs resident than the batch
            // run materializes.
            assert!(
                stream_report.peak_inflight_jobs <= batch_report.jobs_submitted,
                "{label}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary seeds and rates: traces are sorted, within the horizon,
    /// respect the job cap, and survive the record → replay → re-record
    /// fixpoint byte-for-byte.
    #[test]
    fn trace_fixpoint_for_arbitrary_poisson_streams(
        seed in 0u64..10_000,
        rate in 0.05f64..2.0,
        max_jobs in 1u64..60,
    ) {
        let spec = OpenLoopSpec {
            process: RateProcess::Poisson { rate },
            sizes: SizeMix::Uniform { min: 3, max: 12 },
            hotspots: 0,
            horizon: 200.0,
            max_jobs,
        };
        let trace = record_to_string(&mut spec.build(SITES, seed), &[]);
        let arrivals = drain(reader_from_string(trace.clone()));
        prop_assert!(arrivals.len() as u64 <= max_jobs);
        prop_assert!(arrivals.windows(2).all(|w| w[0].0 <= w[1].0));
        prop_assert!(arrivals.iter().all(|(t, s)| *t < 200.0 && s.site < SITES));
        let again = record_to_string(&mut reader_from_string(trace.clone()), &[]);
        prop_assert_eq!(again, trace);
    }
}
