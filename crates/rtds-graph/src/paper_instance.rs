//! The exact worked example of the paper (§12.1, Fig. 2).
//!
//! The figure itself is not included in the text, but the instance is fully
//! determined by the published schedules S (Fig. 3), S* (Fig. 4) and the
//! adjusted parameters of Table 1, together with the stated surpluses
//! (`I1 = 0.5`, `I2 = 0.4`), ACS delay-diameter 3, release 0 and deadline 66:
//!
//! * five tasks with computational complexities `c = (6, 4, 4, 2, 5)`
//!   (1-based task numbering as in the paper),
//! * precedence edges `1→3`, `2→3`, `1→4`, `3→5`, `4→5`.
//!
//! With these values the Mapper of §12 produces exactly the published
//! schedules: `S` has makespan `M = 33`, `S*` has makespan `M* = 19`, the
//! scaling factor of case (ii) is `(d-r)/M = 2`, and the adjusted
//! releases/deadlines match Table 1 line for line. The golden tests in
//! `rtds-core` verify every one of those values.

use crate::dag::TaskGraph;
use crate::job::{Job, JobId, JobParams};
use crate::task::TaskId;

/// Surplus of processor `p1` in the worked example.
pub const PAPER_SURPLUS_P1: f64 = 0.5;
/// Surplus of processor `p2` in the worked example.
pub const PAPER_SURPLUS_P2: f64 = 0.4;
/// ACS delay-diameter assumed by the worked example.
pub const PAPER_ACS_DIAMETER: f64 = 3.0;
/// Job release of the worked example.
pub const PAPER_RELEASE: f64 = 0.0;
/// Job deadline of the worked example.
pub const PAPER_DEADLINE: f64 = 66.0;

/// Task costs of the Fig. 2 instance, indexed by 0-based task id.
pub const PAPER_COSTS: [f64; 5] = [6.0, 4.0, 4.0, 2.0, 5.0];

/// Precedence edges of the Fig. 2 instance (0-based ids).
pub const PAPER_EDGES: [(usize, usize); 5] = [(0, 2), (1, 2), (0, 3), (2, 4), (3, 4)];

/// Builds the Fig. 2 task graph.
pub fn paper_task_graph() -> TaskGraph {
    let mut g = TaskGraph::from_costs(&PAPER_COSTS);
    for (a, b) in PAPER_EDGES {
        g.add_edge(TaskId(a), TaskId(b))
            .expect("paper instance edges are valid");
    }
    g
}

/// Builds the Fig. 2 job (release 0, deadline 66) arriving at `arrival_site`.
pub fn paper_job(id: JobId, arrival_site: usize) -> Job {
    Job::new(
        id,
        paper_task_graph(),
        JobParams::new(PAPER_RELEASE, PAPER_DEADLINE),
        arrival_site,
    )
}

/// Expected mapper schedule `S` of Fig. 3 as `(task, processor, start, finish)`
/// tuples with 0-based task ids and logical processors 0 (= paper `p1`) and
/// 1 (= paper `p2`).
pub const EXPECTED_SCHEDULE_S: [(usize, usize, f64, f64); 5] = [
    (0, 0, 0.0, 12.0),
    (1, 1, 0.0, 10.0),
    (2, 0, 13.0, 21.0),
    (3, 1, 15.0, 20.0),
    (4, 0, 23.0, 33.0),
];

/// Expected schedule `S*` of Fig. 4 (surpluses = 100 %).
pub const EXPECTED_SCHEDULE_S_STAR: [(usize, usize, f64, f64); 5] = [
    (0, 0, 0.0, 6.0),
    (1, 1, 0.0, 4.0),
    (2, 0, 7.0, 11.0),
    (3, 1, 9.0, 11.0),
    (4, 0, 14.0, 19.0),
];

/// Makespan `M` of schedule `S` (Fig. 3).
pub const EXPECTED_MAKESPAN_S: f64 = 33.0;
/// Makespan `M*` of schedule `S*` (Fig. 4).
pub const EXPECTED_MAKESPAN_S_STAR: f64 = 19.0;

/// Table 1 of the paper: `(task, r_i, d_i, adjusted r(t_i), adjusted d(t_i))`
/// with 0-based task ids.
pub const EXPECTED_TABLE1: [(usize, f64, f64, f64, f64); 5] = [
    (0, 0.0, 12.0, 0.0, 24.0),
    (1, 0.0, 10.0, 0.0, 20.0),
    (2, 13.0, 21.0, 24.0, 42.0),
    (3, 15.0, 20.0, 27.0, 40.0),
    (4, 23.0, 33.0, 43.0, 66.0),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critical_path::critical_path_tasks;

    #[test]
    fn instance_structure() {
        let g = paper_task_graph();
        assert_eq!(g.task_count(), 5);
        assert_eq!(g.edge_count(), 5);
        assert!(g.is_acyclic());
        assert_eq!(g.sources(), vec![TaskId(0), TaskId(1)]);
        assert_eq!(g.sinks(), vec![TaskId(4)]);
    }

    #[test]
    fn instance_critical_path() {
        let g = paper_task_graph();
        let info = critical_path_tasks(&g);
        // Longest node-weight path: t1 -> t3 -> t5 = 6 + 4 + 5 = 15.
        assert_eq!(info.length, 15.0);
        assert_eq!(info.critical_tasks, vec![TaskId(0), TaskId(2), TaskId(4)]);
        // Mapper priorities used in §12: 15, 13, 9, 7, 5.
        assert_eq!(info.upward, vec![15.0, 13.0, 9.0, 7.0, 5.0]);
    }

    #[test]
    fn paper_job_window() {
        let job = paper_job(JobId(1), 0);
        assert_eq!(job.release(), 0.0);
        assert_eq!(job.deadline(), 66.0);
        assert_eq!(job.window(), 66.0);
        assert_eq!(job.total_cost(), 21.0);
    }

    #[test]
    fn expected_tables_are_self_consistent() {
        // Durations in S must equal c / I of the assigned processor.
        for (t, p, start, finish) in EXPECTED_SCHEDULE_S {
            let surplus = if p == 0 {
                PAPER_SURPLUS_P1
            } else {
                PAPER_SURPLUS_P2
            };
            let expected = PAPER_COSTS[t] / surplus;
            assert!((finish - start - expected).abs() < 1e-9, "task {t}");
        }
        // Durations in S* equal the raw costs.
        for (t, _, start, finish) in EXPECTED_SCHEDULE_S_STAR {
            assert!((finish - start - PAPER_COSTS[t]).abs() < 1e-9, "task {t}");
        }
        // Table 1 adjusted deadlines are the case (ii) scaling of d_i by 2.
        for (t, _ri, di, _r_adj, d_adj) in EXPECTED_TABLE1 {
            assert!((d_adj - 2.0 * di).abs() < 1e-9, "task {t}");
        }
    }
}
