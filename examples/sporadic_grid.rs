//! Sporadic Poisson workload on a grid: RTDS against the baseline policies.
//!
//! Mirrors the intro scenario of the paper — sporadic jobs with deadlines
//! arriving anywhere on a distributed system — and prints a comparison of the
//! guarantee ratio and message overhead across policies.
//!
//! Run with: `cargo run --release --example sporadic_grid`

use rtds::baselines::all_policies;
use rtds::core::{RtdsConfig, RtdsSystem};
use rtds::graph::generators::{CostDistribution, DagGenerator, DagShape, GeneratorConfig};
use rtds::graph::Job;
use rtds::net::generators::{grid, DelayDistribution};
use rtds::sim::arrivals::{ArrivalProcess, ArrivalSchedule};

fn workload(site_count: usize, rate: f64, horizon: f64, seed: u64) -> Vec<Job> {
    let schedule =
        ArrivalSchedule::generate(ArrivalProcess::Poisson { rate }, site_count, horizon, seed);
    let cfg = GeneratorConfig {
        task_count: 10,
        shape: DagShape::LayeredRandom {
            layers: 3,
            edge_prob: 0.3,
        },
        costs: CostDistribution::Uniform { min: 2.0, max: 8.0 },
        ccr: 0.0,
        laxity_factor: (1.8, 3.0),
    };
    let mut generator = DagGenerator::new(cfg, seed.wrapping_mul(31).wrapping_add(7));
    schedule
        .arrivals()
        .iter()
        .map(|a| generator.generate_job(a.site.index(), a.time))
        .collect()
}

fn main() {
    let width = 5;
    let network = grid(width, width, false, DelayDistribution::Constant(1.0), 3);
    let horizon = 400.0;
    let rate = 0.004; // jobs per site per time unit
    let jobs = workload(network.site_count(), rate, horizon, 11);
    println!(
        "{} sites, {} jobs over {:.0} time units (Poisson rate {} per site)",
        network.site_count(),
        jobs.len(),
        horizon,
        rate
    );
    println!();
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>10} {:>12}",
        "policy", "accepted", "rejected", "ratio", "misses", "msgs/job"
    );

    // RTDS (full message-level protocol).
    let mut system = RtdsSystem::new(network.clone(), RtdsConfig::default(), 5);
    system.submit_workload(jobs.clone());
    let rtds = system.run();
    println!(
        "{:<22} {:>9} {:>9} {:>9.3} {:>10} {:>12.1}",
        "rtds (h = 2)",
        rtds.guarantee.accepted(),
        rtds.guarantee.rejected,
        rtds.guarantee_ratio(),
        rtds.deadline_misses(),
        rtds.messages_per_job
    );

    // The five baselines behind the common DistributionPolicy trait.
    let mut local_accepted = 0;
    for policy in all_policies() {
        let report = policy.run(&network, &jobs);
        println!(
            "{:<22} {:>9} {:>9} {:>9.3} {:>10} {:>12.1}",
            policy.name(),
            report.accepted(),
            report.rejected,
            report.guarantee_ratio().unwrap_or(f64::NAN),
            report.deadline_misses,
            report.messages_per_job().unwrap_or(f64::NAN)
        );
        if policy.name() == "local-only" {
            local_accepted = report.accepted();
        }
    }

    assert_eq!(rtds.deadline_misses(), 0);
    assert!(rtds.guarantee.accepted() >= local_accepted);
}
