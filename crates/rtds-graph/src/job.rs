//! Jobs: a task graph plus its real-time parameters and arrival metadata.
//!
//! In the paper, a job is a sporadic arrival of a DAG with a release `r` and a
//! deadline `d` at some site of the network. The release of the worked example
//! is 0 and its deadline 66; generators usually derive deadlines from the
//! critical path length and a *laxity factor*.

use crate::critical_path::critical_path_tasks;
use crate::dag::TaskGraph;
use serde::{Deserialize, Serialize};

/// Globally unique job identifier (unique within one simulation run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Real-time parameters of a job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobParams {
    /// Release time `r` (absolute simulation time).
    pub release: f64,
    /// Deadline `d` (absolute simulation time, `d > r`).
    pub deadline: f64,
}

impl JobParams {
    /// Creates job parameters, checking `deadline > release`.
    ///
    /// # Panics
    /// Panics if the window is empty or the values are not finite.
    pub fn new(release: f64, deadline: f64) -> Self {
        assert!(release.is_finite() && deadline.is_finite());
        assert!(
            deadline > release,
            "job deadline ({deadline}) must be after its release ({release})"
        );
        JobParams { release, deadline }
    }

    /// Length of the execution window `d - r`.
    pub fn window(&self) -> f64 {
        self.deadline - self.release
    }
}

/// A job: a DAG, its real-time window and where/when it entered the system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Unique identifier.
    pub id: JobId,
    /// The precedence graph.
    pub graph: TaskGraph,
    /// Release and deadline.
    pub params: JobParams,
    /// Index of the site on which the job arrived (interpretation is left to
    /// the network layer; stored here so workload generators can emit complete
    /// arrival records).
    pub arrival_site: usize,
    /// Arrival time (usually equal to the release).
    pub arrival_time: f64,
}

impl Job {
    /// Creates a job arriving at `arrival_site` at its release time.
    pub fn new(id: JobId, graph: TaskGraph, params: JobParams, arrival_site: usize) -> Self {
        let arrival_time = params.release;
        Job {
            id,
            graph,
            params,
            arrival_site,
            arrival_time,
        }
    }

    /// Release time `r`.
    pub fn release(&self) -> f64 {
        self.params.release
    }

    /// Deadline `d`.
    pub fn deadline(&self) -> f64 {
        self.params.deadline
    }

    /// Execution window `d - r`.
    pub fn window(&self) -> f64 {
        self.params.window()
    }

    /// Critical-path length of the job's graph (node weights only).
    pub fn critical_path_length(&self) -> f64 {
        critical_path_tasks(&self.graph).length
    }

    /// Laxity factor of the job: window divided by critical-path length.
    ///
    /// A laxity factor below 1 means the job cannot meet its deadline even on
    /// infinitely many fully idle sites; generators typically produce factors
    /// in `[1.5, 6]`.
    pub fn laxity_factor(&self) -> f64 {
        let cp = self.critical_path_length();
        if cp == 0.0 {
            f64::INFINITY
        } else {
            self.window() / cp
        }
    }

    /// Total computational demand of the job.
    pub fn total_cost(&self) -> f64 {
        self.graph.total_cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;

    fn chain_graph() -> TaskGraph {
        let mut g = TaskGraph::from_costs(&[2.0, 3.0, 5.0]);
        g.add_edge(TaskId(0), TaskId(1)).unwrap();
        g.add_edge(TaskId(1), TaskId(2)).unwrap();
        g
    }

    #[test]
    fn params_window() {
        let p = JobParams::new(10.0, 30.0);
        assert_eq!(p.window(), 20.0);
    }

    #[test]
    #[should_panic(expected = "deadline")]
    fn empty_window_rejected() {
        let _ = JobParams::new(5.0, 5.0);
    }

    #[test]
    fn job_accessors() {
        let job = Job::new(JobId(7), chain_graph(), JobParams::new(0.0, 40.0), 3);
        assert_eq!(job.id, JobId(7));
        assert_eq!(format!("{}", job.id), "job7");
        assert_eq!(job.release(), 0.0);
        assert_eq!(job.deadline(), 40.0);
        assert_eq!(job.window(), 40.0);
        assert_eq!(job.arrival_site, 3);
        assert_eq!(job.arrival_time, 0.0);
        assert_eq!(job.total_cost(), 10.0);
        assert_eq!(job.critical_path_length(), 10.0);
        assert_eq!(job.laxity_factor(), 4.0);
    }

    #[test]
    fn laxity_of_empty_graph_is_infinite() {
        let job = Job::new(JobId(0), TaskGraph::new(), JobParams::new(0.0, 10.0), 0);
        assert!(job.laxity_factor().is_infinite());
    }
}
