//! Criterion bench: the interrupted distributed Bellman–Ford (§7) and sphere
//! extraction as a function of network size and sphere radius.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rtds_net::bellman_ford::phased_apsp;
use rtds_net::generators::{grid, DelayDistribution};
use rtds_net::sphere::Sphere;
use std::hint::black_box;

fn bench_pcs(c: &mut Criterion) {
    let mut group = c.benchmark_group("pcs");
    for &side in &[4usize, 8, 16, 24] {
        let sites = side * side;
        let net = grid(
            side,
            side,
            false,
            DelayDistribution::Uniform { min: 0.5, max: 2.0 },
            1,
        );
        group.throughput(Throughput::Elements(sites as u64));
        for &h in &[2usize, 4] {
            group.bench_with_input(
                BenchmarkId::new("phased_apsp", format!("{sites}sites_h{h}")),
                &net,
                |b, net| b.iter(|| black_box(phased_apsp(net, 2 * h))),
            );
        }
        let result = phased_apsp(&net, 4);
        group.bench_with_input(
            BenchmarkId::new("sphere_extraction", sites),
            &result,
            |b, result| {
                b.iter(|| black_box(Sphere::from_tables(&result.tables[0], &result.tables, 2)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pcs);
criterion_main!(benches);
