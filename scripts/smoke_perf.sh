#!/usr/bin/env bash
# Perf smoke: two exp_perf runs of the smallest tier must agree on every
# deterministic field (everything except wall_ms / events_per_sec), now
# including the per-workload metrics sections (latency/laxity histogram
# summaries). Used by CI and runnable locally from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${SMOKE_OUT_DIR:-.}"
cargo run --release --bin exp_perf -- --seed 7 --smoke --json "$out/perf-smoke.json"
cargo run --release --bin exp_perf -- --seed 7 --smoke --json "$out/perf-smoke-b.json"
grep -v -E 'wall_ms|events_per_sec' "$out/perf-smoke.json" > "$out/perf-smoke.det"
grep -v -E 'wall_ms|events_per_sec' "$out/perf-smoke-b.json" > "$out/perf-smoke-b.det"
cmp "$out/perf-smoke.det" "$out/perf-smoke-b.det"
# The v2 schema must actually carry the histogram summaries.
grep -q '"accept_latency": {' "$out/perf-smoke.json"
grep -q '"accept_laxity": {' "$out/perf-smoke.json"
echo "perf smoke OK: deterministic fields (incl. metrics) are byte-identical"
