//! `exp_sched` — E8: local scheduler comparison (protocol vs HEFT vs
//! lookahead).
//!
//! Re-runs registry scenarios with each site's local scheduler swapped
//! between the paper's §5/§12 critical-path list scheduler (`protocol`),
//! insertion-based HEFT (`heft`) and one-step lookahead (`lookahead`), and
//! reports the guarantee ratio and distribution messages per job for every
//! `(scenario, scheduler)` pair. The report (`rtds-exp-sched/1`) is a pure
//! function of `--seed`, so two runs with the same flags are byte-identical.
//!
//! ```text
//! exp_sched [--scenario <name|all>] [--seed <u64>] [--seeds <n>]
//!           [--json <path>]
//! ```
//!
//! Whatever the scheduler, an accepted job must never miss its deadline —
//! the binary exits nonzero if any cell reports a miss. Undefined ratios
//! (a cell that submitted zero jobs) are printed as `-` and serialized as
//! `null`, never as a fake `1.0` or `0.0`.

use rtds_bench::{write_json_report, ExpArgs};
use rtds_scenarios::{builtin_scenarios, find_scenario, run_cell, CellReport, Json, Scenario};
use rtds_sched::SchedulerKind;

/// Identifier of the report schema (bump on breaking field changes).
const SCHED_SCHEMA: &str = "rtds-exp-sched/1";

/// The three local schedulers under comparison, in report order.
const KINDS: [SchedulerKind; 3] = [
    SchedulerKind::Protocol,
    SchedulerKind::Heft,
    SchedulerKind::Lookahead,
];

/// One scenario run under one scheduler, aggregated over its seeds.
struct VariantResult {
    kind: SchedulerKind,
    cells: Vec<CellReport>,
}

impl VariantResult {
    fn run(scenario: &Scenario, kind: SchedulerKind, seeds: &[u64]) -> Self {
        let mut variant = scenario.clone();
        variant.config.scheduler = kind;
        VariantResult {
            kind,
            cells: seeds.iter().map(|&seed| run_cell(&variant, seed)).collect(),
        }
    }

    fn submitted(&self) -> u64 {
        self.cells.iter().map(|c| c.submitted).sum()
    }

    fn accepted(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.accepted_locally + c.accepted_distributed)
            .sum()
    }

    fn deadline_misses(&self) -> u64 {
        self.cells.iter().map(|c| c.deadline_misses).sum()
    }

    /// Aggregate guarantee ratio; `None` when no job was submitted (a 0/0
    /// ratio must stay undefined, not masquerade as `1.0`).
    fn guarantee_ratio(&self) -> Option<f64> {
        let submitted = self.submitted();
        (submitted > 0).then(|| self.accepted() as f64 / submitted as f64)
    }

    /// Aggregate distribution messages per submitted job; `None` on an
    /// empty workload.
    fn messages_per_job(&self) -> Option<f64> {
        let submitted = self.submitted();
        let messages: f64 = self
            .cells
            .iter()
            .map(|c| c.messages_per_job * c.submitted as f64)
            .sum();
        (submitted > 0).then(|| messages / submitted as f64)
    }

    fn to_json(&self) -> Json {
        let opt = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
        let cells = self
            .cells
            .iter()
            .map(|c| {
                Json::object(vec![
                    ("seed", Json::UInt(c.seed)),
                    ("submitted", Json::UInt(c.submitted)),
                    ("accepted_locally", Json::UInt(c.accepted_locally)),
                    ("accepted_distributed", Json::UInt(c.accepted_distributed)),
                    ("rejected", Json::UInt(c.rejected)),
                    ("deadline_misses", Json::UInt(c.deadline_misses)),
                    (
                        "guarantee_ratio",
                        opt((c.submitted > 0).then_some(c.guarantee_ratio)),
                    ),
                    (
                        "messages_per_job",
                        opt((c.submitted > 0).then_some(c.messages_per_job)),
                    ),
                    ("events_processed", Json::UInt(c.events_processed)),
                    ("finished_at", Json::Num(c.finished_at)),
                ])
            })
            .collect();
        Json::object(vec![
            ("scheduler", Json::str(self.kind.name())),
            ("submitted", Json::UInt(self.submitted())),
            ("accepted", Json::UInt(self.accepted())),
            ("deadline_misses", Json::UInt(self.deadline_misses())),
            ("guarantee_ratio", opt(self.guarantee_ratio())),
            ("messages_per_job", opt(self.messages_per_job())),
            ("cells", Json::Array(cells)),
        ])
    }
}

/// All three scheduler variants of one scenario.
struct ScenarioResult {
    scenario: Scenario,
    variants: Vec<VariantResult>,
}

impl ScenarioResult {
    fn run(scenario: Scenario, seeds: &[u64]) -> Self {
        let variants = KINDS
            .iter()
            .map(|&kind| VariantResult::run(&scenario, kind, seeds))
            .collect();
        ScenarioResult { scenario, variants }
    }

    fn to_json(&self) -> Json {
        Json::object(vec![
            ("name", Json::str(&self.scenario.name)),
            ("description", Json::str(&self.scenario.description)),
            (
                "schedulers",
                Json::Array(self.variants.iter().map(VariantResult::to_json).collect()),
            ),
        ])
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.3}"),
        None => "-".to_string(),
    }
}

fn main() {
    let args = ExpArgs::parse(&["scenario", "seeds"], &[]);
    let selected: Vec<Scenario> = match args.value_of("scenario") {
        None | Some("all") => builtin_scenarios(),
        Some(name) => match find_scenario(name) {
            Some(s) => vec![s],
            None => {
                eprintln!("unknown scenario {name:?}");
                std::process::exit(2);
            }
        },
    };

    let base_seed = args.seed(1);
    let seed_count = args.usize_of("seeds", 2).max(1);
    let seeds: Vec<u64> = (0..seed_count as u64).map(|i| base_seed + i).collect();

    println!(
        "== E8: local scheduler comparison ({} scenario(s) x {} scheduler(s) x {} seed(s) from {}) ==",
        selected.len(),
        KINDS.len(),
        seeds.len(),
        base_seed
    );
    println!();
    println!(
        "{:<26} {:<10} {:>9} {:>7} {:>7} {:>9}",
        "scenario", "scheduler", "acc/sub", "ratio", "misses", "msgs/job"
    );

    let mut results = Vec::new();
    let mut misses = 0u64;
    for scenario in selected {
        let result = ScenarioResult::run(scenario, &seeds);
        for v in &result.variants {
            println!(
                "{:<26} {:<10} {:>4}/{:<4} {:>7} {:>7} {:>9}",
                result.scenario.name,
                v.kind.name(),
                v.accepted(),
                v.submitted(),
                fmt_opt(v.guarantee_ratio()),
                v.deadline_misses(),
                fmt_opt(v.messages_per_job()),
            );
            misses += v.deadline_misses();
        }
        results.push(result);
    }
    println!();

    if let Some(path) = args.json_path() {
        let report = Json::object(vec![
            ("schema", Json::str(SCHED_SCHEMA)),
            ("seed", Json::UInt(base_seed)),
            (
                "seeds",
                Json::Array(seeds.iter().map(|&s| Json::UInt(s)).collect()),
            ),
            (
                "schedulers",
                Json::Array(KINDS.iter().map(|k| Json::str(k.name())).collect()),
            ),
            (
                "scenarios",
                Json::Array(results.iter().map(ScenarioResult::to_json).collect()),
            ),
        ]);
        write_json_report(path, &report.render());
    }

    if misses > 0 {
        eprintln!("deadline-miss check FAILED: {misses} accepted job(s) missed their deadline");
        std::process::exit(1);
    }
    println!("deadline-miss check: zero misses across every scheduler and scenario");
}
