//! A minimal, deterministic JSON value, writer and parser.
//!
//! The build environment has no registry access, so the workspace's `serde`
//! is a no-op stub (see `crates/compat/README.md`); sweep reports and
//! workload traces therefore serialize through this hand-rolled value type.
//! Everything about the output is pinned: object keys keep insertion order,
//! numbers render via Rust's shortest-round-trip formatting, and non-finite
//! floats become `null` — so a report is byte-identical across runs, thread
//! counts and platforms.
//!
//! Two renderings are provided: [`Json::render`] (pretty, two-space indent,
//! used for the report files) and [`Json::render_compact`] (single line,
//! used for JSONL workload traces). [`Json::parse`] reads either form back;
//! because shortest-round-trip float formatting is exact, a
//! render → parse → render cycle is byte-identical, which the trace
//! record/replay machinery in `rtds-workload` relies on.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (renders without a decimal point).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; keys keep insertion order for deterministic output.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn object(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders the value as a pretty-printed JSON document (two-space
    /// indent) plus a trailing newline — the report-file form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    /// Renders the value on a single line with no whitespace and no trailing
    /// newline (the JSONL form used by workload traces).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    /// The value of an object field, if this is an object with that key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view: `Int`, `UInt` and `Num` all convert to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::UInt(u) => Some(u as f64),
            Json::Num(x) => Some(x),
            _ => None,
        }
    }

    /// Unsigned view: `UInt`, non-negative `Int` and integral `Num`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            Json::Int(i) if i >= 0 => Some(i as u64),
            Json::Num(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => Some(x as u64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (either rendering form). Trailing whitespace
    /// is allowed; trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(value)
    }

    /// Shared writer behind both renderings: `indent` is the current
    /// nesting depth in pretty mode, `None` in compact (single-line) mode.
    /// One code path keeps the two forms scalar-for-scalar identical,
    /// which the trace record/replay byte-fixpoint depends on.
    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent.map(|d| d + 1));
                    item.write(out, indent.map(|d| d + 1));
                }
                newline(out, indent);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent.map(|d| d + 1));
                    write_escaped(out, key);
                    out.push_str(if indent.is_some() { ": " } else { ":" });
                    value.write(out, indent.map(|d| d + 1));
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }
}

/// Error raised by [`Json::parse`]: the byte offset of the failure plus a
/// human-readable description.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonParseError {
    /// Byte offset into the input at which parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: a low surrogate must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?
                            };
                            out.push(c);
                            // hex4 leaves pos on the byte after the digits;
                            // skip the shared `pos += 1` below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim; the
                    // input is a &str, so slicing on char boundaries is safe
                    // as long as we advance over whole characters.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("peeked byte exists");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                b'+' | b'-' if is_float => self.pos += 1,
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        // Integral tokens become Int/UInt so that a parse → render cycle
        // preserves the original spelling; overflow falls through to f64.
        if !is_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Json::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonParseError {
                offset: start,
                message: format!("invalid number {text:?}"),
            })
    }
}

/// Line break plus indentation in pretty mode; nothing in compact mode.
fn newline(out: &mut String, indent: Option<usize>) {
    let Some(indent) = indent else { return };
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{:?}` is Rust's shortest round-trip float formatting ("1.0",
        // "0.25", "1e-7"), stable across platforms and always JSON-legal
        // for finite values.
        let _ = write!(out, "{x:?}");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::Int(-3).render(), "-3\n");
        assert_eq!(Json::UInt(7).render(), "7\n");
        assert_eq!(Json::Num(0.5).render(), "0.5\n");
        assert_eq!(Json::Num(2.0).render(), "2.0\n");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"\n");
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"\n");
    }

    #[test]
    fn containers_render_with_stable_order() {
        let doc = Json::object(vec![
            ("b", Json::Int(1)),
            ("a", Json::Array(vec![Json::Int(2), Json::str("x")])),
            ("empty_arr", Json::Array(vec![])),
            ("empty_obj", Json::Object(vec![])),
        ]);
        let rendered = doc.render();
        // Keys stay in insertion order (b before a), nested indentation is
        // two spaces per level.
        let expected = "{\n  \"b\": 1,\n  \"a\": [\n    2,\n    \"x\"\n  ],\n  \"empty_arr\": [],\n  \"empty_obj\": {}\n}\n";
        assert_eq!(rendered, expected);
        // Rendering is a pure function.
        assert_eq!(rendered, doc.render());
    }

    #[test]
    fn compact_rendering_is_single_line() {
        let doc = Json::object(vec![
            ("t", Json::Num(12.5)),
            ("site", Json::UInt(3)),
            ("tags", Json::Array(vec![Json::str("a"), Json::Null])),
        ]);
        assert_eq!(
            doc.render_compact(),
            "{\"t\":12.5,\"site\":3,\"tags\":[\"a\",null]}"
        );
    }

    #[test]
    fn parse_round_trips_both_renderings() {
        let doc = Json::object(vec![
            ("name", Json::str("wave \"q\"\n")),
            ("count", Json::UInt(18446744073709551615)),
            ("delta", Json::Int(-42)),
            ("rate", Json::Num(0.30000000000000004)),
            ("tiny", Json::Num(1e-7)),
            ("flag", Json::Bool(false)),
            ("missing", Json::Null),
            (
                "items",
                Json::Array(vec![Json::Num(1.0), Json::Object(vec![])]),
            ),
        ]);
        let pretty = doc.render();
        let compact = doc.render_compact();
        assert_eq!(Json::parse(&pretty).unwrap(), doc);
        assert_eq!(Json::parse(&compact).unwrap(), doc);
        // Shortest-round-trip floats make render → parse → render a fixpoint.
        assert_eq!(Json::parse(&pretty).unwrap().render(), pretty);
        assert_eq!(Json::parse(&compact).unwrap().render_compact(), compact);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"abc",
            "[1] x",
            "{\"a\":1,}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        let err = Json::parse("[nul]").unwrap_err();
        assert!(err.to_string().contains("byte 1"), "{err}");
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let parsed = Json::parse("\"a\\u0041\\n\\t\\\\ \\u00e9 π\"").unwrap();
        assert_eq!(parsed, Json::str("aA\n\t\\ é π"));
        // Surrogate pair for U+1D11E (musical G clef).
        let clef = Json::parse("\"\\uD834\\uDD1E\"").unwrap();
        assert_eq!(clef, Json::str("\u{1D11E}"));
        assert!(Json::parse("\"\\uD834\"").is_err());
    }

    #[test]
    fn accessors() {
        let doc = Json::object(vec![
            ("n", Json::UInt(9)),
            ("x", Json::Num(2.5)),
            ("s", Json::str("hi")),
            ("a", Json::Array(vec![Json::Int(1)])),
        ]);
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(9));
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(9.0));
        assert_eq!(doc.get("x").and_then(Json::as_f64), Some(2.5));
        assert_eq!(doc.get("x").and_then(Json::as_u64), None);
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(
            doc.get("a").and_then(Json::items).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Num(4.0).as_u64(), Some(4));
        assert_eq!(Json::Int(-1).as_u64(), None);
        assert_eq!(Json::Null.get("x"), None);
    }
}
