//! A tiny shared argument parser for the experiment binaries (no external
//! dependencies — the build environment has no registry access).
//!
//! Every `exp_*` binary accepts at least:
//!
//! * `--seed <u64>` — the workload/system seed that used to be a hard-coded
//!   constant (each binary documents its default);
//! * `--json <path>` — write the experiment's machine-readable report to
//!   `path` in addition to the human-readable stdout tables.
//!
//! Binaries may layer extra value-taking flags (`exp_scenarios` adds
//! `--scenario`, `--seeds`, `--threads`; `exp_workloads` adds
//! `--jobs`/`--rate`/`--record`/`--replay`) and boolean flags (`--list`,
//! `--smoke`) through [`ExpArgs::value_of`] / [`ExpArgs::has`]. Both
//! `--flag value` and `--flag=value` spellings are accepted for value
//! flags; boolean flags take no value, so a bare token after one is a
//! stray positional. Unknown flags and stray positional arguments abort
//! with a usage message rather than being silently ignored; the fallible
//! core ([`ExpArgs::try_from_vec`]) is exposed so that rejection behaviour
//! is unit-testable instead of living behind `process::exit`.

use rtds_scenarios::Json;

/// Parsed command-line arguments of one experiment binary: an ordered list
/// of `(flag, optional value)` pairs.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    binary: String,
    parsed: Vec<(String, Option<String>)>,
    known: Vec<&'static str>,
    booleans: Vec<&'static str>,
}

impl ExpArgs {
    /// Parses the process arguments, accepting `--seed` and `--json` plus
    /// the given extra value-taking flags and boolean flags (names without
    /// `--`). Aborts with a usage message on unknown flags, stray
    /// positionals, or a value handed to a boolean flag.
    pub fn parse(value_flags: &[&'static str], bool_flags: &[&'static str]) -> ExpArgs {
        let mut argv = std::env::args();
        let binary = argv.next().unwrap_or_else(|| "exp".into());
        Self::from_vec(&binary, argv.collect(), value_flags, bool_flags)
    }

    /// Infallible constructor from an explicit argument vector (exits the
    /// process with the usage message on malformed input, like `parse`).
    pub fn from_vec(
        binary: &str,
        args: Vec<String>,
        value_flags: &[&'static str],
        bool_flags: &[&'static str],
    ) -> ExpArgs {
        match Self::try_from_vec(binary, args, value_flags, bool_flags) {
            Ok(parsed) => parsed,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        }
    }

    /// Fallible core of the parser: rejects unknown flags (`--nope`),
    /// stray positional arguments (`foo` with no preceding flag — including
    /// a bare token after a boolean flag, which takes no value) and
    /// malformed `--=x` tokens, returning the full usage message.
    pub fn try_from_vec(
        binary: &str,
        args: Vec<String>,
        value_flags: &[&'static str],
        bool_flags: &[&'static str],
    ) -> Result<ExpArgs, String> {
        let mut known = vec!["seed", "json"];
        known.extend_from_slice(value_flags);
        known.extend_from_slice(bool_flags);
        let booleans = bool_flags.to_vec();
        let mut parsed: Vec<(String, Option<String>)> = Vec::new();
        for arg in &args {
            match arg.strip_prefix("--") {
                Some(body) => {
                    let (name, inline_value) = match body.split_once('=') {
                        Some((n, v)) => (n, Some(v.to_string())),
                        None => (body, None),
                    };
                    if name.is_empty() || !known.contains(&name) {
                        return Err(usage(
                            binary,
                            &known,
                            &booleans,
                            &format!("unknown flag --{name}"),
                        ));
                    }
                    if booleans.contains(&name) && inline_value.is_some() {
                        return Err(usage(
                            binary,
                            &known,
                            &booleans,
                            &format!("--{name} does not take a value"),
                        ));
                    }
                    parsed.push((name.to_string(), inline_value));
                }
                // A bare token is only legal as the value of the
                // value-taking flag right before it; a stray positional
                // argument (e.g. a scenario name without --scenario, or a
                // path after a boolean flag) must not be silently ignored.
                None => match parsed.last_mut() {
                    Some((name, value @ None)) if !booleans.contains(&name.as_str()) => {
                        *value = Some(arg.clone())
                    }
                    _ => {
                        return Err(usage(
                            binary,
                            &known,
                            &booleans,
                            &format!("unexpected argument {arg:?}"),
                        ))
                    }
                },
            }
        }
        Ok(ExpArgs {
            binary: binary.to_string(),
            parsed,
            known,
            booleans,
        })
    }

    fn usage_error(&self, message: &str) -> ! {
        eprintln!(
            "{}",
            usage(&self.binary, &self.known, &self.booleans, message)
        );
        std::process::exit(2);
    }

    /// The last occurrence of a flag (later spellings override earlier
    /// ones, the conventional CLI behaviour).
    fn lookup(&self, flag: &str) -> Option<&Option<String>> {
        self.parsed
            .iter()
            .rev()
            .find(|(name, _)| name == flag)
            .map(|(_, value)| value)
    }

    /// Returns `true` if the flag is present (with or without a value).
    pub fn has(&self, flag: &str) -> bool {
        self.lookup(flag).is_some()
    }

    /// The value following `--flag`, if the flag is present. A flag given
    /// without a value aborts with a usage message.
    pub fn value_of(&self, flag: &str) -> Option<&str> {
        match self.lookup(flag) {
            None => None,
            Some(Some(value)) => Some(value),
            Some(None) => self.usage_error(&format!("--{flag} needs a value")),
        }
    }

    /// The `--seed` value, or `default` (the binary's historical constant).
    pub fn seed(&self, default: u64) -> u64 {
        match self.value_of("seed") {
            None => default,
            Some(raw) => raw
                .parse()
                .unwrap_or_else(|_| self.usage_error(&format!("--seed: not a u64: {raw:?}"))),
        }
    }

    /// A generic `usize` flag with a default.
    pub fn usize_of(&self, flag: &str, default: usize) -> usize {
        match self.value_of(flag) {
            None => default,
            Some(raw) => raw
                .parse()
                .unwrap_or_else(|_| self.usage_error(&format!("--{flag}: not a usize: {raw:?}"))),
        }
    }

    /// A generic `u64` flag with a default.
    pub fn u64_of(&self, flag: &str, default: u64) -> u64 {
        match self.value_of(flag) {
            None => default,
            Some(raw) => raw
                .parse()
                .unwrap_or_else(|_| self.usage_error(&format!("--{flag}: not a u64: {raw:?}"))),
        }
    }

    /// A generic finite `f64` flag with a default.
    pub fn f64_of(&self, flag: &str, default: f64) -> f64 {
        match self.value_of(flag) {
            None => default,
            Some(raw) => match raw.parse::<f64>() {
                Ok(x) if x.is_finite() => x,
                _ => self.usage_error(&format!("--{flag}: not a finite number: {raw:?}")),
            },
        }
    }

    /// The `--json` output path, if requested.
    pub fn json_path(&self) -> Option<&str> {
        self.value_of("json")
    }

    /// Writes the report to the `--json` path when one was given.
    pub fn write_json(&self, report: &Json) {
        if let Some(path) = self.json_path() {
            write_json_report(path, &report.render());
        }
    }
}

fn usage(binary: &str, known: &[&'static str], booleans: &[&'static str], message: &str) -> String {
    format!(
        "{binary}: {message}\nusage: {binary} {}",
        known
            .iter()
            .map(|f| {
                if booleans.contains(f) {
                    format!("[--{f}]")
                } else {
                    format!("[--{f} <value>]")
                }
            })
            .collect::<Vec<_>>()
            .join(" ")
    )
}

/// Writes an already-rendered JSON document to `path`, aborting the
/// experiment on I/O errors.
pub fn write_json_report(path: &str, body: &str) {
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("cannot write JSON report to {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote JSON report to {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> ExpArgs {
        try_args(v).expect("valid arguments")
    }

    fn try_args(v: &[&str]) -> Result<ExpArgs, String> {
        ExpArgs::try_from_vec(
            "exp_test",
            v.iter().map(|s| s.to_string()).collect(),
            &["rate"],
            &["list"],
        )
    }

    #[test]
    fn defaults_and_values() {
        let a = args(&[]);
        assert_eq!(a.seed(42), 42);
        assert_eq!(a.json_path(), None);
        assert!(!a.has("list"));

        let a = args(&["--seed", "7", "--json", "/tmp/out.json", "--list"]);
        assert_eq!(a.seed(42), 7);
        assert_eq!(a.json_path(), Some("/tmp/out.json"));
        assert!(a.has("list"));
        assert_eq!(a.usize_of("seed", 0), 7);
        assert_eq!(a.usize_of("missing", 9), 9);
        assert_eq!(a.u64_of("seed", 0), 7);
        assert_eq!(a.f64_of("rate", 0.25), 0.25);
    }

    #[test]
    fn equals_syntax_and_repeats() {
        let a = args(&["--seed=9", "--rate=0.75"]);
        assert_eq!(a.seed(0), 9);
        assert_eq!(a.f64_of("rate", 0.0), 0.75);
        // The last spelling wins.
        let a = args(&["--seed", "1", "--seed=2"]);
        assert_eq!(a.seed(0), 2);
    }

    #[test]
    fn unknown_flags_are_rejected_with_usage() {
        let err = try_args(&["--nope"]).unwrap_err();
        assert!(err.contains("unknown flag --nope"), "{err}");
        assert!(err.contains("usage: exp_test"), "{err}");
        assert!(err.contains("--seed"), "{err}");
        // The `=` spelling reports the flag name, not the whole token.
        let err = try_args(&["--bogus=3"]).unwrap_err();
        assert!(err.contains("unknown flag --bogus"), "{err}");
        assert!(try_args(&["--="]).is_err());
    }

    #[test]
    fn stray_positionals_are_rejected() {
        let err = try_args(&["paper-baseline"]).unwrap_err();
        assert!(err.contains("unexpected argument"), "{err}");
        // A token after a flag that already has a value is stray too.
        let err = try_args(&["--seed=1", "extra"]).unwrap_err();
        assert!(err.contains("unexpected argument \"extra\""), "{err}");
        // ...but a token right after a bare value flag is its value.
        assert!(try_args(&["--seed", "1"]).is_ok());
    }

    #[test]
    fn boolean_flags_never_absorb_values() {
        // A forgotten flag name must not vanish into a boolean flag
        // (e.g. `exp_perf --smoke BENCH_1.json` missing `--baseline`).
        let err = try_args(&["--list", "whoops.json"]).unwrap_err();
        assert!(err.contains("unexpected argument \"whoops.json\""), "{err}");
        let err = try_args(&["--list=yes"]).unwrap_err();
        assert!(err.contains("--list does not take a value"), "{err}");
        // Usage renders booleans without a value placeholder.
        assert!(err.contains("[--list]"), "{err}");
        assert!(err.contains("[--rate <value>]"), "{err}");
    }

    #[test]
    fn json_report_round_trips_to_disk() {
        let path = std::env::temp_dir().join("rtds_args_test.json");
        let path = path.to_str().unwrap();
        write_json_report(path, &Json::object(vec![("x", Json::Int(1))]).render());
        let body = std::fs::read_to_string(path).unwrap();
        assert_eq!(body, "{\n  \"x\": 1\n}\n");
        let _ = std::fs::remove_file(path);
    }
}
