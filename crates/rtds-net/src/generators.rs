//! Topology generators.
//!
//! The paper targets "arbitrary wide networks", so the experiment harness
//! exercises RTDS on a spectrum of topologies: regular (rings, grids, tori,
//! hypercubes), random flat (connected Erdős–Rényi, random geometric) and
//! heavy-tailed (Barabási–Albert), plus degenerate shapes (lines, stars,
//! trees, complete graphs) that stress the Computing-Sphere construction in
//! different ways.
//!
//! Every generator takes a [`DelayDistribution`] for link delays and a seed,
//! and always returns a *connected* network.

use crate::topology::{Network, SiteId};
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Distribution of link propagation delays.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DelayDistribution {
    /// All links have the same delay.
    Constant(f64),
    /// Delays drawn uniformly from `[min, max]`.
    Uniform { min: f64, max: f64 },
    /// Delays proportional to Euclidean distance (only meaningful for the
    /// random-geometric generator; other generators fall back to the scale
    /// value as a constant delay).
    Euclidean { scale: f64 },
}

impl DelayDistribution {
    fn sample(&self, rng: &mut StdRng) -> f64 {
        match *self {
            DelayDistribution::Constant(d) => d,
            DelayDistribution::Uniform { min, max } => {
                if max > min {
                    rng.random_range(min..=max)
                } else {
                    min
                }
            }
            DelayDistribution::Euclidean { scale } => scale,
        }
    }

    /// Mean delay of the distribution.
    pub fn mean(&self) -> f64 {
        match *self {
            DelayDistribution::Constant(d) => d,
            DelayDistribution::Uniform { min, max } => 0.5 * (min + max),
            DelayDistribution::Euclidean { scale } => scale,
        }
    }
}

/// A ring of `n` sites.
pub fn ring(n: usize, delays: DelayDistribution, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Network::new(n);
    if n <= 1 {
        return net;
    }
    for i in 0..n {
        let j = (i + 1) % n;
        if i < j || n > 2 && j == 0 {
            let d = delays.sample(&mut rng);
            let _ = net.add_link(SiteId(i), SiteId(j), d);
        }
    }
    net
}

/// A line (path) of `n` sites.
pub fn line(n: usize, delays: DelayDistribution, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Network::new(n);
    for i in 1..n {
        let d = delays.sample(&mut rng);
        net.add_link(SiteId(i - 1), SiteId(i), d).unwrap();
    }
    net
}

/// A star: site 0 is the hub, all others are leaves.
pub fn star(n: usize, delays: DelayDistribution, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Network::new(n);
    for i in 1..n {
        let d = delays.sample(&mut rng);
        net.add_link(SiteId(0), SiteId(i), d).unwrap();
    }
    net
}

/// A complete graph on `n` sites.
pub fn complete(n: usize, delays: DelayDistribution, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Network::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = delays.sample(&mut rng);
            net.add_link(SiteId(i), SiteId(j), d).unwrap();
        }
    }
    net
}

/// A `width × height` 2-D grid; `wrap = true` produces a torus.
pub fn grid(
    width: usize,
    height: usize,
    wrap: bool,
    delays: DelayDistribution,
    seed: u64,
) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = width * height;
    let mut net = Network::new(n);
    let at = |x: usize, y: usize| SiteId(y * width + x);
    for y in 0..height {
        for x in 0..width {
            // Right neighbor.
            if x + 1 < width {
                let d = delays.sample(&mut rng);
                net.add_link(at(x, y), at(x + 1, y), d).unwrap();
            } else if wrap && width > 2 {
                let d = delays.sample(&mut rng);
                net.add_link(at(x, y), at(0, y), d).unwrap();
            }
            // Down neighbor.
            if y + 1 < height {
                let d = delays.sample(&mut rng);
                net.add_link(at(x, y), at(x, y + 1), d).unwrap();
            } else if wrap && height > 2 {
                let d = delays.sample(&mut rng);
                net.add_link(at(x, y), at(x, 0), d).unwrap();
            }
        }
    }
    net
}

/// A hypercube of dimension `dim` (`2^dim` sites).
pub fn hypercube(dim: usize, delays: DelayDistribution, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 1usize << dim;
    let mut net = Network::new(n);
    for i in 0..n {
        for b in 0..dim {
            let j = i ^ (1 << b);
            if i < j {
                let d = delays.sample(&mut rng);
                net.add_link(SiteId(i), SiteId(j), d).unwrap();
            }
        }
    }
    net
}

/// A uniformly random spanning tree on `n` sites (random attachment).
pub fn random_tree(n: usize, delays: DelayDistribution, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Network::new(n);
    for i in 1..n {
        let parent = rng.random_range(0..i);
        let d = delays.sample(&mut rng);
        net.add_link(SiteId(parent), SiteId(i), d).unwrap();
    }
    net
}

/// A connected Erdős–Rényi graph: a random spanning tree plus each remaining
/// pair linked with probability `p`.
pub fn erdos_renyi_connected(n: usize, p: f64, delays: DelayDistribution, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Network::new(n);
    // Spanning tree first (guarantees connectivity).
    for i in 1..n {
        let parent = rng.random_range(0..i);
        let d = delays.sample(&mut rng);
        net.add_link(SiteId(parent), SiteId(i), d).unwrap();
    }
    let p = p.clamp(0.0, 1.0);
    for i in 0..n {
        for j in (i + 1)..n {
            if !net.has_link(SiteId(i), SiteId(j)) && rng.random_bool(p) {
                let d = delays.sample(&mut rng);
                net.add_link(SiteId(i), SiteId(j), d).unwrap();
            }
        }
    }
    net
}

/// A Barabási–Albert preferential-attachment graph: each new site attaches to
/// `m` existing sites chosen proportionally to their degree.
pub fn barabasi_albert(n: usize, m: usize, delays: DelayDistribution, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = m.max(1);
    let mut net = Network::new(n);
    if n == 0 {
        return net;
    }
    let core = (m + 1).min(n);
    // Start from a small complete core.
    for i in 0..core {
        for j in (i + 1)..core {
            let d = delays.sample(&mut rng);
            net.add_link(SiteId(i), SiteId(j), d).unwrap();
        }
    }
    // Degree-proportional attachment via a repeated-endpoint urn.
    let mut urn: Vec<usize> = Vec::new();
    for i in 0..core {
        for _ in 0..net.degree(SiteId(i)).max(1) {
            urn.push(i);
        }
    }
    for i in core..n {
        let mut targets = Vec::new();
        let mut guard = 0;
        while targets.len() < m.min(i) && guard < 100 * m {
            guard += 1;
            let pick = urn[rng.random_range(0..urn.len())];
            if pick != i && !targets.contains(&pick) {
                targets.push(pick);
            }
        }
        if targets.is_empty() {
            targets.push(i - 1);
        }
        for &t in &targets {
            let d = delays.sample(&mut rng);
            let _ = net.add_link(SiteId(i), SiteId(t), d);
            urn.push(t);
            urn.push(i);
        }
    }
    net
}

/// A random geometric graph: `n` sites at uniform positions in the unit
/// square, linked when their Euclidean distance is at most `radius`
/// (Euclidean delays use distance × scale). Extra nearest-neighbour links are
/// added to guarantee connectivity.
pub fn random_geometric(n: usize, radius: f64, delays: DelayDistribution, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Network::new(n);
    if n == 0 {
        return net;
    }
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
        .collect();
    let dist = |i: usize, j: usize| -> f64 {
        let dx = pts[i].0 - pts[j].0;
        let dy = pts[i].1 - pts[j].1;
        (dx * dx + dy * dy).sqrt()
    };
    let delay_of = |d: f64, rng: &mut StdRng| -> f64 {
        match delays {
            DelayDistribution::Euclidean { scale } => (d * scale).max(1e-6),
            other => other.sample(rng),
        }
    };
    for i in 0..n {
        for j in (i + 1)..n {
            let d = dist(i, j);
            if d <= radius {
                let delay = delay_of(d, &mut rng);
                net.add_link(SiteId(i), SiteId(j), delay).unwrap();
            }
        }
    }
    // Stitch disconnected components together through nearest pairs.
    loop {
        let comp = components(&net);
        if comp.component_count <= 1 {
            break;
        }
        // Find the closest pair of sites in different components.
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n {
            for j in (i + 1)..n {
                if comp.labels[i] != comp.labels[j] {
                    let d = dist(i, j);
                    if best.map(|(_, _, bd)| d < bd).unwrap_or(true) {
                        best = Some((i, j, d));
                    }
                }
            }
        }
        let (i, j, d) = best.expect("disconnected network must have a bridging pair");
        let delay = delay_of(d, &mut rng);
        net.add_link(SiteId(i), SiteId(j), delay).unwrap();
    }
    net
}

struct Components {
    labels: Vec<usize>,
    component_count: usize,
}

fn components(net: &Network) -> Components {
    let n = net.site_count();
    let mut labels = vec![usize::MAX; n];
    let mut count = 0;
    for start in 0..n {
        if labels[start] != usize::MAX {
            continue;
        }
        let label = count;
        count += 1;
        let mut stack = vec![SiteId(start)];
        labels[start] = label;
        while let Some(u) = stack.pop() {
            for (v, _) in net.neighbors(u) {
                if labels[v.0] == usize::MAX {
                    labels[v.0] = label;
                    stack.push(*v);
                }
            }
        }
    }
    Components {
        labels,
        component_count: count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D: DelayDistribution = DelayDistribution::Constant(1.0);

    #[test]
    fn ring_topology() {
        let net = ring(6, D, 0);
        assert_eq!(net.site_count(), 6);
        assert_eq!(net.link_count(), 6);
        assert!(net.is_connected());
        for s in net.sites() {
            assert_eq!(net.degree(s), 2);
        }
        assert_eq!(ring(1, D, 0).link_count(), 0);
        assert_eq!(ring(2, D, 0).link_count(), 1);
        assert_eq!(ring(3, D, 0).link_count(), 3);
    }

    #[test]
    fn line_and_star() {
        let l = line(5, D, 0);
        assert_eq!(l.link_count(), 4);
        assert_eq!(l.hop_diameter(), Some(4));
        let s = star(5, D, 0);
        assert_eq!(s.link_count(), 4);
        assert_eq!(s.degree(SiteId(0)), 4);
        assert_eq!(s.hop_diameter(), Some(2));
    }

    #[test]
    fn complete_graph() {
        let c = complete(5, D, 0);
        assert_eq!(c.link_count(), 10);
        assert_eq!(c.hop_diameter(), Some(1));
    }

    #[test]
    fn grid_and_torus() {
        let g = grid(4, 3, false, D, 0);
        assert_eq!(g.site_count(), 12);
        assert_eq!(g.link_count(), 3 * 3 + 4 * 2); // horizontal 3*3, vertical 4*2
        assert!(g.is_connected());
        let t = grid(4, 4, true, D, 0);
        assert_eq!(t.site_count(), 16);
        assert_eq!(t.link_count(), 32);
        for s in t.sites() {
            assert_eq!(t.degree(s), 4);
        }
    }

    #[test]
    fn hypercube_topology() {
        let h = hypercube(4, D, 0);
        assert_eq!(h.site_count(), 16);
        assert_eq!(h.link_count(), 32);
        for s in h.sites() {
            assert_eq!(h.degree(s), 4);
        }
        assert_eq!(h.hop_diameter(), Some(4));
    }

    #[test]
    fn random_tree_is_a_tree() {
        for seed in 0..5 {
            let t = random_tree(20, D, seed);
            assert_eq!(t.link_count(), 19);
            assert!(t.is_connected());
        }
    }

    #[test]
    fn erdos_renyi_is_connected() {
        for seed in 0..5 {
            let g = erdos_renyi_connected(30, 0.05, D, seed);
            assert!(g.is_connected());
            assert!(g.link_count() >= 29);
        }
    }

    #[test]
    fn barabasi_albert_is_connected_and_heavy_tailed() {
        let g = barabasi_albert(100, 2, D, 3);
        assert!(g.is_connected());
        assert!(g.link_count() >= 99);
        let max_degree = g.sites().map(|s| g.degree(s)).max().unwrap();
        let min_degree = g.sites().map(|s| g.degree(s)).min().unwrap();
        assert!(
            max_degree >= 4 * min_degree.max(1),
            "expected a hub: max {max_degree}, min {min_degree}"
        );
    }

    #[test]
    fn random_geometric_is_connected() {
        for seed in 0..5 {
            let g = random_geometric(40, 0.18, DelayDistribution::Euclidean { scale: 10.0 }, seed);
            assert!(g.is_connected(), "seed {seed}");
            for (_, _, d) in g.links() {
                assert!(d > 0.0);
            }
        }
    }

    #[test]
    fn delay_distributions() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(DelayDistribution::Constant(2.0).sample(&mut rng), 2.0);
        assert_eq!(DelayDistribution::Constant(2.0).mean(), 2.0);
        let u = DelayDistribution::Uniform { min: 1.0, max: 3.0 };
        assert_eq!(u.mean(), 2.0);
        for _ in 0..50 {
            let d = u.sample(&mut rng);
            assert!((1.0..=3.0).contains(&d));
        }
        let degenerate = DelayDistribution::Uniform { min: 2.0, max: 2.0 };
        assert_eq!(degenerate.sample(&mut rng), 2.0);
        assert_eq!(DelayDistribution::Euclidean { scale: 4.0 }.mean(), 4.0);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = erdos_renyi_connected(
            25,
            0.1,
            DelayDistribution::Uniform { min: 1.0, max: 5.0 },
            7,
        );
        let b = erdos_renyi_connected(
            25,
            0.1,
            DelayDistribution::Uniform { min: 1.0, max: 5.0 },
            7,
        );
        assert_eq!(a, b);
    }
}
