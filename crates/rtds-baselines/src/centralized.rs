//! Centralized omniscient oracle.
//!
//! A scheduler with global, instantaneous knowledge of every site's exact
//! scheduling plan and of all pairwise communication delays, and with zero
//! protocol cost. For every arriving job it first tries to place the whole
//! DAG on the best single site, then falls back to a global list-scheduling
//! split across all sites (earliest-finish-time against the *exact* plans,
//! exact pairwise delays). No on-line distributed policy can be expected to
//! beat it, so it upper-bounds the achievable guarantee ratio in the
//! comparison figures.

use crate::policy::PolicyReport;
use rtds_graph::{critical_path_tasks, Job};
use rtds_net::dijkstra::all_pairs_shortest_paths;
use rtds_net::{Network, SiteId};
use rtds_sched::admission::priority_order;
use rtds_sched::executor;
use rtds_sched::{ProtocolScheduler, Reservation, SchedulePlan, Scheduler, SiteResources};

/// Runs the centralized oracle over a workload.
pub fn run_centralized_oracle(network: &Network, jobs: &[Job], preemptive: bool) -> PolicyReport {
    let aps = all_pairs_shortest_paths(network);
    // Committed state lives in one single-core protocol scheduler per site;
    // the multi-site split explores scratch copies of their exact plans.
    let mut scheds: Vec<ProtocolScheduler> = network
        .sites()
        .map(|s| ProtocolScheduler::new(SiteResources::default(), network.speed(s), preemptive))
        .collect();
    let mut report = PolicyReport::default();
    let mut ordered: Vec<&Job> = jobs.iter().collect();
    ordered.sort_by(|a, b| {
        a.arrival_time
            .partial_cmp(&b.arrival_time)
            .unwrap()
            .then(a.id.cmp(&b.id))
    });
    let mut accepted = Vec::new();
    for job in ordered {
        report.submitted += 1;
        let now = job.arrival_time;
        let arrival = SiteId(job.arrival_site);
        // Whole-DAG placement: pick the single site with the earliest
        // completion, accounting for the one-way transfer delay from the
        // arrival site.
        let mut best: Option<(SiteId, rtds_sched::DagSchedule)> = None;
        for s in network.sites() {
            let transfer = aps[arrival.0].dist[s.0];
            if !transfer.is_finite() {
                continue;
            }
            if let Some(adm) = scheds[s.0].admit_dag(job, now + transfer, None) {
                let better = best
                    .as_ref()
                    .map(|(_, b)| adm.completion < b.completion - 1e-12)
                    .unwrap_or(true);
                if better {
                    best = Some((s, adm));
                }
            }
        }
        if let Some((s, admission)) = best {
            scheds[s.0]
                .reserve_dag(&admission)
                .expect("admission placements fit");
            if s == arrival {
                report.accepted_locally += 1;
            } else {
                report.accepted_remotely += 1;
            }
            accepted.push((job.id, job.deadline()));
            continue;
        }
        // Multi-site split with exact knowledge.
        let exact_plans: Vec<SchedulePlan> =
            scheds.iter().map(|s| s.core_plans()[0].clone()).collect();
        if let Some(placements) =
            split_across_sites(network, &aps, &exact_plans, job, now, preemptive)
        {
            let remote = placements.iter().any(|(site, _)| *site != arrival);
            for (site, reservation) in &placements {
                scheds[site.0]
                    .reserve(&[rtds_sched::Placement {
                        core: 0,
                        reservation: *reservation,
                    }])
                    .expect("oracle placements fit");
            }
            if remote {
                report.accepted_remotely += 1;
            } else {
                report.accepted_locally += 1;
            }
            accepted.push((job.id, job.deadline()));
            continue;
        }
        report.rejected += 1;
    }
    let plan_refs: Vec<&SchedulePlan> = scheds.iter().flat_map(|s| s.core_plans()).collect();
    for (job, deadline) in accepted {
        if !executor::meets_deadline(&plan_refs, job, deadline) {
            report.deadline_misses += 1;
        }
    }
    report
}

/// Greedy global list scheduling of one DAG across all sites, using exact
/// plans and exact pairwise delays. Returns the per-site reservations if the
/// whole DAG fits before its deadline.
fn split_across_sites(
    network: &Network,
    aps: &[rtds_net::dijkstra::ShortestPaths],
    plans: &[SchedulePlan],
    job: &Job,
    now: f64,
    preemptive: bool,
) -> Option<Vec<(SiteId, Reservation)>> {
    let graph = &job.graph;
    let n_tasks = graph.task_count();
    if n_tasks == 0 {
        return Some(Vec::new());
    }
    let arrival = SiteId(job.arrival_site);
    let deadline = job.deadline();
    let info = critical_path_tasks(graph);
    let order = priority_order(graph, &info.upward);
    let mut scratch: Vec<SchedulePlan> = plans.to_vec();
    let mut placed_site = vec![SiteId(0); n_tasks];
    let mut finish = vec![0.0f64; n_tasks];
    let mut out = Vec::new();
    // The preemptive variant is conservative here: the oracle still places
    // each task contiguously (its purpose is an acceptance upper bound for
    // the common non-preemptive configuration).
    let _ = preemptive;
    for t in order {
        let cost = graph.cost(t);
        let mut best: Option<(SiteId, f64, f64)> = None;
        for s in network.sites() {
            let transfer = aps[arrival.0].dist[s.0];
            if !transfer.is_finite() {
                continue;
            }
            let mut ready = now.max(job.release()) + transfer;
            for p in graph.predecessors(t) {
                let delay = if placed_site[p.0] == s {
                    0.0
                } else {
                    aps[placed_site[p.0].0].dist[s.0]
                };
                ready = ready.max(finish[p.0] + delay);
            }
            let duration = cost / network.speed(s);
            if let Some(start) = scratch[s.0].earliest_fit(ready, deadline, duration) {
                let end = start + duration;
                let better = best.map(|(_, _, e)| end < e - 1e-12).unwrap_or(true);
                if better {
                    best = Some((s, start, end));
                }
            }
        }
        let (s, start, end) = best?;
        let reservation = Reservation {
            job: job.id,
            task: t,
            start,
            end,
        };
        scratch[s.0].insert(reservation).ok()?;
        placed_site[t.0] = s;
        finish[t.0] = end;
        out.push((s, reservation));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local_only::run_local_only;
    use rtds_graph::{JobId, JobParams, TaskGraph, TaskId};
    use rtds_net::generators::{ring, DelayDistribution};

    fn chain_job(id: u64, costs: &[f64], release: f64, deadline: f64, site: usize) -> Job {
        let mut g = TaskGraph::from_costs(costs);
        for i in 1..costs.len() {
            g.add_edge(TaskId(i - 1), TaskId(i)).unwrap();
        }
        Job::new(JobId(id), g, JobParams::new(release, deadline), site)
    }

    fn fork_job(id: u64, width: usize, cost: f64, deadline: f64, site: usize) -> Job {
        let mut g = TaskGraph::new();
        let src = g.add_task(1.0);
        let sink_costs: Vec<_> = (0..width).map(|_| g.add_task(cost)).collect();
        let sink = g.add_task(1.0);
        for t in &sink_costs {
            g.add_edge(src, *t).unwrap();
            g.add_edge(*t, sink).unwrap();
        }
        Job::new(JobId(id), g, JobParams::new(0.0, deadline), site)
    }

    #[test]
    fn oracle_dominates_local_only() {
        let net = ring(6, DelayDistribution::Constant(1.0), 0);
        let jobs: Vec<Job> = (0..8)
            .map(|i| chain_job(i, &[30.0], (i / 2) as f64, (i / 2) as f64 + 40.0, 0))
            .collect();
        let local = run_local_only(&net, &jobs, false);
        let oracle = run_centralized_oracle(&net, &jobs, false);
        assert!(oracle.accepted() >= local.accepted());
        assert!(oracle.accepted() > local.accepted(), "oracle must offload");
        assert_eq!(oracle.deadline_misses, 0);
        assert_eq!(oracle.distribution_messages, 0);
    }

    #[test]
    fn oracle_splits_wide_jobs_across_sites() {
        // A fork-join of 6 branches of 30 units with a 45-unit window cannot
        // run on one site (182 serial units) but fits when split.
        let net = ring(8, DelayDistribution::Constant(1.0), 0);
        let jobs = vec![fork_job(1, 6, 30.0, 45.0, 0)];
        let oracle = run_centralized_oracle(&net, &jobs, false);
        assert_eq!(oracle.accepted(), 1);
        assert_eq!(oracle.accepted_remotely, 1);
        assert_eq!(oracle.deadline_misses, 0);
        let local = run_local_only(&net, &jobs, false);
        assert_eq!(local.accepted(), 0);
    }

    #[test]
    fn impossible_jobs_are_still_rejected() {
        let net = ring(4, DelayDistribution::Constant(1.0), 0);
        let jobs = vec![chain_job(1, &[100.0], 0.0, 20.0, 0)];
        let oracle = run_centralized_oracle(&net, &jobs, false);
        assert_eq!(oracle.rejected, 1);
        assert_eq!(oracle.accepted(), 0);
    }

    #[test]
    fn empty_graph_jobs_are_trivially_accepted() {
        let net = ring(3, DelayDistribution::Constant(1.0), 0);
        let jobs = vec![Job::new(
            JobId(1),
            TaskGraph::new(),
            JobParams::new(0.0, 10.0),
            1,
        )];
        let oracle = run_centralized_oracle(&net, &jobs, false);
        assert_eq!(oracle.accepted(), 1);
    }
}
