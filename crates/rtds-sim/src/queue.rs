//! The slab-backed calendar queue behind [`crate::engine::Simulator`].
//!
//! [`crate::event::EventQueue`] (a `BinaryHeap<Event<M>>`) defines the
//! engine's total order: events pop by `(time, class, seq)` — time
//! ascending, then [`EventPayload::class_rank`] (faults before externals
//! before deliveries/timers), then insertion sequence. That structure moves
//! whole `Event<M>` values (≈ 100 bytes for the production message type)
//! on every sift, and costs `O(log n)` comparisons per operation.
//!
//! [`CalendarQueue`] keeps the *identical* pop order while making the hot
//! loop allocation-free and mostly `O(1)`:
//!
//! * **Packed keys.** Each pending event is a 128-bit key
//!   `time_bits(time) << 64 | class_rank << 62 | seq`, where `time_bits`
//!   is the standard IEEE-754 total-order mapping (flip all bits of
//!   negatives, set the sign bit of non-negatives, normalize `-0.0` to
//!   `+0.0`). Unsigned comparison of keys is exactly the
//!   `(time, class, seq)` order of the heap — the differential suite in
//!   `tests/event_core.rs` pins this against the retained heap oracle.
//! * **Slab payloads.** Payloads live in a slab of reusable slots; the
//!   priority structure only ever moves `(u128, u32)` pairs. Slots are
//!   recycled through a free list, and every slot carries a generation
//!   counter so a stale [`EventId`] (cancelled, or already delivered) can
//!   never reach a recycled payload.
//! * **Calendar buckets.** Future keys are binned by
//!   `floor(time / width)` into a bounded window of buckets
//!   (`NUM_BUCKETS`); the earliest bucket is kept as a small binary
//!   min-heap (the *serving* set), and keys beyond the window wait in an
//!   overflow list. When the window is exhausted the calendar re-anchors
//!   on the overflow and re-tunes the bucket width from the observed time
//!   span — all of it a pure function of the push/pop history, so runs
//!   stay deterministic.
//!
//! Why the pop order cannot depend on the calendar layout: `bucket_of` is
//! a monotone function of time, so every key in a future bucket has a
//! strictly greater time than every key in the serving set, and keys with
//! equal times always land in the same bucket, where the serving heap
//! orders them by the packed key. The snapshot layer
//! ([`crate::snapshot`]) relies on this: a snapshot stores only the sorted
//! event list (not the bucket layout), and a restored queue — whatever
//! width it re-tunes to — pops the same sequence.

use crate::event::{Event, EventPayload};
use rtds_net::SiteId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Number of calendar buckets in the active window. Keys further than
/// `NUM_BUCKETS × width` ahead of the serving bucket wait in the overflow
/// list until the calendar re-anchors.
const NUM_BUCKETS: i64 = 512;

/// Lower bound for the re-tuned bucket width (guards against a degenerate
/// zero-span overflow collapsing the calendar).
const MIN_WIDTH: f64 = 1e-9;

/// Handle to a pending event in the slab (index + generation). A handle
/// goes stale as soon as the event is delivered or cancelled; stale
/// handles are rejected by [`CalendarQueue::cancel`] and can never observe
/// a recycled slot's new payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    index: u32,
    gen: u32,
}

/// One slab slot: either a pending event or a link in the free list.
#[derive(Debug, Clone)]
enum Slot<M> {
    Occupied {
        gen: u32,
        seq: u64,
        time: f64,
        target: SiteId,
        payload: EventPayload<M>,
    },
    Free {
        gen: u32,
        next_free: u32,
    },
}

/// Maps a finite `f64` timestamp to a `u64` whose unsigned order is the
/// numeric order (IEEE-754 total-order trick; `-0.0` normalized to `+0.0`
/// so the two zeros compare equal, exactly as the heap's `partial_cmp`
/// treats them).
#[inline]
fn time_bits(time: f64) -> u64 {
    let time = if time == 0.0 { 0.0 } else { time };
    let bits = time.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Packs `(time, class, seq)` into the 128-bit comparison key.
#[inline]
fn pack_key(time: f64, class: u8, seq: u64) -> u128 {
    debug_assert!(seq < (1 << 62), "event sequence space exhausted");
    ((time_bits(time) as u128) << 64) | ((class as u128) << 62) | seq as u128
}

/// The slab-backed calendar queue. Generic over the protocol message type
/// `M`; see the module docs for the design.
#[derive(Debug, Clone)]
pub struct CalendarQueue<M> {
    slab: Vec<Slot<M>>,
    free_head: u32,
    /// Pending (not cancelled, not delivered) events.
    live: usize,
    next_seq: u64,
    /// Keys due in the current serving bucket (or earlier), as a min-heap.
    serving: BinaryHeap<Reverse<(u128, u32)>>,
    /// Consecutive buckets after the serving one: `buckets[i]` holds keys
    /// with `bucket_of(time) == cur_bucket + 1 + i`, unsorted.
    buckets: std::collections::VecDeque<Vec<(u128, u32)>>,
    /// Recycled bucket vectors (keeps steady-state pushes allocation-free).
    spare: Vec<Vec<(u128, u32)>>,
    /// Keys beyond the bucket window.
    overflow: Vec<(u128, u32)>,
    cur_bucket: i64,
    /// Last bucket index of the current window (fixed at anchor time).
    /// Every overflow key has a bucket index past `window_end`, so it is
    /// strictly later than every bucketed key — even after `cur_bucket`
    /// advances within the window.
    window_end: i64,
    width: f64,
}

const NO_SLOT: u32 = u32::MAX;

impl<M> CalendarQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CalendarQueue::with_capacity(0)
    }

    /// Creates an empty queue with slab space for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        CalendarQueue {
            slab: Vec::with_capacity(capacity),
            free_head: NO_SLOT,
            live: 0,
            next_seq: 0,
            serving: BinaryHeap::with_capacity(64),
            buckets: std::collections::VecDeque::new(),
            spare: Vec::new(),
            overflow: Vec::new(),
            cur_bucket: 0,
            window_end: NUM_BUCKETS,
            width: 0.25,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The sequence number the next push will be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Forces the sequence counter (snapshot restore only; panics if the
    /// queue already handed out sequence numbers at or past `seq`).
    pub fn set_next_seq(&mut self, seq: u64) {
        assert!(
            seq >= self.next_seq,
            "set_next_seq would reuse sequence numbers"
        );
        self.next_seq = seq;
    }

    #[inline]
    fn bucket_of(&self, time: f64) -> i64 {
        (time / self.width).floor() as i64
    }

    fn alloc_slot(
        &mut self,
        seq: u64,
        time: f64,
        target: SiteId,
        payload: EventPayload<M>,
    ) -> EventId {
        if self.free_head != NO_SLOT {
            let index = self.free_head;
            let (gen, next_free) = match self.slab[index as usize] {
                Slot::Free { gen, next_free } => (gen, next_free),
                Slot::Occupied { .. } => unreachable!("free list points at occupied slot"),
            };
            self.free_head = next_free;
            self.slab[index as usize] = Slot::Occupied {
                gen,
                seq,
                time,
                target,
                payload,
            };
            EventId { index, gen }
        } else {
            let index = self.slab.len() as u32;
            self.slab.push(Slot::Occupied {
                gen: 0,
                seq,
                time,
                target,
                payload,
            });
            EventId { index, gen: 0 }
        }
    }

    fn free_slot(&mut self, index: u32) {
        let gen = match self.slab[index as usize] {
            Slot::Occupied { gen, .. } => gen,
            Slot::Free { .. } => unreachable!("double free of slab slot"),
        };
        self.slab[index as usize] = Slot::Free {
            gen: gen.wrapping_add(1),
            next_free: self.free_head,
        };
        self.free_head = index;
    }

    /// Files a packed key into the serving heap, a calendar bucket or the
    /// overflow list.
    fn file(&mut self, key: u128, slot: u32, time: f64) {
        let b = self.bucket_of(time);
        if b <= self.cur_bucket {
            self.serving.push(Reverse((key, slot)));
        } else if b <= self.window_end {
            let idx = (b - self.cur_bucket - 1) as usize;
            while self.buckets.len() <= idx {
                let v = self.spare.pop().unwrap_or_default();
                self.buckets.push_back(v);
            }
            self.buckets[idx].push((key, slot));
        } else {
            self.overflow.push((key, slot));
        }
    }

    /// Schedules an event; the next sequence number is assigned
    /// automatically (same contract as `EventQueue::push`). Returns a
    /// handle usable with [`CalendarQueue::cancel`].
    pub fn push(&mut self, time: f64, target: SiteId, payload: EventPayload<M>) -> EventId {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_with_seq(time, seq, target, payload)
    }

    /// Schedules an event under an explicit sequence number (snapshot
    /// restore). Does not advance the automatic counter; callers must
    /// finish with [`CalendarQueue::set_next_seq`].
    pub fn push_raw(
        &mut self,
        time: f64,
        seq: u64,
        target: SiteId,
        payload: EventPayload<M>,
    ) -> EventId {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        self.push_with_seq(time, seq, target, payload)
    }

    fn push_with_seq(
        &mut self,
        time: f64,
        seq: u64,
        target: SiteId,
        payload: EventPayload<M>,
    ) -> EventId {
        let class = payload.class_rank();
        let id = self.alloc_slot(seq, time, target, payload);
        let key = pack_key(time, class, seq);
        self.file(key, id.index, time);
        self.live += 1;
        id
    }

    /// Cancels a pending event. Returns `true` if the handle was live (the
    /// payload is dropped and the slot recycled); `false` if it was
    /// already delivered, cancelled, or never valid.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.slab.get(id.index as usize) {
            Some(Slot::Occupied { gen, .. }) if *gen == id.gen => {
                self.free_slot(id.index);
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Discards stale serving keys and advances the calendar until the
    /// serving heap holds the globally minimal live key (or the queue is
    /// empty).
    fn settle(&mut self) {
        loop {
            // Drop keys whose slab slot was cancelled (and possibly
            // recycled under a different sequence number) since filing.
            while let Some(&Reverse((key, slot))) = self.serving.peek() {
                let seq = (key & ((1 << 62) - 1)) as u64;
                let stale = !matches!(
                    self.slab.get(slot as usize),
                    Some(Slot::Occupied { seq: s, .. }) if *s == seq
                );
                if stale {
                    self.serving.pop();
                } else {
                    return;
                }
            }
            if self.live == 0 {
                // Nothing pending anywhere; recycle bucket storage. The
                // buckets and overflow may still hold stale keys from
                // cancelled events — discard them.
                while let Some(mut v) = self.buckets.pop_front() {
                    v.clear();
                    self.spare.push(v);
                }
                self.overflow.clear();
                return;
            }
            if let Some(mut front) = self.buckets.pop_front() {
                self.cur_bucket += 1;
                self.serving.extend(front.drain(..).map(Reverse));
                self.spare.push(front);
            } else {
                self.reanchor();
            }
        }
    }

    /// Re-anchors the calendar on the overflow list, re-tuning the bucket
    /// width from the observed span (a pure function of the pending keys,
    /// so deterministic).
    fn reanchor(&mut self) {
        debug_assert!(!self.overflow.is_empty());
        let min_bits = (self.overflow.iter().map(|&(k, _)| k).min().unwrap() >> 64) as u64;
        let max_bits = (self.overflow.iter().map(|&(k, _)| k).max().unwrap() >> 64) as u64;
        let tmin = bits_time(min_bits);
        let tmax = bits_time(max_bits);
        if tmax > tmin {
            self.width = ((tmax - tmin) / (NUM_BUCKETS as f64 / 2.0)).max(MIN_WIDTH);
        }
        self.cur_bucket = self.bucket_of(tmin);
        self.window_end = self.cur_bucket.saturating_add(NUM_BUCKETS);
        let pending = std::mem::take(&mut self.overflow);
        for (key, slot) in pending {
            let time = match self.slab.get(slot as usize) {
                Some(Slot::Occupied { seq, time, .. })
                    if *seq == (key & ((1 << 62) - 1)) as u64 =>
                {
                    *time
                }
                // Cancelled while waiting in the overflow: drop the key.
                _ => continue,
            };
            self.file(key, slot, time);
        }
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<f64> {
        self.settle();
        let &Reverse((key, _)) = self.serving.peek()?;
        Some(bits_time((key >> 64) as u64))
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<Event<M>> {
        self.settle();
        let Reverse((key, slot)) = self.serving.pop()?;
        let seq = (key & ((1 << 62) - 1)) as u64;
        let (time, target, payload) = self.take_slot(slot);
        self.live -= 1;
        Some(Event {
            time,
            seq,
            target,
            payload,
        })
    }

    /// Pops every event sharing the earliest pending timestamp (bit-equal
    /// times) into `batch`, up to `max` events. Events scheduled *during*
    /// the batch's dispatch carry higher sequence numbers, so deferring
    /// them to the next batch preserves the heap's pop order exactly.
    pub fn pop_batch(&mut self, batch: &mut Vec<Event<M>>, max: usize) {
        batch.clear();
        if max == 0 {
            return;
        }
        self.settle();
        let Some(&Reverse((first_key, _))) = self.serving.peek() else {
            return;
        };
        let batch_bits = (first_key >> 64) as u64;
        while batch.len() < max {
            match self.serving.peek() {
                Some(&Reverse((key, _))) if (key >> 64) as u64 == batch_bits => {}
                _ => break,
            }
            let Reverse((key, slot)) = self.serving.pop().expect("peeked key exists");
            let seq = (key & ((1 << 62) - 1)) as u64;
            // The serving heap only holds settled (non-stale) tops, but
            // keys below the top may have gone stale since settling.
            let fresh = matches!(
                self.slab.get(slot as usize),
                Some(Slot::Occupied { seq: s, .. }) if *s == seq
            );
            if !fresh {
                continue;
            }
            let (time, target, payload) = self.take_slot(slot);
            self.live -= 1;
            batch.push(Event {
                time,
                seq,
                target,
                payload,
            });
        }
    }

    fn take_slot(&mut self, slot: u32) -> (f64, SiteId, EventPayload<M>) {
        let gen = match &self.slab[slot as usize] {
            Slot::Occupied { gen, .. } => *gen,
            Slot::Free { .. } => unreachable!("popped key points at free slot"),
        };
        let taken = std::mem::replace(
            &mut self.slab[slot as usize],
            Slot::Free {
                gen: gen.wrapping_add(1),
                next_free: self.free_head,
            },
        );
        self.free_head = slot;
        match taken {
            Slot::Occupied {
                time,
                target,
                payload,
                ..
            } => (time, target, payload),
            Slot::Free { .. } => unreachable!(),
        }
    }

    /// Visits every pending event in pop order without disturbing the
    /// queue: `(time, seq, target, payload)`. Snapshot serialization uses
    /// this; restore re-pushes the list with [`CalendarQueue::push_raw`].
    pub fn for_each_sorted(&self, mut f: impl FnMut(f64, u64, SiteId, &EventPayload<M>)) {
        let mut keys: Vec<(u128, u32)> = Vec::with_capacity(self.live);
        keys.extend(self.serving.iter().map(|&Reverse(p)| p));
        for bucket in &self.buckets {
            keys.extend(bucket.iter().copied());
        }
        keys.extend(self.overflow.iter().copied());
        keys.sort_unstable();
        for (key, slot) in keys {
            let seq = (key & ((1 << 62) - 1)) as u64;
            if let Some(Slot::Occupied {
                seq: s,
                time,
                target,
                payload,
                ..
            }) = self.slab.get(slot as usize)
            {
                if *s == seq {
                    f(*time, seq, *target, payload);
                }
            }
        }
    }
}

impl<M> Default for CalendarQueue<M> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

/// Inverse of [`time_bits`].
#[inline]
fn bits_time(bits: u64) -> f64 {
    if bits >> 63 == 1 {
        f64::from_bits(bits ^ (1 << 63))
    } else {
        f64::from_bits(!bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;

    fn payload(tag: u32) -> EventPayload<u32> {
        EventPayload::External { message: tag }
    }

    #[test]
    fn key_order_is_time_class_seq() {
        let fault = pack_key(
            1.0,
            EventPayload::<u32>::Fault {
                fault: crate::faults::FaultEvent::SiteDown { site: SiteId(0) },
            }
            .class_rank(),
            5,
        );
        let external = pack_key(1.0, payload(0).class_rank(), 4);
        let deliver = pack_key(
            1.0,
            EventPayload::Deliver {
                from: SiteId(0),
                message: 0u32,
            }
            .class_rank(),
            3,
        );
        let later = pack_key(1.5, 0, 0);
        assert!(fault < external && external < deliver && deliver < later);
        // Equal time and class: sequence breaks the tie.
        assert!(pack_key(1.0, 2, 7) < pack_key(1.0, 2, 8));
        // Negative and zero timestamps order numerically; -0.0 == +0.0.
        assert!(pack_key(-1.0, 0, 0) < pack_key(-0.5, 0, 0));
        assert!(pack_key(-0.5, 0, 0) < pack_key(0.0, 0, 0));
        assert_eq!(time_bits(-0.0), time_bits(0.0));
        // The time mapping round-trips.
        for t in [-3.5, -0.0, 0.0, 1e-300, 2.25, 1e12] {
            assert_eq!(bits_time(time_bits(t)), if t == 0.0 { 0.0 } else { t });
        }
    }

    #[test]
    fn matches_heap_order_across_bucket_boundaries() {
        let times = [
            0.0, 0.1, 0.1, 5.0, 1000.0, 1000.0, 0.25, 3.75, 999.875, 0.1, 250.0, 0.5,
        ];
        let mut cal = CalendarQueue::new();
        let mut heap = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            cal.push(t, SiteId(i % 3), payload(i as u32));
            heap.push(t, SiteId(i % 3), payload(i as u32));
        }
        assert_eq!(cal.len(), heap.len());
        loop {
            match (cal.pop(), heap.pop()) {
                (Some(a), Some(b)) => {
                    assert_eq!(
                        (a.time, a.seq, a.target, a.payload),
                        (b.time, b.seq, b.target, b.payload)
                    );
                }
                (None, None) => break,
                (a, b) => panic!("length mismatch: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn interleaved_push_pop_reanchors() {
        let mut cal = CalendarQueue::new();
        let mut heap = EventQueue::new();
        // Push far-future events (overflow), drain a little, then push
        // near-term events, forcing re-anchor and width re-tuning.
        for i in 0..50u32 {
            let t = 1_000.0 + i as f64 * 17.0;
            cal.push(t, SiteId(0), payload(i));
            heap.push(t, SiteId(0), payload(i));
        }
        for _ in 0..10 {
            let a = cal.pop().unwrap();
            let b = heap.pop().unwrap();
            assert_eq!((a.time, a.seq), (b.time, b.seq));
        }
        for i in 50..80u32 {
            let t = 1_200.0 + (i as f64 - 50.0) * 0.001;
            cal.push(t, SiteId(1), payload(i));
            heap.push(t, SiteId(1), payload(i));
        }
        while let Some(b) = heap.pop() {
            let a = cal.pop().unwrap();
            assert_eq!((a.time, a.seq, a.payload), (b.time, b.seq, b.payload));
        }
        assert!(cal.is_empty());
        assert_eq!(cal.peek_time(), None);
    }

    #[test]
    fn cancel_prevents_delivery_and_recycles_slot() {
        let mut cal = CalendarQueue::new();
        let keep = cal.push(1.0, SiteId(0), payload(1));
        let victim = cal.push(2.0, SiteId(0), payload(2));
        assert_eq!(cal.len(), 2);
        assert!(cal.cancel(victim));
        assert!(!cal.cancel(victim), "second cancel is a no-op");
        assert_eq!(cal.len(), 1);
        // The slot is recycled; the stale handle must not cancel the new
        // occupant.
        let recycled = cal.push(3.0, SiteId(1), payload(3));
        assert!(!cal.cancel(victim));
        assert_eq!(cal.len(), 2);
        let first = cal.pop().unwrap();
        assert_eq!(first.payload, payload(1));
        assert!(!cal.cancel(keep), "delivered events cannot be cancelled");
        let second = cal.pop().unwrap();
        assert_eq!(second.payload, payload(3));
        assert!(cal.pop().is_none());
        let _ = recycled;
    }

    #[test]
    fn cancelled_overflow_keys_are_dropped_at_reanchor() {
        let mut cal = CalendarQueue::new();
        let far = cal.push(1_000_000.0, SiteId(0), payload(9));
        cal.push(0.5, SiteId(0), payload(1));
        assert!(cal.cancel(far));
        assert_eq!(cal.pop().unwrap().payload, payload(1));
        assert!(cal.pop().is_none());
        assert!(cal.is_empty());
    }

    #[test]
    fn pop_batch_groups_equal_timestamps() {
        let mut cal = CalendarQueue::new();
        for i in 0..4u32 {
            cal.push(1.0, SiteId(i as usize), payload(i));
        }
        cal.push(2.0, SiteId(0), payload(9));
        let mut batch = Vec::new();
        cal.pop_batch(&mut batch, usize::MAX);
        assert_eq!(batch.len(), 4);
        assert_eq!(
            batch.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        cal.pop_batch(&mut batch, usize::MAX);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].time, 2.0);
        cal.pop_batch(&mut batch, usize::MAX);
        assert!(batch.is_empty());
    }

    #[test]
    fn pop_batch_respects_cap() {
        let mut cal = CalendarQueue::new();
        for i in 0..5u32 {
            cal.push(1.0, SiteId(0), payload(i));
        }
        let mut batch = Vec::new();
        cal.pop_batch(&mut batch, 2);
        assert_eq!(batch.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(cal.len(), 3);
        cal.pop_batch(&mut batch, 0);
        assert!(batch.is_empty());
        assert_eq!(cal.len(), 3);
    }

    #[test]
    fn push_raw_and_for_each_sorted_round_trip() {
        let mut cal: CalendarQueue<u32> = CalendarQueue::new();
        cal.push(2.0, SiteId(0), payload(0));
        cal.push(1.0, SiteId(1), payload(1));
        let cancelled = cal.push(1.5, SiteId(2), payload(2));
        cal.cancel(cancelled);
        let mut listed = Vec::new();
        cal.for_each_sorted(|time, seq, target, p| listed.push((time, seq, target, p.clone())));
        assert_eq!(listed.len(), 2);
        assert_eq!(listed[0].0, 1.0);
        assert_eq!(listed[1].0, 2.0);

        let mut restored: CalendarQueue<u32> = CalendarQueue::new();
        for (time, seq, target, p) in &listed {
            restored.push_raw(*time, *seq, *target, p.clone());
        }
        restored.set_next_seq(cal.next_seq());
        assert_eq!(restored.next_seq(), 3);
        let a = restored.pop().unwrap();
        assert_eq!((a.time, a.seq), (1.0, 1));
        let b = restored.pop().unwrap();
        assert_eq!((b.time, b.seq), (2.0, 0));
        // New pushes continue the original sequence space.
        restored.push(5.0, SiteId(0), payload(9));
        assert_eq!(restored.pop().unwrap().seq, 3);
    }
}
