//! Perturbation plans: declarative fault recipes expanded into timed
//! [`FaultEvent`]s.
//!
//! A plan is part of a [`crate::Scenario`] and is expanded against the
//! concrete network with a dedicated stream seed, so the same `(scenario,
//! seed)` pair always injects the same faults at the same times. Plans
//! should start perturbing only after the one-time PCS construction has
//! finished (a few tens of time units on the built-in topologies):
//! perturbing the §7 routing exchange itself stalls every site in its
//! initialisation phase and the run degenerates (every arrival stays
//! deferred). The built-in registry keeps `start >= 30.0` for this reason.
//!
//! Model caveats (see [`rtds_sim::faults`]): link failure affects *direct*
//! sends only — routed management-plane messages are modeled as one delayed
//! delivery and are subject to message loss and site crashes but not to
//! per-link failure.

use crate::spec::mix_seed;
use rand::prelude::*;
use rand::rngs::StdRng;
use rtds_net::{Network, SiteId};
use rtds_sim::FaultEvent;
use serde::{Deserialize, Serialize};

/// One declarative fault recipe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Perturbation {
    /// Every `period` time units in `[start, end)`, re-draw the delay of a
    /// random `fraction` of links, scaling the *original* delay by a factor
    /// drawn uniformly from `factor`.
    LinkJitter {
        start: f64,
        end: f64,
        period: f64,
        fraction: f64,
        factor: (f64, f64),
    },
    /// `count` link failures at uniform random times in `[start, end)`,
    /// each link recovering `downtime` time units later.
    LinkFailures {
        start: f64,
        end: f64,
        count: usize,
        downtime: f64,
    },
    /// Cuts the network into two halves (by site index) at `at` and heals
    /// every cut link at `heal_at`.
    Partition { at: f64, heal_at: f64 },
    /// `count` site crashes at uniform random times in `[start, end)`, each
    /// site recovering `downtime` time units later (state preserved).
    SiteCrashes {
        start: f64,
        end: f64,
        count: usize,
        downtime: f64,
    },
    /// Every `period` time units in `[start, end)`, set the bandwidth of a
    /// random `fraction` of links to a capacity drawn uniformly from
    /// `capacity` (absolute volume-per-time units) — brownouts on the flow
    /// plane. In-flight transfers crossing an affected link re-solve their
    /// fair-share rates at the fault instant.
    BandwidthBrownout {
        start: f64,
        end: f64,
        period: f64,
        fraction: f64,
        capacity: (f64, f64),
    },
    /// Bernoulli message loss with the given probability over `[start, end)`
    /// (an explicit `SetMessageLoss` pair is emitted even when the
    /// probability is zero — a zero-probability plane is a no-op by
    /// construction, which the test-suite pins).
    MessageLoss {
        start: f64,
        end: f64,
        probability: f64,
    },
}

/// An ordered collection of perturbations.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PerturbationPlan {
    /// The recipes, expanded independently and merged by time.
    pub perturbations: Vec<Perturbation>,
}

impl PerturbationPlan {
    /// The empty (quiet) plan.
    pub fn none() -> Self {
        PerturbationPlan::default()
    }

    /// A plan with the given recipes.
    pub fn new(perturbations: Vec<Perturbation>) -> Self {
        PerturbationPlan { perturbations }
    }

    /// Returns `true` if the plan contains no recipes at all.
    pub fn is_empty(&self) -> bool {
        self.perturbations.is_empty()
    }

    /// Expands the plan against a concrete network into timed fault events,
    /// sorted by time (stable: recipe order breaks ties, matching the
    /// engine's scheduling-order tie-break).
    pub fn expand(&self, network: &Network, seed: u64) -> Vec<(f64, FaultEvent)> {
        let mut events: Vec<(f64, FaultEvent)> = Vec::new();
        let links: Vec<(SiteId, SiteId, f64)> = network.links().collect();
        for (index, p) in self.perturbations.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(mix_seed(seed, index as u64));
            expand_one(*p, network, &links, &mut rng, &mut events);
        }
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        events
    }
}

fn expand_one(
    p: Perturbation,
    network: &Network,
    links: &[(SiteId, SiteId, f64)],
    rng: &mut StdRng,
    events: &mut Vec<(f64, FaultEvent)>,
) {
    match p {
        Perturbation::LinkJitter {
            start,
            end,
            period,
            fraction,
            factor,
        } => {
            if fraction <= 0.0 || period <= 0.0 || links.is_empty() {
                return;
            }
            let per_tick = ((links.len() as f64 * fraction.clamp(0.0, 1.0)).round() as usize)
                .clamp(1, links.len());
            let mut t = start;
            while t < end {
                for _ in 0..per_tick {
                    let (a, b, base_delay) = links[rng.random_range(0..links.len())];
                    let f = if factor.1 > factor.0 {
                        rng.random_range(factor.0..=factor.1)
                    } else {
                        factor.0
                    };
                    let delay = (base_delay * f).max(1e-6);
                    events.push((t, FaultEvent::SetLinkDelay { a, b, delay }));
                }
                t += period;
            }
        }
        Perturbation::LinkFailures {
            start,
            end,
            count,
            downtime,
        } => {
            if links.is_empty() {
                return;
            }
            for _ in 0..count {
                let t = sample_time(start, end, rng);
                let (a, b, _) = links[rng.random_range(0..links.len())];
                events.push((t, FaultEvent::LinkDown { a, b }));
                events.push((t + downtime.max(0.0), FaultEvent::LinkUp { a, b }));
            }
        }
        Perturbation::Partition { at, heal_at } => {
            let half = network.site_count() / 2;
            for &(a, b, _) in links {
                if (a.0 < half) != (b.0 < half) {
                    events.push((at, FaultEvent::LinkDown { a, b }));
                    if heal_at > at {
                        events.push((heal_at, FaultEvent::LinkUp { a, b }));
                    }
                }
            }
        }
        Perturbation::SiteCrashes {
            start,
            end,
            count,
            downtime,
        } => {
            let n = network.site_count();
            if n == 0 {
                return;
            }
            for _ in 0..count {
                let t = sample_time(start, end, rng);
                let site = SiteId(rng.random_range(0..n));
                events.push((t, FaultEvent::SiteDown { site }));
                events.push((t + downtime.max(0.0), FaultEvent::SiteUp { site }));
            }
        }
        Perturbation::BandwidthBrownout {
            start,
            end,
            period,
            fraction,
            capacity,
        } => {
            if fraction <= 0.0 || period <= 0.0 || links.is_empty() {
                return;
            }
            let per_tick = ((links.len() as f64 * fraction.clamp(0.0, 1.0)).round() as usize)
                .clamp(1, links.len());
            let mut t = start;
            while t < end {
                for _ in 0..per_tick {
                    let (a, b, _) = links[rng.random_range(0..links.len())];
                    let bandwidth = if capacity.1 > capacity.0 {
                        rng.random_range(capacity.0..=capacity.1)
                    } else {
                        capacity.0
                    };
                    let bandwidth = bandwidth.max(1e-6);
                    events.push((t, FaultEvent::SetLinkBandwidth { a, b, bandwidth }));
                }
                t += period;
            }
        }
        Perturbation::MessageLoss {
            start,
            end,
            probability,
        } => {
            events.push((
                start,
                FaultEvent::SetMessageLoss {
                    probability: probability.clamp(0.0, 1.0),
                },
            ));
            if end > start {
                events.push((end, FaultEvent::SetMessageLoss { probability: 0.0 }));
            }
        }
    }
}

fn sample_time(start: f64, end: f64, rng: &mut StdRng) -> f64 {
    if end > start {
        rng.random_range(start..end)
    } else {
        start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtds_net::generators::{grid, DelayDistribution};

    fn net() -> Network {
        grid(4, 4, false, DelayDistribution::Constant(1.0), 0)
    }

    #[test]
    fn expansion_is_deterministic_and_time_sorted() {
        let plan = PerturbationPlan::new(vec![
            Perturbation::LinkFailures {
                start: 30.0,
                end: 200.0,
                count: 5,
                downtime: 20.0,
            },
            Perturbation::LinkJitter {
                start: 40.0,
                end: 140.0,
                period: 25.0,
                fraction: 0.2,
                factor: (0.5, 3.0),
            },
            Perturbation::MessageLoss {
                start: 50.0,
                end: 150.0,
                probability: 0.2,
            },
        ]);
        let n = net();
        let a = plan.expand(&n, 9);
        let b = plan.expand(&n, 9);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for w in a.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        let c = plan.expand(&n, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn partition_cuts_exactly_the_cross_links_and_heals_them() {
        let n = net();
        let plan = PerturbationPlan::new(vec![Perturbation::Partition {
            at: 80.0,
            heal_at: 160.0,
        }]);
        let events = plan.expand(&n, 1);
        let downs = events
            .iter()
            .filter(|(_, e)| matches!(e, FaultEvent::LinkDown { .. }))
            .count();
        let ups = events
            .iter()
            .filter(|(_, e)| matches!(e, FaultEvent::LinkUp { .. }))
            .count();
        // A 4x4 grid split at site 8 severs the 4 vertical links between
        // rows 1 and 2.
        assert_eq!(downs, 4);
        assert_eq!(ups, 4);
        assert!(events.iter().all(|(t, _)| *t == 80.0 || *t == 160.0));
        // Never-healing partition emits no LinkUp.
        let forever = PerturbationPlan::new(vec![Perturbation::Partition {
            at: 80.0,
            heal_at: 0.0,
        }]);
        assert!(forever
            .expand(&n, 1)
            .iter()
            .all(|(_, e)| matches!(e, FaultEvent::LinkDown { .. })));
    }

    #[test]
    fn zero_rate_recipes_expand_to_noops_only() {
        let n = net();
        let plan = PerturbationPlan::new(vec![
            Perturbation::LinkJitter {
                start: 30.0,
                end: 100.0,
                period: 10.0,
                fraction: 0.0,
                factor: (0.5, 2.0),
            },
            Perturbation::LinkFailures {
                start: 30.0,
                end: 100.0,
                count: 0,
                downtime: 10.0,
            },
            Perturbation::SiteCrashes {
                start: 30.0,
                end: 100.0,
                count: 0,
                downtime: 10.0,
            },
            Perturbation::MessageLoss {
                start: 30.0,
                end: 100.0,
                probability: 0.0,
            },
        ]);
        let events = plan.expand(&n, 4);
        // Only the explicit zero-probability loss pair remains, and it is a
        // no-op by construction.
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(
            |(_, e)| matches!(e, FaultEvent::SetMessageLoss { probability } if *probability == 0.0)
        ));
    }

    #[test]
    fn bandwidth_brownouts_emit_bounded_set_bandwidth_events() {
        let n = net();
        let plan = PerturbationPlan::new(vec![Perturbation::BandwidthBrownout {
            start: 30.0,
            end: 90.0,
            period: 20.0,
            fraction: 0.25,
            capacity: (0.2, 1.0),
        }]);
        let events = plan.expand(&n, 3);
        // A 4x4 grid has 24 links; 25% rounds to 6 links per tick, with
        // ticks at t = 30, 50 and 70.
        assert_eq!(events.len(), 18);
        for (t, e) in &events {
            assert!((30.0..90.0).contains(t));
            match e {
                FaultEvent::SetLinkBandwidth { bandwidth, .. } => {
                    assert!((0.2..=1.0).contains(bandwidth), "capacity {bandwidth}");
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert_eq!(events, plan.expand(&n, 3));
    }

    #[test]
    fn crash_and_failure_recipes_pair_down_with_up() {
        let n = net();
        let plan = PerturbationPlan::new(vec![Perturbation::SiteCrashes {
            start: 30.0,
            end: 60.0,
            count: 3,
            downtime: 15.0,
        }]);
        let events = plan.expand(&n, 2);
        assert_eq!(events.len(), 6);
        let downs: Vec<SiteId> = events
            .iter()
            .filter_map(|(_, e)| match e {
                FaultEvent::SiteDown { site } => Some(*site),
                _ => None,
            })
            .collect();
        let ups: Vec<SiteId> = events
            .iter()
            .filter_map(|(_, e)| match e {
                FaultEvent::SiteUp { site } => Some(*site),
                _ => None,
            })
            .collect();
        assert_eq!(downs.len(), 3);
        let mut downs_sorted = downs.clone();
        let mut ups_sorted = ups.clone();
        downs_sorted.sort();
        ups_sorted.sort();
        assert_eq!(downs_sorted, ups_sorted);
    }
}
