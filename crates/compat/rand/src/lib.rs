//! Offline stub for `rand` (0.9-style API surface).
//!
//! The build environment has no crates.io access, so this crate provides a
//! minimal deterministic reimplementation of exactly the surface the RTDS
//! workspace uses:
//!
//! * [`rngs::StdRng`] with [`SeedableRng::seed_from_u64`],
//! * [`Rng::random_range`] / [`Rng::random_bool`],
//! * slice [`SliceRandom::shuffle`] / [`SliceRandom::choose`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64. Its output is
//! **not** value-compatible with the real `rand` crate, but it is stable
//! across runs, platforms and Rust versions — which is the property the
//! deterministic simulation actually depends on. Integer range sampling uses
//! plain modulo reduction; the bias is ~2^-64 per draw and irrelevant for
//! test workload generation.

pub mod prelude;
pub mod rngs;

/// Core source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range types that can produce a uniform sample — the subset of rand's
/// `SampleRange`/`SampleUniform` machinery the workspace needs.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range passed to random_range");
                let span = self.end as u128 - self.start as u128;
                (self.start as u128 + rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range passed to random_range");
                let span = hi as u128 - lo as u128 + 1;
                (lo as u128 + rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range passed to random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range passed to random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sint_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range passed to random_range");
                let x = self.start + (self.end - self.start) * unit_f64(rng) as $t;
                // Floating-point rounding can land exactly on the excluded
                // endpoint; fold that measure-zero case back to the start.
                if x < self.end { x } else { self.start }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range passed to random_range");
                let x = lo + (hi - lo) * unit_f64(rng) as $t;
                if x <= hi { x } else { hi }
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]: {p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random selection and permutation on slices.
pub trait SliceRandom {
    type Item;
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    /// Fisher–Yates in-place shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = rng.random_range(3usize..17);
            assert!((3..17).contains(&u));
            let v = rng.random_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&v));
            let w = rng.random_range(0.5f64..5.0);
            assert!((0.5..5.0).contains(&w));
            let s = rng.random_range(-8i64..-1);
            assert!((-8..-1).contains(&s));
        }
    }

    #[test]
    fn random_bool_respects_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let hits = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((4_000..6_000).contains(&hits), "got {hits} hits for p=0.25");
    }

    #[test]
    fn shuffle_permutes_and_choose_selects_members() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle virtually never fixes all points"
        );
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
