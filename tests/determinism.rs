//! Seeded determinism: a full RTDS deployment — network generation, workload
//! generation and the protocol run itself — is a pure function of its seeds.
//! Two runs with the same seeds must agree on every observable of the report:
//! per-job outcomes, completion times, message counters and final time.

use rtds::core::{RtdsConfig, RtdsSystem, RunReport};
use rtds::net::generators::{grid, DelayDistribution};
use rtds::scenarios::{find_scenario, run_cell, run_sweep, SweepConfig};
use rtds_bench::{workload, WorkloadSpec};

fn run_once(net_seed: u64, workload_seed: u64, system_seed: u64) -> RunReport {
    let network = grid(
        4,
        3,
        false,
        DelayDistribution::Uniform { min: 0.5, max: 2.0 },
        net_seed,
    );
    let jobs = workload(
        &network,
        WorkloadSpec {
            rate: 0.03,
            horizon: 120.0,
            seed: workload_seed,
            ..WorkloadSpec::default()
        },
    );
    let mut system = RtdsSystem::new(network, RtdsConfig::default(), system_seed);
    system.submit_workload(jobs);
    system.run()
}

#[test]
fn identical_seeds_produce_identical_reports() {
    let first = run_once(11, 42, 7);
    let second = run_once(11, 42, 7);
    // Spot-check the observables the paper's evaluation hinges on...
    assert_eq!(first.jobs_submitted, second.jobs_submitted);
    assert!(first.jobs_submitted > 0, "the workload must be non-trivial");
    assert_eq!(first.jobs, second.jobs, "per-job outcomes must match");
    assert_eq!(first.stats.messages_sent, second.stats.messages_sent);
    assert_eq!(
        first.stats.messages_delivered,
        second.stats.messages_delivered
    );
    assert_eq!(first.guarantee, second.guarantee);
    // ...and then the whole report structurally.
    assert_eq!(first, second);
}

#[test]
fn changing_network_or_workload_seed_changes_the_run() {
    // The system seed is deliberately not varied here: the protocol itself
    // is currently deterministic given its inputs, so only the network and
    // workload seeds are observable in the report.
    let base = run_once(11, 42, 7);
    // A different workload seed yields different arrivals, hence different
    // job reports.
    let other_workload = run_once(11, 43, 7);
    assert_ne!(base.jobs, other_workload.jobs);
    // A different network seed changes link delays, which shifts message
    // timing and distribution decisions.
    let other_network = run_once(12, 42, 7);
    assert_ne!(base, other_network);
}

#[test]
fn sweep_reports_are_byte_identical_for_any_thread_count() {
    // The scenario sweep shards (scenario, seed) cells over worker threads;
    // the aggregate report — including its JSON rendering — must not depend
    // on how many threads did the work, nor on the run.
    let scenarios = vec![
        find_scenario("paper-baseline").unwrap(),
        find_scenario("lossy-messages").unwrap(),
        find_scenario("partition-and-heal").unwrap(),
    ];
    let reference = run_sweep(&scenarios, &SweepConfig::new(7, 2, 1));
    let reference_json = reference.to_json();
    for threads in [2, 3, 16] {
        let report = run_sweep(&scenarios, &SweepConfig::new(7, 2, threads));
        assert_eq!(reference, report, "threads = {threads}");
        assert_eq!(reference_json, report.to_json(), "threads = {threads}");
    }
    // And a perturbed single cell is bit-reproducible on its own.
    let scenario = find_scenario("site-crash-wave").unwrap();
    assert_eq!(run_cell(&scenario, 3), run_cell(&scenario, 3));
}

#[test]
fn engine_dispatch_order_is_reproducible_event_for_event() {
    // Determinism at the finest granularity the engine exposes: the order
    // log records a `(time, class, seq)` triple for every dispatched event,
    // so two seeded runs must agree on the entire dispatch *sequence*, not
    // just on the aggregated report. This is the trace the calendar queue
    // must reproduce exactly to be a drop-in replacement for the heap —
    // a layout-dependent tie-break would show up here first.
    let capacity = 10_000;
    let run_logged = || {
        let network = grid(
            4,
            3,
            false,
            DelayDistribution::Uniform { min: 0.5, max: 2.0 },
            11,
        );
        let jobs = workload(
            &network,
            WorkloadSpec {
                rate: 0.25,
                horizon: 220.0,
                seed: 42,
                ..WorkloadSpec::default()
            },
        );
        let mut system = RtdsSystem::new(network, RtdsConfig::default(), 7);
        system.enable_order_log(capacity);
        system.submit_workload(jobs);
        let report = system.run();
        (report, system.order_log().to_vec())
    };
    let (first_report, first_log) = run_logged();
    let (second_report, second_log) = run_logged();
    assert_eq!(first_report, second_report);
    assert!(
        first_log.len() >= 5_000,
        "the run must be long enough to be meaningful, got {} events",
        first_log.len()
    );
    assert_eq!(
        first_log, second_log,
        "dispatch sequences must be identical"
    );
    // The log respects the documented total order: (time, class, seq)
    // non-decreasing in time, with class and seq breaking ties.
    for pair in first_log.windows(2) {
        let (t0, c0, s0) = pair[0];
        let (t1, c1, s1) = pair[1];
        assert!(
            t0 < t1 || (t0 == t1 && (c0 < c1 || (c0 == c1 && s0 < s1))),
            "dispatch order violated: ({t0}, {c0}, {s0}) then ({t1}, {c1}, {s1})"
        );
    }
}
