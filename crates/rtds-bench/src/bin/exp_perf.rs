//! `exp_perf` — the fixed performance suite behind the `BENCH_<n>.json`
//! trajectory.
//!
//! Runs the paper-baseline scenario plus three registry scenarios scaled to
//! 16/64/256 sites (see [`rtds_bench::perf`]), printing a throughput table
//! and writing the deterministic-schema JSON report. Timings (`wall_ms`,
//! `events_per_sec`) are the only nondeterministic fields; everything else
//! is a pure function of `--seed`.
//!
//! ```text
//! exp_perf [--seed <u64>] [--json <path>] [--smoke] [--baseline <BENCH_N.json>]
//! ```
//!
//! `--smoke` runs only the native paper baseline and the 16-site tier (the
//! CI smoke configuration). `--baseline <path>` diffs this run against a
//! previously recorded report: any deterministic-field mismatch, or an
//! aggregate events/sec regression of more than 20 % against the recorded
//! throughput, exits nonzero — `exp_perf --baseline BENCH_1.json` is the
//! one-line "did I break or slow down the engine" check.

use rtds_bench::perf::{compare_with_baseline, run_perf_suite, PERF_TIERS};
use rtds_bench::{write_json_report, ExpArgs};

/// Tolerated aggregate events/sec drop before `--baseline` fails the run.
const REGRESSION_TOLERANCE: f64 = 0.2;

fn main() {
    let args = ExpArgs::parse(&["baseline"], &["smoke"]);
    let seed = args.seed(7);
    let smoke = args.has("smoke");
    println!(
        "exp_perf: fixed suite, seed {seed}{}",
        if smoke { ", smoke tier only" } else { "" }
    );
    println!();
    println!(
        "{:<26} {:>5} {:>5} {:>6} {:>9} {:>9} {:>10} {:>9} {:>12}",
        "workload", "sites", "jobs", "ratio", "msgs", "msgs/job", "events", "wall ms", "events/s"
    );
    let report = run_perf_suite(seed, smoke);
    for w in &report.workloads {
        println!(
            "{:<26} {:>5} {:>5} {:>6.3} {:>9} {:>9.1} {:>10} {:>9.1} {:>12.0}",
            w.name,
            w.sites,
            w.submitted,
            w.guarantee_ratio,
            w.messages_sent,
            w.messages_per_job,
            w.events_processed,
            w.wall.as_secs_f64() * 1e3,
            w.events_per_sec()
        );
    }
    println!();
    for &tier in &PERF_TIERS {
        if report.workloads.iter().any(|w| w.tier == tier) {
            println!(
                "tier {tier:>3} sites: {:>12.0} events/s",
                report.tier_events_per_sec(tier)
            );
        }
    }
    if let Some(path) = args.json_path() {
        write_json_report(path, &report.to_json(true));
    }
    if let Some(path) = args.value_of("baseline") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(1);
        });
        let comparison = compare_with_baseline(&report, &text).unwrap_or_else(|e| {
            eprintln!("baseline {path}: {e}");
            std::process::exit(1);
        });
        println!();
        let mut failed = false;
        if comparison.fields_match() {
            println!("baseline {path}: deterministic fields match byte-for-byte");
        } else {
            failed = true;
            eprintln!("baseline {path}: deterministic fields DIVERGED:");
            for line in &comparison.mismatches {
                eprintln!("  {line}");
            }
        }
        match comparison.baseline_events_per_sec {
            Some(base) => {
                println!(
                    "throughput: {:.0} events/s vs recorded {:.0} ({:+.1} %)",
                    comparison.current_events_per_sec,
                    base,
                    100.0 * (comparison.current_events_per_sec / base - 1.0)
                );
                if comparison.regressed(REGRESSION_TOLERANCE) {
                    failed = true;
                    eprintln!(
                        "throughput regressed more than {:.0} % against the baseline",
                        REGRESSION_TOLERANCE * 100.0
                    );
                }
            }
            None => println!(
                "baseline records no events/sec (timings nulled); skipping the regression check"
            ),
        }
        if failed {
            std::process::exit(1);
        }
    }
}
