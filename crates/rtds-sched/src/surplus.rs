//! Surplus and busyness (§2, §13).
//!
//! "The surplus `I_k` of a site `k` is computed as the ratio of its available
//! (or idle) time divided by the size of the observational window" (§2).
//! The busyness `1 - I` is used by the §13 laxity-dispatching extension to
//! give tasks running on busy processors a larger share of the extra laxity.

use crate::plan::SchedulePlan;

/// Surplus of a plan over the observation window `[now, now + window)`.
///
/// For the §13 uniform-machines extension the caller scales the result by the
/// site's relative computing power (`surplus × speed`), which is how the
/// Mapper converts a remote site's idle ratio into an effective execution
/// rate.
pub fn surplus(plan: &SchedulePlan, now: f64, window: f64) -> f64 {
    plan.surplus(now, window)
}

/// Busyness of a plan over the observation window: `1 - surplus`.
pub fn busyness(plan: &SchedulePlan, now: f64, window: f64) -> f64 {
    1.0 - surplus(plan, now, window)
}

/// Effective execution rate of a site for the Mapper: surplus scaled by the
/// site's relative computing power, clamped to a minimum so that the
/// duration estimate `c / rate` stays finite even for a fully busy site.
pub fn effective_rate(plan: &SchedulePlan, now: f64, window: f64, speed: f64, floor: f64) -> f64 {
    (surplus(plan, now, window) * speed).max(floor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Reservation;
    use rtds_graph::{JobId, TaskId};

    fn busy_half() -> SchedulePlan {
        let mut plan = SchedulePlan::new();
        plan.insert(Reservation {
            job: JobId(1),
            task: TaskId(0),
            start: 0.0,
            end: 50.0,
        })
        .unwrap();
        plan
    }

    #[test]
    fn surplus_and_busyness_are_complementary() {
        let plan = busy_half();
        assert_eq!(surplus(&plan, 0.0, 100.0), 0.5);
        assert_eq!(busyness(&plan, 0.0, 100.0), 0.5);
        assert_eq!(surplus(&plan, 50.0, 100.0), 1.0);
        assert_eq!(busyness(&plan, 50.0, 100.0), 0.0);
    }

    #[test]
    fn effective_rate_scales_and_floors() {
        let plan = busy_half();
        // Identical machines: rate equals the surplus.
        assert_eq!(effective_rate(&plan, 0.0, 100.0, 1.0, 0.01), 0.5);
        // A twice-as-fast uniform machine doubles the rate (§13).
        assert_eq!(effective_rate(&plan, 0.0, 100.0, 2.0, 0.01), 1.0);
        // A fully busy window hits the floor instead of collapsing to zero.
        assert_eq!(effective_rate(&plan, 0.0, 50.0, 1.0, 0.05), 0.05);
    }
}
