//! Simulation statistics.
//!
//! Two kinds of figures matter for the paper's claims:
//!
//! * *communication overhead* — how many messages a job distribution costs
//!   (the Computing Sphere is advertised as using "a limited number of sites
//!   and communication links"), captured by the engine-level message counters
//!   plus protocol-defined named counters,
//! * *guarantee ratio* — the fraction of submitted jobs that the system
//!   accepts and completes by their deadline ("this leads to an increase of
//!   the number of accepted (executed) jobs"), captured by
//!   [`GuaranteeStats`].

use rtds_metrics::MetricsRegistry;
use serde::{Deserialize, Serialize};

/// Engine-level and protocol-level telemetry.
///
/// Backed by an [`rtds_metrics::MetricsRegistry`]: the historical named
/// counters are the registry's counter family (names are `&'static str`
/// literals, so the hot path — `Context::count` fires several times per
/// protocol message — never allocates a `String` per bump), and the same
/// registry now also carries the streaming histograms and gauges recorded
/// through [`crate::engine::Context::record`] and friends.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Messages handed to the engine for delivery.
    pub messages_sent: u64,
    /// Messages actually delivered (equal to `messages_sent` once the run is
    /// quiescent, unless fault injection lost or dropped some).
    pub messages_delivered: u64,
    /// The instrument registry: named counters (for example `"enroll"`,
    /// `"trial_mapping"`), gauges and log-bucketed histograms.
    metrics: MetricsRegistry,
}

impl SimStats {
    /// Adds to a named counter, creating it at zero if needed.
    pub fn add(&mut self, name: &'static str, amount: u64) {
        self.metrics.add(name, amount);
    }

    /// Value of a named counter, totalled across scopes (zero if never
    /// touched).
    pub fn named(&self, name: &str) -> u64 {
        self.metrics.counter(name)
    }

    /// All named counters in name order (each totalled across its scopes).
    pub fn named_counters(&self) -> impl Iterator<Item = (&'static str, u64)> {
        self.metrics
            .counter_families()
            .into_iter()
            .map(|(name, scopes)| (name, scopes.iter().map(|(_, v)| *v).sum()))
    }

    /// Sum of all named counters whose name starts with the given prefix.
    pub fn named_with_prefix(&self, prefix: &str) -> u64 {
        self.named_counters()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, total)| total)
            .sum()
    }

    /// Read access to the full instrument registry (histograms, gauges,
    /// scoped counters).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the instrument registry.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Merges another statistics record into this one (used when aggregating
    /// across independent simulation runs). Counters add, gauges keep their
    /// maxima, histograms merge bucket-wise — associative and commutative,
    /// so aggregate reports do not depend on merge order.
    pub fn merge(&mut self, other: &SimStats) {
        self.messages_sent += other.messages_sent;
        self.messages_delivered += other.messages_delivered;
        self.metrics.merge(&other.metrics);
    }
}

/// Real-time outcome counters for a workload of jobs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GuaranteeStats {
    /// Jobs submitted to the system.
    pub submitted: u64,
    /// Jobs accepted locally by their arrival site (no distribution needed).
    pub accepted_locally: u64,
    /// Jobs accepted after distribution over a Computing Sphere (or by the
    /// baseline's distribution mechanism).
    pub accepted_distributed: u64,
    /// Jobs rejected (could not be guaranteed anywhere in time).
    pub rejected: u64,
    /// Accepted jobs whose execution finished by the deadline.
    pub completed_on_time: u64,
    /// Accepted jobs that missed their deadline at run time (must stay zero
    /// under faithful execution — it is a correctness alarm, not a tunable).
    pub deadline_misses: u64,
}

impl GuaranteeStats {
    /// Total number of accepted jobs.
    pub fn accepted(&self) -> u64 {
        self.accepted_locally + self.accepted_distributed
    }

    /// Guarantee ratio: accepted / submitted (1.0 for an empty workload).
    pub fn guarantee_ratio(&self) -> f64 {
        if self.submitted == 0 {
            1.0
        } else {
            self.accepted() as f64 / self.submitted as f64
        }
    }

    /// Fraction of accepted jobs that were distributed rather than kept
    /// local.
    pub fn distribution_ratio(&self) -> f64 {
        let acc = self.accepted();
        if acc == 0 {
            0.0
        } else {
            self.accepted_distributed as f64 / acc as f64
        }
    }

    /// Merges counters from another record.
    pub fn merge(&mut self, other: &GuaranteeStats) {
        self.submitted += other.submitted;
        self.accepted_locally += other.accepted_locally;
        self.accepted_distributed += other.accepted_distributed;
        self.rejected += other.rejected;
        self.completed_on_time += other.completed_on_time;
        self.deadline_misses += other.deadline_misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_counters() {
        let mut s = SimStats::default();
        assert_eq!(s.named("enroll"), 0);
        s.add("enroll", 2);
        s.add("enroll", 3);
        s.add("bid", 1);
        assert_eq!(s.named("enroll"), 5);
        assert_eq!(s.named("bid"), 1);
        let all: Vec<(&str, u64)> = s.named_counters().collect();
        assert_eq!(all, vec![("bid", 1), ("enroll", 5)]);
        s.add("enroll_ack", 4);
        assert_eq!(s.named_with_prefix("enroll"), 9);
    }

    #[test]
    fn merge_stats() {
        let mut a = SimStats {
            messages_sent: 10,
            messages_delivered: 10,
            ..SimStats::default()
        };
        a.add("x", 1);
        let mut b = SimStats {
            messages_sent: 5,
            messages_delivered: 4,
            ..SimStats::default()
        };
        b.add("x", 2);
        b.add("y", 7);
        a.merge(&b);
        assert_eq!(a.messages_sent, 15);
        assert_eq!(a.messages_delivered, 14);
        assert_eq!(a.named("x"), 3);
        assert_eq!(a.named("y"), 7);
    }

    #[test]
    fn guarantee_ratios() {
        let empty = GuaranteeStats::default();
        assert_eq!(empty.guarantee_ratio(), 1.0);
        assert_eq!(empty.distribution_ratio(), 0.0);
        let mut g = GuaranteeStats {
            submitted: 10,
            accepted_locally: 4,
            accepted_distributed: 2,
            rejected: 4,
            completed_on_time: 6,
            ..GuaranteeStats::default()
        };
        assert_eq!(g.accepted(), 6);
        assert!((g.guarantee_ratio() - 0.6).abs() < 1e-12);
        assert!((g.distribution_ratio() - 2.0 / 6.0).abs() < 1e-12);

        let h = GuaranteeStats {
            submitted: 10,
            accepted_locally: 10,
            completed_on_time: 10,
            ..GuaranteeStats::default()
        };
        g.merge(&h);
        assert_eq!(g.submitted, 20);
        assert_eq!(g.accepted(), 16);
        assert_eq!(g.deadline_misses, 0);
    }
}
