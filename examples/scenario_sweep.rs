//! Scenario-engine walkthrough: registry lookup → parallel seed sweep →
//! deterministic JSON report.
//!
//! Run with: `cargo run --release --example scenario_sweep`

use rtds::scenarios::{builtin_scenarios, find_scenario, run_sweep, SweepConfig};

fn main() {
    println!("== built-in scenario registry ==");
    for s in builtin_scenarios() {
        println!("  {:<22} {}", s.name, s.description);
    }
    println!();

    // Pick a fault-free baseline and its fault-injected twin: they share
    // topology and workload recipes, so with the same sweep seeds they run
    // the same jobs on the same network — any difference is the faults.
    let scenarios = vec![
        find_scenario("paper-baseline").expect("registry scenario"),
        find_scenario("lossy-messages").expect("registry scenario"),
    ];

    let config = SweepConfig::new(1, 3, 4);
    let report = run_sweep(&scenarios, &config);

    println!("== sweep: 2 scenarios x 3 seeds ==");
    for summary in &report.scenarios {
        println!(
            "  {:<22} guarantee ratio {:.3} (min {:.3}, max {:.3}), {} messages lost",
            summary.name,
            summary.mean_guarantee_ratio,
            summary.min_guarantee_ratio,
            summary.max_guarantee_ratio,
            summary.total_messages_lost,
        );
    }
    let base = report.scenario("paper-baseline").unwrap();
    let lossy = report.scenario("lossy-messages").unwrap();
    assert!(
        lossy.mean_guarantee_ratio < base.mean_guarantee_ratio,
        "message loss must cost acceptance"
    );

    println!();
    println!("== JSON report (byte-identical for any thread count) ==");
    print!("{}", report.to_json());
}
