#!/usr/bin/env bash
# Scheduler smoke: two same-seed exp_sched runs must produce byte-identical
# rtds-exp-sched/1 reports (the schema carries no timing fields), every
# scheduler variant must report zero deadline misses (exp_sched exits
# nonzero otherwise), and the hetero-multicore scenario must be present so
# the comparison covers the non-degenerate resource model.
# Used by CI and runnable locally from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${SMOKE_OUT_DIR:-.}"
cargo run --release --bin exp_sched -- --seed 1 --seeds 2 --json "$out/sched-smoke.json"
cargo run --release --bin exp_sched -- --seed 1 --seeds 2 --json "$out/sched-smoke-b.json"
cmp "$out/sched-smoke.json" "$out/sched-smoke-b.json"
grep -q '"schema": "rtds-exp-sched/1"' "$out/sched-smoke.json"
grep -q '"scheduler": "protocol"' "$out/sched-smoke.json"
grep -q '"scheduler": "heft"' "$out/sched-smoke.json"
grep -q '"scheduler": "lookahead"' "$out/sched-smoke.json"
grep -q '"name": "hetero-multicore"' "$out/sched-smoke.json"
# A single-scenario run exercises the --scenario filter on the one scenario
# with a non-degenerate resource recipe.
cargo run --release --bin exp_sched -- --scenario hetero-multicore --seed 1 --seeds 2 \
    --json "$out/sched-smoke-hetero.json"
echo "sched smoke OK: report is byte-identical and no scheduler missed a deadline"
