//! The §5 local guarantee test: can a whole DAG be executed on this single
//! site, in-between the already-committed reservations, before its deadline?
//!
//! "When a new job arrives on site k, local test is performed. It consists on
//! verifying if all tasks of the job may be scheduled in-between tasks
//! already accepted to be scheduled on site k before deadline d."
//!
//! The test is constructive: on success it returns the reservations that
//! realise the local schedule, so the site can commit them immediately and
//! atomically. Tasks are considered in list-scheduling order driven by the
//! §12 critical-path priority (longest node-weight path to a sink), which
//! keeps the local test and the Mapper consistent with each other.

use crate::plan::{Reservation, SchedulePlan};
use rtds_graph::{critical_path_tasks, Job, TaskId};
use serde::{Deserialize, Serialize};

/// Result of a successful local admission: the reservations to commit and the
/// completion time of the job on this site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagAdmission {
    /// Reservations realising the DAG on this site (one per task in
    /// non-preemptive mode, possibly several chunks per task in preemptive
    /// mode).
    pub reservations: Vec<Reservation>,
    /// Completion time of the last task.
    pub completion: f64,
}

/// Attempts to admit the whole DAG of `job` on a single site.
///
/// * `plan` — the site's committed schedule (not modified).
/// * `now` — current time; no task may start before `max(now, job release)`.
/// * `speed` — relative computing power of the site (1.0 for identical
///   machines; §13 uniform machines divide task costs by this factor).
/// * `preemptive` — whether tasks may be split across idle windows (§13).
///
/// Returns `None` if at least one task cannot be placed before the job
/// deadline.
pub fn admit_dag_locally(
    plan: &SchedulePlan,
    job: &Job,
    now: f64,
    speed: f64,
    preemptive: bool,
) -> Option<DagAdmission> {
    assert!(speed > 0.0, "site speed must be positive");
    let graph = &job.graph;
    if graph.task_count() == 0 {
        return Some(DagAdmission {
            reservations: Vec::new(),
            completion: now.max(job.release()),
        });
    }
    let deadline = job.deadline();
    let start_floor = now.max(job.release());
    let info = critical_path_tasks(graph);
    // List scheduling: repeatedly pick the ready task with the largest upward
    // rank (ties by task id), exactly like the Mapper of §12 but on a single
    // site, so no communication delays apply.
    let order = priority_order(graph, &info.upward);

    let mut scratch = plan.clone();
    let mut finish = vec![0.0f64; graph.task_count()];
    let mut reservations = Vec::new();
    for t in order {
        let duration = graph.cost(t) / speed;
        let ready = graph
            .predecessors(t)
            .map(|p| finish[p.0])
            .fold(start_floor, f64::max);
        if preemptive {
            let chunks = scratch.earliest_fit_preemptive(ready, deadline, duration)?;
            let mut end = ready;
            for chunk in &chunks {
                let r = Reservation {
                    job: job.id,
                    task: t,
                    start: chunk.start,
                    end: chunk.end,
                };
                scratch.insert(r).ok()?;
                reservations.push(r);
                end = end.max(chunk.end);
            }
            finish[t.0] = end;
        } else {
            let start = scratch.earliest_fit(ready, deadline, duration)?;
            let r = Reservation {
                job: job.id,
                task: t,
                start,
                end: start + duration,
            };
            scratch.insert(r).ok()?;
            reservations.push(r);
            finish[t.0] = start + duration;
        }
        if finish[t.0] > deadline + 1e-9 {
            return None;
        }
    }
    let completion = finish.iter().copied().fold(start_floor, f64::max);
    Some(DagAdmission {
        reservations,
        completion,
    })
}

/// List-scheduling order: repeatedly emit the ready task (all predecessors
/// already emitted) with the highest priority; ties broken by task id.
pub fn priority_order(graph: &rtds_graph::TaskGraph, priority: &[f64]) -> Vec<TaskId> {
    let n = graph.task_count();
    let mut remaining_preds: Vec<usize> = (0..n).map(|i| graph.in_degree(TaskId(i))).collect();
    let mut ready: Vec<TaskId> = graph
        .task_ids()
        .filter(|t| remaining_preds[t.0] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while !ready.is_empty() {
        // Highest priority first; ties by smallest id for determinism.
        let (idx, _) = ready
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                priority[a.0]
                    .partial_cmp(&priority[b.0])
                    .unwrap()
                    .then(b.0.cmp(&a.0))
            })
            .expect("ready list is non-empty");
        let t = ready.swap_remove(idx);
        order.push(t);
        for s in graph.successors(t) {
            remaining_preds[s.0] -= 1;
            if remaining_preds[s.0] == 0 {
                ready.push(s);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "graph must be acyclic");
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtds_graph::paper_instance::paper_job;
    use rtds_graph::{JobId, JobParams, TaskGraph};

    fn chain_job(id: u64, costs: &[f64], release: f64, deadline: f64) -> Job {
        let mut g = TaskGraph::from_costs(costs);
        for i in 1..costs.len() {
            g.add_edge(TaskId(i - 1), TaskId(i)).unwrap();
        }
        Job::new(JobId(id), g, JobParams::new(release, deadline), 0)
    }

    #[test]
    fn empty_plan_accepts_a_feasible_chain() {
        let plan = SchedulePlan::new();
        let job = chain_job(1, &[2.0, 3.0, 5.0], 0.0, 20.0);
        let adm = admit_dag_locally(&plan, &job, 0.0, 1.0, false).unwrap();
        assert_eq!(adm.reservations.len(), 3);
        assert_eq!(adm.completion, 10.0);
        // Precedence respected: each task starts after its predecessor ends.
        let by_task: Vec<&Reservation> = adm.reservations.iter().collect();
        assert!(by_task
            .windows(2)
            .all(|w| w[1].start + 1e-9 >= w[0].end || w[1].task.0 < w[0].task.0));
    }

    #[test]
    fn rejects_when_deadline_is_too_tight() {
        let plan = SchedulePlan::new();
        let job = chain_job(1, &[5.0, 5.0, 5.0], 0.0, 12.0);
        assert!(admit_dag_locally(&plan, &job, 0.0, 1.0, false).is_none());
        // The same chain with speed 2 halves the durations and fits.
        assert!(admit_dag_locally(&plan, &job, 0.0, 2.0, false).is_some());
    }

    #[test]
    fn respects_existing_reservations() {
        let mut plan = SchedulePlan::new();
        plan.insert(Reservation {
            job: JobId(99),
            task: TaskId(0),
            start: 0.0,
            end: 8.0,
        })
        .unwrap();
        let job = chain_job(2, &[4.0, 4.0], 0.0, 20.0);
        let adm = admit_dag_locally(&plan, &job, 0.0, 1.0, false).unwrap();
        // Both tasks must be placed after the existing reservation.
        assert!(adm.reservations.iter().all(|r| r.start >= 8.0));
        assert_eq!(adm.completion, 16.0);
        // With a deadline of 15 it no longer fits.
        let tight = chain_job(3, &[4.0, 4.0], 0.0, 15.0);
        assert!(admit_dag_locally(&plan, &tight, 0.0, 1.0, false).is_none());
        // ...unless preemption is allowed? (still contiguous chain on one
        // site, so preemption does not help here: total demand 8 in [8, 15)
        // is only 7 units of idle time).
        assert!(admit_dag_locally(&plan, &tight, 0.0, 1.0, true).is_none());
    }

    #[test]
    fn preemptive_admission_uses_split_windows() {
        let mut plan = SchedulePlan::new();
        plan.insert(Reservation {
            job: JobId(99),
            task: TaskId(0),
            start: 5.0,
            end: 10.0,
        })
        .unwrap();
        // One 8-unit task, deadline 20: non-preemptively it must wait for
        // [10, 18); preemptively it can use [0,5) + [10,13).
        let job = chain_job(4, &[8.0], 0.0, 20.0);
        let np = admit_dag_locally(&plan, &job, 0.0, 1.0, false).unwrap();
        assert_eq!(np.completion, 18.0);
        let p = admit_dag_locally(&plan, &job, 0.0, 1.0, true).unwrap();
        assert_eq!(p.completion, 13.0);
        assert_eq!(p.reservations.len(), 2);
    }

    #[test]
    fn paper_example_is_locally_admissible_on_an_idle_unit_site() {
        // On a fully idle unit-speed site the Fig. 2 job (total cost 21,
        // deadline 66) is trivially guaranteed locally — which is why the
        // paper's distribution scenario presumes the arrival site is loaded.
        let plan = SchedulePlan::new();
        let job = paper_job(JobId(1), 0);
        let adm = admit_dag_locally(&plan, &job, 0.0, 1.0, false).unwrap();
        assert_eq!(adm.reservations.len(), 5);
        assert!(adm.completion <= 21.0 + 1e-9);
        // A loaded site (busy until t = 40) can still fit the 21 units of
        // serial work before the deadline of 66...
        let mut busy = SchedulePlan::new();
        busy.insert(Reservation {
            job: JobId(50),
            task: TaskId(0),
            start: 0.0,
            end: 40.0,
        })
        .unwrap();
        let adm2 = admit_dag_locally(&busy, &job, 0.0, 1.0, false).unwrap();
        assert!(adm2.completion <= 66.0 + 1e-9);
        assert!(adm2.completion >= 61.0 - 1e-9);
        // ...but a site busy until t = 50 cannot (only 16 idle units remain).
        let mut very_busy = SchedulePlan::new();
        very_busy
            .insert(Reservation {
                job: JobId(50),
                task: TaskId(0),
                start: 0.0,
                end: 50.0,
            })
            .unwrap();
        assert!(admit_dag_locally(&very_busy, &job, 0.0, 1.0, false).is_none());
    }

    #[test]
    fn now_and_release_floors_are_respected() {
        let plan = SchedulePlan::new();
        let job = chain_job(1, &[2.0], 10.0, 30.0);
        // now < release: start at the release.
        let a = admit_dag_locally(&plan, &job, 0.0, 1.0, false).unwrap();
        assert_eq!(a.reservations[0].start, 10.0);
        // now > release: start at now.
        let b = admit_dag_locally(&plan, &job, 15.0, 1.0, false).unwrap();
        assert_eq!(b.reservations[0].start, 15.0);
    }

    #[test]
    fn empty_graph_job_is_trivially_admitted() {
        let plan = SchedulePlan::new();
        let job = Job::new(JobId(1), TaskGraph::new(), JobParams::new(0.0, 5.0), 0);
        let adm = admit_dag_locally(&plan, &job, 2.0, 1.0, false).unwrap();
        assert!(adm.reservations.is_empty());
        assert_eq!(adm.completion, 2.0);
    }

    #[test]
    fn priority_order_prefers_critical_path() {
        let job = paper_job(JobId(1), 0);
        let info = critical_path_tasks(&job.graph);
        let order = priority_order(&job.graph, &info.upward);
        // Priorities are 15, 13, 9, 7, 5 for tasks 0..4, so the order is
        // exactly 0, 1, 2, 3, 4.
        assert_eq!(
            order,
            vec![TaskId(0), TaskId(1), TaskId(2), TaskId(3), TaskId(4)]
        );
    }
}
