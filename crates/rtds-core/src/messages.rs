//! The RTDS wire protocol.
//!
//! Messages exchanged between the system-management processors of the sites.
//! Each variant corresponds to one arrow of the paper's protocol (§4, §7–§11
//! and Fig. 1):
//!
//! * `RoutingUpdate` — the §7 PCS construction (interrupted Bellman–Ford),
//! * `JobArrival` — a sporadic job arriving at a site (injected externally),
//! * `Enroll` / `EnrollAck` / `EnrollBusy` — the §8 ACS construction.
//!   The paper says a locked site *ignores* further enrollment messages; we
//!   send an explicit negative acknowledgement instead so the initiator can
//!   close its collection round deterministically without a timeout. This is
//!   functionally equivalent (the initiator proceeds with whoever accepted)
//!   and documented in DESIGN.md,
//! * `TrialMapping` / `ValidationReply` — the §10 validation round,
//! * `Permutation` — the §11 dispatch of the selected assignment together
//!   with the task "codes" (here: the task specs to reserve),
//! * `Unlock` — release of the §8 lock, sent to ACS members that were not
//!   selected or whenever the job is rejected after enrollment.

use rtds_graph::{Job, JobId, TaskId};
use rtds_net::routing::RouteEntry;
use rtds_net::SiteId;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Description of one task of a trial mapping as shipped to a validating /
/// executing site. Durations are *not* included: the receiving site derives
/// the execution time from the raw computational complexity and its own
/// computing power, because the actual occupancy of its computation processor
/// is `cost / speed` regardless of the surplus the Mapper assumed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Task id within the job.
    pub task: TaskId,
    /// Adjusted release `r(t)` (absolute time).
    pub release: f64,
    /// Adjusted deadline `d(t)` (absolute time).
    pub deadline: f64,
    /// Raw computational complexity `c(t)`.
    pub cost: f64,
}

/// The protocol messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RtdsMsg {
    /// One phase of the §7 routing exchange.
    RoutingUpdate {
        /// Phase number (1-based).
        phase: usize,
        /// The sender's current routing-table lines. Shared (`Arc`) because
        /// one phase broadcast sends the *same* snapshot to every neighbor —
        /// cloning the message clones a pointer, not `O(n)` route lines.
        lines: Arc<[RouteEntry]>,
    },
    /// A job arrives at the receiving site (external injection).
    JobArrival {
        /// The job, including its task graph and window.
        job: Job,
    },
    /// The initiator asks a PCS member to join the ACS for a job.
    Enroll {
        /// The initiating site `k`.
        initiator: SiteId,
        /// The job being distributed.
        job: JobId,
    },
    /// Positive enrollment answer, carrying the §2 surplus of the member.
    EnrollAck {
        /// The job the enrollment refers to.
        job: JobId,
        /// Surplus of the answering site over its observation window.
        surplus: f64,
        /// Relative computing power of the answering site (§13).
        speed: f64,
    },
    /// Negative enrollment answer (the site is locked by another initiator).
    EnrollBusy {
        /// The job the enrollment refers to.
        job: JobId,
    },
    /// The §10 trial mapping broadcast to every ACS member: for each logical
    /// processor, the list of task specs assigned to it.
    TrialMapping {
        /// The job being distributed.
        job: JobId,
        /// `tasks_per_logical[i]` is `T_i`, the task set of logical
        /// processor `i`. Shared (`Arc`): the §10 broadcast ships one
        /// mapping to every ACS member.
        tasks_per_logical: Arc<[Vec<TaskSpec>]>,
    },
    /// A member's answer: the logical processors whose task set it could
    /// satisfy locally.
    ValidationReply {
        /// The job the validation refers to.
        job: JobId,
        /// Indices of satisfiable logical processors.
        endorsable: Vec<usize>,
    },
    /// The §11 dispatch: the receiving site learns which logical processor it
    /// must endorse (if any) and receives the corresponding task specs.
    Permutation {
        /// The job.
        job: JobId,
        /// Logical processor assigned to the receiver, or `None` if the
        /// receiver is not part of the selected permutation (it must simply
        /// unlock).
        logical: Option<usize>,
        /// Task specs of the assigned logical processor (empty when
        /// `logical` is `None`).
        tasks: Vec<TaskSpec>,
    },
    /// Release of the §8 lock without selection (job rejected or member not
    /// needed).
    Unlock {
        /// The job the lock was held for.
        job: JobId,
    },
    /// The job's input data for an executing member, shipped alongside the
    /// §11 permutation through the engine's shared-bandwidth flow plane
    /// (`Context::transfer`) instead of a routed send. Only produced when
    /// `RtdsConfig::flow_transfers` is enabled and the member's logical
    /// processor consumes a positive cross-processor data volume; it arrives
    /// when the flow completes, i.e. after contending for link bandwidth
    /// with every concurrent transfer.
    TaskData {
        /// The job the data belongs to.
        job: JobId,
        /// Total input volume shipped to the member (graph data-volume
        /// units).
        volume: f64,
    },
}

impl RtdsMsg {
    /// Short label used by the statistics counters and the Fig. 1 trace.
    pub fn kind(&self) -> &'static str {
        match self {
            RtdsMsg::RoutingUpdate { .. } => "routing_update",
            RtdsMsg::JobArrival { .. } => "job_arrival",
            RtdsMsg::Enroll { .. } => "enroll",
            RtdsMsg::EnrollAck { .. } => "enroll_ack",
            RtdsMsg::EnrollBusy { .. } => "enroll_busy",
            RtdsMsg::TrialMapping { .. } => "trial_mapping",
            RtdsMsg::ValidationReply { .. } => "validation_reply",
            RtdsMsg::Permutation { .. } => "permutation",
            RtdsMsg::Unlock { .. } => "unlock",
            RtdsMsg::TaskData { .. } => "task_data",
        }
    }

    /// Returns `true` for messages that belong to the distribution of a job
    /// (everything except the initial routing exchange and external
    /// arrivals) — the quantity the paper's overhead claim is about.
    pub fn is_distribution_message(&self) -> bool {
        !matches!(
            self,
            RtdsMsg::RoutingUpdate { .. } | RtdsMsg::JobArrival { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_classification() {
        let m = RtdsMsg::Enroll {
            initiator: SiteId(0),
            job: JobId(1),
        };
        assert_eq!(m.kind(), "enroll");
        assert!(m.is_distribution_message());
        let r = RtdsMsg::RoutingUpdate {
            phase: 1,
            lines: Vec::new().into(),
        };
        assert_eq!(r.kind(), "routing_update");
        assert!(!r.is_distribution_message());
        let u = RtdsMsg::Unlock { job: JobId(3) };
        assert_eq!(u.kind(), "unlock");
        assert!(u.is_distribution_message());
        let p = RtdsMsg::Permutation {
            job: JobId(3),
            logical: None,
            tasks: vec![],
        };
        assert_eq!(p.kind(), "permutation");
        let v = RtdsMsg::ValidationReply {
            job: JobId(3),
            endorsable: vec![0, 2],
        };
        assert_eq!(v.kind(), "validation_reply");
        let t = RtdsMsg::TrialMapping {
            job: JobId(3),
            tasks_per_logical: vec![vec![]].into(),
        };
        assert_eq!(t.kind(), "trial_mapping");
        let a = RtdsMsg::EnrollAck {
            job: JobId(3),
            surplus: 0.5,
            speed: 1.0,
        };
        assert_eq!(a.kind(), "enroll_ack");
        let b = RtdsMsg::EnrollBusy { job: JobId(3) };
        assert_eq!(b.kind(), "enroll_busy");
        let d = RtdsMsg::TaskData {
            job: JobId(3),
            volume: 7.5,
        };
        assert_eq!(d.kind(), "task_data");
        assert!(d.is_distribution_message());
    }

    #[test]
    fn task_spec_round_trip() {
        let spec = TaskSpec {
            task: TaskId(2),
            release: 24.0,
            deadline: 42.0,
            cost: 4.0,
        };
        assert_eq!(spec.task, TaskId(2));
        assert!(spec.deadline - spec.release >= spec.cost);
    }
}
