//! Open-loop arrival processes.
//!
//! A [`WorkloadSource`] emits `(arrival_time, JobSpec)` pairs lazily in
//! non-decreasing time order — the streaming counterpart of the batch
//! [`rtds_sim::arrivals::ArrivalSchedule`]. Sources are *open-loop*: the
//! arrival clock never waits for the system (no admission feedback), which
//! is the standard methodology for latency/overload studies and the model
//! used by dslab-style discrete-event simulators.
//!
//! [`OpenLoopSource`] composes three seeded ingredients:
//!
//! * a [`RateProcess`] — homogeneous Poisson, bursty on/off (a two-state
//!   Markov-modulated Poisson process), or a diurnal rate curve sampled by
//!   thinning against its peak rate,
//! * a [`SizeMix`] — fixed, uniform or heavy-tail Pareto task counts,
//! * a site assignment — uniform over all sites or over a hotspot prefix.
//!
//! [`MergedSource`] interleaves two sources by time, so compound workloads
//! (e.g. a diurnal base load plus a bursty hotspot) compose from parts.

use crate::spec::{JobSpec, SizeMix};
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// A lazy, time-ordered stream of job arrivals.
pub trait WorkloadSource {
    /// The next arrival `(time, spec)`, or `None` when exhausted. Times
    /// must be non-decreasing.
    fn next_arrival(&mut self) -> Option<(f64, JobSpec)>;
}

/// Aggregate arrival-rate process (jobs per simulated time unit over the
/// whole system; for Poisson this is equivalent to independent per-site
/// processes at `rate / sites`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RateProcess {
    /// Homogeneous Poisson arrivals.
    Poisson {
        /// Aggregate rate λ.
        rate: f64,
    },
    /// Two-state Markov-modulated Poisson process: the stream alternates
    /// between an *on* state (rate `on_rate`) and an *off* state (rate
    /// `off_rate`), with exponentially distributed holding times of the
    /// given means. `off_rate = 0` gives classical on/off bursts.
    OnOff {
        /// Arrival rate while bursting.
        on_rate: f64,
        /// Arrival rate between bursts (may be 0).
        off_rate: f64,
        /// Mean holding time of the on state.
        mean_on: f64,
        /// Mean holding time of the off state.
        mean_off: f64,
    },
    /// Diurnal rate curve
    /// `rate(t) = base + (peak - base) · (1 − cos(2πt / period)) / 2`
    /// (troughs at multiples of `period`, crests halfway between), sampled
    /// exactly by thinning a Poisson stream at the peak rate.
    Diurnal {
        /// Trough rate.
        base: f64,
        /// Crest rate.
        peak: f64,
        /// Length of one day.
        period: f64,
    },
}

/// Declarative configuration of an [`OpenLoopSource`] (embeddable in
/// scenario specs; expand with [`OpenLoopSpec::build`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpenLoopSpec {
    /// Arrival-rate process.
    pub process: RateProcess,
    /// Job-size mix.
    pub sizes: SizeMix,
    /// Restrict arrivals to the first `hotspots` sites (0 = all sites).
    pub hotspots: usize,
    /// Stop emitting at this time (`f64::INFINITY` = unbounded).
    pub horizon: f64,
    /// Stop after this many jobs (0 = unbounded).
    pub max_jobs: u64,
}

impl OpenLoopSpec {
    /// Instantiates the source for a system of `sites` sites with the given
    /// stream seed.
    pub fn build(&self, sites: usize, seed: u64) -> OpenLoopSource {
        OpenLoopSource::new(*self, sites, seed)
    }
}

/// A seeded open-loop arrival stream (see the module docs).
#[derive(Debug, Clone)]
pub struct OpenLoopSource {
    spec: OpenLoopSpec,
    sites: usize,
    rng: StdRng,
    t: f64,
    emitted: u64,
    /// On/off modulation state (used by [`RateProcess::OnOff`] only).
    on: bool,
    state_until: f64,
}

/// Exponential draw with the given rate via inverse-transform sampling.
fn exponential(rng: &mut StdRng, rate: f64) -> f64 {
    let u: f64 = rng.random_range(f64::EPSILON..1.0);
    -u.ln() / rate
}

impl OpenLoopSource {
    /// Creates the source. `sites` must be positive.
    pub fn new(spec: OpenLoopSpec, sites: usize, seed: u64) -> Self {
        assert!(sites > 0, "an arrival stream needs at least one site");
        let mut source = OpenLoopSource {
            spec,
            sites,
            rng: StdRng::seed_from_u64(seed),
            t: 0.0,
            emitted: 0,
            on: true,
            state_until: 0.0,
        };
        if let RateProcess::OnOff { mean_on, .. } = spec.process {
            source.state_until = exponential(&mut source.rng, 1.0 / mean_on.max(1e-9));
        }
        source
    }

    /// Jobs emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Advances the arrival clock to the next event of the rate process.
    fn next_time(&mut self) -> Option<f64> {
        match self.spec.process {
            RateProcess::Poisson { rate } => {
                if rate <= 0.0 {
                    return None;
                }
                self.t += exponential(&mut self.rng, rate);
                Some(self.t)
            }
            RateProcess::OnOff {
                on_rate,
                off_rate,
                mean_on,
                mean_off,
            } => {
                if on_rate <= 0.0 && off_rate <= 0.0 {
                    return None;
                }
                // Walk state boundaries until an arrival lands inside the
                // current state's holding interval.
                loop {
                    let rate = if self.on { on_rate } else { off_rate };
                    if rate > 0.0 {
                        let dt = exponential(&mut self.rng, rate);
                        if self.t + dt <= self.state_until {
                            self.t += dt;
                            return Some(self.t);
                        }
                    }
                    self.t = self.state_until;
                    self.on = !self.on;
                    let mean = if self.on { mean_on } else { mean_off };
                    self.state_until = self.t + exponential(&mut self.rng, 1.0 / mean.max(1e-9));
                    if self.t >= self.spec.horizon {
                        // Never arriving again within the horizon.
                        return Some(self.t);
                    }
                }
            }
            RateProcess::Diurnal { base, peak, period } => {
                let hi = base.max(peak);
                if hi <= 0.0 || period <= 0.0 {
                    return None;
                }
                // Thinning: candidates at the peak rate, accepted with
                // probability rate(t) / peak — an exact sampler for
                // inhomogeneous Poisson processes.
                loop {
                    self.t += exponential(&mut self.rng, hi);
                    if self.t >= self.spec.horizon {
                        return Some(self.t);
                    }
                    let phase = (self.t / period) * std::f64::consts::TAU;
                    let rate = base + (peak - base) * 0.5 * (1.0 - phase.cos());
                    if self.rng.random_bool((rate / hi).clamp(0.0, 1.0)) {
                        return Some(self.t);
                    }
                }
            }
        }
    }
}

impl WorkloadSource for OpenLoopSource {
    fn next_arrival(&mut self) -> Option<(f64, JobSpec)> {
        if self.spec.max_jobs > 0 && self.emitted >= self.spec.max_jobs {
            return None;
        }
        let t = self.next_time()?;
        if t >= self.spec.horizon {
            return None;
        }
        let allowed = if self.spec.hotspots == 0 {
            self.sites
        } else {
            self.spec.hotspots.min(self.sites)
        };
        let site = self.rng.random_range(0..allowed);
        let tasks = self.spec.sizes.sample(&mut self.rng);
        let seed = self.rng.random_range(0..u64::MAX);
        self.emitted += 1;
        Some((t, JobSpec { site, tasks, seed }))
    }
}

/// Interleaves two sources by arrival time (ties go to `a`). Both inputs
/// stay lazy: one arrival of each is buffered at a time.
#[derive(Debug)]
pub struct MergedSource<A, B> {
    a: A,
    b: B,
    next_a: Option<(f64, JobSpec)>,
    next_b: Option<(f64, JobSpec)>,
    primed: bool,
}

impl<A: WorkloadSource, B: WorkloadSource> MergedSource<A, B> {
    /// Merges `a` and `b` into one time-ordered stream.
    pub fn new(a: A, b: B) -> Self {
        MergedSource {
            a,
            b,
            next_a: None,
            next_b: None,
            primed: false,
        }
    }
}

impl<A: WorkloadSource, B: WorkloadSource> WorkloadSource for MergedSource<A, B> {
    fn next_arrival(&mut self) -> Option<(f64, JobSpec)> {
        if !self.primed {
            self.next_a = self.a.next_arrival();
            self.next_b = self.b.next_arrival();
            self.primed = true;
        }
        let take_a = match (&self.next_a, &self.next_b) {
            (Some((ta, _)), Some((tb, _))) => ta <= tb,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if take_a {
            let item = self.next_a.take();
            self.next_a = self.a.next_arrival();
            item
        } else {
            let item = self.next_b.take();
            self.next_b = self.b.next_arrival();
            item
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut source: impl WorkloadSource) -> Vec<(f64, JobSpec)> {
        let mut out = Vec::new();
        while let Some(a) = source.next_arrival() {
            out.push(a);
        }
        out
    }

    fn spec(process: RateProcess) -> OpenLoopSpec {
        OpenLoopSpec {
            process,
            sizes: SizeMix::Fixed { tasks: 8 },
            hotspots: 0,
            horizon: 500.0,
            max_jobs: 0,
        }
    }

    #[test]
    fn poisson_rate_and_ordering() {
        let arrivals = drain(spec(RateProcess::Poisson { rate: 2.0 }).build(10, 1));
        // E[n] = 1000; generous slack.
        assert!((800..1200).contains(&arrivals.len()), "{}", arrivals.len());
        assert!(arrivals.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(arrivals.iter().all(|(t, s)| *t < 500.0 && s.site < 10));
        // Per-job seeds differ (each job gets its own DAG stream).
        assert_ne!(arrivals[0].1.seed, arrivals[1].1.seed);
    }

    #[test]
    fn onoff_bursts_cluster_arrivals() {
        let arrivals = drain(
            spec(RateProcess::OnOff {
                on_rate: 5.0,
                off_rate: 0.0,
                mean_on: 10.0,
                mean_off: 40.0,
            })
            .build(4, 3),
        );
        assert!(!arrivals.is_empty());
        assert!(arrivals.windows(2).all(|w| w[0].0 <= w[1].0));
        // Duty cycle 20 %: far fewer arrivals than an always-on stream, and
        // gaps longer than any plausible on-state inter-arrival exist.
        assert!(arrivals.len() < 1500, "{}", arrivals.len());
        let max_gap = arrivals
            .windows(2)
            .map(|w| w[1].0 - w[0].0)
            .fold(0.0f64, f64::max);
        assert!(max_gap > 10.0, "no off-period gap, max {max_gap}");
    }

    #[test]
    fn diurnal_rate_follows_the_curve() {
        let arrivals = drain(
            spec(RateProcess::Diurnal {
                base: 0.1,
                peak: 4.0,
                period: 250.0,
            })
            .build(4, 7),
        );
        assert!(arrivals.windows(2).all(|w| w[0].0 <= w[1].0));
        // Crest (middle of the 500-horizon: one full period => crest at
        // 125 and 375) vs troughs near 0/250/500.
        let in_band = |lo: f64, hi: f64| {
            arrivals
                .iter()
                .filter(|(t, _)| (lo..hi).contains(t))
                .count()
        };
        let crest = in_band(100.0, 150.0) + in_band(350.0, 400.0);
        let trough = in_band(225.0, 275.0) + in_band(0.0, 25.0) + in_band(475.0, 500.0);
        assert!(
            crest > 3 * trough.max(1),
            "crest {crest} vs trough {trough}"
        );
    }

    #[test]
    fn hotspots_and_caps_are_respected() {
        let mut cfg = spec(RateProcess::Poisson { rate: 1.0 });
        cfg.hotspots = 2;
        cfg.max_jobs = 25;
        let arrivals = drain(cfg.build(16, 5));
        assert_eq!(arrivals.len(), 25);
        assert!(arrivals.iter().all(|(_, s)| s.site < 2));
    }

    #[test]
    fn degenerate_processes_are_empty() {
        assert!(drain(spec(RateProcess::Poisson { rate: 0.0 }).build(2, 1)).is_empty());
        assert!(drain(
            spec(RateProcess::OnOff {
                on_rate: 0.0,
                off_rate: 0.0,
                mean_on: 5.0,
                mean_off: 5.0,
            })
            .build(2, 1)
        )
        .is_empty());
        assert!(drain(
            spec(RateProcess::Diurnal {
                base: 0.0,
                peak: 0.0,
                period: 100.0,
            })
            .build(2, 1)
        )
        .is_empty());
    }

    #[test]
    fn sources_are_deterministic() {
        let run = || drain(spec(RateProcess::Poisson { rate: 0.5 }).build(6, 42));
        assert_eq!(run(), run());
        let other = drain(spec(RateProcess::Poisson { rate: 0.5 }).build(6, 43));
        assert_ne!(run(), other);
    }

    #[test]
    fn merged_sources_interleave_in_time_order() {
        let mut a = spec(RateProcess::Poisson { rate: 0.3 });
        a.max_jobs = 20;
        let mut b = spec(RateProcess::Poisson { rate: 0.3 });
        b.max_jobs = 15;
        let merged = drain(MergedSource::new(a.build(4, 1), b.build(4, 2)));
        assert_eq!(merged.len(), 35);
        assert!(merged.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
