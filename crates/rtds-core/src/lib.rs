//! # rtds-core — the RTDS protocol (the paper's contribution)
//!
//! This crate implements the Real-Time Distributed Scheduling algorithm of
//! Butelle, Finta and Hakem (IPPS 2007) on top of the substrates provided by
//! the sibling crates (`rtds-graph`, `rtds-net`, `rtds-sim`, `rtds-sched`):
//!
//! * [`pcs`] — §7: distributed construction of the **Potential Computing
//!   Sphere** by an interrupted, phase-synchronous Bellman–Ford exchange,
//! * [`acs`] — §8: enrollment of the **Available Computing Sphere** with
//!   per-site locks and surplus collection,
//! * [`mapper`] — §9/§12: the list-scheduling **Mapper** (critical-path
//!   priority, earliest-finish-time processor selection, surplus-scaled
//!   durations, diameter-over-estimated communication delays), producing the
//!   schedules `S` and `S*`,
//! * [`adjust`] — §12.2: derivation and adjustment of per-task releases and
//!   deadlines (equations (1)–(5), cases (i)–(iii), laxity scattering and the
//!   §13 busyness-weighted variant),
//! * [`matching`] — §10: Hopcroft–Karp maximum bipartite matching used to
//!   compute the validation *coupling*,
//! * [`validate`] — §10: per-site validation of logical-processor task sets
//!   and extraction of the execution permutation,
//! * [`node`] — the per-site protocol state machine tying it all together
//!   over the discrete-event simulator,
//! * [`system`] — [`RtdsSystem`]: a one-call deployment used by the examples,
//!   integration tests and the experiment harness,
//! * [`streaming`] — the open-loop execution path: jobs pulled on demand
//!   from a [`streaming::JobSource`], committed reservations pruned behind
//!   the clock, aggregate [`streaming::StreamReport`] instead of a per-job
//!   vector — memory bounded by in-flight work (the workload generators and
//!   trace record/replay live in the `rtds-workload` crate),
//! * [`analysis`] — Gantt/Table extraction used to regenerate the paper's
//!   Figs. 3–4 and Table 1.

pub mod acs;
pub mod adjust;
pub mod analysis;
pub mod config;
pub mod mapper;
pub mod matching;
pub mod messages;
pub mod node;
pub mod pcs;
pub mod snapshot;
pub mod streaming;
pub mod system;
pub mod validate;

pub use adjust::{adjust_mapping, AdjustCase, AdjustOutcome};
pub use analysis::{gantt_rows, table1_rows, GanttRow, Table1Row};
pub use config::{DemandRule, LaxityDispatch, RtdsConfig};
pub use mapper::{map_dag, MapperInput, MapperResult, ProcessorSpec};
pub use matching::{
    maximum_bipartite_matching, maximum_bipartite_matching_csr, BipartiteCsr, MatchScratch,
};
pub use messages::{RtdsMsg, TaskSpec};
pub use node::{NodeBuilder, RtdsNode};
pub use snapshot::{
    SnapshotError, SCHED_SNAPSHOT_SCHEMA, STREAM_SNAPSHOT_SCHEMA, SYSTEM_SNAPSHOT_SCHEMA,
};
pub use streaming::{JobSource, StreamOptions, StreamPause, StreamReport, StreamRun};
pub use system::{JobOutcomeKind, JobReport, RtdsSystem, RunReport};
