//! The paper's worked example (§12.1, Figs. 2–4, Table 1), end to end.
//!
//! Reconstructs the Fig. 2 task graph, runs the §12 Mapper with the published
//! surpluses (I1 = 0.5, I2 = 0.4) and ACS diameter 3, prints the schedules S
//! and S* and the adjusted releases/deadlines of Table 1, and checks them
//! against the values published in the paper.
//!
//! Run with: `cargo run --example paper_example`

use rtds::core::analysis::{render_gantt, render_table1};
use rtds::core::{
    adjust_mapping, gantt_rows, map_dag, table1_rows, LaxityDispatch, MapperInput, ProcessorSpec,
};
use rtds::graph::paper_instance::{
    paper_task_graph, EXPECTED_TABLE1, PAPER_ACS_DIAMETER, PAPER_DEADLINE, PAPER_RELEASE,
    PAPER_SURPLUS_P1, PAPER_SURPLUS_P2,
};

fn main() {
    let graph = paper_task_graph();
    println!("Fig. 2 task graph (reconstructed):");
    for t in graph.task_ids() {
        let succs: Vec<String> = graph
            .successors(t)
            .map(|s| format!("t{}", s.0 + 1))
            .collect();
        println!(
            "  t{}  c = {:>4.1}  -> [{}]",
            t.0 + 1,
            graph.cost(t),
            succs.join(", ")
        );
    }

    let processors = vec![
        ProcessorSpec::with_surplus(PAPER_SURPLUS_P1),
        ProcessorSpec::with_surplus(PAPER_SURPLUS_P2),
    ];
    let input = MapperInput::new(&graph, PAPER_RELEASE, &processors, PAPER_ACS_DIAMETER);
    let result = map_dag(&input).expect("the paper instance always maps");

    println!();
    println!("Fig. 3 — schedule S (I1 = 0.5, I2 = 0.4, omega = 3):");
    print!("{}", render_gantt(&gantt_rows(&result, false)));
    println!("  makespan M  = {}", result.makespan);

    println!();
    println!("Fig. 4 — schedule S* (surpluses = 100 %):");
    print!("{}", render_gantt(&gantt_rows(&result, true)));
    println!("  makespan M* = {}", result.makespan_star);

    let adjusted = adjust_mapping(
        &graph,
        &result,
        PAPER_RELEASE,
        PAPER_DEADLINE,
        &processors,
        LaxityDispatch::Uniform,
    );
    let rows = table1_rows(&graph, &result, &adjusted).expect("case (ii) applies");
    println!();
    println!(
        "Table 1 — adjusted r(ti), d(ti) (d = {PAPER_DEADLINE}, scale = {}):",
        PAPER_DEADLINE / result.makespan
    );
    print!("{}", render_table1(&rows));

    // Cross-check every value against the published table.
    for (task, ri, di, r_adj, d_adj) in EXPECTED_TABLE1 {
        let row = rows.iter().find(|r| r.task == task).unwrap();
        assert!((row.r_raw - ri).abs() < 1e-9);
        assert!((row.d_raw - di).abs() < 1e-9);
        assert!((row.r_adjusted - r_adj).abs() < 1e-9);
        assert!((row.d_adjusted - d_adj).abs() < 1e-9);
    }
    println!();
    println!("all values match the paper exactly.");
}
