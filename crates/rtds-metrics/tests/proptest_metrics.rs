//! Property tests for the telemetry algebra: histogram and registry merge
//! must be associative and commutative (with the empty value as identity),
//! and every summary must be a pure function of the recorded multiset —
//! independent of sample order and of how the samples were partitioned
//! across histograms before merging. These are exactly the properties the
//! sharded sweep runner depends on for byte-identical reports at any
//! thread count.

use proptest::prelude::*;
use rtds_metrics::{Histogram, MetricsRegistry, Scope};

fn fill(samples: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

fn merged(a: &Histogram, b: &Histogram) -> Histogram {
    let mut out = a.clone();
    out.merge(b);
    out
}

/// Samples spanning the interesting ranges: zero, sub-bucket tiny values,
/// mid-range latencies and overflow-bucket monsters.
fn sample_vec() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        prop_oneof![
            Just(0.0),
            1e-9f64..1e-6,
            0.01f64..1.0,
            1.0f64..1e3,
            1e3f64..1e6,
            1e12f64..1e15,
        ],
        0..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_merge_is_commutative(a in sample_vec(), b in sample_vec()) {
        let (ha, hb) = (fill(&a), fill(&b));
        prop_assert_eq!(merged(&ha, &hb), merged(&hb, &ha));
    }

    #[test]
    fn histogram_merge_is_associative(
        a in sample_vec(),
        b in sample_vec(),
        c in sample_vec(),
    ) {
        let (ha, hb, hc) = (fill(&a), fill(&b), fill(&c));
        let left = merged(&merged(&ha, &hb), &hc);
        let right = merged(&ha, &merged(&hb, &hc));
        prop_assert_eq!(&left, &right);
        // The empty histogram is the identity on both sides.
        prop_assert_eq!(merged(&left, &Histogram::new()), left.clone());
        prop_assert_eq!(merged(&Histogram::new(), &left), left);
    }

    #[test]
    fn summaries_only_depend_on_the_sample_multiset(
        samples in sample_vec(),
        split in 0usize..81,
    ) {
        // One histogram fed everything vs. two fed a partition and merged:
        // identical state, hence identical summaries and quantiles.
        let whole = fill(&samples);
        let cut = split.min(samples.len());
        let parts = merged(&fill(&samples[..cut]), &fill(&samples[cut..]));
        prop_assert_eq!(&whole, &parts);
        prop_assert_eq!(whole.summary(), parts.summary());
        // Reversing the sample order changes nothing either.
        let mut reversed = samples.clone();
        reversed.reverse();
        prop_assert_eq!(fill(&reversed), whole);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(samples in sample_vec()) {
        let h = fill(&samples);
        let qs: Vec<f64> = [0.0, 0.25, 0.5, 0.9, 0.99, 1.0]
            .iter()
            .map(|&q| h.quantile(q))
            .collect();
        for pair in qs.windows(2) {
            prop_assert!(pair[0] <= pair[1], "quantiles must be monotone: {qs:?}");
        }
        if !samples.is_empty() {
            prop_assert!(h.quantile(0.0) >= h.min() - f64::EPSILON);
            prop_assert!(h.quantile(1.0) <= h.max() + f64::EPSILON);
            // A bucket bound is within 2x of the true order statistic for
            // positive samples (the determinism/resolution trade).
            let mut sorted = samples.clone();
            sorted.sort_by(f64::total_cmp);
            let true_median = sorted[(sorted.len() - 1) / 2];
            if true_median > 0.0 {
                let reported = h.quantile(0.5);
                prop_assert!(
                    reported <= (true_median * 2.0).max(h.max())
                        && reported >= true_median / 2.0,
                    "p50 {reported} vs true median {true_median}"
                );
            }
        }
    }

    #[test]
    fn registry_merge_is_associative_and_commutative(
        a in sample_vec(),
        b in sample_vec(),
        c in sample_vec(),
    ) {
        let build = |samples: &[f64]| {
            let mut m = MetricsRegistry::new();
            for (i, &v) in samples.iter().enumerate() {
                m.record("hist", v);
                m.record_scoped("scoped", Scope::Site((i % 3) as u32), v);
                m.add("count", 1);
                m.gauge_set("gauge", v);
            }
            m
        };
        let (ma, mb, mc) = (build(&a), build(&b), build(&c));
        let merge = |x: &MetricsRegistry, y: &MetricsRegistry| {
            let mut out = x.clone();
            out.merge(y);
            out
        };
        prop_assert_eq!(merge(&ma, &mb), merge(&mb, &ma));
        prop_assert_eq!(
            merge(&merge(&ma, &mb), &mc),
            merge(&ma, &merge(&mb, &mc))
        );
        prop_assert_eq!(merge(&ma, &MetricsRegistry::new()), ma.clone());
        // The scoped rollup equals the global histogram: same samples.
        let all = merge(&merge(&ma, &mb), &mc);
        prop_assert_eq!(all.histogram("scoped"), all.histogram("hist"));
    }
}
