//! Seedable generators. Only [`StdRng`] is provided; it is xoshiro256++
//! rather than the real crate's ChaCha12, trading value-compatibility for a
//! dependency-free deterministic implementation.

use crate::{RngCore, SeedableRng};

/// Deterministic xoshiro256++ generator seeded via SplitMix64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// Inherent mirror of [`SeedableRng::seed_from_u64`] so call sites work
    /// even without the trait in scope.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro forbids the all-zero state; SplitMix64 cannot emit four
        // consecutive zeros, but keep the guard explicit.
        debug_assert!(s.iter().any(|&w| w != 0));
        StdRng { s }
    }

    /// The raw xoshiro256++ state words, for checkpointing a generator
    /// mid-stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from state words captured by [`StdRng::state`].
    /// The resulting generator continues the exact output stream of the
    /// captured one.
    ///
    /// # Panics
    /// Panics on the all-zero state, which xoshiro forbids (a genuine
    /// [`StdRng`] can never reach it).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro256++ state must not be all zero"
        );
        StdRng { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng::seed_from_u64(seed)
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
