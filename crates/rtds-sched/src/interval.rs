//! Time intervals and idle-window arithmetic.
//!
//! Intervals are closed-open `[start, end)`; an interval with `end <= start`
//! is empty. The local scheduler reasons exclusively in terms of the idle
//! windows left between committed reservations, so interval arithmetic is the
//! foundation of every admission and validation test.

use serde::{Deserialize, Serialize};

/// A closed-open time interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeInterval {
    /// Inclusive start.
    pub start: f64,
    /// Exclusive end.
    pub end: f64,
}

impl TimeInterval {
    /// Creates an interval; `end < start` is normalised to an empty interval
    /// at `start`.
    pub fn new(start: f64, end: f64) -> Self {
        TimeInterval {
            start,
            end: end.max(start),
        }
    }

    /// Length of the interval (zero if empty).
    pub fn duration(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }

    /// Returns `true` if the interval has zero length.
    pub fn is_empty(&self) -> bool {
        self.duration() <= 0.0
    }

    /// Returns `true` if `t` lies inside `[start, end)`.
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start && t < self.end
    }

    /// Returns `true` if the two intervals share a positive-length overlap.
    pub fn overlaps(&self, other: &TimeInterval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Intersection of two intervals (possibly empty).
    pub fn intersect(&self, other: &TimeInterval) -> TimeInterval {
        TimeInterval::new(self.start.max(other.start), self.end.min(other.end))
    }

    /// Returns `true` if this interval fully contains the other.
    pub fn covers(&self, other: &TimeInterval) -> bool {
        other.is_empty() || (self.start <= other.start && other.end <= self.end)
    }
}

/// Subtracts a set of (possibly overlapping, unsorted) busy intervals from a
/// window, returning the idle sub-windows in increasing time order.
///
/// This is the workhorse of the local scheduler: "idle windows of the plan
/// over `[from, to)`" is `subtract_busy(window, reservations)`.
pub fn subtract_busy(window: TimeInterval, busy: &[TimeInterval]) -> Vec<TimeInterval> {
    if window.is_empty() {
        return Vec::new();
    }
    let mut clipped: Vec<TimeInterval> = busy
        .iter()
        .map(|b| b.intersect(&window))
        .filter(|b| !b.is_empty())
        .collect();
    clipped.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
    let mut idle = Vec::new();
    let mut cursor = window.start;
    for b in clipped {
        if b.start > cursor {
            idle.push(TimeInterval::new(cursor, b.start));
        }
        cursor = cursor.max(b.end);
    }
    if cursor < window.end {
        idle.push(TimeInterval::new(cursor, window.end));
    }
    idle
}

/// Total idle time inside a window given busy intervals.
pub fn idle_time(window: TimeInterval, busy: &[TimeInterval]) -> f64 {
    subtract_busy(window, busy)
        .iter()
        .map(|i| i.duration())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_interval_operations() {
        let i = TimeInterval::new(2.0, 5.0);
        assert_eq!(i.duration(), 3.0);
        assert!(!i.is_empty());
        assert!(i.contains(2.0));
        assert!(i.contains(4.999));
        assert!(!i.contains(5.0));
        assert!(!i.contains(1.0));
        let empty = TimeInterval::new(3.0, 1.0);
        assert!(empty.is_empty());
        assert_eq!(empty.duration(), 0.0);
        assert_eq!(empty.start, 3.0);
    }

    #[test]
    fn overlap_and_intersection() {
        let a = TimeInterval::new(0.0, 10.0);
        let b = TimeInterval::new(5.0, 15.0);
        let c = TimeInterval::new(10.0, 20.0);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c)); // closed-open: touching is not overlapping
        assert_eq!(a.intersect(&b), TimeInterval::new(5.0, 10.0));
        assert!(a.intersect(&c).is_empty());
        assert!(a.covers(&TimeInterval::new(2.0, 8.0)));
        assert!(!a.covers(&b));
        assert!(a.covers(&TimeInterval::new(20.0, 20.0))); // empty is always covered
    }

    #[test]
    fn subtract_busy_basic() {
        let window = TimeInterval::new(0.0, 100.0);
        let busy = vec![TimeInterval::new(10.0, 20.0), TimeInterval::new(40.0, 60.0)];
        let idle = subtract_busy(window, &busy);
        assert_eq!(
            idle,
            vec![
                TimeInterval::new(0.0, 10.0),
                TimeInterval::new(20.0, 40.0),
                TimeInterval::new(60.0, 100.0),
            ]
        );
        assert_eq!(idle_time(window, &busy), 70.0);
    }

    #[test]
    fn subtract_busy_handles_overlapping_and_unsorted_input() {
        let window = TimeInterval::new(0.0, 50.0);
        let busy = vec![
            TimeInterval::new(30.0, 45.0),
            TimeInterval::new(5.0, 20.0),
            TimeInterval::new(15.0, 35.0), // overlaps both
        ];
        let idle = subtract_busy(window, &busy);
        assert_eq!(
            idle,
            vec![TimeInterval::new(0.0, 5.0), TimeInterval::new(45.0, 50.0)]
        );
        assert_eq!(idle_time(window, &busy), 10.0);
    }

    #[test]
    fn subtract_busy_edge_cases() {
        let window = TimeInterval::new(10.0, 20.0);
        // Busy fully outside the window.
        assert_eq!(
            subtract_busy(window, &[TimeInterval::new(0.0, 5.0)]),
            vec![window]
        );
        // Busy covering the whole window.
        assert!(subtract_busy(window, &[TimeInterval::new(0.0, 30.0)]).is_empty());
        // Empty window.
        assert!(subtract_busy(TimeInterval::new(5.0, 5.0), &[]).is_empty());
        // No busy intervals at all.
        assert_eq!(subtract_busy(window, &[]), vec![window]);
        // Busy exactly aligned with the window boundaries.
        assert_eq!(
            subtract_busy(
                window,
                &[TimeInterval::new(10.0, 12.0), TimeInterval::new(18.0, 20.0)]
            ),
            vec![TimeInterval::new(12.0, 18.0)]
        );
    }
}
