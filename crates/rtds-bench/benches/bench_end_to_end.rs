//! Criterion bench: one full RTDS deployment (PCS construction + a hotspot
//! workload distributed over Computing Spheres) on networks of increasing
//! size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rtds_bench::{workload, WorkloadSpec};
use rtds_core::{RtdsConfig, RtdsSystem};
use rtds_net::generators::{grid, DelayDistribution};
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for &side in &[4usize, 6, 8, 16] {
        let network = grid(side, side, false, DelayDistribution::Constant(1.0), 1);
        let jobs = workload(
            &network,
            WorkloadSpec {
                rate: 0.05,
                horizon: 150.0,
                hotspots: 3,
                tasks_per_job: 6,
                seed: 2,
                ..WorkloadSpec::default()
            },
        );
        // Rate unit: submitted jobs pushed through the full protocol.
        group.throughput(Throughput::Elements(jobs.len() as u64));
        group.bench_with_input(
            BenchmarkId::new(
                "simulate",
                format!("{}sites_{}jobs", side * side, jobs.len()),
            ),
            &(network, jobs),
            |b, (network, jobs)| {
                b.iter(|| {
                    let mut system = RtdsSystem::new(network.clone(), RtdsConfig::default(), 1);
                    system.submit_workload(jobs.clone());
                    black_box(system.run())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
