//! Sporadic job-arrival processes.
//!
//! "Any site may receive jobs sporadically" (§2). The experiment harness
//! drives the system with synthetic arrival processes: Poisson arrivals (the
//! classical sporadic model, parameterised by a per-site rate), periodic
//! arrivals with jitter, and bursty arrivals (a burst of jobs at the start of
//! each burst window) that stress ACS lock contention.

use rand::prelude::*;
use rand::rngs::StdRng;
use rtds_net::SiteId;
use serde::{Deserialize, Serialize};

/// A job-arrival process on one site.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson process with the given arrival rate (jobs per time unit).
    Poisson { rate: f64 },
    /// Periodic arrivals with uniform jitter in `[-jitter, +jitter]`.
    Periodic { period: f64, jitter: f64 },
    /// `burst_size` simultaneous arrivals at the start of every window of
    /// length `window`.
    Bursty { window: f64, burst_size: usize },
}

/// One scheduled arrival: which site receives a job and when.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Arrival {
    /// Receiving site.
    pub site: SiteId,
    /// Absolute arrival time.
    pub time: f64,
}

/// A complete, time-ordered arrival schedule over all sites.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ArrivalSchedule {
    arrivals: Vec<Arrival>,
}

impl ArrivalSchedule {
    /// Generates a schedule for `site_count` sites over `[0, horizon)`, all
    /// sites sharing the same arrival process, using a seeded RNG.
    pub fn generate(process: ArrivalProcess, site_count: usize, horizon: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arrivals = Vec::new();
        for site in 0..site_count {
            let times = sample_site(process, horizon, &mut rng);
            arrivals.extend(times.into_iter().map(|time| Arrival {
                site: SiteId(site),
                time,
            }));
        }
        arrivals.sort_by(|a, b| {
            a.time
                .partial_cmp(&b.time)
                .unwrap()
                .then(a.site.0.cmp(&b.site.0))
        });
        ArrivalSchedule { arrivals }
    }

    /// Generates a schedule where only the listed sites receive jobs.
    pub fn generate_on_sites(
        process: ArrivalProcess,
        sites: &[SiteId],
        horizon: f64,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arrivals = Vec::new();
        for &site in sites {
            let times = sample_site(process, horizon, &mut rng);
            arrivals.extend(times.into_iter().map(|time| Arrival { site, time }));
        }
        arrivals.sort_by(|a, b| {
            a.time
                .partial_cmp(&b.time)
                .unwrap()
                .then(a.site.0.cmp(&b.site.0))
        });
        ArrivalSchedule { arrivals }
    }

    /// The arrivals in time order.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Returns `true` if no job ever arrives.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Arrivals destined to one site.
    pub fn for_site(&self, site: SiteId) -> impl Iterator<Item = &Arrival> {
        self.arrivals.iter().filter(move |a| a.site == site)
    }

    /// Empirical aggregate arrival rate (arrivals per time unit per site).
    pub fn empirical_rate(&self, site_count: usize, horizon: f64) -> f64 {
        if site_count == 0 || horizon <= 0.0 {
            return 0.0;
        }
        self.arrivals.len() as f64 / (site_count as f64 * horizon)
    }
}

fn sample_site(process: ArrivalProcess, horizon: f64, rng: &mut StdRng) -> Vec<f64> {
    let mut times = Vec::new();
    match process {
        ArrivalProcess::Poisson { rate } => {
            if rate <= 0.0 {
                return times;
            }
            let mut t = 0.0;
            loop {
                // Exponential inter-arrival via inverse transform sampling.
                let u: f64 = rng.random_range(f64::EPSILON..1.0);
                t += -u.ln() / rate;
                if t >= horizon {
                    break;
                }
                times.push(t);
            }
        }
        ArrivalProcess::Periodic { period, jitter } => {
            if period <= 0.0 {
                return times;
            }
            let mut k = 1.0;
            loop {
                let base = k * period;
                if base >= horizon {
                    break;
                }
                let j = if jitter > 0.0 {
                    rng.random_range(-jitter..=jitter)
                } else {
                    0.0
                };
                let t = (base + j).clamp(0.0, horizon - f64::EPSILON);
                times.push(t);
                k += 1.0;
            }
        }
        ArrivalProcess::Bursty { window, burst_size } => {
            if window <= 0.0 || burst_size == 0 {
                return times;
            }
            let mut start = 0.0;
            while start < horizon {
                for _ in 0..burst_size {
                    times.push(start);
                }
                start += window;
            }
        }
    }
    times
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_is_approximately_respected() {
        let schedule =
            ArrivalSchedule::generate(ArrivalProcess::Poisson { rate: 0.1 }, 20, 1000.0, 1);
        // Expected arrivals: 20 sites * 0.1 * 1000 = 2000; allow 10 % slack.
        let n = schedule.len() as f64;
        assert!((1800.0..2200.0).contains(&n), "got {n}");
        let rate = schedule.empirical_rate(20, 1000.0);
        assert!((0.09..0.11).contains(&rate), "got {rate}");
        // Time-ordered.
        for w in schedule.arrivals().windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        // Every arrival within the horizon.
        assert!(schedule.arrivals().iter().all(|a| a.time < 1000.0));
    }

    #[test]
    fn poisson_zero_rate_is_empty() {
        let schedule =
            ArrivalSchedule::generate(ArrivalProcess::Poisson { rate: 0.0 }, 5, 100.0, 1);
        assert!(schedule.is_empty());
        assert_eq!(schedule.empirical_rate(5, 100.0), 0.0);
        assert_eq!(schedule.empirical_rate(0, 100.0), 0.0);
    }

    #[test]
    fn periodic_arrivals() {
        let schedule = ArrivalSchedule::generate(
            ArrivalProcess::Periodic {
                period: 10.0,
                jitter: 0.0,
            },
            1,
            55.0,
            3,
        );
        let times: Vec<f64> = schedule.arrivals().iter().map(|a| a.time).collect();
        assert_eq!(times, vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        let jittered = ArrivalSchedule::generate(
            ArrivalProcess::Periodic {
                period: 10.0,
                jitter: 1.0,
            },
            1,
            55.0,
            3,
        );
        assert_eq!(jittered.len(), 5);
        for (a, b) in jittered.arrivals().iter().zip(&times) {
            assert!((a.time - b).abs() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn bursty_arrivals() {
        let schedule = ArrivalSchedule::generate(
            ArrivalProcess::Bursty {
                window: 50.0,
                burst_size: 3,
            },
            2,
            100.0,
            5,
        );
        // 2 windows * 3 jobs * 2 sites = 12 arrivals.
        assert_eq!(schedule.len(), 12);
        assert_eq!(schedule.for_site(SiteId(0)).count(), 6);
        assert_eq!(schedule.for_site(SiteId(1)).count(), 6);
    }

    #[test]
    fn restricted_sites() {
        let schedule = ArrivalSchedule::generate_on_sites(
            ArrivalProcess::Poisson { rate: 0.05 },
            &[SiteId(3), SiteId(7)],
            500.0,
            9,
        );
        assert!(!schedule.is_empty());
        assert!(schedule
            .arrivals()
            .iter()
            .all(|a| a.site == SiteId(3) || a.site == SiteId(7)));
    }

    #[test]
    fn determinism() {
        let a = ArrivalSchedule::generate(ArrivalProcess::Poisson { rate: 0.2 }, 4, 100.0, 42);
        let b = ArrivalSchedule::generate(ArrivalProcess::Poisson { rate: 0.2 }, 4, 100.0, 42);
        assert_eq!(a, b);
        let c = ArrivalSchedule::generate(ArrivalProcess::Poisson { rate: 0.2 }, 4, 100.0, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn degenerate_processes_are_empty() {
        assert!(ArrivalSchedule::generate(
            ArrivalProcess::Periodic {
                period: 0.0,
                jitter: 0.0
            },
            3,
            100.0,
            0
        )
        .is_empty());
        assert!(ArrivalSchedule::generate(
            ArrivalProcess::Bursty {
                window: 10.0,
                burst_size: 0
            },
            3,
            100.0,
            0
        )
        .is_empty());
    }
}
