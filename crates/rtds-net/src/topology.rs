//! The weighted site graph.
//!
//! Sites are identified by dense indices ([`SiteId`]). Links are undirected
//! (the paper's bidirectional communication links) and carry a propagation
//! delay. Delays do *not* have to satisfy the triangle inequality (§2), which
//! is why minimum-delay paths between physically adjacent sites may traverse
//! several links — the routing layer handles that.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Identifier of a site (a node of the communication network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub usize);

impl SiteId {
    /// Raw index of the site.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<usize> for SiteId {
    fn from(v: usize) -> Self {
        SiteId(v)
    }
}

/// Errors raised while building a [`Network`].
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// A link endpoint is not a valid site.
    UnknownSite(SiteId),
    /// A self-link was requested.
    SelfLink(SiteId),
    /// The two sites are already linked.
    DuplicateLink(SiteId, SiteId),
    /// A negative or non-finite delay was supplied.
    InvalidDelay(f64),
    /// A negative or NaN bandwidth was supplied (`f64::INFINITY` is the
    /// legal "unconstrained" capacity; zero models a stalled link).
    InvalidBandwidth(f64),
    /// The two sites are not linked (raised by mutation of a missing link).
    MissingLink(SiteId, SiteId),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::UnknownSite(s) => write!(f, "unknown site {s}"),
            NetworkError::SelfLink(s) => write!(f, "self link on {s}"),
            NetworkError::DuplicateLink(a, b) => write!(f, "duplicate link {a} -- {b}"),
            NetworkError::InvalidDelay(d) => write!(f, "invalid link delay {d}"),
            NetworkError::InvalidBandwidth(b) => write!(f, "invalid link bandwidth {b}"),
            NetworkError::MissingLink(a, b) => write!(f, "no link {a} -- {b}"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// An arbitrary connected communication network: sites plus weighted,
/// bidirectional links.
///
/// Each site is assumed (paper §2) to consist of a computation processor and
/// a system-management processor; that distinction lives in the simulation
/// layer — the topology only records connectivity and delays, plus an
/// optional per-site relative *computing power* used by the §13
/// uniform-machines extension (1.0 for the identical-machines base model).
/// One site's adjacency: `(neighbor, delay)` pairs in insertion order
/// (which is semantic — see [`Network::raw_adjacency`]).
pub type NeighborList = Vec<(SiteId, f64)>;

/// The full state of one undirected link: propagation delay plus bandwidth
/// capacity (`f64::INFINITY` for the pure-latency base model).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkState {
    /// Propagation delay of the link.
    pub delay: f64,
    /// Bandwidth capacity shared max-min fairly by concurrent transfers
    /// (see `rtds-flow`); `f64::INFINITY` means unconstrained.
    pub bandwidth: f64,
}

/// The mutations [`Network::mutate_link`] applies — the single internal
/// change path shared by delay jitter, bandwidth changes and link removal,
/// so adjacency and bandwidth lists can never drift apart and every change
/// bumps the same [`Network::version`] counter.
enum LinkChange {
    SetDelay(f64),
    SetBandwidth(f64),
    Remove,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    /// `adjacency[i]` lists `(neighbor, delay)` pairs in insertion order.
    adjacency: Vec<NeighborList>,
    /// `bandwidths[i][k]` is the capacity of the link behind
    /// `adjacency[i][k]` — kept parallel by the single mutation path.
    bandwidths: Vec<Vec<f64>>,
    /// Relative computing power of every site (1.0 = reference speed).
    speeds: Vec<f64>,
    link_count: usize,
    /// Bumped by every successful link mutation (add / delay / bandwidth /
    /// remove); lets derived state (routing tables, in-flight flows)
    /// detect staleness cheaply. Excluded from equality.
    version: u64,
}

/// Structural equality ignores the mutation [`version`](Network::version):
/// two networks that agree on sites, links, delays, bandwidths and speeds
/// are equal however many mutations produced them.
impl PartialEq for Network {
    fn eq(&self, other: &Self) -> bool {
        self.adjacency == other.adjacency
            && self.bandwidths == other.bandwidths
            && self.speeds == other.speeds
            && self.link_count == other.link_count
    }
}

impl Network {
    /// Creates a network with `n` isolated sites of unit computing power.
    pub fn new(n: usize) -> Self {
        Network {
            adjacency: vec![Vec::new(); n],
            bandwidths: vec![Vec::new(); n],
            speeds: vec![1.0; n],
            link_count: 0,
            version: 0,
        }
    }

    /// The raw adjacency lists, in per-site insertion order, plus the
    /// per-site speeds. Insertion order is semantic — neighbor iteration
    /// (and therefore protocol broadcast order) follows it — so a snapshot
    /// must capture the lists verbatim rather than re-adding links.
    pub fn raw_adjacency(&self) -> (&[NeighborList], &[f64]) {
        (&self.adjacency, &self.speeds)
    }

    /// The raw per-neighbor bandwidth lists, parallel to
    /// [`Network::raw_adjacency`]'s adjacency lists entry-for-entry.
    pub fn raw_bandwidths(&self) -> &[Vec<f64>] {
        &self.bandwidths
    }

    /// Rebuilds a network from raw adjacency lists captured by
    /// [`Network::raw_adjacency`]. The lists must be symmetric (every
    /// `(b, d)` in `adjacency[a]` has a matching `(a, d)` in
    /// `adjacency[b]`); the link count is recomputed from them. Every link
    /// gets unconstrained (`f64::INFINITY`) bandwidth — snapshots that
    /// carry capacities use [`Network::from_raw_parts`] instead.
    ///
    /// # Panics
    /// Panics if `speeds` and `adjacency` disagree on the site count or if
    /// the directed edge count is odd (asymmetric lists).
    pub fn from_raw_adjacency(adjacency: Vec<NeighborList>, speeds: Vec<f64>) -> Self {
        let bandwidths = adjacency
            .iter()
            .map(|list| vec![f64::INFINITY; list.len()])
            .collect();
        Self::from_raw_parts(adjacency, bandwidths, speeds)
    }

    /// Rebuilds a network from raw adjacency, bandwidth and speed lists
    /// (the snapshot path). The bandwidth lists must be entry-parallel to
    /// the adjacency lists. The restored network starts at mutation
    /// version 0.
    ///
    /// # Panics
    /// Panics if the lists disagree on the site count or per-site entry
    /// counts, or if the directed edge count is odd (asymmetric lists).
    pub fn from_raw_parts(
        adjacency: Vec<NeighborList>,
        bandwidths: Vec<Vec<f64>>,
        speeds: Vec<f64>,
    ) -> Self {
        assert_eq!(
            adjacency.len(),
            speeds.len(),
            "adjacency and speeds must cover the same sites"
        );
        assert_eq!(
            adjacency.len(),
            bandwidths.len(),
            "adjacency and bandwidths must cover the same sites"
        );
        for (list, bws) in adjacency.iter().zip(&bandwidths) {
            assert_eq!(
                list.len(),
                bws.len(),
                "bandwidth lists must be entry-parallel to adjacency lists"
            );
        }
        let directed: usize = adjacency.iter().map(Vec::len).sum();
        assert!(
            directed % 2 == 0,
            "adjacency lists must be symmetric (got {directed} directed edges)"
        );
        Network {
            adjacency,
            bandwidths,
            speeds,
            link_count: directed / 2,
            version: 0,
        }
    }

    /// The link-mutation version: bumped once per successful
    /// [`add_link`](Network::add_link) /
    /// [`set_link_delay`](Network::set_link_delay) /
    /// [`set_link_bandwidth`](Network::set_link_bandwidth) /
    /// [`remove_link`](Network::remove_link), so derived state (routing
    /// tables, in-flight flows) can detect topology change without
    /// diffing. Not part of structural equality and reset to 0 on
    /// snapshot restore.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of (undirected) links.
    pub fn link_count(&self) -> usize {
        self.link_count
    }

    /// Iterator over all site ids.
    pub fn sites(&self) -> impl Iterator<Item = SiteId> {
        (0..self.adjacency.len()).map(SiteId)
    }

    /// Adds an undirected link with the given propagation delay and
    /// unconstrained (`f64::INFINITY`) bandwidth.
    pub fn add_link(&mut self, a: SiteId, b: SiteId, delay: f64) -> Result<(), NetworkError> {
        self.add_link_with_bandwidth(a, b, delay, f64::INFINITY)
    }

    /// Adds an undirected link with the given propagation delay and
    /// bandwidth capacity.
    pub fn add_link_with_bandwidth(
        &mut self,
        a: SiteId,
        b: SiteId,
        delay: f64,
        bandwidth: f64,
    ) -> Result<(), NetworkError> {
        let n = self.adjacency.len();
        if a.0 >= n {
            return Err(NetworkError::UnknownSite(a));
        }
        if b.0 >= n {
            return Err(NetworkError::UnknownSite(b));
        }
        if a == b {
            return Err(NetworkError::SelfLink(a));
        }
        if !(delay.is_finite() && delay >= 0.0) {
            return Err(NetworkError::InvalidDelay(delay));
        }
        if bandwidth.is_nan() || bandwidth < 0.0 {
            return Err(NetworkError::InvalidBandwidth(bandwidth));
        }
        if self.adjacency[a.0].iter().any(|(s, _)| *s == b) {
            return Err(NetworkError::DuplicateLink(a, b));
        }
        self.adjacency[a.0].push((b, delay));
        self.bandwidths[a.0].push(bandwidth);
        self.adjacency[b.0].push((a, delay));
        self.bandwidths[b.0].push(bandwidth);
        self.link_count += 1;
        self.version += 1;
        Ok(())
    }

    /// The shared mutation path: locates the `a -> b` and `b -> a`
    /// adjacency entries, applies the change to both sides (and the
    /// parallel bandwidth entries), and bumps the version exactly once.
    /// Every dynamic link mutator funnels through here so no caller can
    /// observe a half-applied change or a stale version.
    fn mutate_link(
        &mut self,
        a: SiteId,
        b: SiteId,
        change: LinkChange,
    ) -> Result<LinkState, NetworkError> {
        let n = self.adjacency.len();
        if a.0 >= n {
            return Err(NetworkError::UnknownSite(a));
        }
        if b.0 >= n {
            return Err(NetworkError::UnknownSite(b));
        }
        let forward = self.adjacency[a.0].iter().position(|(s, _)| *s == b);
        let fwd = match forward {
            Some(pos) => pos,
            None => return Err(NetworkError::MissingLink(a, b)),
        };
        let rev = self.adjacency[b.0]
            .iter()
            .position(|(s, _)| *s == a)
            .expect("adjacency lists are symmetric");
        let previous = LinkState {
            delay: self.adjacency[a.0][fwd].1,
            bandwidth: self.bandwidths[a.0][fwd],
        };
        match change {
            LinkChange::SetDelay(delay) => {
                self.adjacency[a.0][fwd].1 = delay;
                self.adjacency[b.0][rev].1 = delay;
            }
            LinkChange::SetBandwidth(bandwidth) => {
                self.bandwidths[a.0][fwd] = bandwidth;
                self.bandwidths[b.0][rev] = bandwidth;
            }
            LinkChange::Remove => {
                self.adjacency[a.0].remove(fwd);
                self.bandwidths[a.0].remove(fwd);
                self.adjacency[b.0].remove(rev);
                self.bandwidths[b.0].remove(rev);
                self.link_count -= 1;
            }
        }
        self.version += 1;
        Ok(previous)
    }

    /// Changes the propagation delay of an existing link (dynamic-network
    /// support: latency jitter applied by the fault-injection layer).
    pub fn set_link_delay(&mut self, a: SiteId, b: SiteId, delay: f64) -> Result<(), NetworkError> {
        if !(delay.is_finite() && delay >= 0.0) {
            return Err(NetworkError::InvalidDelay(delay));
        }
        self.mutate_link(a, b, LinkChange::SetDelay(delay))
            .map(|_| ())
    }

    /// Changes the bandwidth capacity of an existing link
    /// (dynamic-network support: brownouts and capacity upgrades applied
    /// by the fault-injection layer). `f64::INFINITY` removes the
    /// constraint; zero stalls in-flight transfers until a later change.
    pub fn set_link_bandwidth(
        &mut self,
        a: SiteId,
        b: SiteId,
        bandwidth: f64,
    ) -> Result<(), NetworkError> {
        if bandwidth.is_nan() || bandwidth < 0.0 {
            return Err(NetworkError::InvalidBandwidth(bandwidth));
        }
        self.mutate_link(a, b, LinkChange::SetBandwidth(bandwidth))
            .map(|_| ())
    }

    /// Removes an undirected link, returning its full state (dynamic-
    /// network support: link failure applied by the fault-injection layer,
    /// which re-adds the link with the same state on recovery). Returns
    /// `None` if the link does not exist.
    pub fn remove_link(&mut self, a: SiteId, b: SiteId) -> Option<LinkState> {
        self.mutate_link(a, b, LinkChange::Remove).ok()
    }

    /// Restores a link with the full state captured by
    /// [`Network::remove_link`].
    pub fn restore_link(
        &mut self,
        a: SiteId,
        b: SiteId,
        state: LinkState,
    ) -> Result<(), NetworkError> {
        self.add_link_with_bandwidth(a, b, state.delay, state.bandwidth)
    }

    /// Neighbors of a site with link delays.
    pub fn neighbors(&self, s: SiteId) -> &[(SiteId, f64)] {
        &self.adjacency[s.0]
    }

    /// Neighbor ids of a site.
    pub fn neighbor_ids(&self, s: SiteId) -> impl Iterator<Item = SiteId> + '_ {
        self.adjacency[s.0].iter().map(|(n, _)| *n)
    }

    /// Degree of a site.
    pub fn degree(&self, s: SiteId) -> usize {
        self.adjacency[s.0].len()
    }

    /// Delay of the direct link between two sites, if any.
    pub fn link_delay(&self, a: SiteId, b: SiteId) -> Option<f64> {
        self.adjacency[a.0]
            .iter()
            .find(|(s, _)| *s == b)
            .map(|(_, d)| *d)
    }

    /// Bandwidth capacity of the direct link between two sites, if any.
    pub fn link_bandwidth(&self, a: SiteId, b: SiteId) -> Option<f64> {
        self.adjacency[a.0]
            .iter()
            .position(|(s, _)| *s == b)
            .map(|pos| self.bandwidths[a.0][pos])
    }

    /// Full state (delay + bandwidth) of the direct link between two
    /// sites, if any.
    pub fn link_state(&self, a: SiteId, b: SiteId) -> Option<LinkState> {
        self.adjacency[a.0]
            .iter()
            .position(|(s, _)| *s == b)
            .map(|pos| LinkState {
                delay: self.adjacency[a.0][pos].1,
                bandwidth: self.bandwidths[a.0][pos],
            })
    }

    /// Returns `true` if a direct link exists between two sites.
    pub fn has_link(&self, a: SiteId, b: SiteId) -> bool {
        self.link_delay(a, b).is_some()
    }

    /// Iterator over every undirected link as `(a, b, delay)` with `a < b`.
    pub fn links(&self) -> impl Iterator<Item = (SiteId, SiteId, f64)> + '_ {
        self.sites().flat_map(move |a| {
            self.adjacency[a.0]
                .iter()
                .filter(move |(b, _)| a.0 < b.0)
                .map(move |(b, d)| (a, *b, *d))
        })
    }

    /// Iterator over every undirected link as `(a, b, state)` with
    /// `a < b`, in the same order as [`Network::links`].
    pub fn link_states(&self) -> impl Iterator<Item = (SiteId, SiteId, LinkState)> + '_ {
        self.sites().flat_map(move |a| {
            self.adjacency[a.0]
                .iter()
                .enumerate()
                .filter(move |(_, (b, _))| a.0 < b.0)
                .map(move |(pos, (b, d))| {
                    (
                        a,
                        *b,
                        LinkState {
                            delay: *d,
                            bandwidth: self.bandwidths[a.0][pos],
                        },
                    )
                })
        })
    }

    /// Relative computing power of a site (§13 uniform machines; 1.0 for the
    /// identical-machines base model).
    pub fn speed(&self, s: SiteId) -> f64 {
        self.speeds[s.0]
    }

    /// Sets the relative computing power of a site.
    ///
    /// # Panics
    /// Panics if the speed is not strictly positive.
    pub fn set_speed(&mut self, s: SiteId, speed: f64) {
        assert!(speed > 0.0 && speed.is_finite(), "speed must be positive");
        self.speeds[s.0] = speed;
    }

    /// Returns `true` iff a path of links joins `a` and `b` (used by the
    /// fault-injection layer to decide whether a routed management-plane
    /// message can physically traverse the network).
    pub fn has_path(&self, a: SiteId, b: SiteId) -> bool {
        let n = self.site_count();
        if a.0 >= n || b.0 >= n {
            return false;
        }
        self.hop_distances(a)[b.0] != usize::MAX
    }

    /// Returns `true` iff every site can reach every other site.
    pub fn is_connected(&self) -> bool {
        let n = self.site_count();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        seen[0] = true;
        queue.push_back(SiteId(0));
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for (v, _) in &self.adjacency[u.0] {
                if !seen[v.0] {
                    seen[v.0] = true;
                    count += 1;
                    queue.push_back(*v);
                }
            }
        }
        count == n
    }

    /// Hop distances (breadth-first, ignoring delays) from `src` to every
    /// site; unreachable sites get `usize::MAX`.
    pub fn hop_distances(&self, src: SiteId) -> Vec<usize> {
        let n = self.site_count();
        let mut dist = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        dist[src.0] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            for (v, _) in &self.adjacency[u.0] {
                if dist[v.0] == usize::MAX {
                    dist[v.0] = dist[u.0] + 1;
                    queue.push_back(*v);
                }
            }
        }
        dist
    }

    /// Maximum hop-eccentricity over all sites (the hop diameter); `None` if
    /// the network is disconnected or empty.
    pub fn hop_diameter(&self) -> Option<usize> {
        if self.site_count() == 0 {
            return None;
        }
        let mut max = 0usize;
        for s in self.sites() {
            let d = self.hop_distances(s);
            for &x in &d {
                if x == usize::MAX {
                    return None;
                }
                max = max.max(x);
            }
        }
        Some(max)
    }

    /// Average node degree.
    pub fn average_degree(&self) -> f64 {
        if self.site_count() == 0 {
            return 0.0;
        }
        2.0 * self.link_count as f64 / self.site_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Network {
        let mut n = Network::new(3);
        n.add_link(SiteId(0), SiteId(1), 1.0).unwrap();
        n.add_link(SiteId(1), SiteId(2), 2.0).unwrap();
        n.add_link(SiteId(0), SiteId(2), 5.0).unwrap();
        n
    }

    #[test]
    fn construction_and_queries() {
        let n = triangle();
        assert_eq!(n.site_count(), 3);
        assert_eq!(n.link_count(), 3);
        assert_eq!(n.degree(SiteId(0)), 2);
        assert_eq!(n.link_delay(SiteId(0), SiteId(2)), Some(5.0));
        assert_eq!(n.link_delay(SiteId(2), SiteId(0)), Some(5.0));
        assert_eq!(n.link_delay(SiteId(0), SiteId(0)), None);
        assert!(n.has_link(SiteId(0), SiteId(1)));
        assert_eq!(n.links().count(), 3);
        assert_eq!(n.average_degree(), 2.0);
        assert_eq!(format!("{}", SiteId(3)), "s3");
        assert_eq!(SiteId::from(2).index(), 2);
    }

    #[test]
    fn link_errors() {
        let mut n = Network::new(2);
        assert_eq!(
            n.add_link(SiteId(0), SiteId(9), 1.0),
            Err(NetworkError::UnknownSite(SiteId(9)))
        );
        assert_eq!(
            n.add_link(SiteId(9), SiteId(0), 1.0),
            Err(NetworkError::UnknownSite(SiteId(9)))
        );
        assert_eq!(
            n.add_link(SiteId(0), SiteId(0), 1.0),
            Err(NetworkError::SelfLink(SiteId(0)))
        );
        assert_eq!(
            n.add_link(SiteId(0), SiteId(1), -2.0),
            Err(NetworkError::InvalidDelay(-2.0))
        );
        n.add_link(SiteId(0), SiteId(1), 1.0).unwrap();
        assert_eq!(
            n.add_link(SiteId(1), SiteId(0), 2.0),
            Err(NetworkError::DuplicateLink(SiteId(1), SiteId(0)))
        );
        assert!(NetworkError::SelfLink(SiteId(0))
            .to_string()
            .contains("self"));
    }

    #[test]
    fn connectivity() {
        let mut n = Network::new(4);
        n.add_link(SiteId(0), SiteId(1), 1.0).unwrap();
        n.add_link(SiteId(2), SiteId(3), 1.0).unwrap();
        assert!(!n.is_connected());
        n.add_link(SiteId(1), SiteId(2), 1.0).unwrap();
        assert!(n.is_connected());
        assert!(Network::new(0).is_connected());
        assert!(Network::new(1).is_connected());
    }

    #[test]
    fn pairwise_reachability() {
        let mut n = Network::new(4);
        n.add_link(SiteId(0), SiteId(1), 1.0).unwrap();
        n.add_link(SiteId(2), SiteId(3), 1.0).unwrap();
        assert!(n.has_path(SiteId(0), SiteId(1)));
        assert!(n.has_path(SiteId(1), SiteId(0)));
        assert!(!n.has_path(SiteId(0), SiteId(2)));
        assert!(n.has_path(SiteId(2), SiteId(2)));
        assert!(!n.has_path(SiteId(0), SiteId(9)));
        n.add_link(SiteId(1), SiteId(2), 1.0).unwrap();
        assert!(n.has_path(SiteId(0), SiteId(3)));
    }

    #[test]
    fn hop_distances_and_diameter() {
        let mut n = Network::new(4);
        n.add_link(SiteId(0), SiteId(1), 10.0).unwrap();
        n.add_link(SiteId(1), SiteId(2), 10.0).unwrap();
        n.add_link(SiteId(2), SiteId(3), 10.0).unwrap();
        assert_eq!(n.hop_distances(SiteId(0)), vec![0, 1, 2, 3]);
        assert_eq!(n.hop_diameter(), Some(3));
        let disconnected = Network::new(2);
        assert_eq!(disconnected.hop_diameter(), None);
        assert_eq!(Network::new(0).hop_diameter(), None);
    }

    #[test]
    fn link_delay_mutation() {
        let mut n = triangle();
        n.set_link_delay(SiteId(0), SiteId(1), 4.5).unwrap();
        assert_eq!(n.link_delay(SiteId(0), SiteId(1)), Some(4.5));
        assert_eq!(n.link_delay(SiteId(1), SiteId(0)), Some(4.5));
        assert_eq!(
            n.set_link_delay(SiteId(0), SiteId(1), -1.0),
            Err(NetworkError::InvalidDelay(-1.0))
        );
        assert_eq!(
            n.set_link_delay(SiteId(0), SiteId(9), 1.0),
            Err(NetworkError::UnknownSite(SiteId(9)))
        );
        assert_eq!(
            n.set_link_delay(SiteId(9), SiteId(0), 1.0),
            Err(NetworkError::UnknownSite(SiteId(9)))
        );
        let mut m = Network::new(3);
        m.add_link(SiteId(0), SiteId(1), 1.0).unwrap();
        assert_eq!(
            m.set_link_delay(SiteId(0), SiteId(2), 1.0),
            Err(NetworkError::MissingLink(SiteId(0), SiteId(2)))
        );
        assert!(NetworkError::MissingLink(SiteId(0), SiteId(2))
            .to_string()
            .contains("no link"));
    }

    #[test]
    fn link_removal_and_restoration() {
        let mut n = triangle();
        assert_eq!(
            n.remove_link(SiteId(0), SiteId(1)),
            Some(LinkState {
                delay: 1.0,
                bandwidth: f64::INFINITY
            })
        );
        assert_eq!(n.link_count(), 2);
        assert!(!n.has_link(SiteId(0), SiteId(1)));
        assert!(!n.has_link(SiteId(1), SiteId(0)));
        assert!(n.is_connected()); // still connected through site 2
        assert_eq!(n.remove_link(SiteId(0), SiteId(1)), None);
        assert_eq!(n.remove_link(SiteId(0), SiteId(9)), None);
        // Restoring the link brings the triangle back.
        n.add_link(SiteId(0), SiteId(1), 1.0).unwrap();
        assert_eq!(n.link_count(), 3);
        assert_eq!(n.link_delay(SiteId(0), SiteId(1)), Some(1.0));
    }

    #[test]
    fn bandwidth_defaults_and_mutation() {
        let mut n = triangle();
        assert_eq!(n.link_bandwidth(SiteId(0), SiteId(1)), Some(f64::INFINITY));
        assert_eq!(n.link_bandwidth(SiteId(0), SiteId(0)), None);
        n.set_link_bandwidth(SiteId(0), SiteId(1), 4.0).unwrap();
        assert_eq!(n.link_bandwidth(SiteId(0), SiteId(1)), Some(4.0));
        assert_eq!(n.link_bandwidth(SiteId(1), SiteId(0)), Some(4.0));
        assert_eq!(
            n.link_state(SiteId(0), SiteId(1)),
            Some(LinkState {
                delay: 1.0,
                bandwidth: 4.0
            })
        );
        // Delay mutation leaves bandwidth alone and vice versa.
        n.set_link_delay(SiteId(0), SiteId(1), 2.5).unwrap();
        assert_eq!(
            n.link_state(SiteId(0), SiteId(1)),
            Some(LinkState {
                delay: 2.5,
                bandwidth: 4.0
            })
        );
        assert_eq!(
            n.set_link_bandwidth(SiteId(0), SiteId(1), -1.0),
            Err(NetworkError::InvalidBandwidth(-1.0))
        );
        assert_eq!(
            n.set_link_bandwidth(SiteId(0), SiteId(9), 1.0),
            Err(NetworkError::UnknownSite(SiteId(9)))
        );
        assert_eq!(
            n.set_link_bandwidth(SiteId(9), SiteId(0), 1.0),
            Err(NetworkError::UnknownSite(SiteId(9)))
        );
        let mut m = Network::new(3);
        m.add_link_with_bandwidth(SiteId(0), SiteId(1), 1.0, 8.0)
            .unwrap();
        assert_eq!(m.link_bandwidth(SiteId(0), SiteId(1)), Some(8.0));
        assert_eq!(
            m.set_link_bandwidth(SiteId(0), SiteId(2), 1.0),
            Err(NetworkError::MissingLink(SiteId(0), SiteId(2)))
        );
        assert!(matches!(
            m.add_link_with_bandwidth(SiteId(0), SiteId(2), 1.0, f64::NAN),
            Err(NetworkError::InvalidBandwidth(b)) if b.is_nan()
        ));
        assert!(NetworkError::InvalidBandwidth(-1.0)
            .to_string()
            .contains("bandwidth"));
    }

    #[test]
    fn every_link_mutation_bumps_the_shared_version() {
        let mut n = triangle();
        let v0 = n.version();
        assert_eq!(v0, 3); // three add_link calls
        n.set_link_delay(SiteId(0), SiteId(1), 2.0).unwrap();
        assert_eq!(n.version(), v0 + 1);
        n.set_link_bandwidth(SiteId(0), SiteId(1), 9.0).unwrap();
        assert_eq!(n.version(), v0 + 2);
        let state = n.remove_link(SiteId(0), SiteId(1)).unwrap();
        assert_eq!(n.version(), v0 + 3);
        n.restore_link(SiteId(0), SiteId(1), state).unwrap();
        assert_eq!(n.version(), v0 + 4);
        assert_eq!(
            n.link_state(SiteId(0), SiteId(1)),
            Some(LinkState {
                delay: 2.0,
                bandwidth: 9.0
            })
        );
        // Failed mutations do not bump the version.
        assert!(n.set_link_delay(SiteId(0), SiteId(1), -1.0).is_err());
        assert!(n.set_link_bandwidth(SiteId(0), SiteId(9), 1.0).is_err());
        assert!(n.remove_link(SiteId(0), SiteId(9)).is_none());
        assert_eq!(n.version(), v0 + 4);
    }

    #[test]
    fn structural_equality_ignores_version() {
        let a = triangle();
        let mut b = triangle();
        b.set_link_delay(SiteId(0), SiteId(1), 7.0).unwrap();
        b.set_link_delay(SiteId(0), SiteId(1), 1.0).unwrap();
        assert_ne!(a.version(), b.version());
        assert_eq!(a, b);
        b.set_link_bandwidth(SiteId(0), SiteId(1), 3.0).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn raw_parts_round_trip_preserves_bandwidths() {
        let mut n = triangle();
        n.set_link_bandwidth(SiteId(1), SiteId(2), 6.5).unwrap();
        let (adjacency, speeds) = n.raw_adjacency();
        let rebuilt = Network::from_raw_parts(
            adjacency.to_vec(),
            n.raw_bandwidths().to_vec(),
            speeds.to_vec(),
        );
        assert_eq!(rebuilt, n);
        assert_eq!(rebuilt.version(), 0);
        assert_eq!(rebuilt.link_bandwidth(SiteId(2), SiteId(1)), Some(6.5));
        // The legacy entry point defaults every capacity to infinity.
        let legacy = Network::from_raw_adjacency(adjacency.to_vec(), speeds.to_vec());
        assert_eq!(
            legacy.link_bandwidth(SiteId(1), SiteId(2)),
            Some(f64::INFINITY)
        );
    }

    #[test]
    fn link_states_parallel_links_iterator() {
        let mut n = triangle();
        n.set_link_bandwidth(SiteId(0), SiteId(2), 2.0).unwrap();
        let plain: Vec<_> = n.links().collect();
        let full: Vec<_> = n.link_states().collect();
        assert_eq!(plain.len(), full.len());
        for ((a1, b1, d1), (a2, b2, st)) in plain.iter().zip(&full) {
            assert_eq!((a1, b1), (a2, b2));
            assert_eq!(*d1, st.delay);
            assert_eq!(st.bandwidth, n.link_bandwidth(*a2, *b2).unwrap());
        }
    }

    #[test]
    fn speeds() {
        let mut n = Network::new(2);
        assert_eq!(n.speed(SiteId(0)), 1.0);
        n.set_speed(SiteId(1), 2.5);
        assert_eq!(n.speed(SiteId(1)), 2.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_speed_rejected() {
        let mut n = Network::new(1);
        n.set_speed(SiteId(0), 0.0);
    }
}
