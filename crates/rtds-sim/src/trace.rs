//! Structured event traces, backed by `rtds-trace` sinks.
//!
//! Traces serve three purposes: debugging protocol implementations, asserting
//! protocol-level properties in integration tests (for example "every Enroll
//! is eventually matched by an Unlock"), and rendering the Fig. 1 algorithm
//! overview as an actual message/stage timeline in the experiment harness.
//!
//! This module is a thin façade over [`rtds_trace`]: [`Trace`] owns one of
//! the three sink kinds (null / bounded ring / streaming JSONL) and the
//! engine's [`crate::engine::Context::trace`] records typed
//! [`TracePayload`]s into it lazily — when the sink is disabled the payload
//! closure is never even evaluated, so tracing costs one branch on hot
//! paths. The default enabled mode is a bounded *flight recorder* (a ring of
//! [`DEFAULT_RING_CAPACITY`] events with drop counters), so million-job
//! streaming runs can keep tracing on without unbounded memory growth.

use rtds_net::SiteId;
use rtds_trace::{JsonlSink, NullSink, RingSink};
use std::fmt::Write as _;
use std::io::Write;

pub use rtds_trace::{
    check_well_formed, chrome_trace, read_jsonl, render_jsonl, render_jsonl_with_header,
    DeferReason, Phase, RejectReason, SpanId, TraceEvent, TracePayload, TraceSink, Value,
    TRACE_SCHEMA,
};

/// Ring capacity used by [`Trace::flight_recorder`] (64 Ki events ≈ 4 MiB).
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

enum Sink {
    Null(NullSink),
    Ring(RingSink),
    Jsonl(JsonlSink<Box<dyn Write + Send>>),
}

/// A trace recorder: one of the `rtds-trace` sinks behind a uniform API.
/// Disabled recorders drop events before payloads are even built, so tracing
/// can stay in the protocol code paths without costing anything in large
/// experiments.
pub struct Trace {
    sink: Sink,
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.sink {
            Sink::Null(_) => f.debug_struct("Trace").field("sink", &"null").finish(),
            Sink::Ring(ring) => f
                .debug_struct("Trace")
                .field("sink", &"ring")
                .field("capacity", &ring.capacity())
                .field("recorded", &ring.recorded())
                .finish(),
            Sink::Jsonl(sink) => f
                .debug_struct("Trace")
                .field("sink", &"jsonl")
                .field("recorded", &sink.recorded())
                .finish(),
        }
    }
}

impl Trace {
    /// A recorder that drops events (the default).
    pub fn disabled() -> Self {
        Trace {
            sink: Sink::Null(NullSink),
        }
    }

    /// A bounded flight recorder: keeps the most recent
    /// [`DEFAULT_RING_CAPACITY`] events and counts drops.
    pub fn flight_recorder() -> Self {
        Trace::ring(DEFAULT_RING_CAPACITY)
    }

    /// A bounded ring recorder with an explicit capacity.
    pub fn ring(capacity: usize) -> Self {
        Trace {
            sink: Sink::Ring(RingSink::new(capacity)),
        }
    }

    /// A streaming `rtds-trace/1` JSONL recorder. The header (schema plus
    /// `metadata`) is written immediately; each recorded event becomes one
    /// line. Memory use is one line buffer regardless of run length.
    pub fn jsonl(out: Box<dyn Write + Send>, metadata: &[(&str, Value)]) -> Self {
        Trace {
            sink: Sink::Jsonl(JsonlSink::new(out, metadata)),
        }
    }

    /// Returns `true` if events are being recorded.
    pub fn is_enabled(&self) -> bool {
        match &self.sink {
            Sink::Null(_) => false,
            Sink::Ring(_) | Sink::Jsonl(_) => true,
        }
    }

    /// Records an event (no-op when disabled). Producers should gate on
    /// [`Trace::is_enabled`] to skip payload construction entirely — the
    /// engine's `Context::trace` does.
    pub fn record(&mut self, event: &TraceEvent) {
        match &mut self.sink {
            Sink::Null(_) => {}
            Sink::Ring(ring) => ring.record_event(event),
            Sink::Jsonl(sink) => sink.record_event(event),
        }
    }

    /// Total events ever recorded (retained + dropped).
    pub fn recorded(&self) -> u64 {
        match &self.sink {
            Sink::Null(_) => 0,
            Sink::Ring(ring) => ring.recorded(),
            Sink::Jsonl(sink) => sink.recorded(),
        }
    }

    /// Events dropped by a full ring (always 0 for the other sinks).
    pub fn dropped(&self) -> u64 {
        match &self.sink {
            Sink::Ring(ring) => ring.dropped(),
            _ => 0,
        }
    }

    /// The ring capacity, if this recorder is ring-backed.
    pub fn ring_capacity(&self) -> Option<usize> {
        match &self.sink {
            Sink::Ring(ring) => Some(ring.capacity()),
            _ => None,
        }
    }

    /// Number of retained events (ring only; a JSONL recorder retains
    /// nothing in memory).
    pub fn len(&self) -> usize {
        match &self.sink {
            Sink::Ring(ring) => ring.len(),
            _ => 0,
        }
    }

    /// Returns `true` if no events are retained in memory.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the retained events in chronological order (empty for
    /// null and JSONL recorders — the JSONL stream already left the process).
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.sink {
            Sink::Ring(ring) => ring.snapshot(),
            _ => Vec::new(),
        }
    }

    /// Retained events of a given kind.
    pub fn of_kind<'k>(&self, kind: &'k str) -> impl Iterator<Item = TraceEvent> + 'k {
        self.events().into_iter().filter(move |e| e.kind() == kind)
    }

    /// Retained events recorded by a given site.
    pub fn of_site(&self, site: SiteId) -> impl Iterator<Item = TraceEvent> {
        self.events()
            .into_iter()
            .filter(move |e| e.site == site.0 as u32)
    }

    /// Renders the retained events as aligned text lines (used by the Fig. 1
    /// binary).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            let site = format!("s{}", e.site);
            let _ = writeln!(
                out,
                "[{:>10.3}] {:>6}  {:<24} {}",
                e.time,
                site,
                e.kind(),
                e.payload.describe()
            );
        }
        out
    }

    /// Flushes a streaming recorder (no-op otherwise).
    pub fn flush(&mut self) {
        if let Sink::Jsonl(sink) = &mut self.sink {
            sink.flush();
        }
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64, site: u32, payload: TracePayload) -> TraceEvent {
        TraceEvent {
            time,
            site,
            span: SpanId::derive(1, Phase::Custom, site, 0),
            parent: SpanId::NONE,
            payload,
        }
    }

    #[test]
    fn ring_trace_records_and_filters() {
        let mut t = Trace::flight_recorder();
        assert!(t.is_enabled());
        assert!(t.is_empty());
        t.record(&ev(
            1.0,
            0,
            TracePayload::LocalTest {
                job: 1,
                tasks: 2,
                deadline: 9.0,
            },
        ));
        t.record(&ev(2.0, 1, TracePayload::AcsEnroll { job: 1, peers: 3 }));
        t.record(&ev(3.0, 0, TracePayload::AcsEnroll { job: 2, peers: 3 }));
        assert_eq!(t.len(), 3);
        assert_eq!(t.of_kind("acs-enroll").count(), 2);
        assert_eq!(t.of_site(SiteId(0)).count(), 2);
        assert_eq!(t.dropped(), 0);
        let text = t.render();
        assert!(text.contains("local-test"));
        assert!(text.contains("s1"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn small_ring_drops_oldest_and_counts() {
        let mut t = Trace::ring(2);
        assert_eq!(t.ring_capacity(), Some(2));
        for i in 0..5u32 {
            t.record(&ev(i as f64, i, TracePayload::Mark { tag: i, value: 0.0 }));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.recorded(), 5);
        assert_eq!(t.dropped(), 3);
        let kept: Vec<u32> = t.events().iter().map(|e| e.site).collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn disabled_trace_drops_events() {
        let mut t = Trace::disabled();
        assert!(!t.is_enabled());
        t.record(&ev(1.0, 0, TracePayload::Mark { tag: 0, value: 0.0 }));
        assert!(t.is_empty());
        assert_eq!(t.recorded(), 0);
        let d = Trace::default();
        assert!(!d.is_enabled());
    }

    #[test]
    fn jsonl_trace_streams_instead_of_retaining() {
        let mut t = Trace::jsonl(Box::new(Vec::new()), &[("seed", Value::U64(1))]);
        assert!(t.is_enabled());
        t.record(&ev(1.0, 0, TracePayload::Mark { tag: 0, value: 0.5 }));
        t.flush();
        assert_eq!(t.recorded(), 1);
        assert_eq!(t.len(), 0);
        assert!(t.events().is_empty());
    }
}
