//! A minimal, deterministic JSON value and writer.
//!
//! The build environment has no registry access, so the workspace's `serde`
//! is a no-op stub (see `crates/compat/README.md`); sweep reports therefore
//! serialize through this hand-rolled value type. Everything about the
//! output is pinned: object keys keep insertion order, numbers render via
//! Rust's shortest-round-trip formatting, and non-finite floats become
//! `null` — so a report is byte-identical across runs, thread counts and
//! platforms.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (renders without a decimal point).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; keys keep insertion order for deterministic output.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn object(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders the value as a compact JSON document plus a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{:?}` is Rust's shortest round-trip float formatting ("1.0",
        // "0.25", "1e-7"), stable across platforms and always JSON-legal
        // for finite values.
        let _ = write!(out, "{x:?}");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::Int(-3).render(), "-3\n");
        assert_eq!(Json::UInt(7).render(), "7\n");
        assert_eq!(Json::Num(0.5).render(), "0.5\n");
        assert_eq!(Json::Num(2.0).render(), "2.0\n");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"\n");
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"\n");
    }

    #[test]
    fn containers_render_with_stable_order() {
        let doc = Json::object(vec![
            ("b", Json::Int(1)),
            ("a", Json::Array(vec![Json::Int(2), Json::str("x")])),
            ("empty_arr", Json::Array(vec![])),
            ("empty_obj", Json::Object(vec![])),
        ]);
        let rendered = doc.render();
        // Keys stay in insertion order (b before a), nested indentation is
        // two spaces per level.
        let expected = "{\n  \"b\": 1,\n  \"a\": [\n    2,\n    \"x\"\n  ],\n  \"empty_arr\": [],\n  \"empty_obj\": {}\n}\n";
        assert_eq!(rendered, expected);
        // Rendering is a pure function.
        assert_eq!(rendered, doc.render());
    }
}
