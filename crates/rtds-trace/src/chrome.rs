//! chrome://tracing / Perfetto export.
//!
//! [`chrome_trace`] converts a slice of [`TraceEvent`]s into the Chrome
//! trace-event JSON format (the "JSON Array Format with metadata" variant):
//! one complete event (`"ph":"X"`) per span covering its first-to-last
//! observation, plus one instant event (`"ph":"i"`) per trace event carrying
//! the typed payload as `args`. Simulated time is mapped 1 unit → 1 ms, so
//! timestamps (which Chrome reads as microseconds) are `time * 1000`. The
//! track (`tid`) is the recording site; `pid` is always 0.
//!
//! The output is deterministic: spans appear in first-observation order and
//! every number uses the same shortest-round-trip float format as the JSONL
//! writer, so two exports of the same trace are byte-identical.

use crate::event::{Arg, TraceEvent};
use crate::span::SpanId;
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x:?}");
    } else {
        out.push_str("null");
    }
}

fn write_arg(out: &mut String, arg: Arg) {
    match arg {
        Arg::U64(u) => {
            let _ = write!(out, "{u}");
        }
        Arg::F64(x) => write_f64(out, x),
        Arg::Str(s) => {
            // Wire names are static identifiers with nothing to escape.
            let _ = write!(out, "\"{s}\"");
        }
        Arg::Bool(b) => out.push_str(if b { "true" } else { "false" }),
    }
}

struct SpanExtent {
    name: &'static str,
    site: u32,
    parent: SpanId,
    start: f64,
    end: f64,
}

/// Renders the events as a single-line Chrome trace JSON document.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    // Collect span extents in first-appearance order.
    let mut order: Vec<SpanId> = Vec::new();
    let mut extents: BTreeMap<SpanId, SpanExtent> = BTreeMap::new();
    for event in events {
        if event.span.is_none() {
            continue;
        }
        match extents.get_mut(&event.span) {
            Some(extent) => {
                extent.start = extent.start.min(event.time);
                extent.end = extent.end.max(event.time);
            }
            None => {
                order.push(event.span);
                extents.insert(
                    event.span,
                    SpanExtent {
                        name: event.kind(),
                        site: event.site,
                        parent: event.parent,
                        start: event.time,
                        end: event.time,
                    },
                );
            }
        }
    }

    let mut out = String::with_capacity(64 + events.len() * 160);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for span in &order {
        let extent = &extents[span];
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":",
            extent.name, extent.site
        );
        write_f64(&mut out, extent.start * 1000.0);
        out.push_str(",\"dur\":");
        write_f64(&mut out, (extent.end - extent.start) * 1000.0);
        let _ = write!(
            out,
            ",\"args\":{{\"span\":{},\"parent\":{}}}}}",
            span.0, extent.parent.0
        );
    }
    for event in events {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"ts\":",
            event.kind(),
            event.site
        );
        write_f64(&mut out, event.time * 1000.0);
        let _ = write!(
            out,
            ",\"args\":{{\"span\":{},\"parent\":{}",
            event.span.0, event.parent.0
        );
        event.payload.for_each_arg(&mut |name, arg| {
            let _ = write!(out, ",\"{name}\":");
            write_arg(&mut out, arg);
        });
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TracePayload;
    use crate::span::Phase;

    fn events() -> Vec<TraceEvent> {
        let span = SpanId::derive(3, Phase::Acceptance, 1, 0);
        vec![
            TraceEvent {
                time: 1.0,
                site: 1,
                span,
                parent: SpanId::job_root(3),
                payload: TracePayload::LocalTest {
                    job: 3,
                    tasks: 2,
                    deadline: 50.0,
                },
            },
            TraceEvent {
                time: 2.5,
                site: 1,
                span,
                parent: SpanId::job_root(3),
                payload: TracePayload::LocalReject { job: 3 },
            },
        ]
    }

    #[test]
    fn export_contains_span_extents_and_instants() {
        let doc = chrome_trace(&events());
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        // One X event spanning [1000, 2500] µs plus two instants.
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ts\":1000.0,\"dur\":1500.0"));
        assert_eq!(doc.matches("\"ph\":\"i\"").count(), 2);
        assert!(doc.contains("\"tid\":1"));
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(chrome_trace(&events()), chrome_trace(&events()));
    }

    #[test]
    fn empty_input_is_still_a_valid_document() {
        assert_eq!(
            chrome_trace(&[]),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"
        );
    }
}
