//! Local-only policy: no cooperation between sites.
//!
//! Every job is accepted if and only if its arrival site can guarantee it
//! locally (§5 test). This is the natural lower bound on the guarantee ratio
//! and costs zero messages; the gap between this policy and RTDS quantifies
//! the paper's "increase of the number of accepted (executed) jobs".

use crate::policy::PolicyReport;
use rtds_graph::Job;
use rtds_net::{Network, SiteId};
use rtds_sched::executor;
use rtds_sched::{ProtocolScheduler, SchedulePlan, Scheduler, SiteResources};

/// Runs the local-only policy over a workload.
///
/// Jobs are processed in arrival-time order (ties by job id); each one is
/// offered only to its arrival site. Every site runs a single-core protocol
/// [`Scheduler`], which delegates verbatim to the paper's admission test.
pub fn run_local_only(network: &Network, jobs: &[Job], preemptive: bool) -> PolicyReport {
    let mut scheds: Vec<ProtocolScheduler> = network
        .sites()
        .map(|s| ProtocolScheduler::new(SiteResources::default(), network.speed(s), preemptive))
        .collect();
    let mut report = PolicyReport::default();
    let mut ordered: Vec<&Job> = jobs.iter().collect();
    ordered.sort_by(|a, b| {
        a.arrival_time
            .partial_cmp(&b.arrival_time)
            .unwrap()
            .then(a.id.cmp(&b.id))
    });
    let mut accepted = Vec::new();
    for job in ordered {
        report.submitted += 1;
        let site = SiteId(job.arrival_site);
        match scheds[site.0].admit_dag(job, job.arrival_time, None) {
            Some(adm) => {
                scheds[site.0]
                    .reserve_dag(&adm)
                    .expect("admission placements fit");
                report.accepted_locally += 1;
                accepted.push((job.id, job.deadline()));
            }
            None => {
                report.rejected += 1;
            }
        }
    }
    // Run-time safety check.
    let plan_refs: Vec<&SchedulePlan> = scheds.iter().flat_map(|s| s.core_plans()).collect();
    for (job, deadline) in accepted {
        if !executor::meets_deadline(&plan_refs, job, deadline) {
            report.deadline_misses += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtds_graph::{JobId, JobParams, TaskGraph, TaskId};
    use rtds_net::generators::{ring, DelayDistribution};

    fn chain_job(id: u64, costs: &[f64], release: f64, deadline: f64, site: usize) -> Job {
        let mut g = TaskGraph::from_costs(costs);
        for i in 1..costs.len() {
            g.add_edge(TaskId(i - 1), TaskId(i)).unwrap();
        }
        Job::new(JobId(id), g, JobParams::new(release, deadline), site)
    }

    #[test]
    fn accepts_feasible_and_rejects_overload() {
        let net = ring(4, DelayDistribution::Constant(1.0), 0);
        let jobs = vec![
            chain_job(1, &[30.0], 0.0, 40.0, 0),
            chain_job(2, &[30.0], 0.0, 40.0, 0), // overloads site 0
            chain_job(3, &[30.0], 0.0, 40.0, 1), // fine on site 1
        ];
        let report = run_local_only(&net, &jobs, false);
        assert_eq!(report.submitted, 3);
        assert_eq!(report.accepted_locally, 2);
        assert_eq!(report.rejected, 1);
        assert_eq!(report.accepted_remotely, 0);
        assert_eq!(report.distribution_messages, 0);
        assert_eq!(report.deadline_misses, 0);
        assert!((report.guarantee_ratio().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn arrival_order_is_respected() {
        let net = ring(2, DelayDistribution::Constant(1.0), 0);
        // The later job would fit if processed first, but arrival order says
        // the big one comes first.
        let jobs = vec![
            chain_job(2, &[5.0], 10.0, 40.0, 0),
            chain_job(1, &[35.0], 0.0, 40.0, 0),
        ];
        let report = run_local_only(&net, &jobs, false);
        assert_eq!(report.accepted_locally, 2);
        let tight = vec![
            chain_job(1, &[40.0], 0.0, 41.0, 0),
            chain_job(2, &[5.0], 10.0, 20.0, 0),
        ];
        let report = run_local_only(&net, &tight, false);
        assert_eq!(report.accepted_locally, 1);
        assert_eq!(report.rejected, 1);
    }

    #[test]
    fn empty_workload() {
        let net = ring(3, DelayDistribution::Constant(1.0), 0);
        let report = run_local_only(&net, &[], false);
        assert_eq!(report.submitted, 0);
        assert_eq!(report.guarantee_ratio(), None);
    }
}
