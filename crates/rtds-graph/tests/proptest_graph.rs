//! Property-based tests for the DAG model.

use proptest::prelude::*;
use rtds_graph::generators::{CostDistribution, DagGenerator, DagShape, GeneratorConfig};
use rtds_graph::{critical_path_tasks, downward_ranks, upward_ranks, TaskGraph, TaskId};

fn arbitrary_shape() -> impl Strategy<Value = DagShape> {
    prop_oneof![
        Just(DagShape::Chain),
        Just(DagShape::ForkJoin),
        Just(DagShape::Independent),
        (2usize..6, 0.0f64..0.6).prop_map(|(layers, p)| DagShape::LayeredRandom {
            layers,
            edge_prob: p
        }),
        (0.05f64..0.5).prop_map(|p| DagShape::ErdosRenyi { edge_prob: p }),
        (2usize..4).prop_map(|b| DagShape::OutTree { branching: b }),
        (2usize..4).prop_map(|b| DagShape::InTree { branching: b }),
        Just(DagShape::GaussianElimination),
        Just(DagShape::FftButterfly),
    ]
}

fn arbitrary_config() -> impl Strategy<Value = GeneratorConfig> {
    (arbitrary_shape(), 1usize..40, 1.0f64..10.0).prop_map(|(shape, n, max_cost)| GeneratorConfig {
        task_count: n,
        shape,
        costs: CostDistribution::Uniform {
            min: 0.5,
            max: max_cost.max(0.6),
        },
        ccr: 0.0,
        laxity_factor: (1.5, 4.0),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated graph is acyclic and its topological order is valid:
    /// each task appears after all of its predecessors.
    #[test]
    fn generated_graphs_have_valid_topological_orders(
        cfg in arbitrary_config(),
        seed in 0u64..1_000,
    ) {
        let g = DagGenerator::new(cfg, seed).generate_graph();
        prop_assert!(g.is_acyclic());
        let order = g.topological_order().unwrap();
        prop_assert_eq!(order.len(), g.task_count());
        let mut pos = vec![0usize; g.task_count()];
        for (i, t) in order.iter().enumerate() {
            pos[t.0] = i;
        }
        for t in g.task_ids() {
            for p in g.predecessors(t) {
                prop_assert!(pos[p.0] < pos[t.0], "{p} must precede {t}");
            }
        }
    }

    /// The upward rank of a task is at least its own cost, at least the rank
    /// of any successor, and the critical-path length is bounded by the total
    /// cost of the graph.
    #[test]
    fn rank_invariants(cfg in arbitrary_config(), seed in 0u64..1_000) {
        let g = DagGenerator::new(cfg, seed).generate_graph();
        let up = upward_ranks(&g);
        let down = downward_ranks(&g);
        let info = critical_path_tasks(&g);
        for t in g.task_ids() {
            prop_assert!(up[t.0] >= g.cost(t) - 1e-9);
            for s in g.successors(t) {
                prop_assert!(up[t.0] >= up[s.0] + g.cost(t) - 1e-9);
                prop_assert!(down[s.0] >= down[t.0] + g.cost(t) - 1e-9);
            }
            // Every path through t is bounded by the critical path length.
            prop_assert!(down[t.0] + up[t.0] <= info.length + 1e-9);
        }
        prop_assert!(info.length <= g.total_cost() + 1e-9);
        prop_assert!(!info.critical_tasks.is_empty() || g.is_empty());
        prop_assert!(info.max_critical_task_count <= g.longest_chain_len());
    }

    /// Generated jobs always leave at least the critical-path length of slack
    /// (laxity factor >= 1.5 by construction here).
    #[test]
    fn generated_jobs_are_feasible_in_isolation(
        cfg in arbitrary_config(),
        seed in 0u64..1_000,
    ) {
        let mut generator = DagGenerator::new(cfg, seed);
        let job = generator.generate_job(0, 100.0);
        prop_assert!(job.deadline() > job.release());
        prop_assert!(job.window() + 1e-9 >= 1.5 * job.critical_path_length());
    }

    /// Reachability is consistent with topological positions.
    #[test]
    fn reachability_respects_topological_order(
        cfg in arbitrary_config(),
        seed in 0u64..1_000,
    ) {
        let g = DagGenerator::new(cfg, seed).generate_graph();
        let order = g.topological_order().unwrap();
        let mut pos = vec![0usize; g.task_count()];
        for (i, t) in order.iter().enumerate() {
            pos[t.0] = i;
        }
        for (i, &a) in order.iter().enumerate().take(10) {
            for &b in order.iter().skip(i + 1).take(10) {
                if g.reaches(a, b) {
                    prop_assert!(pos[a.0] <= pos[b.0]);
                }
                // A later task never reaches an earlier one (acyclicity).
                prop_assert!(!(g.reaches(b, a) && a != b));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Randomly built explicit DAGs (not via generators): inserting only
    /// forward edges over a permutation always yields an acyclic graph whose
    /// edge queries are symmetric between successor and predecessor views.
    #[test]
    fn manual_forward_edges_are_acyclic(
        n in 2usize..30,
        edges in proptest::collection::vec((0usize..100, 0usize..100), 0..120),
        seed in 0u64..100,
    ) {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut g = TaskGraph::from_costs(&vec![1.0; n]);
        for (a, b) in edges {
            let (i, j) = (a % n, b % n);
            if i == j { continue; }
            // Orient the edge along the permutation.
            let (from, to) = if order[i] < order[j] { (i, j) } else { (j, i) };
            let _ = g.add_edge(TaskId(from), TaskId(to));
        }
        prop_assert!(g.is_acyclic());
        for t in g.task_ids() {
            for s in g.successors(t) {
                prop_assert!(g.predecessors(s).any(|p| p == t));
            }
        }
    }
}
