//! # rtds-graph — the job model of the RTDS paper
//!
//! A *job* in the RTDS paper (Butelle, Finta, Hakem, IPPS 2007) is a Directed
//! Acyclic Graph `G = (T, E)` of tasks with arbitrary precedence relations.
//! Every task `t` carries a *Computational Complexity* `c(t)` (its execution
//! time on an idle, unit-speed site) and the job as a whole carries a release
//! `r` and a deadline `d`.
//!
//! This crate provides:
//!
//! * [`TaskGraph`] — the precedence structure with cycle detection,
//!   topological orders and structural queries,
//! * [`critical_path`] — upward/downward ranks and critical-path extraction
//!   (node weights only, exactly as §12 of the paper prescribes for the
//!   Mapper's list-scheduling priority),
//! * [`Job`] — a DAG plus real-time parameters and arrival metadata,
//! * [`generators`] — synthetic workload generators (layered random DAGs,
//!   Erdős–Rényi DAGs, chains, fork-joins, diamonds, trees, Gaussian
//!   elimination, FFT butterflies) with configurable cost, data-volume and
//!   deadline-laxity distributions,
//! * [`paper_instance`] — the exact five-task instance of the paper's Fig. 2,
//!   reconstructed from the published schedules and Table 1.
//!
//! The crate is deliberately free of any scheduling or networking logic so it
//! can be reused by the local scheduler ([`rtds_sched`](../rtds_sched/index.html)),
//! the Mapper and protocol ([`rtds_core`](../rtds_core/index.html)) and the
//! baselines ([`rtds_baselines`](../rtds_baselines/index.html)) alike; the
//! scenario layer ([`rtds_scenarios`](../rtds_scenarios/index.html)) drives
//! [`generators`] to synthesize whole workloads.

pub mod critical_path;
pub mod dag;
pub mod generators;
pub mod job;
pub mod paper_instance;
pub mod task;

pub use critical_path::{critical_path_tasks, downward_ranks, upward_ranks, CriticalPathInfo};
pub use dag::{EdgeData, TaskGraph};
pub use generators::{DagGenerator, DagShape, GeneratorConfig};
pub use job::{Job, JobId, JobParams};
pub use task::{Task, TaskId};
