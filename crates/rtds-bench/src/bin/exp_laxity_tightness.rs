//! E4 — deadline tightness sweep: varying the laxity factor of the jobs
//! exercises the three adjustment cases of §12.2 ((i) reject, (iii) laxity
//! scattering, (ii) window scaling) and shows how the guarantee ratio decays
//! as windows shrink.
//!
//! Run with: `cargo run --release -p rtds-bench --bin exp_laxity_tightness`
//! (`--seed <u64>` defaults to 33, `--json <path>` dumps the table).

use rtds_bench::{parallel_sweep, policy_comparison, workload, ExpArgs, WorkloadSpec};
use rtds_core::RtdsConfig;
use rtds_net::generators::{grid, DelayDistribution};
use rtds_scenarios::Json;

fn main() {
    let args = ExpArgs::parse(&[], &[]);
    let seed = args.seed(33);
    let network = grid(5, 5, false, DelayDistribution::Constant(1.0), 4);
    let laxities = vec![1.1, 1.3, 1.6, 2.0, 3.0, 4.0];
    println!("== E4: guarantee ratio vs. deadline tightness (25-site grid, 4 hotspots) ==");
    println!();
    println!(
        "{:>8} {:>6} | {:>8} {:>8} {:>8} {:>8}",
        "laxity", "jobs", "rtds", "local", "bcast", "oracle"
    );
    let net = network.clone();
    let rows = parallel_sweep(laxities, move |laxity| {
        let jobs = workload(
            &net,
            WorkloadSpec {
                rate: 0.04,
                horizon: 250.0,
                hotspots: 4,
                laxity: (laxity, laxity + 0.2),
                seed,
                ..WorkloadSpec::default()
            },
        );
        let rows = policy_comparison(&net, &jobs, RtdsConfig::default(), 9);
        (laxity, jobs.len(), rows)
    });
    let mut json_rows = Vec::new();
    for (laxity, njobs, rows) in rows {
        let ratio = |name: &str| {
            rows.iter()
                .find(|r| r.policy == name)
                .and_then(|r| r.ratio)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{:>8.1} {:>6} | {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            laxity,
            njobs,
            ratio("rtds"),
            ratio("local-only"),
            ratio("broadcast-bidding"),
            ratio("centralized-oracle"),
        );
        assert!(rows.iter().all(|r| r.misses == 0));
        json_rows.push(Json::object(vec![
            ("laxity", Json::Num(laxity)),
            ("jobs", Json::UInt(njobs as u64)),
            ("rtds", Json::Num(ratio("rtds"))),
            ("local_only", Json::Num(ratio("local-only"))),
            ("broadcast_bidding", Json::Num(ratio("broadcast-bidding"))),
            ("centralized_oracle", Json::Num(ratio("centralized-oracle"))),
        ]));
    }
    args.write_json(&Json::object(vec![
        ("experiment", Json::str("laxity_tightness")),
        ("seed", Json::UInt(seed)),
        ("rows", Json::Array(json_rows)),
    ]));
    println!();
    println!("Expected shape: with laxity close to 1 the remote option barely helps");
    println!("(communication eats the slack, adjustment case (i) rejects most mappings);");
    println!("as the windows loosen, cooperation recovers most of what local-only loses.");
}
