//! Checkpoint → restore round-trips: a run interrupted mid-flight and
//! resumed from its serialized snapshot must end in exactly the state of an
//! uninterrupted run — same report, bit-equal floats, byte-identical JSON.
//!
//! Covers both execution paths on real registry scenarios: the batch path
//! (`paper-baseline`, snapshotted via [`RtdsSystem::checkpoint`] /
//! [`RtdsSystem::resume`]) and the open-loop streaming path (`diurnal-wave`,
//! paused via [`RtdsSystem::run_streaming_checkpoint`] and resumed with a
//! fresh deterministic job source), plus a 1/2/4-thread sweep showing the
//! checkpointed cells are independent of sweep parallelism.

use rtds::core::{RtdsSystem, StreamOptions, StreamPause, StreamReport, StreamRun};
use rtds::scenarios::{find_scenario, mix_seed, parallel_sweep_sharded, Scenario};
use rtds::sim::metrics_to_json;
use rtds::workload::JobFactory;

/// A `paper-baseline` system with its workload submitted, exactly as
/// `run_cell` builds it.
fn batch_system(scenario: &Scenario, seed: u64) -> RtdsSystem {
    let network = scenario.build_network(seed);
    let jobs = scenario.build_workload(&network, seed);
    let mut system = RtdsSystem::new(network, scenario.config, mix_seed(seed, 5));
    system.submit_workload(jobs);
    system
}

#[test]
fn batch_checkpoint_resumes_byte_identically() {
    let scenario = find_scenario("paper-baseline").expect("registry scenario");
    let seed = 7;

    let mut uninterrupted = batch_system(&scenario, seed);
    let full = uninterrupted.run();
    assert!(full.jobs_submitted > 0, "the cell must be non-trivial");

    // Same cell, stopped a third of the way into the horizon, serialized,
    // restored and driven to quiescence.
    let mut interrupted = batch_system(&scenario, seed);
    interrupted.run_until(80.0);
    assert!(
        interrupted.events_processed() < uninterrupted.events_processed(),
        "the checkpoint must land mid-run"
    );
    let text = interrupted.checkpoint();
    assert!(text.contains("rtds-system-snapshot/1"));
    let mut resumed = RtdsSystem::resume(&text).expect("checkpoint decodes");
    let report = resumed.run();

    // The reports agree structurally (PartialEq on f64 is bit-level here:
    // every value is reproduced exactly, not approximately)...
    assert_eq!(report, full);
    // ...their rendered telemetry is byte-identical...
    assert_eq!(
        metrics_to_json(&report.metrics, true).render(),
        metrics_to_json(&full.metrics, true).render()
    );
    // ...and so is the final engine state itself.
    assert_eq!(resumed.checkpoint(), uninterrupted.checkpoint());
}

#[test]
fn batch_checkpoint_text_round_trips() {
    let scenario = find_scenario("paper-baseline").expect("registry scenario");
    let mut system = batch_system(&scenario, 11);
    system.run_until(60.0);
    let text = system.checkpoint();
    // checkpoint → resume → checkpoint is the identity on the document.
    let restored = RtdsSystem::resume(&text).expect("checkpoint decodes");
    assert_eq!(restored.checkpoint(), text);
}

/// The `diurnal-wave` streaming cell's job source, rebuilt fresh each time
/// exactly as `run_cell` does — deterministic per seed, which is what
/// resuming relies on.
fn diurnal_source(scenario: &Scenario, seed: u64) -> JobFactory<rtds::workload::OpenLoopSource> {
    let stream = scenario.stream.expect("diurnal-wave streams");
    let site_count = scenario.build_network(seed).site_count();
    JobFactory::new(
        stream.open_loop.build(site_count, mix_seed(seed, 2)),
        scenario.job_template(),
    )
}

fn diurnal_system(scenario: &Scenario, seed: u64) -> RtdsSystem {
    RtdsSystem::new(
        scenario.build_network(seed),
        scenario.config,
        mix_seed(seed, 5),
    )
}

#[test]
fn streaming_checkpoint_resumes_byte_identically() {
    let scenario = find_scenario("diurnal-wave").expect("registry scenario");
    let seed = 3;
    let options = StreamOptions::default();

    let mut uninterrupted = diurnal_system(&scenario, seed);
    let mut source = diurnal_source(&scenario, seed);
    let full = uninterrupted.run_streaming(&mut source, &options);
    assert!(full.guarantee.submitted > 0, "the cell must be non-trivial");

    // Pause mid-run (the scenario horizon is 360), serialize, resume with a
    // fresh instance of the same source.
    let mut paused = diurnal_system(&scenario, seed);
    let mut live = diurnal_source(&scenario, seed);
    let text =
        match paused.run_streaming_checkpoint(&mut live, &options, &StreamPause::AtTime(180.0)) {
            StreamRun::Paused(text) => text,
            StreamRun::Finished(_) => panic!("the run must pause before draining"),
        };
    assert!(text.contains("rtds-stream-snapshot/1"));

    let mut fresh = diurnal_source(&scenario, seed);
    let resumed = RtdsSystem::resume_streaming(&text, &mut fresh).expect("checkpoint decodes");
    assert_eq!(resumed, full);
    assert_eq!(
        metrics_to_json(&resumed.metrics, true).render(),
        metrics_to_json(&full.metrics, true).render()
    );
}

#[test]
fn streaming_pause_past_the_end_just_finishes() {
    let scenario = find_scenario("diurnal-wave").expect("registry scenario");
    let seed = 5;
    let options = StreamOptions::default();

    let mut plain = diurnal_system(&scenario, seed);
    let mut source = diurnal_source(&scenario, seed);
    let full = plain.run_streaming(&mut source, &options);

    // A pause point the run never reaches must not truncate it.
    let mut checkpointed = diurnal_system(&scenario, seed);
    let mut live = diurnal_source(&scenario, seed);
    match checkpointed.run_streaming_checkpoint(&mut live, &options, &StreamPause::AtTime(1.0e9)) {
        StreamRun::Finished(report) => assert_eq!(*report, full),
        StreamRun::Paused(_) => panic!("nothing left to pause for"),
    }
}

/// One `diurnal-wave` cell, interrupted by event count and resumed — the
/// unit of work for the thread-sweep comparison below.
fn checkpointed_stream_cell(seed: u64) -> StreamReport {
    let scenario = find_scenario("diurnal-wave").expect("registry scenario");
    let options = StreamOptions::default();
    let mut system = diurnal_system(&scenario, seed);
    let mut live = diurnal_source(&scenario, seed);
    match system.run_streaming_checkpoint(&mut live, &options, &StreamPause::AfterEvents(2_000)) {
        StreamRun::Paused(text) => {
            let mut fresh = diurnal_source(&scenario, seed);
            RtdsSystem::resume_streaming(&text, &mut fresh).expect("checkpoint decodes")
        }
        StreamRun::Finished(report) => *report,
    }
}

#[test]
fn checkpointed_cells_are_independent_of_sweep_threads() {
    let seeds: Vec<u64> = vec![1, 2, 4];
    let single = parallel_sweep_sharded(seeds.clone(), 1, checkpointed_stream_cell);
    let double = parallel_sweep_sharded(seeds.clone(), 2, checkpointed_stream_cell);
    let quad = parallel_sweep_sharded(seeds.clone(), 4, checkpointed_stream_cell);
    assert_eq!(single, double);
    assert_eq!(single, quad);
    // And each checkpointed cell equals its uninterrupted twin.
    for (i, seed) in seeds.iter().enumerate() {
        let scenario = find_scenario("diurnal-wave").expect("registry scenario");
        let mut system = diurnal_system(&scenario, *seed);
        let mut source = diurnal_source(&scenario, *seed);
        let full = system.run_streaming(&mut source, &StreamOptions::default());
        assert_eq!(single[i], full, "seed {seed}");
    }
}
