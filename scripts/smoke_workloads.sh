#!/usr/bin/env bash
# Workload smoke: a streaming run recorded to a JSONL trace must replay to a
# byte-identical JSON report (including the metrics section), and the
# diurnal process must run clean. Used by CI and runnable locally from the
# repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${SMOKE_OUT_DIR:-.}"
cargo run --release --bin exp_workloads -- --seed 3 --jobs 500 --rate 0.4 --sites 16 \
    --record "$out/workload-smoke.jsonl" --json "$out/workload-live.json"
cargo run --release --bin exp_workloads -- --replay "$out/workload-smoke.jsonl" \
    --json "$out/workload-replay.json"
cmp "$out/workload-live.json" "$out/workload-replay.json"
cargo run --release --bin exp_workloads -- --seed 3 --jobs 300 --rate 0.4 --sites 16 \
    --process diurnal --json "$out/workload-diurnal.json"
# A trace whose header disagrees with the topology it claims must be
# rejected with a clear message, not an engine assertion.
sed 's/"sites":16/"sites":17/' "$out/workload-smoke.jsonl" > "$out/workload-bad-sites.jsonl"
if cargo run --release --bin exp_workloads -- --replay "$out/workload-bad-sites.jsonl" \
    2> "$out/workload-bad-sites.err"; then
    echo "expected the tampered trace to be rejected" >&2
    exit 1
fi
grep -q 'square grids' "$out/workload-bad-sites.err"
echo "workload smoke OK: record/replay round-trip is byte-identical"
