//! E6 — the declarative scenario engine: named scenarios composing topology,
//! workload and fault-injection recipes, swept over seeds on worker threads
//! with a deterministic aggregate report.
//!
//! Run with: `cargo run --release -p rtds-bench --bin exp_scenarios`
//!
//! Flags:
//!
//! * `--list` — print the registry and exit,
//! * `--scenario <name|all>` — which scenario(s) to run (default `all`),
//! * `--seed <u64>` — base sweep seed (default 1),
//! * `--seeds <n>` — consecutive seeds per scenario (default 3),
//! * `--threads <n>` — worker threads (default: available parallelism; the
//!   report is byte-identical for any value),
//! * `--json <path>` — write the aggregate report as JSON,
//! * `--trace-out <p>` / `--trace-ring <n>` / `--chrome-trace <p>` — after
//!   the sweep, re-run one cell (first selected scenario, base seed) with a
//!   bounded span trace installed and export it as `rtds-trace/1` JSONL /
//!   Chrome `about:tracing` JSON (see `docs/TRACING.md`); byte-identical
//!   for any `--threads` value, since the traced cell runs alone.

use rtds_bench::{ExpArgs, TraceSetup, TRACE_FLAGS};
use rtds_scenarios::{
    builtin_scenarios, find_scenario, run_cell_traced, run_sweep, Scenario, SweepConfig,
};

fn main() {
    let mut flags = vec!["scenario", "seeds", "threads"];
    flags.extend(TRACE_FLAGS);
    let args = ExpArgs::parse(&flags, &["list"]);
    let tracing = TraceSetup::from_args(&args);
    let scenarios = builtin_scenarios();

    if args.has("list") {
        println!("== built-in scenarios ({}) ==", scenarios.len());
        println!();
        for s in &scenarios {
            println!("{:<22} {}", s.name, s.description);
        }
        return;
    }

    let selected: Vec<Scenario> = match args.value_of("scenario") {
        None => scenarios,
        Some("all") => scenarios,
        Some(name) => match find_scenario(name) {
            Some(s) => vec![s],
            None => {
                eprintln!("unknown scenario {name:?}; try --list");
                std::process::exit(2);
            }
        },
    };

    let base_seed = args.seed(1);
    let seed_count = args.usize_of("seeds", 3);
    let default_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let threads = args.usize_of("threads", default_threads);
    let config = SweepConfig::new(base_seed, seed_count.max(1), threads);

    println!(
        "== E6: scenario sweep ({} scenario(s) x {} seed(s) from {}, {} thread(s)) ==",
        selected.len(),
        config.seeds.len(),
        base_seed,
        threads
    );
    println!();
    println!(
        "{:<22} {:>7} {:>7} {:>7} {:>9} {:>10} {:>8} {:>8}",
        "scenario", "ratio", "min", "max", "msgs/job", "slack", "faults", "lost"
    );
    let report = run_sweep(&selected, &config);
    for summary in &report.scenarios {
        println!(
            "{:<22} {:>7.3} {:>7.3} {:>7.3} {:>9.1} {:>10.1} {:>8} {:>8}",
            summary.name,
            summary.mean_guarantee_ratio,
            summary.min_guarantee_ratio,
            summary.max_guarantee_ratio,
            summary.mean_messages_per_job,
            summary.mean_slack,
            summary.total_faults_injected,
            summary.total_messages_lost,
        );
        assert_eq!(
            summary.total_deadline_misses, 0,
            "accepted jobs must never miss deadlines, even under faults"
        );
    }
    println!();
    println!("Scenarios sharing the paper-baseline recipes (lossy-messages, site-crash-wave)");
    println!("isolate the effect of the injected faults: same jobs, same network, different");
    println!("acceptance. Reports are byte-identical for any --threads value.");

    if let Some(path) = args.json_path() {
        rtds_bench::write_json_report(path, &report.to_json());
    }

    if tracing.is_active() {
        let traced = &selected[0];
        let (cell, document) = run_cell_traced(traced, base_seed, tracing.ring_capacity());
        println!();
        println!(
            "traced cell: {} seed {} ({} jobs submitted)",
            traced.name, base_seed, cell.submitted
        );
        tracing.export_document(&document);
    }
}
